//! Cross-crate integration tests through the `dta` facade: assembler →
//! validator → prefetch compiler → simulator → verified results.

use dta::compiler::{prefetch_program, TransformOptions};
use dta::core::{simulate, RunError, StallCat, System, SystemConfig};
use dta::isa::asm::{assemble, program_to_asm};
use dta::isa::validate_program;
use dta::workloads::{bitcnt, colsum, mmul, stencil, vecscale, zoom, Variant};
use std::sync::Arc;

/// The full toolchain on a textual program: assemble, validate,
/// round-trip, auto-prefetch, simulate, verify.
#[test]
fn asm_to_simulation_pipeline() {
    let src = r#"
.global table words 5, 10, 15, 20, 25, 30, 35, 40
.global out zeroed 4
.entry main 0

.thread main
.frame_slots 0
.block ex
    li r3, 0x100000        ; table base
    li r4, 0               ; i
    li r5, 0               ; acc
top:
    bge r4, #8, done
    shl r6, r4, #2
    add r6, r3, r6
    read r7, 0(r6)
    add r5, r5, r7
    add r4, r4, #1
    jmp top
done:
    li r8, 0x100020        ; out (table is 32 bytes, 16-aligned)
.block ps
    write r5, 0(r8)
    ffree r1
    stop
.end
"#;
    let program = assemble(src).expect("assembles");
    assert!(validate_program(&program).is_empty());
    let round = assemble(&program_to_asm(&program)).expect("round-trips");
    assert_eq!(program.threads, round.threads);

    let (prefetched, report) = prefetch_program(&program, &TransformOptions::default());
    assert_eq!(report.total_decoupled(), 1);

    let expected = 5 + 10 + 15 + 20 + 25 + 30 + 35 + 40;
    for prog in [program, prefetched] {
        let (_, sys) = simulate(SystemConfig::with_pes(2), Arc::new(prog), &[]).unwrap();
        assert_eq!(sys.read_global_word("out", 0), Some(expected));
    }
}

/// DTA's multi-node scheduler: a 2-node × 4-PE system must produce the
/// same results as a 1-node × 8-PE system, exercising DSE forwarding.
#[test]
fn multi_node_systems_compute_identical_results() {
    let n = 16;
    let wp1 = mmul::build(n, Variant::HandPrefetch);
    let (s1, sys1) = simulate(SystemConfig::with_pes(8), Arc::new(wp1.program), &[]).unwrap();
    mmul::verify(&sys1, n).unwrap();

    let wp2 = mmul::build(n, Variant::HandPrefetch);
    let mut cfg = SystemConfig::paper_default();
    cfg.nodes = 2;
    cfg.pes_per_node = 4;
    let (s2, sys2) = simulate(cfg, Arc::new(wp2.program), &[]).unwrap();
    mmul::verify(&sys2, n).unwrap();

    assert_eq!(s1.instructions, s2.instructions);
    assert_eq!(s1.instances, s2.instances);
    // Same machine width; broadly similar time (inter-node messages may
    // differ slightly).
    let ratio = s1.cycles as f64 / s2.cycles as f64;
    assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
}

/// Forwarding kicks in when one node's frames are exhausted: a tiny
/// 2-node machine with 2 frames per PE still completes a fork storm.
#[test]
fn inter_node_forwarding_handles_frame_pressure() {
    let wp = bitcnt::build(64, Variant::Baseline);
    let mut cfg = SystemConfig::paper_default();
    cfg.nodes = 2;
    cfg.pes_per_node = 2;
    cfg.frame_capacity = 8;
    let (stats, sys) = simulate(cfg, Arc::new(wp.program), &wp.args).unwrap();
    bitcnt::verify(&sys, 64).unwrap();
    assert!(stats.instances > 64);
}

/// Every workload × every variant verifies on the paper platform.
#[test]
fn all_workloads_all_variants_verify() {
    let cfg = SystemConfig::with_pes(8);
    for variant in Variant::ALL {
        let check = |wp: dta::workloads::WorkloadProgram,
                     verify: &dyn Fn(&System) -> Result<(), String>| {
            let (_, sys) = simulate(cfg.clone(), Arc::new(wp.program), &wp.args)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", wp.name, variant.label()));
            verify(&sys).unwrap_or_else(|e| panic!("[{}] {e}", variant.label()));
        };
        check(mmul::build(8, variant), &|s| mmul::verify(s, 8));
        check(zoom::build(8, variant), &|s| zoom::verify(s, 8));
        check(bitcnt::build(96, variant), &|s| bitcnt::verify(s, 96));
        check(vecscale::build(64, 4, variant), &|s| {
            vecscale::verify(s, 64)
        });
        check(stencil::build(64, 4, variant), &|s| stencil::verify(s, 64));
        check(colsum::build(16, variant), &|s| colsum::verify(s, 16));
    }
}

/// The headline result, at reduced scale: prefetching wins big on the
/// memory-bound kernels, modestly on bitcnt, and the bound follows the
/// paper's ordering zoom ≈ mmul ≫ bitcnt.
#[test]
fn paper_speedup_ordering_holds() {
    let cfg = SystemConfig::with_pes(8);
    let speedup = |base: dta::workloads::WorkloadProgram, pf: dta::workloads::WorkloadProgram| {
        let (b, _) = simulate(cfg.clone(), Arc::new(base.program), &base.args).unwrap();
        let (p, _) = simulate(cfg.clone(), Arc::new(pf.program), &pf.args).unwrap();
        b.cycles as f64 / p.cycles as f64
    };
    let mmul_s = speedup(
        mmul::build(16, Variant::Baseline),
        mmul::build(16, Variant::HandPrefetch),
    );
    let zoom_s = speedup(
        zoom::build(16, Variant::Baseline),
        zoom::build(16, Variant::HandPrefetch),
    );
    let bitcnt_s = speedup(
        bitcnt::build(512, Variant::Baseline),
        bitcnt::build(512, Variant::HandPrefetch),
    );
    assert!(mmul_s > 5.0, "mmul speedup {mmul_s:.2}");
    assert!(zoom_s > 5.0, "zoom speedup {zoom_s:.2}");
    assert!(
        bitcnt_s > 0.9 && bitcnt_s < 3.0,
        "bitcnt speedup {bitcnt_s:.2}"
    );
    assert!(mmul_s > bitcnt_s && zoom_s > bitcnt_s);
}

/// Breakdown categories always partition total time, for every PE, on
/// every workload/variant.
#[test]
fn breakdowns_partition_execution_time() {
    for variant in Variant::ALL {
        let wp = zoom::build(8, variant);
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        for pe in &stats.per_pe {
            assert_eq!(pe.total_cycles(), stats.cycles, "{variant:?}");
        }
    }
}

/// Run statistics serialise (the harness persists them as JSON).
#[test]
fn run_stats_serialise_to_json() {
    use dta_json::{parse, Json, ToJson};
    let wp = vecscale::build(32, 2, Variant::AutoPrefetch);
    let (stats, _) = simulate(SystemConfig::with_pes(2), Arc::new(wp.program), &wp.args).unwrap();
    let json = stats.to_json();
    let back = parse(&json.to_string_pretty()).unwrap();
    assert_eq!(back, json);
    assert_eq!(
        back.get("cycles").and_then(Json::as_u64),
        Some(stats.cycles)
    );
    assert_eq!(back.get("aggregate"), json.get("aggregate"));
}

/// A cycle limit surfaces as an error rather than a hang.
#[test]
fn cycle_limit_is_enforced() {
    let wp = mmul::build(16, Variant::Baseline);
    let mut cfg = SystemConfig::with_pes(1);
    cfg.max_cycles = 10_000;
    let err = simulate(cfg, Arc::new(wp.program), &[]).unwrap_err();
    assert!(
        matches!(err, RunError::CycleLimit { cycle: 10_000, .. }),
        "{err}"
    );
    if let RunError::CycleLimit { live, pes, .. } = err {
        assert!(live > 0, "a spinning mmul has live instances to report");
        assert!(!pes.is_empty());
    }
}

/// The latency-1 bound flips bitcnt: prefetch overhead outweighs the
/// benefit when memory is free (paper §4.3).
#[test]
fn latency_one_makes_bitcnt_prefetch_a_loss() {
    let cfg = SystemConfig::with_pes(8).latency_one();
    let base = bitcnt::build(512, Variant::Baseline);
    let pf = bitcnt::build(512, Variant::HandPrefetch);
    let (b, _) = simulate(cfg.clone(), Arc::new(base.program), &base.args).unwrap();
    let (p, _) = simulate(cfg, Arc::new(pf.program), &pf.args).unwrap();
    assert!(
        p.cycles >= b.cycles,
        "prefetch {} should not beat baseline {} at latency 1",
        p.cycles,
        b.cycles
    );
}

/// Memory stalls vanish from prefetched kernels even at 1 PE, where
/// there is no other thread to hide behind — the DMA engine itself does
/// the overlapping.
#[test]
fn single_pe_prefetch_still_removes_memory_stalls() {
    let wp = zoom::build(8, Variant::HandPrefetch);
    let (stats, _) = simulate(SystemConfig::with_pes(1), Arc::new(wp.program), &wp.args).unwrap();
    assert!(stats.breakdown().frac(StallCat::MemStall) < 0.05);
}
