//! System-level property tests: determinism and accounting invariants
//! across randomly drawn hardware configurations.
//!
//! Deterministic seeded PRNG (no external property-testing dependency —
//! the repo builds hermetically); failures print the case index so a
//! failure can be replayed by pinning `SEED`.

use dta::core::{simulate, SystemConfig};
use dta::workloads::{stencil, vecscale, Variant};
use std::sync::Arc;

const SEED: u64 = 0x853C_49E6_748F_EA9B;

/// xorshift64* — small, fast, deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

fn arb_config(rng: &mut Rng) -> SystemConfig {
    let mut cfg = SystemConfig::with_pes(1 + rng.below(8) as u16);
    cfg.mem_latency = rng.pick(&[1u64, 20, 150, 400]);
    cfg.buses = 1 + rng.below(4) as usize;
    cfg.mfc.queue_capacity = rng.pick(&[2usize, 4, 16]);
    cfg.frame_capacity = rng.pick(&[8u32, 64]);
    cfg.virtual_frames = rng.below(2) == 1;
    cfg.taken_branch_penalty = rng.below(4);
    cfg
}

/// Any configuration: results verify, runs are bit-identical across
/// repeats, and per-PE cycle accounting partitions total time.
#[test]
fn simulation_invariants_hold_everywhere() {
    let mut rng = Rng::new(SEED);
    for case in 0..24 {
        let cfg = arb_config(&mut rng);
        let variant = rng.pick(&Variant::ALL);
        let wp = vecscale::build(64, 4, variant);
        let program = Arc::new(wp.program);
        let (a, sys) = simulate(cfg.clone(), program.clone(), &wp.args).unwrap();
        vecscale::verify(&sys, 64).unwrap();
        let (b, _) = simulate(cfg, program, &wp.args).unwrap();
        assert_eq!(a.cycles, b.cycles, "case {case}");
        assert_eq!(&a.aggregate, &b.aggregate, "case {case}");
        for pe in &a.per_pe {
            assert_eq!(pe.total_cycles(), a.cycles, "case {case}");
        }
        // Dynamic instruction counts are configuration-independent facts
        // of the program (same variant, same chunking).
        assert_eq!(a.aggregate.writes, 64, "case {case}");
    }
}

/// Slower memory never makes a run *faster* (monotonicity of the
/// timing model), for the read-bound baseline.
#[test]
fn memory_latency_is_monotone() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..8 {
        let lat_lo = 1 + rng.below(99);
        let extra = 1 + rng.below(299);
        let run_at = |lat: u64| {
            let wp = stencil::build(64, 4, Variant::Baseline);
            let mut cfg = SystemConfig::with_pes(2);
            cfg.mem_latency = lat;
            simulate(cfg, Arc::new(wp.program), &wp.args)
                .unwrap()
                .0
                .cycles
        };
        let fast = run_at(lat_lo);
        let slow = run_at(lat_lo + extra);
        assert!(
            slow >= fast,
            "case {case}: lat {lat_lo} -> {fast}, lat {} -> {slow}",
            lat_lo + extra
        );
    }
}
