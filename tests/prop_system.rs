//! System-level property tests: determinism and accounting invariants
//! across randomly drawn hardware configurations.

use dta::core::{simulate, SystemConfig};
use dta::workloads::{stencil, vecscale, Variant};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    (
        1..9u16,                                  // PEs
        prop::sample::select(vec![1u64, 20, 150, 400]), // memory latency
        1..5usize,                                // buses
        prop::sample::select(vec![2usize, 4, 16]), // MFC queue
        prop::sample::select(vec![8u32, 64]),      // frame capacity
        any::<bool>(),                             // virtual frames
        0..4u64,                                   // branch penalty
    )
        .prop_map(|(pes, lat, buses, queue, frames, vfp, bp)| {
            let mut cfg = SystemConfig::with_pes(pes);
            cfg.mem_latency = lat;
            cfg.buses = buses;
            cfg.mfc.queue_capacity = queue;
            cfg.frame_capacity = frames;
            cfg.virtual_frames = vfp;
            cfg.taken_branch_penalty = bp;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any configuration: results verify, runs are bit-identical across
    /// repeats, and per-PE cycle accounting partitions total time.
    #[test]
    fn simulation_invariants_hold_everywhere(
        cfg in arb_config(),
        variant in prop::sample::select(Variant::ALL.to_vec()),
    ) {
        let wp = vecscale::build(64, 4, variant);
        let program = Arc::new(wp.program);
        let (a, sys) = simulate(cfg.clone(), program.clone(), &wp.args).unwrap();
        vecscale::verify(&sys, 64).unwrap();
        let (b, _) = simulate(cfg, program, &wp.args).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(&a.aggregate, &b.aggregate);
        for pe in &a.per_pe {
            prop_assert_eq!(pe.total_cycles(), a.cycles);
        }
        // Dynamic instruction counts are configuration-independent facts
        // of the program (same variant, same chunking).
        prop_assert_eq!(a.aggregate.writes, 64);
    }

    /// Slower memory never makes a run *faster* (monotonicity of the
    /// timing model), for the read-bound baseline.
    #[test]
    fn memory_latency_is_monotone(
        lat_lo in 1..100u64,
        extra in 1..300u64,
    ) {
        let run_at = |lat: u64| {
            let wp = stencil::build(64, 4, Variant::Baseline);
            let mut cfg = SystemConfig::with_pes(2);
            cfg.mem_latency = lat;
            simulate(cfg, Arc::new(wp.program), &wp.args).unwrap().0.cycles
        };
        let fast = run_at(lat_lo);
        let slow = run_at(lat_lo + extra);
        prop_assert!(slow >= fast, "lat {} -> {}, lat {} -> {}", lat_lo, fast, lat_lo + extra, slow);
    }
}
