//! Custom kernel in DTA assembly: write a thread in the text dialect,
//! assemble it, auto-prefetch it, and run it.
//!
//! The kernel computes a dot product of two vectors held in main memory,
//! forked across four partial-sum workers that feed a reducer through
//! frames. Run with:
//!
//! ```text
//! cargo run --release --example custom_kernel
//! ```

use dta::compiler::{prefetch_program, TransformOptions};
use dta::core::{simulate, SystemConfig};
use dta::isa::asm::{assemble, program_to_asm};
use std::sync::Arc;

const N: usize = 64; // elements per worker
const WORKERS: usize = 4;

fn main() {
    // Vectors x and y, and their dot product computed on the host.
    let x: Vec<i32> = (0..(N * WORKERS) as i32).map(|i| i % 19 - 9).collect();
    let y: Vec<i32> = (0..(N * WORKERS) as i32).map(|i| i % 23 - 11).collect();
    let expected: i64 = x.iter().zip(&y).map(|(&a, &b)| a as i64 * b as i64).sum();

    let x_words: Vec<String> = x.iter().map(|v| v.to_string()).collect();
    let y_words: Vec<String> = y.iter().map(|v| v.to_string()).collect();

    let source = format!(
        r#"
; dot product: four partial-sum workers + one reducer
.global x words {x}
.global y words {y}
.global out zeroed 4
.entry main 0

.thread main
.frame_slots 0
.block ex
    falloc r3, @reduce, 4      ; reducer waits for 4 partials
    li r4, 0                   ; worker index
loop:
    bge r4, #{workers}, done
    falloc r5, @worker, 3
    store r4, r5, 0            ; which chunk
    store r3, r5, 1            ; reducer frame
    store r4, r5, 2            ; reducer slot = worker index
    add r4, r4, #1
    jmp loop
done:
.block ps
    ffree r1
    stop
.end

.thread worker
.frame_slots 3
.block pl
    load r3, 0                 ; chunk index
    load r4, 1                 ; reducer frame
    load r5, 2                 ; reducer slot
.block ex
    mul r6, r3, #{chunk_bytes} ; byte offset of this chunk
    li r7, {x_base}
    add r7, r7, r6
    li r8, {y_base}
    add r8, r8, r6
    li r9, 0                   ; i
    li r10, 0                  ; acc
wtop:
    bge r9, #{n}, wdone
    shl r11, r9, #2
    add r12, r7, r11
    read r13, 0(r12)           ; x[i]   (decoupled by the compiler)
    add r14, r8, r11
    read r15, 0(r14)           ; y[i]
    add r9, r9, #1
    mul r16, r13, r15
    add r10, r10, r16
    jmp wtop
wdone:
.block ps
    ; deliver the partial to the reducer slot (0..3)
    beq r5, #0, s0
    beq r5, #1, s1
    beq r5, #2, s2
    store r10, r4, 3
    jmp sent
s0: store r10, r4, 0
    jmp sent
s1: store r10, r4, 1
    jmp sent
s2: store r10, r4, 2
sent:
    ffree r1
    stop
.end

.thread reduce
.frame_slots 4
.block pl
    load r3, 0
    load r4, 1
    load r5, 2
    load r6, 3
.block ex
    add r3, r3, r4
    add r5, r5, r6
    add r3, r3, r5
    li r7, {out_base}
.block ps
    write r3, 0(r7)
    ffree r1
    stop
.end
"#,
        x = x_words.join(", "),
        y = y_words.join(", "),
        workers = WORKERS,
        chunk_bytes = N * 4,
        n = N,
        x_base = "0x100000", // DEFAULT_GLOBAL_BASE: x is laid out first
        y_base = 0x100000 + (N * WORKERS * 4).div_ceil(16) * 16,
        out_base = 0x100000 + 2 * ((N * WORKERS * 4).div_ceil(16) * 16),
    );

    let program = assemble(&source).expect("kernel assembles");
    println!(
        "assembled {} threads, {} instructions",
        program.threads.len(),
        program.static_instructions()
    );

    // Round-trip through the disassembler, then auto-prefetch.
    let rt = assemble(&program_to_asm(&program)).expect("round-trips");
    assert_eq!(rt.threads, program.threads);
    let (prefetched, report) = prefetch_program(&program, &TransformOptions::default());
    println!(
        "prefetch compiler decoupled {}/{} READ sites",
        report.total_decoupled(),
        report.total_reads()
    );

    for (label, prog) in [("baseline ", program), ("prefetched", prefetched)] {
        let (stats, sys) = simulate(SystemConfig::with_pes(4), Arc::new(prog), &[]).expect("runs");
        let got = sys.read_global_word("out", 0).expect("result written");
        assert_eq!(got as i64, expected, "dot product mismatch");
        println!(
            "{label}: {:>7} cycles, dot = {got} (verified)",
            stats.cycles
        );
    }
}
