//! Matrix-multiply offload: the paper's `mmul` workload end to end.
//!
//! Builds `mmul(n)` in all three variants (original DTA, hand-written PF
//! blocks, compiler-inserted PF blocks), sweeps 1/2/4/8 PEs, and prints
//! the execution-time and speedup series of the paper's Figure 7.
//!
//! ```text
//! cargo run --release --example matmul_offload [n]
//! ```

use dta::core::{simulate, SystemConfig};
use dta::workloads::{mmul, Variant};
use std::sync::Arc;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    println!("mmul({n}): C = A x B, one DTA thread per output row\n");
    println!(
        "{:>4}  {:>14}  {:>14}  {:>14}  {:>9}",
        "PEs", "baseline", "prefetch-hand", "prefetch-auto", "speedup"
    );

    for pes in [1u16, 2, 4, 8] {
        let mut cycles = Vec::new();
        for variant in Variant::ALL {
            let wp = mmul::build(n, variant);
            let (stats, sys) =
                simulate(SystemConfig::with_pes(pes), Arc::new(wp.program), &wp.args)
                    .expect("simulation runs");
            mmul::verify(&sys, n).expect("matrix product verified");
            cycles.push(stats.cycles);
        }
        println!(
            "{:>4}  {:>14}  {:>14}  {:>14}  {:>8.2}x",
            pes,
            cycles[0],
            cycles[1],
            cycles[2],
            cycles[0] as f64 / cycles[1] as f64
        );
    }

    // Show what the prefetch compiler did to the row worker.
    let auto = mmul::build(n, Variant::AutoPrefetch);
    let report = auto.compiler_report.expect("auto variant has a report");
    for t in report.threads.iter().filter(|t| t.transformed()) {
        println!(
            "\ncompiler: thread `{}`: {}/{} reads decoupled into {} DMA region(s), {}B buffer",
            t.name, t.decoupled, t.reads, t.regions, t.buffer_bytes
        );
    }
    let (_, thread) = auto
        .program
        .thread_by_name("row")
        .expect("row thread exists");
    println!("\ngenerated PF block of `row`:");
    for pc in 0..thread.blocks.pf_end {
        println!("  {pc:3}: {}", thread.code[pc as usize]);
    }
}
