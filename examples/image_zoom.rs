//! Image zoom: the paper's `zoom` workload, with the Figure 5 breakdown.
//!
//! Zooms an n×n image 4× with 2-tap interpolation, one DTA thread per
//! output row, and prints the per-category execution-time breakdown for
//! the original DTA and the prefetched version — the bars of the paper's
//! Figure 5 — plus the Figure 9 pipeline usage.
//!
//! ```text
//! cargo run --release --example image_zoom [n]
//! ```

use dta::core::{simulate, StallCat, SystemConfig};
use dta::workloads::{zoom, Variant};
use std::sync::Arc;

fn bar(frac: f64) -> String {
    let width = (frac * 40.0).round() as usize;
    "#".repeat(width)
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);

    println!(
        "zoom({n}): {0}x{0} -> {1}x{1}, one DTA thread per output row\n",
        n,
        4 * n
    );

    let mut cycles = Vec::new();
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        let wp = zoom::build(n, variant);
        let (stats, sys) = simulate(
            SystemConfig::paper_default(),
            Arc::new(wp.program),
            &wp.args,
        )
        .expect("simulation runs");
        zoom::verify(&sys, n).expect("zoomed image verified");
        let b = stats.breakdown();
        println!(
            "{} — {} cycles, pipeline usage {:.2}",
            variant.label(),
            stats.cycles,
            b.pipeline_usage
        );
        for cat in StallCat::ALL {
            println!(
                "  {:<14} {:5.1}% {}",
                cat.name(),
                b.pct(cat),
                bar(b.frac(cat))
            );
        }
        println!();
        cycles.push(stats.cycles);
    }
    println!(
        "speedup from DMA prefetching: {:.2}x (paper reports 11.48x for zoom(32))",
        cycles[0] as f64 / cycles[1] as f64
    );
}
