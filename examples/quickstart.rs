//! Quickstart: build a tiny DTA program with the builder DSL, run it on
//! the paper's CellDTA platform, and read the results back.
//!
//! The program forks one worker per element of a small vector; each
//! worker squares its element and writes it to an output array in main
//! memory. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dta::core::{simulate, StallCat, SystemConfig};
use dta::isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

const N: i64 = 16;

fn main() {
    // ---- 1. Build the program --------------------------------------------
    let mut pb = ProgramBuilder::new();
    let input: Vec<i32> = (0..N as i32).map(|i| i + 1).collect();
    let src = pb.global_words("src", &input);
    let dst = pb.global_zeroed("dst", (N as usize) * 4);

    let main_t = pb.declare("main");
    let worker = pb.declare("worker");

    // Entry thread: FALLOC one worker per element, send each its index.
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), N as i32, done);
    t.falloc(r(4), worker, 1); // one input slot => SC = 1
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main_t, t);

    // Worker: dst[i] = src[i]^2. The READ hits main memory — exactly the
    // access the paper's prefetch mechanism targets.
    let mut w = ThreadBuilder::new("worker");
    w.begin_pl();
    w.load(r(3), 0); // i
    w.begin_ex();
    w.shl(r(4), r(3), 2);
    w.li(r(5), src as i64);
    w.add(r(5), r(5), r(4));
    w.read(r(6), r(5), 0);
    w.mul(r(6), r(6), r(6));
    w.li(r(7), dst as i64);
    w.add(r(7), r(7), r(4));
    w.begin_ps();
    w.write(r(6), r(7), 0);
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main_t, 0);
    let program = pb.build();

    // ---- 2. Optionally let the compiler add PF blocks ----------------------
    let (prefetched, report) =
        dta::compiler::prefetch_program(&program, &dta::compiler::TransformOptions::default());
    println!(
        "prefetch compiler: {}/{} READ sites decoupled",
        report.total_decoupled(),
        report.total_reads()
    );

    // ---- 3. Simulate both versions on the paper's 8-PE platform -------------
    for (label, prog) in [("original DTA ", program), ("with prefetch", prefetched)] {
        let (stats, sys) =
            simulate(SystemConfig::paper_default(), Arc::new(prog), &[]).expect("simulation runs");
        print!("{label}: {:>7} cycles | ", stats.cycles);
        println!(
            "working {:4.1}%  mem stalls {:4.1}%  prefetch {:4.1}%",
            stats.breakdown().pct(StallCat::Working),
            stats.breakdown().pct(StallCat::MemStall),
            stats.breakdown().pct(StallCat::Prefetch),
        );
        // Verify every result.
        for i in 0..N {
            let v = (i + 1) * (i + 1);
            assert_eq!(sys.read_global_word("dst", i as usize), Some(v as i32));
        }
    }
    println!("all {N} results verified: dst[i] = src[i]^2");
}
