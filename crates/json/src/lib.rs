//! # dta-json — minimal JSON for result persistence
//!
//! The repository builds in hermetic environments with no registry
//! access, so the reproduction harness cannot rely on `serde`. This crate
//! provides the small slice of JSON the project needs: an ordered value
//! type ([`Json`]), a pretty printer, a strict parser, and a [`ToJson`]
//! conversion trait implemented by the stats/report types.
//!
//! Object key order is preserved (insertion order), which keeps emitted
//! reports diffable across runs.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects preserve insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Renders with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no Inf/NaN; match serde_json's default
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        fmt::write(out, format_args!("{}", n as i64)).unwrap();
    } else {
        fmt::write(out, format_args!("{n}")).unwrap();
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => fmt::write(out, format_args!("\\u{:04x}", c as u32)).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json { Json::Num(*self as f64) }
        }
    )*};
}
num_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}
impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}
impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}
impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}
impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        self.as_slice().to_json()
    }
}
impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}
impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

/// Encodes a `u64` so the full 64-bit range round-trips exactly.
///
/// [`Json::Num`] is an `f64`, which loses precision above 2^53 — fatal
/// for values that feed content hashes (fault seeds) or identifiers
/// (sequence stamps with high tag bits). Values that fit exactly render
/// as numbers; larger ones fall back to a decimal string. Decode with
/// [`u64_from_json`], which accepts both encodings.
pub fn u64_json(v: u64) -> Json {
    if v <= (1u64 << 53) {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

/// Decodes a `u64` written by [`u64_json`] (number or decimal string).
pub fn u64_from_json(v: &Json) -> Option<u64> {
    match v {
        Json::Num(_) => v.as_u64(),
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// 128-bit FNV-1a over a byte string.
///
/// Used as the stable content hash behind `JobKey`: no external crates,
/// pure `u128` arithmetic, and collision-resistant enough for cache
/// addressing of canonical job encodings (the cache validates the key
/// stored inside each entry, so a collision degrades to a miss, never a
/// wrong result). Constants are the standard FNV-128 offset basis and
/// prime.
pub fn fnv1a128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A parse failure: byte offset and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value()?;
                    pairs.push((k, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(pairs));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty_and_compact() {
        let v = Json::obj([
            ("name", Json::Str("mmul(32)".into())),
            ("cycles", Json::Num(123456.0)),
            ("ratio", Json::Num(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(-3.0).to_string_compact(), "-3");
        assert_eq!(Json::Num(0.25).to_string_compact(), "0.25");
    }

    #[test]
    fn strings_escape_controls() {
        let s = Json::Str("a\"b\\c\nd".into()).to_string_compact();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        assert_eq!(parse(&s).unwrap(), Json::Str("a\"b\\c\nd".into()));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let v = Json::obj([("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.to_string_compact(), r#"{"z":1,"a":2}"#);
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn nested_structures_parse() {
        let t = r#"{"rows": [{"pes": 8, "ok": true}, {"pes": 4, "ok": false}]}"#;
        let v = parse(t).unwrap();
        let rows = v.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("pes").and_then(Json::as_u64), Some(8));
    }

    #[test]
    fn u64_json_roundtrips_full_range() {
        for v in [0u64, 1, (1 << 53) - 1, 1 << 53, (1 << 53) + 1, u64::MAX] {
            let j = u64_json(v);
            assert_eq!(u64_from_json(&j), Some(v), "value {v}");
            // Survives a render/parse cycle too.
            let parsed = parse(&j.to_string_compact()).unwrap();
            assert_eq!(u64_from_json(&parsed), Some(v), "value {v}");
        }
        assert!(matches!(u64_json(u64::MAX), Json::Str(_)));
        assert!(matches!(u64_json(7), Json::Num(_)));
    }

    #[test]
    fn fnv1a128_is_stable_and_input_sensitive() {
        let a = fnv1a128(b"dta");
        assert_eq!(a, fnv1a128(b"dta"));
        assert_ne!(a, fnv1a128(b"dtb"));
        assert_ne!(fnv1a128(b""), fnv1a128(b"\0"));
        // Pinned value: the hash is part of the on-disk cache format.
        assert_eq!(fnv1a128(b""), 0x6c62272e07bb014262b821756295c58d);
    }

    #[test]
    fn to_json_impls_cover_primitives() {
        assert_eq!(7u64.to_json(), Json::Num(7.0));
        assert_eq!(true.to_json(), Json::Bool(true));
        assert_eq!("x".to_json(), Json::Str("x".into()));
        assert_eq!(vec![1u32, 2].to_json().as_arr().unwrap().len(), 2);
        assert_eq!(Option::<u32>::None.to_json(), Json::Null);
    }
}
