//! Property tests for the memory subsystem: reservation invariants,
//! backing-store equivalence against a naive model, and timing sanity.

use dta_mem::{
    BusModel, DmaCommand, DmaKind, LocalStore, MainMemory, MemoryModel, MemorySystem, Mfc,
    MfcParams, ResourcePool, TransferKind,
};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// Reservations on one pool never overlap within a channel, never
    /// start before the request time, and have the requested duration.
    #[test]
    fn resource_pool_reservations_are_disjoint(
        channels in 1..6usize,
        ops in prop::collection::vec((0..10_000u64, 1..200u64), 1..200),
    ) {
        let mut pool = ResourcePool::new(channels);
        let mut now = 0u64;
        let mut per_channel: Vec<Vec<(u64, u64)>> = vec![Vec::new(); channels];
        for (advance, dur) in ops {
            now += advance / 100; // mostly-monotone request times
            let r = pool.reserve(now, dur);
            prop_assert!(r.start >= now);
            prop_assert_eq!(r.end - r.start, dur.max(1));
            per_channel[r.channel].push((r.start, r.end));
        }
        for spans in &per_channel {
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0,
                    "overlapping reservations {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    /// MainMemory agrees with a byte-map model under arbitrary mixed
    /// u8/u32/bulk traffic.
    #[test]
    fn main_memory_matches_model(
        ops in prop::collection::vec(
            (0..3usize, 0..65_500u64, any::<u32>(), 1..32usize),
            1..200,
        ),
    ) {
        let mut mem = MainMemory::new(1 << 16);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (kind, addr, value, len) in ops {
            match kind {
                0 => {
                    let addr = addr.min((1 << 16) - 4);
                    mem.write_u32(addr, value);
                    for (i, b) in value.to_le_bytes().iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                1 => {
                    let addr = addr.min((1 << 16) - 4);
                    let expect = u32::from_le_bytes(std::array::from_fn(|i| {
                        model.get(&(addr + i as u64)).copied().unwrap_or(0)
                    }));
                    prop_assert_eq!(mem.read_u32(addr), expect);
                }
                _ => {
                    let len = len.min(((1 << 16) - addr) as usize).max(1);
                    let data: Vec<u8> = (0..len).map(|i| (value as usize + i) as u8).collect();
                    mem.write_bytes(addr, &data);
                    for (i, b) in data.iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
            }
        }
    }

    /// Every transaction completes strictly after it was issued, and
    /// issuing the same kinds in the same order is deterministic.
    #[test]
    fn memory_system_timing_sane(
        kinds in prop::collection::vec(0..5usize, 1..100),
    ) {
        let build = |kinds: &[usize]| {
            let mut sys = MemorySystem::paper_default();
            let mut now = 0;
            let mut times = Vec::new();
            for &k in kinds {
                let kind = match k {
                    0 => TransferKind::ScalarRead,
                    1 => TransferKind::ScalarWrite,
                    2 => TransferKind::BlockGet { bytes: 256 },
                    3 => TransferKind::BlockPut { bytes: 64 },
                    _ => TransferKind::StridedGet { count: 8, elem_bytes: 4 },
                };
                let done = sys.request(now, kind);
                times.push(done);
                now += 3;
            }
            times
        };
        let a = build(&kinds);
        let b = build(&kinds);
        prop_assert_eq!(&a, &b);
        for (i, &t) in a.iter().enumerate() {
            prop_assert!(t > (i as u64) * 3, "transaction {i} completed at {t}");
        }
    }

    /// The MFC's functional data movement matches a plain memcpy model
    /// for arbitrary command sequences over disjoint regions.
    #[test]
    fn mfc_moves_data_like_memcpy(
        cmds in prop::collection::vec(
            (0..2usize, 0..16u32, 1..16u32, 0..32u8),
            1..24,
        ),
    ) {
        let mut mfc = Mfc::new(MfcParams::default());
        let mut sys = MemorySystem::paper_default();
        let mut ls = LocalStore::new(64 * 1024);
        let mut mem = MainMemory::new(1 << 20);
        // Seed memory deterministically.
        for i in 0..4096u64 {
            mem.write_u32(i * 4, (i as u32).wrapping_mul(0x9E37_79B9));
        }
        let mut model_ls = vec![0u8; 64 * 1024];
        let mut now = 0u64;
        for (dir, slot, blocks, tag) in cmds {
            let ls_addr = slot * 1024; // disjoint-ish LS slots
            let mem_addr = (slot as u64) * 1024;
            let bytes = blocks * 16;
            let cmd = DmaCommand {
                owner: 1,
                tag,
                ls_addr,
                mem_addr,
                kind: if dir == 0 {
                    DmaKind::Get { bytes }
                } else {
                    DmaKind::Put { bytes }
                },
            };
            // Retry until the queue accepts (time moves forward).
            loop {
                if let Some(c) = mfc.enqueue(now, cmd, &mut sys, &mut ls, &mut mem) {
                    prop_assert!(c.at >= now + MfcParams::default().command_latency);
                    break;
                }
                now += 100;
            }
            // Mirror functionally.
            if dir == 0 {
                let mut buf = vec![0u8; bytes as usize];
                mem.read_bytes(mem_addr, &mut buf);
                model_ls[ls_addr as usize..(ls_addr + bytes) as usize].copy_from_slice(&buf);
            } else {
                let src = &model_ls[ls_addr as usize..(ls_addr + bytes) as usize];
                mem.write_bytes(mem_addr, src);
            }
            now += 1;
        }
        let mut actual = vec![0u8; 64 * 1024];
        ls.read_bytes(0, &mut actual);
        prop_assert_eq!(actual, model_ls);
    }

    /// Strided gathers pack exactly the elements a scalar loop would
    /// read.
    #[test]
    fn strided_gather_matches_scalar_loop(
        count in 1..64u32,
        stride_words in 1..64i64,
        base_word in 0..256u64,
    ) {
        let mut mfc = Mfc::new(MfcParams::default());
        let mut sys = MemorySystem::paper_default();
        let mut ls = LocalStore::new(64 * 1024);
        let mut mem = MainMemory::new(1 << 20);
        for i in 0..32_768u64 {
            mem.write_u32(i * 4, (i as u32) ^ 0xABCD_1234);
        }
        let base = base_word * 4;
        let stride = stride_words * 4;
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 0,
                tag: 0,
                ls_addr: 0,
                mem_addr: base,
                kind: DmaKind::GetStrided { elem_bytes: 4, count, stride },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        ).expect("queue empty");
        for i in 0..count {
            let want = mem.read_u32(base + i as u64 * stride as u64);
            prop_assert_eq!(ls.read_u32(i * 4), want, "element {}", i);
        }
    }

    /// Bus data transfers respect bandwidth: n back-to-back sends of B
    /// bytes on one lane take at least n*ceil(B/bw) cycles.
    #[test]
    fn bus_bandwidth_bound(
        sends in 1..40u64,
        bytes in 1..512u64,
    ) {
        let mut bus = BusModel::new(1, 8, 0);
        let mut last = 0;
        for _ in 0..sends {
            last = bus.send(0, bytes);
        }
        prop_assert!(last >= sends * bytes.div_ceil(8));
        prop_assert_eq!(bus.bytes_moved(), sends * bytes);
    }

    /// Memory accesses complete no earlier than request + latency.
    #[test]
    fn memory_latency_is_a_floor(
        at in 0..10_000u64,
        bytes in 1..4096u64,
    ) {
        let mut m = MemoryModel::new(1, 150, 32);
        let done = m.access(at, bytes, 0);
        prop_assert!(done >= at + 150 + bytes.div_ceil(32));
    }
}
