//! Randomised property tests for the memory subsystem: reservation
//! invariants, backing-store equivalence against a naive model, and
//! timing sanity.
//!
//! Deterministic seeded PRNG (no external property-testing dependency —
//! the repo builds hermetically); failures print the seed so a case can
//! be replayed by pinning `SEED`.

use dta_mem::{
    BusModel, DmaCommand, DmaFaultPlan, DmaKind, LocalStore, MainMemory, MemoryModel, MemorySystem,
    Mfc, MfcParams, ResourcePool, TransferKind,
};
use std::collections::HashMap;

const SEED: u64 = 0xD1B5_4A32_D192_ED03;

/// xorshift64* — small, fast, deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }
}

/// Reservations on one pool never overlap within a channel, never
/// start before the request time, and have the requested duration.
#[test]
fn resource_pool_reservations_are_disjoint() {
    let mut rng = Rng::new(SEED);
    for case in 0..64 {
        let channels = rng.range(1, 6) as usize;
        let ops = rng.range(1, 200) as usize;
        let mut pool = ResourcePool::new(channels);
        let mut now = 0u64;
        let mut per_channel: Vec<Vec<(u64, u64)>> = vec![Vec::new(); channels];
        for _ in 0..ops {
            now += rng.below(10_000) / 100; // mostly-monotone request times
            let dur = rng.range(1, 200);
            let r = pool.reserve(now, dur);
            assert!(r.start >= now, "case {case}");
            assert_eq!(r.end - r.start, dur.max(1), "case {case}");
            per_channel[r.channel].push((r.start, r.end));
        }
        for spans in &per_channel {
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "case {case}: overlapping reservations {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

/// MainMemory agrees with a byte-map model under arbitrary mixed
/// u8/u32/bulk traffic.
#[test]
fn main_memory_matches_model() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..48 {
        let mut mem = MainMemory::new(1 << 16);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for _ in 0..rng.range(1, 200) {
            let kind = rng.below(3) as usize;
            let addr = rng.below(65_500);
            let value = rng.next() as u32;
            let len = rng.range(1, 32) as usize;
            match kind {
                0 => {
                    let addr = addr.min((1 << 16) - 4);
                    mem.write_u32(addr, value);
                    for (i, b) in value.to_le_bytes().iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
                1 => {
                    let addr = addr.min((1 << 16) - 4);
                    let expect = u32::from_le_bytes(std::array::from_fn(|i| {
                        model.get(&(addr + i as u64)).copied().unwrap_or(0)
                    }));
                    assert_eq!(mem.read_u32(addr), expect, "case {case}");
                }
                _ => {
                    let len = len.min(((1 << 16) - addr) as usize).max(1);
                    let data: Vec<u8> = (0..len).map(|i| (value as usize + i) as u8).collect();
                    mem.write_bytes(addr, &data);
                    for (i, b) in data.iter().enumerate() {
                        model.insert(addr + i as u64, *b);
                    }
                }
            }
        }
    }
}

/// Every transaction completes strictly after it was issued, and
/// issuing the same kinds in the same order is deterministic.
#[test]
fn memory_system_timing_sane() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..48 {
        let kinds: Vec<usize> = (0..rng.range(1, 100))
            .map(|_| rng.below(5) as usize)
            .collect();
        let build = |kinds: &[usize]| {
            let mut sys = MemorySystem::paper_default();
            let mut now = 0;
            let mut times = Vec::new();
            for &k in kinds {
                let kind = match k {
                    0 => TransferKind::ScalarRead,
                    1 => TransferKind::ScalarWrite,
                    2 => TransferKind::BlockGet { bytes: 256 },
                    3 => TransferKind::BlockPut { bytes: 64 },
                    _ => TransferKind::StridedGet {
                        count: 8,
                        elem_bytes: 4,
                    },
                };
                let done = sys.request(now, kind);
                times.push(done);
                now += 3;
            }
            times
        };
        let a = build(&kinds);
        let b = build(&kinds);
        assert_eq!(&a, &b, "case {case}");
        for (i, &t) in a.iter().enumerate() {
            assert!(
                t > (i as u64) * 3,
                "case {case}: transaction {i} completed at {t}"
            );
        }
    }
}

/// The MFC's functional data movement matches a plain memcpy model
/// for arbitrary command sequences over disjoint regions.
#[test]
fn mfc_moves_data_like_memcpy() {
    let mut rng = Rng::new(SEED ^ 3);
    for case in 0..24 {
        let mut mfc = Mfc::new(MfcParams::default());
        let mut sys = MemorySystem::paper_default();
        let mut ls = LocalStore::new(64 * 1024);
        let mut mem = MainMemory::new(1 << 20);
        // Seed memory deterministically.
        for i in 0..4096u64 {
            mem.write_u32(i * 4, (i as u32).wrapping_mul(0x9E37_79B9));
        }
        let mut model_ls = vec![0u8; 64 * 1024];
        let mut now = 0u64;
        for _ in 0..rng.range(1, 24) {
            let dir = rng.below(2) as usize;
            let slot = rng.below(16) as u32;
            let blocks = rng.range(1, 16) as u32;
            let tag = rng.below(32) as u8;
            let ls_addr = slot * 1024; // disjoint-ish LS slots
            let mem_addr = (slot as u64) * 1024;
            let bytes = blocks * 16;
            let cmd = DmaCommand {
                owner: 1,
                tag,
                ls_addr,
                mem_addr,
                kind: if dir == 0 {
                    DmaKind::Get { bytes }
                } else {
                    DmaKind::Put { bytes }
                },
            };
            // Retry until the queue accepts (time moves forward).
            loop {
                if let Some(c) = mfc.enqueue(now, cmd, &mut sys, &mut ls, &mut mem) {
                    assert!(
                        c.at >= now + MfcParams::default().command_latency,
                        "case {case}"
                    );
                    break;
                }
                now += 100;
            }
            // Mirror functionally.
            if dir == 0 {
                let mut buf = vec![0u8; bytes as usize];
                mem.read_bytes(mem_addr, &mut buf);
                model_ls[ls_addr as usize..(ls_addr + bytes) as usize].copy_from_slice(&buf);
            } else {
                let src = &model_ls[ls_addr as usize..(ls_addr + bytes) as usize];
                mem.write_bytes(mem_addr, src);
            }
            now += 1;
        }
        let mut actual = vec![0u8; 64 * 1024];
        ls.read_bytes(0, &mut actual);
        assert_eq!(actual, model_ls, "case {case}");
    }
}

/// Strided gathers pack exactly the elements a scalar loop would
/// read.
#[test]
fn strided_gather_matches_scalar_loop() {
    let mut rng = Rng::new(SEED ^ 4);
    for case in 0..48 {
        let count = rng.range(1, 64) as u32;
        let stride_words = rng.range(1, 64) as i64;
        let base_word = rng.below(256);
        let mut mfc = Mfc::new(MfcParams::default());
        let mut sys = MemorySystem::paper_default();
        let mut ls = LocalStore::new(64 * 1024);
        let mut mem = MainMemory::new(1 << 20);
        for i in 0..32_768u64 {
            mem.write_u32(i * 4, (i as u32) ^ 0xABCD_1234);
        }
        let base = base_word * 4;
        let stride = stride_words * 4;
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 0,
                tag: 0,
                ls_addr: 0,
                mem_addr: base,
                kind: DmaKind::GetStrided {
                    elem_bytes: 4,
                    count,
                    stride,
                },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        )
        .expect("queue empty");
        for i in 0..count {
            let want = mem.read_u32(base + i as u64 * stride as u64);
            assert_eq!(ls.read_u32(i * 4), want, "case {case}: element {i}");
        }
    }
}

/// Bus data transfers respect bandwidth: n back-to-back sends of B
/// bytes on one lane take at least n*ceil(B/bw) cycles.
#[test]
fn bus_bandwidth_bound() {
    let mut rng = Rng::new(SEED ^ 5);
    for case in 0..64 {
        let sends = rng.range(1, 40);
        let bytes = rng.range(1, 512);
        let mut bus = BusModel::new(1, 8, 0);
        let mut last = 0;
        for _ in 0..sends {
            last = bus.send(0, bytes);
        }
        assert!(last >= sends * bytes.div_ceil(8), "case {case}");
        assert_eq!(bus.bytes_moved(), sends * bytes, "case {case}");
    }
}

/// Regression (stats double-count hazard): a retried command must
/// contribute exactly one `commands` increment, one completion, one
/// `bytes` increment and N `attempts` — never one of each per retry.
#[test]
fn retried_command_counts_once() {
    let mut mfc = Mfc::new(MfcParams::default());
    // Every attempt fails; budget of 3 retries → 4 attempts, then the
    // fail-safe path still delivers the data.
    mfc.set_faults(DmaFaultPlan {
        seed: 0x5EED,
        salt: 0,
        fail_ppm: 1_000_000,
        stall_ppm: 0,
        retry_budget: 3,
        backoff_base: 64,
    });
    let mut sys = MemorySystem::paper_default();
    let mut ls = LocalStore::new(64 * 1024);
    let mut mem = MainMemory::new(1 << 20);
    mem.write_u32(0x100, 0xCAFE);
    let c = mfc
        .enqueue(
            0,
            DmaCommand {
                owner: 9,
                tag: 2,
                ls_addr: 0,
                mem_addr: 0x100,
                kind: DmaKind::Get { bytes: 8 },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        )
        .expect("queue empty");
    assert_eq!(c.attempts, 4);
    assert!(!c.stalled);
    assert_eq!(ls.read_u32(0), 0xCAFE, "fail-safe path still moves data");
    let s = mfc.stats();
    assert_eq!(s.commands, 1, "one command despite 4 attempts");
    assert_eq!(s.attempts, 4);
    assert_eq!(s.retries, 3);
    assert_eq!(s.exhausted, 1);
    assert_eq!(s.bytes, 8, "payload counted once, not per attempt");
    assert_eq!(s.backoff_cycles, 64 + 128 + 256);
    // The backoff occupied the engine before issue.
    assert!(c.at >= 64 + 128 + 256 + 30, "completion at {}", c.at);
}

/// A stalled command wedges its queue slot forever, moves no data, and
/// yields a completion the caller must not schedule.
#[test]
fn stalled_command_never_completes() {
    let mut mfc = Mfc::new(MfcParams::default());
    mfc.set_faults(DmaFaultPlan {
        seed: 1,
        salt: 0,
        fail_ppm: 0,
        stall_ppm: 1_000_000,
        retry_budget: 3,
        backoff_base: 64,
    });
    let mut sys = MemorySystem::paper_default();
    let mut ls = LocalStore::new(64 * 1024);
    let mut mem = MainMemory::new(1 << 20);
    mem.write_u32(0, 0xBEEF);
    let c = mfc
        .enqueue(
            0,
            DmaCommand {
                owner: 1,
                tag: 0,
                ls_addr: 0,
                mem_addr: 0,
                kind: DmaKind::Get { bytes: 4 },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        )
        .unwrap();
    assert!(c.stalled);
    assert_eq!(c.at, u64::MAX);
    assert_eq!(ls.read_u32(0), 0, "stalled command moves no data");
    let s = mfc.stats();
    assert_eq!((s.commands, s.stalled, s.bytes), (1, 1, 0));
    // The wedged slot still occupies the queue arbitrarily far ahead.
    assert_eq!(mfc.outstanding(1_000_000_000), 1);
}

/// Queue-full rejections must not consume fault-schedule indices or bump
/// command/attempt counters: the Nth *accepted* command gets the Nth
/// plan whether or not rejections happened in between (this is what keeps
/// the two engines' schedules aligned — both see identical rejections,
/// but neither charges them an index).
#[test]
fn rejection_does_not_advance_fault_schedule() {
    let plan = DmaFaultPlan {
        seed: 0xD15_EA5E,
        salt: 3,
        fail_ppm: 400_000,
        stall_ppm: 0,
        retry_budget: 4,
        backoff_base: 32,
    };
    let params = MfcParams {
        queue_capacity: 1,
        command_latency: 30,
    };
    let run = |hammer: bool| {
        let mut mfc = Mfc::new(params);
        mfc.set_faults(plan);
        let mut sys = MemorySystem::paper_default();
        let mut ls = LocalStore::new(64 * 1024);
        let mut mem = MainMemory::new(1 << 20);
        let cmd = DmaCommand {
            owner: 0,
            tag: 0,
            ls_addr: 0,
            mem_addr: 0,
            kind: DmaKind::Get { bytes: 4096 },
        };
        let mut seen = Vec::new();
        for round in 0..8u64 {
            let now = round * 1_000_000; // queue fully drained each round
            let c = mfc.enqueue(now, cmd, &mut sys, &mut ls, &mut mem).unwrap();
            seen.push(c.attempts);
            if hammer {
                // The queue (capacity 1) is now full: these are rejected.
                for _ in 0..3 {
                    assert!(mfc.enqueue(now, cmd, &mut sys, &mut ls, &mut mem).is_none());
                }
            }
        }
        (seen, mfc.stats())
    };
    let (clean, s0) = run(false);
    let (with_rejects, s1) = run(true);
    assert_eq!(clean, with_rejects, "rejections shifted the schedule");
    assert_eq!(s0.commands, 8);
    assert_eq!(s1.commands, 8, "rejections must not count as commands");
    assert_eq!(s0.attempts, s1.attempts);
    assert_eq!(s0.queue_full_rejections, 0);
    assert_eq!(s1.queue_full_rejections, 24);
    assert!(s1.attempts >= s1.commands);
}

/// Memory accesses complete no earlier than request + latency.
#[test]
fn memory_latency_is_a_floor() {
    let mut rng = Rng::new(SEED ^ 6);
    for case in 0..128 {
        let at = rng.below(10_000);
        let bytes = rng.range(1, 4096);
        let mut m = MemoryModel::new(1, 150, 32);
        let done = m.access(at, bytes, 0);
        assert!(done >= at + 150 + bytes.div_ceil(32), "case {case}");
    }
}
