//! Backing stores: main memory and local store.
//!
//! Both stores are purely *functional* — access timing is modelled by
//! [`crate::bus`] and the local-store port model in the core simulator.
//! Accesses are little-endian; the machine's scalar access width is 32
//! bits (the paper: "each READ instruction fetches only 4 bytes").

use dta_isa::GlobalDef;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Sparse, paged main memory (Table 2: 512 MB by default).
///
/// Pages are allocated on first touch so simulating a 512 MB address space
/// costs only what programs actually use. Out-of-range accesses panic —
/// the validator plus the DTA execution model make them program bugs worth
/// failing loudly on.
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    size: u64,
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl MainMemory {
    /// Creates a memory of `size` bytes.
    pub fn new(size: u64) -> Self {
        MainMemory {
            size,
            pages: HashMap::new(),
        }
    }

    /// Memory size in bytes.
    #[inline]
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of pages touched so far (useful for footprint assertions).
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    #[inline]
    #[track_caller]
    fn check(&self, addr: u64, len: usize) {
        assert!(
            addr.checked_add(len as u64)
                .is_some_and(|end| end <= self.size),
            "main-memory access [{addr:#x}, +{len}) out of range (size {:#x})",
            self.size
        );
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.check(addr, 1);
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        self.check(addr, 1);
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads `buf.len()` bytes starting at `addr` (page-chunked: one
    /// table lookup per touched page, which keeps multi-KiB DMA copies
    /// off the per-byte path).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        self.check(addr, buf.len());
        let mut done = 0usize;
        while done < buf.len() {
            let cur = addr + done as u64;
            let in_page = (cur as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(buf.len() - done);
            match self.pages.get(&(cur >> PAGE_SHIFT)) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Writes `data` starting at `addr` (page-chunked).
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.check(addr, data.len());
        let mut done = 0usize;
        while done < data.len() {
            let cur = addr + done as u64;
            let in_page = (cur as usize) & (PAGE_SIZE - 1);
            let n = (PAGE_SIZE - in_page).min(data.len() - done);
            let page = self
                .pages
                .entry(cur >> PAGE_SHIFT)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[in_page..in_page + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a 32-bit value sign-extended to `i64` (the semantics of the
    /// `READ` instruction).
    #[inline]
    pub fn read_i32_sext(&self, addr: u64) -> i64 {
        self.read_u32(addr) as i32 as i64
    }

    /// Loads a program's global data segment.
    pub fn load_globals(&mut self, globals: &[GlobalDef]) {
        for g in globals {
            self.write_bytes(g.addr, &g.data);
        }
    }
}

/// A per-PE local store (Table 2: 156 kB usable, by default).
///
/// Dense storage: local stores are small and fully touched.
#[derive(Clone, Debug)]
pub struct LocalStore {
    data: Vec<u8>,
}

impl LocalStore {
    /// Creates a local store of `size` bytes.
    pub fn new(size: usize) -> Self {
        LocalStore {
            data: vec![0; size],
        }
    }

    /// Size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    #[inline]
    #[track_caller]
    fn check(&self, addr: u32, len: usize) {
        assert!(
            (addr as usize)
                .checked_add(len)
                .is_some_and(|end| end <= self.data.len()),
            "local-store access [{addr:#x}, +{len}) out of range (size {:#x})",
            self.data.len()
        );
    }

    /// Reads one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.check(addr, 1);
        self.data[addr as usize]
    }

    /// Reads bytes into `buf`.
    pub fn read_bytes(&self, addr: u32, buf: &mut [u8]) {
        self.check(addr, buf.len());
        buf.copy_from_slice(&self.data[addr as usize..addr as usize + buf.len()]);
    }

    /// Writes bytes.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        self.check(addr, data.len());
        self.data[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Reads a 32-bit little-endian value.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        self.check(addr, 4);
        let a = addr as usize;
        u32::from_le_bytes([
            self.data[a],
            self.data[a + 1],
            self.data[a + 2],
            self.data[a + 3],
        ])
    }

    /// Writes a 32-bit little-endian value.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Reads a 32-bit value sign-extended to `i64` (`LSLOAD` semantics).
    #[inline]
    pub fn read_i32_sext(&self, addr: u32) -> i64 {
        self.read_u32(addr) as i32 as i64
    }

    /// Reads a 64-bit little-endian value (frame slots are 64-bit).
    #[inline]
    pub fn read_u64(&self, addr: u32) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Writes a 64-bit little-endian value.
    #[inline]
    pub fn write_u64(&mut self, addr: u32, value: u64) {
        self.write_bytes(addr, &value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_memory_starts_zeroed_and_sparse() {
        let m = MainMemory::new(512 << 20);
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u32(511 << 20), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn main_memory_rw_roundtrip() {
        let mut m = MainMemory::new(1 << 20);
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF); // little-endian
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn main_memory_cross_page_access() {
        let mut m = MainMemory::new(1 << 20);
        let addr = (1 << 12) - 2; // straddles the first page boundary
        m.write_u32(addr, 0x0102_0304);
        assert_eq!(m.read_u32(addr), 0x0102_0304);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn main_memory_sign_extension() {
        let mut m = MainMemory::new(1 << 16);
        m.write_u32(0, -5i32 as u32);
        assert_eq!(m.read_i32_sext(0), -5);
        m.write_u32(4, 7);
        assert_eq!(m.read_i32_sext(4), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn main_memory_oob_panics() {
        let m = MainMemory::new(1 << 16);
        let _ = m.read_u32((1 << 16) - 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn main_memory_overflow_addr_panics() {
        let m = MainMemory::new(1 << 16);
        let _ = m.read_u8(u64::MAX);
    }

    #[test]
    fn load_globals_places_data() {
        let mut m = MainMemory::new(1 << 22);
        let g = vec![
            GlobalDef::from_words("a", 0x10_0000, &[1, 2]),
            GlobalDef::zeroed("b", 0x10_0010, 8),
        ];
        m.load_globals(&g);
        assert_eq!(m.read_u32(0x10_0000), 1);
        assert_eq!(m.read_u32(0x10_0004), 2);
        assert_eq!(m.read_u32(0x10_0010), 0);
    }

    #[test]
    fn local_store_rw_roundtrip() {
        let mut ls = LocalStore::new(4096);
        ls.write_u32(0, 42);
        ls.write_u64(8, u64::MAX - 1);
        assert_eq!(ls.read_u32(0), 42);
        assert_eq!(ls.read_u64(8), u64::MAX - 1);
        assert_eq!(ls.size(), 4096);
    }

    #[test]
    fn local_store_bytes_roundtrip() {
        let mut ls = LocalStore::new(64);
        ls.write_bytes(10, &[1, 2, 3]);
        let mut buf = [0u8; 3];
        ls.read_bytes(10, &mut buf);
        assert_eq!(buf, [1, 2, 3]);
        assert_eq!(ls.read_u8(11), 2);
    }

    #[test]
    fn local_store_sign_extension() {
        let mut ls = LocalStore::new(64);
        ls.write_u32(0, -1i32 as u32);
        assert_eq!(ls.read_i32_sext(0), -1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn local_store_oob_panics() {
        let ls = LocalStore::new(64);
        let _ = ls.read_u32(62);
    }
}
