//! An optional per-PE data cache for scalar main-memory accesses.
//!
//! The paper's simulator "does not yet include the cache module (still
//! under development)"; the authors bracket cache behaviour with a
//! latency-1 sweep and conclude that "this prefetching scheme can almost
//! eliminate the need for caches" (§4.3). This module implements the
//! missing piece so the claim can actually be tested: a direct-mapped,
//! write-through, no-write-allocate cache in front of the shared memory
//! system, used by scalar `READ`/`WRITE` only — DMA transfers bypass it,
//! exactly as Cell's MFC bypasses the PPE cache hierarchy.
//!
//! The cache is a *timing* model: data is already moved functionally by
//! the stores, so only hit/miss latency and line-fill traffic matter.
//! It is intentionally not coherent with DMA writes (neither was Cell).

use crate::bus::{MemorySystem, TransferKind};

/// Cache configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes (0 disables the cache).
    pub size_bytes: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            size_bytes: 16 * 1024,
            line_bytes: 128,
            hit_latency: 6,
        }
    }
}

/// Hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read hits.
    pub hits: u64,
    /// Read misses (each triggers a line fill).
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A direct-mapped, write-through, no-write-allocate data cache.
#[derive(Clone, Debug)]
pub struct Cache {
    params: CacheParams,
    /// Tag per line (`None` = invalid). Tag = address >> (index+offset bits).
    tags: Vec<Option<u64>>,
    /// Cycle at which each line's fill completes (a hit on an in-flight
    /// line waits for the fill).
    fill_done: Vec<u64>,
    line_shift: u32,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// If the line size is not a power of two or exceeds the capacity.
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two() && params.line_bytes >= 4,
            "cache line must be a power of two >= 4"
        );
        assert!(
            params.size_bytes >= params.line_bytes,
            "cache smaller than one line"
        );
        let lines = (params.size_bytes / params.line_bytes) as usize;
        Cache {
            params,
            tags: vec![None; lines],
            fill_done: vec![0; lines],
            line_shift: params.line_bytes.trailing_zeros(),
            stats: CacheStats::default(),
        }
    }

    /// Configuration.
    #[inline]
    pub fn params(&self) -> CacheParams {
        self.params
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line as usize) % self.tags.len(), line)
    }

    /// A scalar read at `addr` issued at `now`: returns the completion
    /// cycle, filling the line through `sys` on a miss.
    pub fn read(&mut self, now: u64, addr: u64, sys: &mut MemorySystem) -> u64 {
        let (idx, tag) = self.index_and_tag(addr);
        if self.tags[idx] == Some(tag) {
            self.stats.hits += 1;
            // A hit on a line still being filled waits for the fill.
            now.max(self.fill_done[idx]) + self.params.hit_latency
        } else {
            self.stats.misses += 1;
            let fill = sys.request(
                now,
                TransferKind::BlockGet {
                    bytes: self.params.line_bytes as u64,
                },
            );
            self.tags[idx] = Some(tag);
            self.fill_done[idx] = fill;
            fill + self.params.hit_latency
        }
    }

    /// A scalar write at `addr` issued at `now`: write-through (memory
    /// traffic unchanged), no allocation; an existing copy stays valid
    /// because the datum itself goes to memory functionally.
    pub fn write(&mut self, _now: u64, _addr: u64) {
        // No-allocate, write-through: nothing to do in the timing model —
        // the caller still posts the memory write.
    }

    /// Invalidates everything (e.g. around DMA regions in tests).
    pub fn invalidate_all(&mut self) {
        self.tags.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Cache, MemorySystem) {
        (
            Cache::new(CacheParams::default()),
            MemorySystem::paper_default(),
        )
    }

    #[test]
    fn first_access_misses_then_hits() {
        let (mut c, mut sys) = rig();
        let t1 = c.read(0, 0x1000, &mut sys);
        assert!(t1 > 100, "miss should pay memory latency, got {t1}");
        let t2 = c.read(t1, 0x1004, &mut sys); // same 128B line
        assert_eq!(t2, t1 + 6, "hit pays hit latency only");
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_lines_evict() {
        let (mut c, mut sys) = rig();
        let sets = (16 * 1024 / 128) as u64;
        let a = 0x0u64;
        let b = a + sets * 128; // same index, different tag
        c.read(0, a, &mut sys);
        c.read(1000, b, &mut sys); // evicts a
        let t = c.read(2000, a, &mut sys);
        assert!(t > 2100, "re-read of evicted line must miss");
        assert_eq!(c.stats().misses, 3);
    }

    #[test]
    fn hit_on_in_flight_line_waits_for_fill() {
        let (mut c, mut sys) = rig();
        let fill_done = c.read(0, 0x2000, &mut sys) - 6;
        let t = c.read(1, 0x2004, &mut sys);
        assert_eq!(t, fill_done + 6);
    }

    #[test]
    fn streaming_reads_hit_within_lines() {
        // 128 sequential word reads = 4 line fills + 124 hits.
        let (mut c, mut sys) = rig();
        let mut now = 0;
        for i in 0..128u64 {
            now = c.read(now, i * 4, &mut sys);
        }
        assert_eq!(c.stats().misses, 4);
        assert_eq!(c.stats().hits, 124);
        assert!((c.stats().hit_rate() - 124.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn invalidate_forces_refetch() {
        let (mut c, mut sys) = rig();
        c.read(0, 0, &mut sys);
        c.invalidate_all();
        c.read(1000, 0, &mut sys);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_rejected() {
        Cache::new(CacheParams {
            size_bytes: 1024,
            line_bytes: 100,
            hit_latency: 1,
        });
    }
}
