//! # dta-mem — the memory subsystem of the DTA simulator
//!
//! Implements the platform of the paper's Tables 2 and 4:
//!
//! * [`MainMemory`] — 512 MB, paged sparse backing store;
//! * [`LocalStore`] — the per-PE software-managed memory (156 kB usable,
//!   6-cycle latency, 3 ports) holding thread code metadata, frames and
//!   prefetch buffers;
//! * [`BusModel`] / [`MemoryModel`] / [`MemorySystem`] — the interconnect
//!   (4 buses × 8 bytes/cycle) and the single-ported, 150-cycle-latency
//!   main memory controller;
//! * [`Mfc`] — the per-PE Memory Flow Controller (DMA engine): a 16-entry
//!   command queue with a 30-cycle command latency, driving block and
//!   strided transfers between main memory and a local store.
//!
//! ## Timing model
//!
//! Data moves *functionally* at request time while *timing* is computed by
//! reserving slots on contended resources ([`ResourcePool`]): each request
//! deterministically claims the earliest-available bus channel / memory
//! port, and its completion cycle is returned to the caller, which delivers
//! the architectural effect (register ready, DMA tag complete) at that
//! cycle. This is the standard "functional data, timed completion" split of
//! trace-driven simulators: it is exact for programs that synchronise
//! through the DTA mechanisms (frames, SC, DMA tags), which is the
//! execution model DTA enforces.

pub mod bus;
pub mod cache;
pub mod fault;
pub mod mfc;
pub mod resource;
pub mod store;

pub use bus::{BusModel, MemoryModel, MemorySystem, TransferKind};
pub use cache::{Cache, CacheParams, CacheStats};
pub use fault::{DmaFaultPlan, DmaPlan};
pub use mfc::{DmaCommand, DmaCompletion, DmaKind, Mfc, MfcParams};
pub use resource::{Reservation, ResourcePool};
pub use store::{LocalStore, MainMemory};
