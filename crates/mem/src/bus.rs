//! Interconnect and main-memory controller timing.
//!
//! Parameters follow the paper's Table 4 (bus) and Table 2 (memory):
//! 4 buses of 8 bytes/cycle each — so the network moves up to 32 bytes per
//! cycle, the figure the paper quotes when noting that scalar READs (4
//! bytes each) leave bandwidth idle while DMA can saturate it — and a
//! single-ported main memory with 150-cycle latency.

use crate::resource::{Reservation, ResourcePool};

/// Default number of buses (Table 4).
pub const DEFAULT_BUSES: usize = 4;
/// Default per-bus bandwidth in bytes/cycle (Table 4).
pub const DEFAULT_BUS_BYTES_PER_CYCLE: u64 = 8;
/// Default one-way wire/propagation latency of the interconnect, cycles.
/// (Not separately specified by the paper; folded into its 150-cycle
/// "latency to access memory" — we keep it small and explicit.)
pub const DEFAULT_WIRE_LATENCY: u64 = 5;
/// Default main-memory access latency in cycles (Table 2).
pub const DEFAULT_MEM_LATENCY: u64 = 150;
/// Default number of memory ports (Table 2).
pub const DEFAULT_MEM_PORTS: usize = 1;
/// Default internal array streaming bandwidth, bytes/cycle (matches the
/// aggregate bus bandwidth so neither side artificially bottlenecks block
/// transfers).
pub const DEFAULT_MEM_ARRAY_BYTES_PER_CYCLE: u64 = 32;
/// Size of a command/request packet on the bus, bytes.
pub const REQUEST_PACKET_BYTES: u64 = 8;

/// The kinds of main-memory transactions the system performs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TransferKind {
    /// A blocking 4-byte `READ` issued by a pipeline.
    ScalarRead,
    /// A posted 4-byte `WRITE` issued by a pipeline.
    ScalarWrite,
    /// A DMA block fetch of `bytes` bytes (main memory → local store).
    BlockGet { bytes: u64 },
    /// A DMA block store of `bytes` bytes (local store → main memory).
    BlockPut { bytes: u64 },
    /// A DMA strided gather: `count` elements of `elem_bytes` bytes.
    StridedGet { count: u64, elem_bytes: u64 },
}

impl TransferKind {
    /// Payload bytes moved by this transaction.
    pub fn payload_bytes(self) -> u64 {
        match self {
            TransferKind::ScalarRead | TransferKind::ScalarWrite => 4,
            TransferKind::BlockGet { bytes } | TransferKind::BlockPut { bytes } => bytes,
            TransferKind::StridedGet { count, elem_bytes } => count * elem_bytes,
        }
    }
}

/// The interconnect: a bank of data buses with per-bus bandwidth and a
/// one-way propagation latency, plus a lightly-loaded command network for
/// request packets (the Cell EIB likewise separates its address/command
/// network from the four data rings).
///
/// Commands do not reserve data-bus lanes: lane occupancy is tracked as a
/// per-lane watermark, so mixing present-time command packets with
/// future-time data reservations (a read response is reserved ~latency
/// cycles ahead) would otherwise let one response block a whole round of
/// later requests.
#[derive(Clone, Debug)]
pub struct BusModel {
    lanes: ResourcePool,
    bytes_per_cycle: u64,
    wire_latency: u64,
    bytes_moved: u64,
    commands_sent: u64,
}

impl BusModel {
    /// Creates a bus bank.
    pub fn new(buses: usize, bytes_per_cycle: u64, wire_latency: u64) -> Self {
        assert!(bytes_per_cycle > 0, "bus bandwidth must be positive");
        BusModel {
            lanes: ResourcePool::new(buses),
            bytes_per_cycle,
            wire_latency,
            bytes_moved: 0,
            commands_sent: 0,
        }
    }

    /// Paper-default bus bank.
    pub fn paper_default() -> Self {
        Self::new(
            DEFAULT_BUSES,
            DEFAULT_BUS_BYTES_PER_CYCLE,
            DEFAULT_WIRE_LATENCY,
        )
    }

    /// Sends `bytes` of *data* over the earliest-free bus starting at
    /// `now`; returns the cycle at which the last byte arrives.
    pub fn send(&mut self, now: u64, bytes: u64) -> u64 {
        let occupancy = bytes.div_ceil(self.bytes_per_cycle);
        let res: Reservation = self.lanes.reserve(now, occupancy);
        self.bytes_moved += bytes;
        res.end + self.wire_latency
    }

    /// Sends a small command/request packet (optionally with a scalar
    /// payload piggybacked) over the command network; returns its arrival
    /// cycle. The command network is provisioned for one packet per cycle
    /// per requester, so only the propagation latency is charged.
    pub fn command(&mut self, now: u64) -> u64 {
        self.commands_sent += 1;
        now + 1 + self.wire_latency
    }

    /// Command packets sent so far.
    #[inline]
    pub fn commands_sent(&self) -> u64 {
        self.commands_sent
    }

    /// Total bytes moved so far.
    #[inline]
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Bus utilisation over `elapsed` cycles.
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        self.lanes.utilisation(elapsed)
    }

    /// One-way wire latency.
    #[inline]
    pub fn wire_latency(&self) -> u64 {
        self.wire_latency
    }
}

/// The main-memory controller: `ports` ports, `latency` cycles from port
/// grant to data, and an internal streaming bandwidth for block accesses.
#[derive(Clone, Debug)]
pub struct MemoryModel {
    ports: ResourcePool,
    latency: u64,
    array_bytes_per_cycle: u64,
    accesses: u64,
}

impl MemoryModel {
    /// Creates a memory controller.
    pub fn new(ports: usize, latency: u64, array_bytes_per_cycle: u64) -> Self {
        assert!(
            array_bytes_per_cycle > 0,
            "array bandwidth must be positive"
        );
        MemoryModel {
            ports: ResourcePool::new(ports),
            latency,
            array_bytes_per_cycle,
            accesses: 0,
        }
    }

    /// Paper-default memory controller.
    pub fn paper_default() -> Self {
        Self::new(
            DEFAULT_MEM_PORTS,
            DEFAULT_MEM_LATENCY,
            DEFAULT_MEM_ARRAY_BYTES_PER_CYCLE,
        )
    }

    /// Performs an access of `bytes` bytes whose request arrives at `now`,
    /// with `extra_port_cycles` of additional port occupancy (strided
    /// gather overhead); returns the cycle at which the data is available
    /// at the memory-side bus interface.
    pub fn access(&mut self, now: u64, bytes: u64, extra_port_cycles: u64) -> u64 {
        let occupancy = bytes.div_ceil(self.array_bytes_per_cycle).max(1) + extra_port_cycles;
        let res = self.ports.reserve(now, occupancy);
        self.accesses += 1;
        res.end + self.latency
    }

    /// Number of accesses served.
    #[inline]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Access latency (cycles).
    #[inline]
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Port utilisation over `elapsed` cycles.
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        self.ports.utilisation(elapsed)
    }
}

/// Per-kind transaction counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemTrafficStats {
    /// Scalar READ transactions.
    pub scalar_reads: u64,
    /// Scalar WRITE transactions.
    pub scalar_writes: u64,
    /// DMA get transactions (block + strided).
    pub dma_gets: u64,
    /// DMA put transactions.
    pub dma_puts: u64,
    /// Total payload bytes moved.
    pub payload_bytes: u64,
}

impl MemTrafficStats {
    /// Total transactions of all kinds (one strided gather counts once
    /// even under split-transaction ablation — it is one request).
    pub fn total(&self) -> u64 {
        self.scalar_reads + self.scalar_writes + self.dma_gets + self.dma_puts
    }
}

/// The complete shared memory system: interconnect + controller.
///
/// All PEs (and their MFCs) funnel their main-memory traffic through one
/// `MemorySystem`; contention between them is captured by the underlying
/// resource pools.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    /// The interconnect.
    pub bus: BusModel,
    /// The memory controller.
    pub mem: MemoryModel,
    /// Extra memory-port cycles charged per strided-gather element
    /// (row-activation style overhead).
    pub stride_penalty_per_elem: u64,
    /// Ablation of the paper's §3 argument: when `true`, a strided gather
    /// is not one DMA transaction but one split transaction per element
    /// ("it could generate too many transactions").
    pub split_transactions: bool,
    stats: MemTrafficStats,
}

impl MemorySystem {
    /// Builds a memory system from its parts.
    pub fn new(bus: BusModel, mem: MemoryModel, stride_penalty_per_elem: u64) -> Self {
        MemorySystem {
            bus,
            mem,
            stride_penalty_per_elem,
            split_transactions: false,
            stats: MemTrafficStats::default(),
        }
    }

    /// Paper-default memory system.
    pub fn paper_default() -> Self {
        Self::new(BusModel::paper_default(), MemoryModel::paper_default(), 1)
    }

    /// Issues a transaction at `now`; returns the cycle at which it
    /// completes from the requester's point of view:
    ///
    /// * reads / gets: data has arrived at the requester;
    /// * writes / puts: the memory has accepted the data (used for
    ///   draining; the pipeline does not wait on posted writes).
    pub fn request(&mut self, now: u64, kind: TransferKind) -> u64 {
        self.stats.payload_bytes += kind.payload_bytes();
        match kind {
            TransferKind::ScalarRead => {
                self.stats.scalar_reads += 1;
                let req = self.bus.command(now);
                let data = self.mem.access(req, 4, 0);
                self.bus.send(data, 4)
            }
            TransferKind::ScalarWrite => {
                self.stats.scalar_writes += 1;
                // The 4-byte datum rides in the command packet.
                let req = self.bus.command(now);
                self.mem.access(req, 4, 0)
            }
            TransferKind::BlockGet { bytes } => {
                self.stats.dma_gets += 1;
                let req = self.bus.command(now);
                let data = self.mem.access(req, bytes, 0);
                self.bus.send(data, bytes)
            }
            TransferKind::BlockPut { bytes } => {
                self.stats.dma_puts += 1;
                // The payload streams from the local store over a data bus.
                let req = self.bus.send(now, bytes);
                self.mem.access(req, bytes, 0)
            }
            TransferKind::StridedGet { count, elem_bytes } => {
                self.stats.dma_gets += 1;
                if self.split_transactions {
                    // One network transaction per element.
                    let mut done = now;
                    for _ in 0..count {
                        let req = self.bus.command(now);
                        let data = self
                            .mem
                            .access(req, elem_bytes, self.stride_penalty_per_elem);
                        done = done.max(self.bus.send(data, elem_bytes));
                    }
                    return done;
                }
                let total = count * elem_bytes;
                let req = self.bus.command(now);
                let data = self
                    .mem
                    .access(req, total, count * self.stride_penalty_per_elem);
                self.bus.send(data, total)
            }
        }
    }

    /// Traffic counters.
    #[inline]
    pub fn stats(&self) -> MemTrafficStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_read_latency_shape() {
        let mut sys = MemorySystem::paper_default();
        let done = sys.request(0, TransferKind::ScalarRead);
        // command: 1 cycle + 5 wire; port 1 cycle; 150 latency;
        // response: 1 cycle bus + 5 wire.
        assert_eq!(done, 1 + 5 + 1 + 150 + 1 + 5);
    }

    #[test]
    fn concurrent_readers_pipeline_instead_of_serialising() {
        // Regression test: response-lane reservations live ~latency cycles
        // in the future; they must not block the *requests* of other PEs
        // (this is why commands ride a separate network).
        let mut sys = MemorySystem::paper_default();
        let mut t = [0u64; 8];
        for _ in 0..50 {
            for slot in t.iter_mut() {
                *slot = sys.request(*slot, TransferKind::ScalarRead);
            }
        }
        let avg = t[7] / 50;
        assert!(
            avg < 200,
            "8 blocking readers should sustain ~latency round trips, got {avg}"
        );
    }

    #[test]
    fn scalar_write_is_cheaper_than_read() {
        let mut sys = MemorySystem::paper_default();
        let w = sys.request(0, TransferKind::ScalarWrite);
        let mut sys2 = MemorySystem::paper_default();
        let r = sys2.request(0, TransferKind::ScalarRead);
        assert!(w > 0);
        assert!(w <= r);
    }

    #[test]
    fn block_get_amortises_latency() {
        // 4 KiB via one DMA vs 1024 scalar reads issued back-to-back by one
        // requester: DMA must be far faster.
        let mut dma = MemorySystem::paper_default();
        let dma_done = dma.request(0, TransferKind::BlockGet { bytes: 4096 });

        let mut scalar = MemorySystem::paper_default();
        let mut t = 0;
        for _ in 0..1024 {
            t = scalar.request(t, TransferKind::ScalarRead); // blocking chain
        }
        assert!(
            dma_done * 10 < t,
            "DMA ({dma_done}) should be >=10x faster than scalar chain ({t})"
        );
    }

    #[test]
    fn four_buses_give_parallel_transfers() {
        let mut bus = BusModel::paper_default();
        // Four 64-byte sends at cycle 0 all start immediately...
        let ends: Vec<u64> = (0..4).map(|_| bus.send(0, 64)).collect();
        assert!(ends.iter().all(|&e| e == ends[0]));
        // ...the fifth queues.
        let fifth = bus.send(0, 64);
        assert!(fifth > ends[0]);
    }

    #[test]
    fn single_port_serialises_concurrent_block_gets() {
        let mut sys = MemorySystem::paper_default();
        let a = sys.request(0, TransferKind::BlockGet { bytes: 4096 });
        let b = sys.request(0, TransferKind::BlockGet { bytes: 4096 });
        // 4096/32 = 128 port cycles each; the second waits for the first's
        // port occupancy.
        assert!(b >= a + 100);
    }

    #[test]
    fn strided_get_costs_more_than_contiguous() {
        let mut sys = MemorySystem::paper_default();
        let strided = sys.request(
            0,
            TransferKind::StridedGet {
                count: 32,
                elem_bytes: 4,
            },
        );
        let mut sys2 = MemorySystem::paper_default();
        let contiguous = sys2.request(0, TransferKind::BlockGet { bytes: 128 });
        assert!(strided > contiguous);
        // ...but still one transaction: far cheaper than 32 scalar reads.
        let mut sys3 = MemorySystem::paper_default();
        let mut t = 0;
        for _ in 0..32 {
            t = sys3.request(t, TransferKind::ScalarRead);
        }
        assert!(strided * 5 < t);
    }

    #[test]
    fn traffic_stats_accumulate() {
        let mut sys = MemorySystem::paper_default();
        sys.request(0, TransferKind::ScalarRead);
        sys.request(0, TransferKind::ScalarWrite);
        sys.request(0, TransferKind::BlockGet { bytes: 256 });
        sys.request(
            0,
            TransferKind::StridedGet {
                count: 8,
                elem_bytes: 4,
            },
        );
        sys.request(0, TransferKind::BlockPut { bytes: 64 });
        let s = sys.stats();
        assert_eq!(s.scalar_reads, 1);
        assert_eq!(s.scalar_writes, 1);
        assert_eq!(s.dma_gets, 2);
        assert_eq!(s.dma_puts, 1);
        assert_eq!(s.payload_bytes, 4 + 4 + 256 + 32 + 64);
    }

    #[test]
    fn payload_bytes_per_kind() {
        assert_eq!(TransferKind::ScalarRead.payload_bytes(), 4);
        assert_eq!(TransferKind::BlockGet { bytes: 100 }.payload_bytes(), 100);
        assert_eq!(
            TransferKind::StridedGet {
                count: 5,
                elem_bytes: 8
            }
            .payload_bytes(),
            40
        );
    }

    #[test]
    fn memory_latency_one_is_fast() {
        // The paper's §4.3 all-latency-1 experiment: the fabric should then
        // be dominated by wire/bus time only.
        let mut sys = MemorySystem::new(BusModel::new(4, 8, 1), MemoryModel::new(1, 1, 32), 1);
        let done = sys.request(0, TransferKind::ScalarRead);
        assert!(done < 10, "latency-1 scalar read took {done}");
    }

    #[test]
    fn split_transactions_cost_far_more() {
        let mut one = MemorySystem::paper_default();
        let a = one.request(
            0,
            TransferKind::StridedGet {
                count: 64,
                elem_bytes: 4,
            },
        );
        let mut split = MemorySystem::paper_default();
        split.split_transactions = true;
        let b = split.request(
            0,
            TransferKind::StridedGet {
                count: 64,
                elem_bytes: 4,
            },
        );
        assert!(b > a, "split {b} should exceed single-transaction {a}");
    }

    #[test]
    fn bus_utilisation_tracks_traffic() {
        let mut bus = BusModel::new(1, 8, 0);
        bus.send(0, 80); // 10 cycles busy
        assert!((bus.utilisation(10) - 1.0).abs() < 1e-9);
        assert_eq!(bus.bytes_moved(), 80);
    }
}
