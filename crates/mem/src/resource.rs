//! Deterministic resource reservation.
//!
//! A [`ResourcePool`] models a bank of identical channels (bus lanes,
//! memory ports, LS ports). A request reserves the earliest-available
//! channel for a duration; ties break toward the lowest channel index, so
//! simulation outcomes are fully deterministic.

/// The outcome of a reservation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reservation {
    /// Channel that was claimed.
    pub channel: usize,
    /// First cycle of occupancy.
    pub start: u64,
    /// First cycle *after* the occupancy ends.
    pub end: u64,
}

impl Reservation {
    /// Cycles spent waiting for the channel (queueing delay).
    #[inline]
    pub fn wait(&self, now: u64) -> u64 {
        self.start - now
    }
}

/// A bank of identical, serially-occupied channels.
#[derive(Clone, Debug)]
pub struct ResourcePool {
    free_at: Vec<u64>,
    /// Total busy cycles accumulated (for utilisation stats).
    busy_cycles: u64,
}

impl ResourcePool {
    /// A pool of `channels` channels, all free at cycle 0.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "resource pool needs at least one channel");
        ResourcePool {
            free_at: vec![0; channels],
            busy_cycles: 0,
        }
    }

    /// Number of channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.free_at.len()
    }

    /// Reserves the earliest-available channel for `duration` cycles,
    /// starting no earlier than `now`. `duration` of 0 is treated as 1
    /// (every transaction occupies its channel for at least a cycle).
    pub fn reserve(&mut self, now: u64, duration: u64) -> Reservation {
        let duration = duration.max(1);
        let (channel, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .expect("non-empty pool");
        let start = free.max(now);
        let end = start + duration;
        self.free_at[channel] = end;
        self.busy_cycles += duration;
        Reservation {
            channel,
            start,
            end,
        }
    }

    /// The earliest cycle at which any channel is free.
    pub fn earliest_free(&self) -> u64 {
        self.free_at.iter().copied().min().unwrap_or(0)
    }

    /// Per-channel free times, in channel order. Values at or before the
    /// current cycle are equivalent (a reservation starts no earlier than
    /// `now`), so callers snapshotting state relative to a base cycle
    /// should saturate the subtraction.
    #[inline]
    pub fn free_times(&self) -> &[u64] {
        &self.free_at
    }

    /// Restores the pool to a state snapshot taken relative to a base
    /// cycle: channel `i` becomes free at `base + rel[i]`, and
    /// `busy_delta` busy cycles are re-accumulated. Used by timing replay
    /// to reproduce a recorded span's end state without re-running its
    /// reservations.
    pub fn restore(&mut self, base: u64, rel: &[u64], busy_delta: u64) {
        assert_eq!(rel.len(), self.free_at.len(), "channel count mismatch");
        for (f, &r) in self.free_at.iter_mut().zip(rel) {
            *f = base + r;
        }
        self.busy_cycles += busy_delta;
    }

    /// Total busy cycles accumulated across all channels.
    #[inline]
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Utilisation in `[0, 1]` over the first `elapsed` cycles.
    pub fn utilisation(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (elapsed as f64 * self.free_at.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_channel_serialises() {
        let mut p = ResourcePool::new(1);
        let a = p.reserve(0, 10);
        let b = p.reserve(0, 5);
        assert_eq!(
            a,
            Reservation {
                channel: 0,
                start: 0,
                end: 10
            }
        );
        assert_eq!(
            b,
            Reservation {
                channel: 0,
                start: 10,
                end: 15
            }
        );
        assert_eq!(b.wait(0), 10);
    }

    #[test]
    fn multiple_channels_run_in_parallel() {
        let mut p = ResourcePool::new(2);
        let a = p.reserve(0, 10);
        let b = p.reserve(0, 10);
        let c = p.reserve(0, 10);
        assert_eq!(a.channel, 0);
        assert_eq!(b.channel, 1);
        assert_eq!((a.start, b.start), (0, 0));
        // Third request queues behind the earliest-free channel (0).
        assert_eq!(
            c,
            Reservation {
                channel: 0,
                start: 10,
                end: 20
            }
        );
    }

    #[test]
    fn reservation_never_starts_before_now() {
        let mut p = ResourcePool::new(1);
        let a = p.reserve(100, 4);
        assert_eq!(a.start, 100);
        // Channel went idle between 104 and 200; next request at 200 does
        // not start earlier.
        let b = p.reserve(200, 4);
        assert_eq!(b.start, 200);
    }

    #[test]
    fn zero_duration_clamped_to_one() {
        let mut p = ResourcePool::new(1);
        let a = p.reserve(0, 0);
        assert_eq!(a.end - a.start, 1);
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut p1 = ResourcePool::new(4);
        let mut p2 = ResourcePool::new(4);
        let seq1: Vec<_> = (0..16).map(|i| p1.reserve(i / 4, 3).channel).collect();
        let seq2: Vec<_> = (0..16).map(|i| p2.reserve(i / 4, 3).channel).collect();
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn utilisation_accounting() {
        let mut p = ResourcePool::new(2);
        p.reserve(0, 10);
        p.reserve(0, 10);
        assert_eq!(p.busy_cycles(), 20);
        assert!((p.utilisation(10) - 1.0).abs() < 1e-9);
        assert!((p.utilisation(20) - 0.5).abs() < 1e-9);
        assert_eq!(p.utilisation(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn empty_pool_rejected() {
        let _ = ResourcePool::new(0);
    }
}
