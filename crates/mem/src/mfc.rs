//! The Memory Flow Controller (MFC) — the per-PE DMA engine.
//!
//! Mirrors the Cell SPE's MFC as configured in the paper's Table 4: a
//! 16-entry command queue and a 30-cycle command (processing) latency.
//! Commands carry the Table 3 operands: local-store address, main-memory
//! address, size, and a tag ID "used to read the status of the initiated
//! transfer".
//!
//! Command processing is serial (one command in the engine at a time), but
//! the transfers themselves overlap on the interconnect — the engine hands
//! each transfer to the shared [`MemorySystem`](crate::MemorySystem) and
//! immediately starts on the next command.

use crate::bus::{MemorySystem, TransferKind};
use crate::fault::{DmaFaultPlan, DmaPlan};
use crate::store::{LocalStore, MainMemory};
use std::collections::VecDeque;

/// MFC configuration (Table 4 defaults).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MfcParams {
    /// Command queue size (max outstanding commands).
    pub queue_capacity: usize,
    /// Cycles the engine spends processing each command.
    pub command_latency: u64,
}

impl Default for MfcParams {
    fn default() -> Self {
        MfcParams {
            queue_capacity: 16,
            command_latency: 30,
        }
    }
}

/// What a DMA command moves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DmaKind {
    /// Contiguous main memory → local store.
    Get {
        /// Transfer size in bytes.
        bytes: u32,
    },
    /// Strided gather: `count` elements of `elem_bytes`, `stride` bytes
    /// apart in main memory, packed contiguously in the local store.
    GetStrided {
        /// Element size in bytes.
        elem_bytes: u32,
        /// Number of elements.
        count: u32,
        /// Main-memory stride between element starts, in bytes.
        stride: i64,
    },
    /// Contiguous local store → main memory.
    Put {
        /// Transfer size in bytes.
        bytes: u32,
    },
}

impl DmaKind {
    /// Total payload bytes.
    pub fn total_bytes(self) -> u64 {
        match self {
            DmaKind::Get { bytes } | DmaKind::Put { bytes } => bytes as u64,
            DmaKind::GetStrided {
                elem_bytes, count, ..
            } => elem_bytes as u64 * count as u64,
        }
    }
}

/// One DMA command (Table 3 operands).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DmaCommand {
    /// Opaque token identifying the issuing thread instance; returned in
    /// the [`DmaCompletion`] so the scheduler can re-ready the right
    /// thread.
    pub owner: u64,
    /// Tag ID.
    pub tag: u8,
    /// Local-store byte address.
    pub ls_addr: u32,
    /// Main-memory byte address.
    pub mem_addr: u64,
    /// Direction and shape.
    pub kind: DmaKind,
}

/// A completed (or scheduled-to-complete) transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DmaCompletion {
    /// The issuing instance's token.
    pub owner: u64,
    /// Tag ID of the command.
    pub tag: u8,
    /// Cycle at which the transfer is architecturally complete
    /// (`u64::MAX` when the command stalled and never completes).
    pub at: u64,
    /// Engine attempts the command consumed (1 = clean first try; a
    /// retried command still yields exactly *one* completion).
    pub attempts: u32,
    /// The command is permanently stuck: the caller must not schedule a
    /// completion delivery (the watchdog will surface the stall).
    pub stalled: bool,
}

/// Counters exposed for benchmarking and tests.
///
/// Invariant (guarded by `crates/mem/tests/prop.rs`): a retried command
/// contributes exactly one `commands` increment, one completion, and
/// `attempts >= commands` attempt increments — retries never double-count
/// commands, bytes, or completions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MfcStats {
    /// Commands accepted into the queue (one per command, regardless of
    /// how many attempts it took).
    pub commands: u64,
    /// Engine attempts, including retries (`>= commands`).
    pub attempts: u64,
    /// Retries (`attempts - commands`, accumulated per command).
    pub retries: u64,
    /// Commands whose retry budget ran out (delivered via the fail-safe
    /// slow path; the owning PE degrades).
    pub exhausted: u64,
    /// Commands permanently stuck (never complete).
    pub stalled: u64,
    /// Total backoff cycles spent between retries.
    pub backoff_cycles: u64,
    /// Enqueue attempts rejected because the queue was full.
    pub queue_full_rejections: u64,
    /// Total payload bytes transferred.
    pub bytes: u64,
}

/// The per-PE DMA engine.
#[derive(Clone, Debug)]
pub struct Mfc {
    params: MfcParams,
    engine_free_at: u64,
    /// Completion times of commands still outstanding (bounded by
    /// `queue_capacity`, so a linear scan is fine and allocation-free in
    /// steady state). Stalled commands sit here forever (`u64::MAX`),
    /// wedging their queue slot — exactly like a stuck hardware tag.
    outstanding: VecDeque<u64>,
    /// Fault outcomes planned (in admit order) for commands admitted via
    /// [`Mfc::admit`] whose [`Mfc::commit`] has not happened yet
    /// (epoch-batched sharded execution admits shard-locally and commits
    /// at the epoch barrier; per-PE admit order equals commit order).
    planned: VecDeque<DmaPlan>,
    /// Monotone count of admitted commands — the deterministic fault key.
    admitted: u64,
    /// Fault schedule (`None` = fault-free).
    faults: Option<DmaFaultPlan>,
    stats: MfcStats,
}

impl Mfc {
    /// Creates an MFC.
    pub fn new(params: MfcParams) -> Self {
        Mfc {
            params,
            engine_free_at: 0,
            outstanding: VecDeque::with_capacity(params.queue_capacity),
            planned: VecDeque::new(),
            admitted: 0,
            faults: None,
            stats: MfcStats::default(),
        }
    }

    /// Arms the deterministic fault schedule for this engine.
    pub fn set_faults(&mut self, plan: DmaFaultPlan) {
        self.faults = Some(plan);
    }

    /// Configuration.
    #[inline]
    pub fn params(&self) -> MfcParams {
        self.params
    }

    /// Number of commands outstanding at cycle `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.outstanding.retain(|&t| t > now);
        self.outstanding.len()
    }

    /// Read-only in-flight count at cycle `now` (observability gauge).
    ///
    /// Counts admitted-but-uncommitted commands too: under sharded
    /// execution a command sits in `planned` until the epoch barrier,
    /// while the sequential engine commits it immediately — but its
    /// completion can never be at or before the same epoch's horizon, so
    /// both engines report the same total at any sample boundary.
    pub fn in_flight(&self, now: u64) -> usize {
        self.outstanding.iter().filter(|&&t| t > now).count() + self.planned.len()
    }

    /// True when no DMA completion can land in the half-open window
    /// `(now, horizon]`: nothing is admitted-but-uncommitted, and no
    /// outstanding command completes inside the window. Over such a
    /// window the in-flight count is constant, so timing recorded with
    /// DMA overlap replays with the same overlap attribution.
    pub fn quiet_until(&self, now: u64, horizon: u64) -> bool {
        self.planned.is_empty() && !self.outstanding.iter().any(|&t| t > now && t <= horizon)
    }

    /// Counters.
    #[inline]
    pub fn stats(&self) -> MfcStats {
        self.stats
    }

    /// Attempts to enqueue `cmd` at cycle `now`.
    ///
    /// On success the data is moved functionally right away, the timing is
    /// computed against the shared memory system, and the scheduled
    /// completion is returned; the caller delivers it at `completion.at`.
    /// Returns `None` when the command queue is full (the pipeline must
    /// retry — this back-pressure is part of the prefetch overhead the
    /// paper measures).
    pub fn enqueue(
        &mut self,
        now: u64,
        cmd: DmaCommand,
        sys: &mut MemorySystem,
        ls: &mut LocalStore,
        mem: &mut MainMemory,
    ) -> Option<DmaCompletion> {
        self.admit(now)?;
        Some(self.commit(now, cmd, sys, ls, mem))
    }

    /// Capacity check half of [`Mfc::enqueue`]: reserves a queue slot at
    /// cycle `now` without touching the shared memory system, so sharded
    /// execution can decide admission inside a shard and run the data
    /// movement ([`Mfc::commit`]) at the epoch barrier.
    ///
    /// Sound as a split because a command admitted at `now` cannot retire
    /// before `now + command_latency`, which is at or beyond the epoch
    /// horizon — so pending commits always still occupy their slot at any
    /// admission decision inside the same epoch.
    ///
    /// Returns `None` when the queue is full; otherwise the fault outcome
    /// planned for this command. The plan is resolved *here* — at the
    /// issue cycle, inside the shard — so retry exhaustion (and the PE
    /// degradation it triggers) happens at the same logical point in both
    /// engines.
    pub fn admit(&mut self, now: u64) -> Option<DmaPlan> {
        if self.outstanding(now) + self.planned.len() >= self.params.queue_capacity {
            self.stats.queue_full_rejections += 1;
            return None;
        }
        let plan = match self.faults {
            Some(f) => f.plan(self.admitted),
            None => DmaPlan::CLEAN,
        };
        self.admitted += 1;
        self.planned.push_back(plan);
        Some(plan)
    }

    /// Data-movement + timing half of [`Mfc::enqueue`]; must follow a
    /// successful [`Mfc::admit`] at the same logical cycle `now`.
    /// Commands must be committed in their admit order (both engines
    /// preserve per-PE program order, so this holds by construction).
    pub fn commit(
        &mut self,
        now: u64,
        cmd: DmaCommand,
        sys: &mut MemorySystem,
        ls: &mut LocalStore,
        mem: &mut MainMemory,
    ) -> DmaCompletion {
        let plan = self.planned.pop_front().unwrap_or(DmaPlan::CLEAN);

        self.stats.commands += 1;
        self.stats.attempts += plan.attempts as u64;
        self.stats.retries += (plan.attempts - 1) as u64;
        self.stats.backoff_cycles += plan.penalty;
        if plan.exhausted {
            self.stats.exhausted += 1;
        }

        if plan.stalled {
            // The command wedges its queue slot forever; no data moves and
            // no completion is ever delivered.
            self.stats.stalled += 1;
            self.outstanding.push_back(u64::MAX);
            return DmaCompletion {
                owner: cmd.owner,
                tag: cmd.tag,
                at: u64::MAX,
                attempts: plan.attempts,
                stalled: true,
            };
        }

        // Functional data movement.
        match cmd.kind {
            DmaKind::Get { bytes } => {
                let mut buf = vec![0u8; bytes as usize];
                mem.read_bytes(cmd.mem_addr, &mut buf);
                ls.write_bytes(cmd.ls_addr, &buf);
            }
            DmaKind::GetStrided {
                elem_bytes,
                count,
                stride,
            } => {
                let mut buf = vec![0u8; elem_bytes as usize];
                for i in 0..count as i64 {
                    let src = (cmd.mem_addr as i64 + i * stride) as u64;
                    mem.read_bytes(src, &mut buf);
                    ls.write_bytes(cmd.ls_addr + i as u32 * elem_bytes, &buf);
                }
            }
            DmaKind::Put { bytes } => {
                let mut buf = vec![0u8; bytes as usize];
                ls.read_bytes(cmd.ls_addr, &mut buf);
                mem.write_bytes(cmd.mem_addr, &buf);
            }
        }

        // Timing: serial command processing, overlapped transfers. Failed
        // attempts and their exponential backoff occupy the engine before
        // the command finally issues, so retries back-pressure the queue
        // exactly like slow commands.
        let engine_start = self.engine_free_at.max(now);
        let issue = engine_start + plan.penalty + self.params.command_latency;
        self.engine_free_at = issue;

        let total = cmd.kind.total_bytes();
        let at = if total == 0 {
            issue
        } else {
            match cmd.kind {
                DmaKind::Get { bytes } => sys.request(
                    issue,
                    TransferKind::BlockGet {
                        bytes: bytes as u64,
                    },
                ),
                DmaKind::GetStrided {
                    elem_bytes, count, ..
                } => sys.request(
                    issue,
                    TransferKind::StridedGet {
                        count: count as u64,
                        elem_bytes: elem_bytes as u64,
                    },
                ),
                DmaKind::Put { bytes } => sys.request(
                    issue,
                    TransferKind::BlockPut {
                        bytes: bytes as u64,
                    },
                ),
            }
        };

        self.outstanding.push_back(at);
        self.stats.bytes += total;
        DmaCompletion {
            owner: cmd.owner,
            tag: cmd.tag,
            at,
            attempts: plan.attempts,
            stalled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Mfc, MemorySystem, LocalStore, MainMemory) {
        (
            Mfc::new(MfcParams::default()),
            MemorySystem::paper_default(),
            LocalStore::new(64 * 1024),
            MainMemory::new(1 << 24),
        )
    }

    #[test]
    fn get_moves_data_and_schedules_completion() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        mem.write_u32(0x1000, 0xABCD);
        mem.write_u32(0x1004, 0x1234);
        let c = mfc
            .enqueue(
                0,
                DmaCommand {
                    owner: 7,
                    tag: 3,
                    ls_addr: 256,
                    mem_addr: 0x1000,
                    kind: DmaKind::Get { bytes: 8 },
                },
                &mut sys,
                &mut ls,
                &mut mem,
            )
            .unwrap();
        assert_eq!(ls.read_u32(256), 0xABCD);
        assert_eq!(ls.read_u32(260), 0x1234);
        assert_eq!(c.owner, 7);
        assert_eq!(c.tag, 3);
        // command latency 30 + memory round trip.
        assert!(c.at > 30 + 150, "completion at {}", c.at);
    }

    #[test]
    fn strided_get_packs_elements() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        // A "column": elements 128 bytes apart.
        for i in 0..4u64 {
            mem.write_u32(0x2000 + i * 128, (100 + i) as u32);
        }
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 1,
                tag: 0,
                ls_addr: 0,
                mem_addr: 0x2000,
                kind: DmaKind::GetStrided {
                    elem_bytes: 4,
                    count: 4,
                    stride: 128,
                },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        )
        .unwrap();
        for i in 0..4u32 {
            assert_eq!(ls.read_u32(i * 4), 100 + i);
        }
    }

    #[test]
    fn put_writes_back_to_memory() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        ls.write_u32(16, 0xFEED);
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 1,
                tag: 1,
                ls_addr: 16,
                mem_addr: 0x3000,
                kind: DmaKind::Put { bytes: 4 },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.read_u32(0x3000), 0xFEED);
    }

    #[test]
    fn queue_capacity_enforced() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        let cmd = |tag| DmaCommand {
            owner: 0,
            tag,
            ls_addr: 0,
            mem_addr: 0,
            kind: DmaKind::Get { bytes: 4096 },
        };
        for i in 0..16 {
            assert!(
                mfc.enqueue(0, cmd(i), &mut sys, &mut ls, &mut mem)
                    .is_some(),
                "command {i} should fit"
            );
        }
        // 17th at cycle 0 is rejected.
        assert!(mfc
            .enqueue(0, cmd(16), &mut sys, &mut ls, &mut mem)
            .is_none());
        assert_eq!(mfc.stats().queue_full_rejections, 1);
        // ...but after everything drains there is room again.
        assert!(mfc
            .enqueue(1_000_000, cmd(16), &mut sys, &mut ls, &mut mem)
            .is_some());
    }

    #[test]
    fn command_processing_is_serial() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        let cmd = |tag| DmaCommand {
            owner: 0,
            tag,
            ls_addr: 0,
            mem_addr: 0,
            kind: DmaKind::Get { bytes: 4 },
        };
        let a = mfc.enqueue(0, cmd(0), &mut sys, &mut ls, &mut mem).unwrap();
        let b = mfc.enqueue(0, cmd(1), &mut sys, &mut ls, &mut mem).unwrap();
        // The second command could not start processing before cycle 30.
        assert!(b.at >= a.at.min(30 + 30), "b at {}", b.at);
        assert!(b.at > a.at);
    }

    #[test]
    fn transfers_overlap_despite_serial_commands() {
        // Two large gets: the second's *transfer* should overlap the
        // first's, so total time is far less than 2x one transfer.
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        let big = |tag| DmaCommand {
            owner: 0,
            tag,
            ls_addr: 0,
            mem_addr: 0,
            kind: DmaKind::Get { bytes: 16384 },
        };
        let a = mfc.enqueue(0, big(0), &mut sys, &mut ls, &mut mem).unwrap();
        let b = mfc.enqueue(0, big(1), &mut sys, &mut ls, &mut mem).unwrap();
        // Serial would be >= 2x; overlap on bus (4 lanes) keeps it well
        // under. The memory port is the shared bottleneck.
        let one = a.at;
        assert!(b.at < 2 * one, "no overlap: a={} b={}", a.at, b.at);
    }

    #[test]
    fn zero_byte_transfer_completes_at_issue() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        let c = mfc
            .enqueue(
                5,
                DmaCommand {
                    owner: 0,
                    tag: 0,
                    ls_addr: 0,
                    mem_addr: 0,
                    kind: DmaKind::Get { bytes: 0 },
                },
                &mut sys,
                &mut ls,
                &mut mem,
            )
            .unwrap();
        assert_eq!(c.at, 5 + 30);
    }

    #[test]
    fn stats_accumulate() {
        let (mut mfc, mut sys, mut ls, mut mem) = rig();
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 0,
                tag: 0,
                ls_addr: 0,
                mem_addr: 0,
                kind: DmaKind::Get { bytes: 128 },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        );
        mfc.enqueue(
            0,
            DmaCommand {
                owner: 0,
                tag: 1,
                ls_addr: 0,
                mem_addr: 0x100,
                kind: DmaKind::GetStrided {
                    elem_bytes: 4,
                    count: 8,
                    stride: 64,
                },
            },
            &mut sys,
            &mut ls,
            &mut mem,
        );
        let s = mfc.stats();
        assert_eq!(s.commands, 2);
        assert_eq!(s.bytes, 128 + 32);
    }
}
