//! Deterministic fault rolls for the injection layer.
//!
//! Every fault decision in the simulator is a *pure function* of
//! `(seed, site, key)` — there is no shared RNG state. This is what makes
//! fault schedules reproducible and bit-identical across the sequential
//! and epoch-sharded engines: the engines evaluate the same rolls for the
//! same stable identifiers (per-MFC command index, message stamp, per-DSE
//! request counter) regardless of host thread interleaving, and neither
//! engine can desynchronise the other by consuming "extra" random numbers.
//!
//! Rates are expressed in parts-per-million so configuration stays
//! integer-only (and therefore `Eq`/hashable).

/// Site salt: per-attempt transient DMA command failure.
pub const SITE_DMA_FAIL: u64 = 0x444D_4146; // "DMAF"
/// Site salt: permanent DMA command stall.
pub const SITE_DMA_STALL: u64 = 0x444D_4153; // "DMAS"
/// Site salt: protocol message drop (recovered by re-send).
pub const SITE_MSG_DROP: u64 = 0x4D53_4744; // "MSGD"
/// Site salt: protocol message duplication.
pub const SITE_MSG_DUP: u64 = 0x4D53_4755; // "MSGU"
/// Site salt: protocol message delay.
pub const SITE_MSG_DELAY: u64 = 0x4D53_474C; // "MSGL"
/// Site salt: FALLOC arbitration denial (simulated frame exhaustion).
pub const SITE_FALLOC_DENY: u64 = 0x4641_4C44; // "FALD"
/// Site salt: per-node DSE crash (silences the node's scheduler at a
/// planned cycle; recovered by deterministic failover to a live peer).
pub const SITE_DSE_CRASH: u64 = 0x4453_4543; // "DSEC"
/// Site salt: per-PE LSE crash (kills a single PE's scheduler while its
/// node's DSE survives; recovered by frame evacuation / re-admission to a
/// live same-node peer LSE).
pub const SITE_LSE_CRASH: u64 = 0x4C53_4543; // "LSEC"

/// SplitMix64 finaliser: a high-quality 64-bit avalanche mix.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Stateless Bernoulli roll: does the fault at `site` fire for `key`?
///
/// `ppm` is the firing probability in parts-per-million (0 = never,
/// 1_000_000 = always).
#[inline]
pub fn roll(seed: u64, site: u64, key: u64, ppm: u32) -> bool {
    if ppm == 0 {
        return false;
    }
    if ppm >= 1_000_000 {
        return true;
    }
    mix64(mix64(seed ^ site).wrapping_add(key)) % 1_000_000 < ppm as u64
}

/// Per-MFC DMA fault configuration (derived from the system-level fault
/// plan; `salt` distinguishes PEs so each engine rolls its own schedule).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaFaultPlan {
    /// Global fault seed.
    pub seed: u64,
    /// Per-MFC salt (the global PE index).
    pub salt: u64,
    /// Per-attempt transient failure probability (ppm).
    pub fail_ppm: u32,
    /// Per-command permanent stall probability (ppm).
    pub stall_ppm: u32,
    /// Maximum retries after the first attempt before the engine gives up
    /// and escalates (marking the PE degraded).
    pub retry_budget: u32,
    /// Backoff after the first failed attempt, in cycles; doubles per
    /// retry (exponential backoff).
    pub backoff_base: u64,
}

/// The fully resolved outcome of one DMA command under a fault plan,
/// computed at *admission* time so both engines decide it at the same
/// logical point (shard-local admit order equals barrier commit order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaPlan {
    /// Engine attempts this command will consume (1 = clean first try).
    pub attempts: u32,
    /// Total backoff cycles added to the command's processing time.
    pub penalty: u64,
    /// The retry budget ran out; the transfer still completes via the
    /// fail-safe slow path but the owning PE must be marked degraded.
    pub exhausted: bool,
    /// The command is stuck forever: data never moves and no completion
    /// is ever delivered (the watchdog converts this into a typed error).
    pub stalled: bool,
}

impl DmaPlan {
    /// The fault-free outcome.
    pub const CLEAN: DmaPlan = DmaPlan {
        attempts: 1,
        penalty: 0,
        exhausted: false,
        stalled: false,
    };
}

impl DmaFaultPlan {
    /// Resolves the outcome for the `cmd_index`-th admitted command of
    /// this MFC. Pure: depends only on the plan and the index.
    pub fn plan(&self, cmd_index: u64) -> DmaPlan {
        let base = (self.salt << 40) ^ cmd_index;
        if roll(self.seed, SITE_DMA_STALL, base, self.stall_ppm) {
            return DmaPlan {
                attempts: 1,
                penalty: 0,
                exhausted: false,
                stalled: true,
            };
        }
        let mut attempts: u32 = 1;
        let mut penalty: u64 = 0;
        loop {
            let key = (self.salt << 40) ^ (cmd_index << 8) ^ (attempts - 1) as u64;
            if !roll(self.seed, SITE_DMA_FAIL, key, self.fail_ppm) {
                return DmaPlan {
                    attempts,
                    penalty,
                    exhausted: false,
                    stalled: false,
                };
            }
            if attempts > self.retry_budget {
                return DmaPlan {
                    attempts,
                    penalty,
                    exhausted: true,
                    stalled: false,
                };
            }
            penalty += self.backoff_base << (attempts - 1).min(16);
            attempts += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roll_is_pure_and_seed_sensitive() {
        let a = roll(1, SITE_DMA_FAIL, 42, 500_000);
        assert_eq!(a, roll(1, SITE_DMA_FAIL, 42, 500_000));
        // Over many keys, different seeds must disagree somewhere.
        let diff = (0..1000u64)
            .filter(|&k| roll(1, SITE_DMA_FAIL, k, 500_000) != roll(2, SITE_DMA_FAIL, k, 500_000))
            .count();
        assert!(diff > 0);
    }

    #[test]
    fn roll_edges() {
        assert!(!roll(7, SITE_MSG_DROP, 3, 0));
        assert!(roll(7, SITE_MSG_DROP, 3, 1_000_000));
    }

    #[test]
    fn roll_rate_is_roughly_honoured() {
        let hits = (0..100_000u64)
            .filter(|&k| roll(9, SITE_MSG_DELAY, k, 100_000))
            .count();
        // 10% +- 1.5%.
        assert!((8_500..=11_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn always_fail_exhausts_at_budget() {
        let p = DmaFaultPlan {
            seed: 1,
            salt: 0,
            fail_ppm: 1_000_000,
            stall_ppm: 0,
            retry_budget: 3,
            backoff_base: 64,
        };
        let out = p.plan(0);
        assert!(out.exhausted);
        assert!(!out.stalled);
        assert_eq!(out.attempts, 4); // first try + 3 retries
        assert_eq!(out.penalty, 64 + 128 + 256);
    }

    #[test]
    fn never_fail_is_clean() {
        let p = DmaFaultPlan {
            seed: 1,
            salt: 5,
            fail_ppm: 0,
            stall_ppm: 0,
            retry_budget: 3,
            backoff_base: 64,
        };
        assert_eq!(p.plan(123), DmaPlan::CLEAN);
    }

    #[test]
    fn plans_differ_across_salts_but_replay_identically() {
        let mk = |salt| DmaFaultPlan {
            seed: 0xABCD,
            salt,
            fail_ppm: 300_000,
            stall_ppm: 10_000,
            retry_budget: 4,
            backoff_base: 32,
        };
        let a: Vec<_> = (0..256).map(|i| mk(0).plan(i)).collect();
        let b: Vec<_> = (0..256).map(|i| mk(1).plan(i)).collect();
        assert_ne!(a, b);
        let a2: Vec<_> = (0..256).map(|i| mk(0).plan(i)).collect();
        assert_eq!(a, a2);
    }
}
