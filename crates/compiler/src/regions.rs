//! Prefetch-region planning.
//!
//! Converts the per-`READ` symbolic addresses of [`crate::analysis`] into
//! a set of DMA transfer descriptors ("regions") plus a read→region
//! assignment. This implements the paper's §3 requirement that
//! "prefetching can be tuned in order to prefetch not a single datum but
//! more data depending on the situation":
//!
//! * a read with no loop-counter terms fetches a single element, and
//!   nearby single elements with the same symbolic base are **coalesced**
//!   into one transfer;
//! * a read that walks an affine sequence across enclosing counted loops
//!   fetches its **bounding box** in one contiguous transfer when that
//!   fits the buffer budget (this also collapses nested row-major walks);
//! * a large-stride walk whose bounding box would be wasteful degrades to
//!   a **packed strided gather** (one DMA transaction, as the paper notes
//!   the hardware supports) when the stride is a power of two, which
//!   keeps the EX-side address translation cheap (shifts).

use crate::analysis::{Analysis, ReadClass};
use crate::sym::Affine;
use std::collections::BTreeMap;

/// Planner options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlanOptions {
    /// Maximum bytes of one region (and cap on the per-instance buffer).
    pub max_region_bytes: u32,
    /// Merge single-element reads whose gap is at most this many bytes.
    pub merge_gap: u32,
    /// Allow packed strided gathers (disable to force bounding boxes —
    /// useful for ablations).
    pub allow_strided: bool,
    /// Whole-structure prefetch for bounded data-dependent reads (masked
    /// table indices). Off by default — the paper's initial
    /// implementation leaves these in place and flags them for "the next
    /// releases of our simulator" (§4.3).
    pub whole_object: bool,
    /// A whole-structure fetch is only worthwhile when the object is read
    /// at least this many times per instance (statically: reads sharing
    /// the region, times any enclosing constant trip count). The paper's
    /// rationale: "it is faster to leave one memory access inside the
    /// thread rather than prefetch all elements of the array when only
    /// one will be used".
    pub whole_object_min_uses: u64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_region_bytes: 16 * 1024,
            merge_gap: 64,
            allow_strided: true,
            whole_object: false,
            whole_object_min_uses: 2,
        }
    }
}

/// Why a decouplable read was nevertheless left in place.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// Address depends on memory contents (paper: left in the thread).
    DataDependent,
    /// An enclosing loop has no recognisable constant trip count.
    NoConstantTrip,
    /// Region would exceed `max_region_bytes` and no strided fallback
    /// applies.
    TooLarge,
    /// A bounded data-dependent read whose whole object is not fetched:
    /// either `whole_object` is off (the paper's configuration) or the
    /// expected number of uses does not pay for the transfer.
    NotWorthwhile,
}

/// The shape of one DMA transfer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionShape {
    /// Contiguous block of `bytes` (placed at natural offsets: LS address
    /// = mem address − base + buffer offset).
    Block {
        /// Transfer size.
        bytes: u32,
    },
    /// Packed gather: `count` 4-byte elements `stride` bytes apart,
    /// packed contiguously in the buffer. `log2_stride` drives the
    /// EX-side shift-based translation.
    Strided {
        /// Element count.
        count: u32,
        /// Main-memory stride (power of two).
        stride: i64,
    },
}

impl RegionShape {
    /// Bytes of prefetch buffer the region occupies.
    pub fn buffer_bytes(&self) -> u32 {
        match *self {
            RegionShape::Block { bytes } => bytes,
            RegionShape::Strided { count, .. } => count * 4,
        }
    }
}

/// One planned region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Region {
    /// Loop-invariant main-memory base address (affine over inputs).
    pub base: Affine,
    /// Transfer shape.
    pub shape: RegionShape,
    /// Byte offset of this region inside the instance's prefetch buffer
    /// (16-aligned).
    pub pf_offset: u32,
}

/// The complete plan for one thread.
#[derive(Clone, Debug, Default)]
pub struct Plan {
    /// Planned regions.
    pub regions: Vec<Region>,
    /// read pc → region index.
    pub assignment: BTreeMap<u32, usize>,
    /// Reads left in place, with reasons.
    pub skipped: Vec<(u32, SkipReason)>,
    /// Total prefetch-buffer bytes needed per instance.
    pub buffer_bytes: u32,
}

/// Signature used to coalesce single-element reads: the input-coefficient
/// part of the base (two addresses with equal signatures differ by a
/// constant).
fn base_signature(a: &Affine) -> Vec<(u16, i64)> {
    a.inputs.iter().map(|(k, v)| (*k, *v)).collect()
}

/// The PF code generator materialises input coefficients as `MUL`
/// immediates; bases whose coefficients do not fit cannot be emitted
/// faithfully and must stay as READs.
fn emittable(a: &Affine) -> bool {
    a.inputs.values().all(|&c| i32::try_from(c).is_ok())
}

/// Builds the region plan from an analysis.
pub fn plan(analysis: &Analysis, opts: &PlanOptions) -> Plan {
    let mut plan = Plan::default();

    // Candidate descriptors before offset assignment/merging:
    // (read pc, base, shape).
    let mut singles: Vec<(u32, Affine)> = Vec::new();
    let mut shaped: Vec<(u32, Affine, RegionShape)> = Vec::new();
    // Whole-object candidates: (pc, box base, extent, expected uses).
    let mut bounded: Vec<(u32, Affine, i64, u64)> = Vec::new();

    'reads: for read in &analysis.reads {
        let addr = match &read.class {
            ReadClass::Decouplable(a) => a,
            ReadClass::BoundedObject { base, span } => {
                if !opts.whole_object {
                    plan.skipped.push((read.pc, SkipReason::NotWorthwhile));
                    continue;
                }
                // Box = affine box of the base plus the bounded span.
                let mut b = base.clone();
                let mut lo = 0i64;
                let mut extent = 4i64 + *span as i64;
                let mut uses = 1u64;
                for (&l, &coeff) in &base.inductions.clone() {
                    let Some(trip) = analysis.trip(l).and_then(|t| t.as_const()) else {
                        plan.skipped.push((read.pc, SkipReason::NoConstantTrip));
                        continue 'reads;
                    };
                    let trip = trip.max(1);
                    uses = uses.saturating_mul(trip as u64);
                    let reach = coeff * (trip - 1);
                    lo += reach.min(0);
                    extent += reach.abs();
                    b = b.subst_induction(l, &Affine::konst(0));
                }
                // Enclosing loops the address does not vary with still
                // multiply the number of uses.
                for &l in &read.enclosing {
                    if base.induction_coeff(l) == 0 {
                        if let Some(t) = analysis.trip(l).and_then(|t| t.as_const()) {
                            uses = uses.saturating_mul(t.max(1) as u64);
                        }
                    }
                }
                let bb = b.add(&Affine::konst(lo));
                if extent > opts.max_region_bytes as i64 || !emittable(&bb) {
                    plan.skipped.push((read.pc, SkipReason::TooLarge));
                    continue;
                }
                bounded.push((read.pc, bb, extent, uses));
                continue;
            }
            ReadClass::DataDependent => {
                plan.skipped.push((read.pc, SkipReason::DataDependent));
                continue;
            }
        };
        if addr.inductions.is_empty() {
            if !emittable(addr) {
                plan.skipped.push((read.pc, SkipReason::TooLarge));
                continue;
            }
            singles.push((read.pc, addr.clone()));
            continue;
        }
        // All loop terms need constant trip counts.
        let mut spans: Vec<(i64, i64)> = Vec::new(); // (coeff, trip)
        for (&l, &coeff) in &addr.inductions {
            match analysis.trip(l).and_then(|t| t.as_const()) {
                Some(t) if t > 0 => spans.push((coeff, t)),
                Some(_) => {
                    // Zero-trip loop: the read never executes; fetch one
                    // element so translation stays valid.
                    spans.push((coeff, 1));
                }
                None => {
                    plan.skipped.push((read.pc, SkipReason::NoConstantTrip));
                    continue 'reads;
                }
            }
        }
        // Bounding box.
        let mut base = addr.clone();
        for &l in addr.inductions.clone().keys() {
            base = base.subst_induction(l, &Affine::konst(0));
        }
        let mut lo = 0i64;
        let mut extent = 4i64;
        for &(coeff, trip) in &spans {
            let reach = coeff * (trip - 1);
            lo += reach.min(0);
            extent += reach.abs();
        }
        let box_base = base.add(&Affine::konst(lo));
        if !emittable(&box_base) {
            plan.skipped.push((read.pc, SkipReason::TooLarge));
            continue;
        }
        if extent <= opts.max_region_bytes as i64 {
            shaped.push((
                read.pc,
                box_base,
                RegionShape::Block {
                    bytes: extent as u32,
                },
            ));
            continue;
        }
        // Strided fallback: single positive power-of-two stride.
        if opts.allow_strided && spans.len() == 1 {
            let (stride, count) = spans[0];
            if stride > 4
                && (stride as u64).is_power_of_two()
                && count * 4 <= opts.max_region_bytes as i64
            {
                shaped.push((
                    read.pc,
                    base,
                    RegionShape::Strided {
                        count: count as u32,
                        stride,
                    },
                ));
                continue;
            }
        }
        plan.skipped.push((read.pc, SkipReason::TooLarge));
    }

    // Coalesce singles by signature.
    singles.sort_by_key(|a| (base_signature(&a.1), a.1.konst));
    let mut i = 0;
    while i < singles.len() {
        let sig = base_signature(&singles[i].1);
        let start = singles[i].1.konst;
        let mut end = start + 4;
        let mut members = vec![singles[i].0];
        let mut j = i + 1;
        while j < singles.len()
            && base_signature(&singles[j].1) == sig
            && singles[j].1.konst <= end + opts.merge_gap as i64
            && (singles[j].1.konst + 4 - start) <= opts.max_region_bytes as i64
        {
            end = end.max(singles[j].1.konst + 4);
            members.push(singles[j].0);
            j += 1;
        }
        let mut base = singles[i].1.clone();
        base.konst = start;
        let idx = plan.regions.len();
        plan.regions.push(Region {
            base,
            shape: RegionShape::Block {
                bytes: (end - start) as u32,
            },
            pf_offset: 0,
        });
        for pc in members {
            plan.assignment.insert(pc, idx);
        }
        i = j;
    }

    // Shaped regions are one-per-read.
    for (pc, base, shape) in shaped {
        let idx = plan.regions.len();
        plan.regions.push(Region {
            base,
            shape,
            pf_offset: 0,
        });
        plan.assignment.insert(pc, idx);
    }

    // Whole-object candidates: group identical regions (same base, same
    // extent); a group is worthwhile when its total expected uses pay for
    // one transfer.
    bounded.sort_by_key(|a| (base_signature(&a.1), a.1.konst, a.2));
    let mut i = 0;
    while i < bounded.len() {
        let mut j = i + 1;
        let mut uses = bounded[i].3;
        while j < bounded.len() && bounded[j].1 == bounded[i].1 && bounded[j].2 == bounded[i].2 {
            uses = uses.saturating_add(bounded[j].3);
            j += 1;
        }
        if uses >= opts.whole_object_min_uses {
            let idx = plan.regions.len();
            plan.regions.push(Region {
                base: bounded[i].1.clone(),
                shape: RegionShape::Block {
                    bytes: bounded[i].2 as u32,
                },
                pf_offset: 0,
            });
            for item in &bounded[i..j] {
                plan.assignment.insert(item.0, idx);
            }
        } else {
            for item in &bounded[i..j] {
                plan.skipped.push((item.0, SkipReason::NotWorthwhile));
            }
        }
        i = j;
    }

    // Assign 16-aligned buffer offsets.
    let mut off = 0u32;
    for r in &mut plan.regions {
        r.pf_offset = off;
        off += r.shape.buffer_bytes().div_ceil(16) * 16;
    }
    plan.buffer_bytes = off;
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use dta_isa::{reg::r, BrCond, ThreadBuilder};

    fn plan_of(t: dta_isa::ThreadCode, opts: PlanOptions) -> Plan {
        plan(&analyze(&t).unwrap(), &opts)
    }

    #[test]
    fn single_elements_with_shared_base_coalesce() {
        // reads at in0+0, in0+8, in0+16 -> one 20-byte block.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.read(r(5), r(3), 8);
        t.read(r(6), r(3), 16);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].shape, RegionShape::Block { bytes: 20 });
        assert_eq!(p.assignment.len(), 3);
        assert_eq!(p.buffer_bytes, 32); // 20 rounded to 16-alignment
    }

    #[test]
    fn distant_elements_do_not_coalesce() {
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.read(r(5), r(3), 10_000);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 2);
    }

    #[test]
    fn different_bases_do_not_coalesce() {
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.load(r(4), 1);
        t.begin_ex();
        t.read(r(5), r(3), 0);
        t.read(r(6), r(4), 0);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 2);
    }

    fn loop_read(n: i32, elem_stride_shift: u8) -> dta_isa::ThreadCode {
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n, done);
        t.shl(r(6), r(4), elem_stride_shift as i32);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        t.build()
    }

    #[test]
    fn unit_stride_loop_becomes_block() {
        let p = plan_of(loop_read(32, 2), PlanOptions::default());
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].shape, RegionShape::Block { bytes: 128 });
        assert!(p.skipped.is_empty());
    }

    #[test]
    fn large_stride_degrades_to_packed_gather() {
        // stride 1024 over 32 iterations: box = 31*1024+4 > cap; strided
        // packs into 128 bytes.
        let opts = PlanOptions {
            max_region_bytes: 4096,
            ..PlanOptions::default()
        };
        let p = plan_of(loop_read(32, 10), opts);
        assert_eq!(p.regions.len(), 1);
        assert_eq!(
            p.regions[0].shape,
            RegionShape::Strided {
                count: 32,
                stride: 1024
            }
        );
    }

    #[test]
    fn strided_fallback_can_be_disabled() {
        let opts = PlanOptions {
            max_region_bytes: 4096,
            allow_strided: false,
            ..PlanOptions::default()
        };
        let p = plan_of(loop_read(32, 10), opts);
        assert!(p.regions.is_empty());
        assert_eq!(p.skipped, vec![(5, SkipReason::TooLarge)]);
    }

    fn table_lookup_thread(lookups: usize) -> dta_isa::ThreadCode {
        // x = mem[in0]; repeat: acc += T[(x >> 8k) & 0xFF]
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0); // data-dependent source value
        for k in 0..lookups {
            t.shr(r(5), r(4), (k as i32 * 8) % 24);
            t.and(r(5), r(5), 0xFF);
            t.shl(r(5), r(5), 2);
            t.li(r(6), 0x2000);
            t.add(r(6), r(6), r(5));
            t.read(r(7), r(6), 0);
            t.add(r(8), r(8), r(7));
        }
        t.stop();
        t.build()
    }

    #[test]
    fn whole_object_off_skips_bounded_reads() {
        let p = plan_of(table_lookup_thread(4), PlanOptions::default());
        // Only the source read is prefetched; the 4 lookups are skipped
        // as not worthwhile (the paper's configuration).
        assert_eq!(p.assignment.len(), 1);
        assert_eq!(
            p.skipped
                .iter()
                .filter(|(_, r)| *r == SkipReason::NotWorthwhile)
                .count(),
            4
        );
    }

    #[test]
    fn whole_object_groups_shared_tables() {
        let opts = PlanOptions {
            whole_object: true,
            ..PlanOptions::default()
        };
        let p = plan_of(table_lookup_thread(4), opts);
        // Source read + ONE region covering the whole 1 KiB table.
        assert_eq!(p.assignment.len(), 5);
        assert_eq!(p.regions.len(), 2);
        assert!(p
            .regions
            .iter()
            .any(|r| r.shape == RegionShape::Block { bytes: 1024 }));
        assert!(p.skipped.is_empty());
    }

    #[test]
    fn single_use_whole_object_is_not_worthwhile() {
        let opts = PlanOptions {
            whole_object: true,
            ..PlanOptions::default()
        };
        let p = plan_of(table_lookup_thread(1), opts);
        // One lookup of a 1 KiB table: leave the READ in place, exactly
        // the paper's bitcnt decision.
        assert_eq!(
            p.skipped
                .iter()
                .filter(|(_, r)| *r == SkipReason::NotWorthwhile)
                .count(),
            1
        );
    }

    #[test]
    fn data_dependent_reads_are_skipped() {
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.read(r(5), r(4), 0); // depends on the first read's data
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.skipped.len(), 1);
        assert_eq!(p.skipped[0].1, SkipReason::DataDependent);
    }

    #[test]
    fn nested_row_major_walk_collapses_into_one_block() {
        // for i in 0..4 { for j in 0..8 { read in0 + i*32 + j*4 } }:
        // bounding box = 4*32 = 128 bytes, contiguous.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0);
        let otop = t.label_here();
        let odone = t.new_label();
        t.br(BrCond::Ge, r(4), 4, odone);
        t.li(r(5), 0);
        let itop = t.label_here();
        let idone = t.new_label();
        t.br(BrCond::Ge, r(5), 8, idone);
        t.mul(r(6), r(4), 32);
        t.shl(r(7), r(5), 2);
        t.add(r(6), r(6), r(7));
        t.add(r(6), r(3), r(6));
        t.read(r(8), r(6), 0);
        t.add(r(5), r(5), 1);
        t.jmp(itop);
        t.bind(idone);
        t.add(r(4), r(4), 1);
        t.jmp(otop);
        t.bind(odone);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].shape, RegionShape::Block { bytes: 128 });
    }

    #[test]
    fn unknown_trip_is_skipped() {
        // Bound is a data-dependent value.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(8), r(3), 0); // n loaded from memory
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), r(8), done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 4);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        // The scalar read of n is prefetchable; the loop body read is not.
        assert_eq!(p.regions.len(), 1);
        assert!(p
            .skipped
            .iter()
            .any(|(_, r)| *r == SkipReason::NoConstantTrip));
    }

    #[test]
    fn negative_stride_boxes_from_the_low_end() {
        // read in0 - i*4 for i in 0..8: box base = in0 - 28, 32 bytes.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), 8, done);
        t.mul(r(6), r(4), -4);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let p = plan_of(t.build(), PlanOptions::default());
        assert_eq!(p.regions.len(), 1);
        assert_eq!(p.regions[0].base.konst, -28);
        assert_eq!(p.regions[0].shape, RegionShape::Block { bytes: 32 });
    }
}
