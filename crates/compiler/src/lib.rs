//! # dta-compiler — the automatic prefetch transformation
//!
//! The paper adds the DMA-prefetching code blocks to its benchmarks *by
//! hand* and names compiler automation as future work ("the compiler has
//! to recognize when a thread uses different types of global data, and be
//! able to insert the prefetch instructions in the PreFetch code block",
//! §3). This crate implements that compiler:
//!
//! * [`analysis`] — a sound symbolic dataflow analysis that classifies
//!   every main-memory `READ` as *decouplable* (address computable before
//!   EX from frame inputs, constants, and counted-loop induction
//!   variables) or *data-dependent* (the bitcnt case the paper leaves in
//!   place);
//! * [`loops`] — natural-loop detection with induction variables and trip
//!   counts;
//! * [`regions`] — DMA region planning: element coalescing, bounding-box
//!   fetches for (nested) affine walks, packed strided gathers;
//! * [`transform`] — PF-block synthesis and the `READ` → local-store
//!   rewrite of the paper's Fig. 3, including the `DMAYIELD` that enables
//!   the non-blocking "Wait for DMA" state of Fig. 4.
//!
//! ```
//! use dta_compiler::{prefetch_program, TransformOptions};
//! use dta_isa::{ProgramBuilder, ThreadBuilder, reg::r};
//!
//! let mut pb = ProgramBuilder::new();
//! let arr = pb.global_words("arr", &[1, 2, 3, 4]);
//! let main = pb.declare("main");
//! let mut t = ThreadBuilder::new("main");
//! t.begin_ex();
//! t.li(r(3), arr as i64);
//! t.read(r(4), r(3), 0);   // decouplable
//! t.read(r(5), r(3), 4);   // coalesces with the first
//! t.begin_ps();
//! t.ffree_self();
//! t.stop();
//! pb.define(main, t);
//! pb.set_entry(main, 0);
//!
//! let (prefetched, report) = prefetch_program(&pb.build(), &TransformOptions::default());
//! assert_eq!(report.total_decoupled(), 2);
//! assert!(prefetched.threads[0].blocks.pf_end > 0);
//! ```

pub mod analysis;
pub mod loops;
pub mod regions;
pub mod sym;
pub mod transform;

pub use analysis::{analyze, Analysis, ReadClass, ReadInfo};
pub use loops::{find_loops, Loop, LoopError};
pub use regions::{plan, Plan, PlanOptions, Region, RegionShape, SkipReason};
pub use sym::{Affine, Sym};
pub use transform::{
    prefetch_program, prefetch_thread, ProgramReport, ThreadReport, ThreadSkip, TransformOptions,
};
