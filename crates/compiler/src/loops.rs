//! Natural-loop detection over a thread's flat instruction list.
//!
//! Threads built by `dta_isa::builder` (and anything the assembler
//! accepts) have their loops laid out as contiguous ranges `[header,
//! latch]` with a backward edge from the latch region to the header. This
//! module finds those ranges, checks structural sanity (proper nesting,
//! no branches into a loop from outside), and recognises the canonical
//! counted-loop shapes so the analysis can attach trip counts:
//!
//! * **header-guarded**: `header: br {ge,geu} i, bound, exit; ...;
//!   add i, i, step; jmp header` (what the builder's loop idiom emits);
//! * **latch-guarded**: `...; add i, i, step; br {lt,ltu,ne} i, bound,
//!   header` (do-while form).

use crate::sym::LoopId;
use dta_isa::{BrCond, Instr, Reg, ThreadCode};
use std::collections::BTreeMap;

/// A natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// Loop id (index in the loop table, outermost-first by header).
    pub id: LoopId,
    /// First instruction of the loop body (branch target of the back
    /// edge).
    pub header: u32,
    /// The instruction carrying the back edge.
    pub latch: u32,
    /// Induction registers: single in-loop definition `r = r + step`
    /// outside any inner loop.
    pub inductions: BTreeMap<Reg, i64>,
    /// The loop guard, when the shape was recognised.
    pub guard: Option<Guard>,
}

/// A recognised loop guard (gives the trip count).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Guard {
    /// The guarded induction register.
    pub reg: Reg,
    /// pc of the guard branch.
    pub at: u32,
    /// The bound operand (register or immediate, as written).
    pub bound: dta_isa::Src,
    /// Guard condition as written.
    pub cond: BrCond,
    /// `true` when the guard sits at the header (exit-if-taken), `false`
    /// for a latch guard (continue-if-taken).
    pub at_header: bool,
}

impl Loop {
    /// Does the loop body contain `pc`?
    #[inline]
    pub fn contains(&self, pc: u32) -> bool {
        self.header <= pc && pc <= self.latch
    }
}

/// Why a thread cannot be analysed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoopError {
    /// Two loops overlap without nesting.
    ImproperNesting { a: u32, b: u32 },
    /// A branch from outside a loop targets the middle of its body.
    EntryIntoLoop { from: u32, to: u32 },
}

impl std::fmt::Display for LoopError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoopError::ImproperNesting { a, b } => {
                write!(
                    f,
                    "loops with headers at {a} and {b} overlap without nesting"
                )
            }
            LoopError::EntryIntoLoop { from, to } => {
                write!(f, "branch at {from} enters a loop body at {to}")
            }
        }
    }
}

/// Finds all natural loops in a thread.
pub fn find_loops(thread: &ThreadCode) -> Result<Vec<Loop>, LoopError> {
    let code = &thread.code;

    // Back edges: control transfer to a pc <= source.
    let mut ranges: Vec<(u32, u32)> = Vec::new(); // (header, latch)
    for (pc, instr) in code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(t) = instr.target() {
            if t <= pc {
                // Merge back edges sharing a header: keep the farthest
                // latch.
                if let Some(r) = ranges.iter_mut().find(|r| r.0 == t) {
                    r.1 = r.1.max(pc);
                } else {
                    ranges.push((t, pc));
                }
            }
        }
    }
    ranges.sort();

    // Proper nesting: for any two ranges, disjoint or nested.
    for i in 0..ranges.len() {
        for j in i + 1..ranges.len() {
            let (h1, l1) = ranges[i];
            let (h2, l2) = ranges[j];
            let disjoint = l1 < h2 || l2 < h1;
            let nested = (h1 <= h2 && l2 <= l1) || (h2 <= h1 && l1 <= l2);
            if !disjoint && !nested {
                return Err(LoopError::ImproperNesting { a: h1, b: h2 });
            }
        }
    }

    // No entries into a loop body from outside (other than the header).
    for (pc, instr) in code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(t) = instr.target() {
            for &(h, l) in &ranges {
                let target_inside = t > h && t <= l;
                let source_outside = pc < h || pc > l;
                if target_inside && source_outside {
                    return Err(LoopError::EntryIntoLoop { from: pc, to: t });
                }
            }
        }
    }

    let mut loops: Vec<Loop> = Vec::new();
    for (idx, &(header, latch)) in ranges.iter().enumerate() {
        // Inner loops of this one (strictly contained).
        let inner: Vec<(u32, u32)> = ranges
            .iter()
            .copied()
            .filter(|&(h, l)| (h > header || l < latch) && h >= header && l <= latch)
            .collect();
        let in_inner = |pc: u32| -> bool { inner.iter().any(|&(h, l)| pc >= h && pc <= l) };

        // Induction candidates: count defs per register inside the body.
        let mut def_count: BTreeMap<Reg, u32> = BTreeMap::new();
        for pc in header..=latch {
            for r in &code[pc as usize].defs() {
                *def_count.entry(r).or_insert(0) += 1;
            }
        }
        let mut inductions = BTreeMap::new();
        for pc in header..=latch {
            if in_inner(pc) {
                continue;
            }
            if let Instr::Alu {
                op: dta_isa::AluOp::Add,
                rd,
                ra,
                rb: dta_isa::Src::Imm(step),
            } = code[pc as usize]
            {
                if rd == ra && def_count.get(&rd) == Some(&1) && step != 0 {
                    inductions.insert(rd, step as i64);
                }
            }
        }

        // Guard recognition.
        let guard = recognise_guard(code, header, latch, &inductions);

        loops.push(Loop {
            id: idx as LoopId,
            header,
            latch,
            inductions,
            guard,
        });
    }
    Ok(loops)
}

fn recognise_guard(
    code: &[Instr],
    header: u32,
    latch: u32,
    inductions: &BTreeMap<Reg, i64>,
) -> Option<Guard> {
    // Header guard: `br {ge,geu} i, bound, exit` with exit beyond the latch.
    if let Instr::Br {
        cond,
        ra,
        rb,
        target,
    } = code[header as usize]
    {
        if matches!(cond, BrCond::Ge | BrCond::Geu)
            && target > latch
            && inductions.contains_key(&ra)
        {
            return Some(Guard {
                reg: ra,
                at: header,
                bound: rb,
                cond,
                at_header: true,
            });
        }
    }
    // Latch guard: `br {lt,ltu,ne} i, bound, header`.
    if let Instr::Br {
        cond,
        ra,
        rb,
        target,
    } = code[latch as usize]
    {
        if matches!(cond, BrCond::Lt | BrCond::Ltu | BrCond::Ne)
            && target == header
            && inductions.contains_key(&ra)
        {
            return Some(Guard {
                reg: ra,
                at: latch,
                bound: rb,
                cond,
                at_header: false,
            });
        }
    }
    None
}

/// Innermost loop containing `pc`.
pub fn innermost_containing(loops: &[Loop], pc: u32) -> Option<&Loop> {
    loops
        .iter()
        .filter(|l| l.contains(pc))
        .min_by_key(|l| l.latch - l.header)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_isa::{reg::r, BrCond, ThreadBuilder};

    fn counted_loop_thread() -> ThreadCode {
        // for (i = 0; i < 10; i++) { sum += i }
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 0); // i
        t.li(r(4), 0); // sum
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(3), 10, done);
        t.add(r(4), r(4), r(3));
        t.add(r(3), r(3), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        t.build()
    }

    #[test]
    fn finds_counted_loop_with_guard() {
        let t = counted_loop_thread();
        let loops = find_loops(&t).unwrap();
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, 2);
        assert_eq!(l.latch, 5);
        assert_eq!(l.inductions[&r(3)], 1);
        assert!(!l.inductions.contains_key(&r(4))); // sum += i is not i += c
        let g = l.guard.expect("guard recognised");
        assert_eq!(g.reg, r(3));
        assert!(g.at_header);
        assert_eq!(g.cond, BrCond::Ge);
    }

    #[test]
    fn latch_guarded_loop_recognised() {
        // do { i += 4 } while (i < 64)
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 0);
        let top = t.label_here();
        t.add(r(3), r(3), 4);
        t.br(BrCond::Lt, r(3), 64, top);
        t.stop();
        let code = t.build();
        let loops = find_loops(&code).unwrap();
        assert_eq!(loops.len(), 1);
        let g = loops[0].guard.unwrap();
        assert!(!g.at_header);
        assert_eq!(loops[0].inductions[&r(3)], 4);
    }

    #[test]
    fn nested_loops_are_ordered_and_nested() {
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 0);
        let otop = t.label_here();
        let odone = t.new_label();
        t.br(BrCond::Ge, r(3), 4, odone);
        t.li(r(4), 0);
        let itop = t.label_here();
        let idone = t.new_label();
        t.br(BrCond::Ge, r(4), 8, idone);
        t.add(r(4), r(4), 1);
        t.jmp(itop);
        t.bind(idone);
        t.add(r(3), r(3), 1);
        t.jmp(otop);
        t.bind(odone);
        t.stop();
        let code = t.build();
        let loops = find_loops(&code).unwrap();
        assert_eq!(loops.len(), 2);
        let outer = &loops[0];
        let inner = &loops[1];
        assert!(outer.header < inner.header && inner.latch < outer.latch);
        // The outer loop's induction set must not claim the inner counter.
        assert!(outer.inductions.contains_key(&r(3)));
        assert!(!outer.inductions.contains_key(&r(4)));
        assert!(inner.inductions.contains_key(&r(4)));
        // Innermost lookup.
        let mid = inner.header + 1;
        assert_eq!(innermost_containing(&loops, mid).unwrap().id, inner.id);
        assert_eq!(
            innermost_containing(&loops, outer.header + 1).unwrap().id,
            outer.id
        );
    }

    #[test]
    fn induction_requires_single_def() {
        // i is incremented twice in the body -> not a recognised induction.
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(3), 10, done);
        t.add(r(3), r(3), 1);
        t.add(r(3), r(3), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let loops = find_loops(&t.build()).unwrap();
        assert!(loops[0].inductions.is_empty());
        assert!(loops[0].guard.is_none());
    }

    #[test]
    fn entry_into_loop_detected() {
        // Hand-construct a forward jump into a loop body:
        //   0: jmp 4        ; enters the loop mid-body
        //   1: li r3, 0
        //   2: br ge r3, 10, 6   ; loop header
        //   3: nop
        //   4: add r3, r3, 1
        //   5: jmp 2        ; back edge -> loop [2, 5]
        //   6: stop
        use dta_isa::{AluOp, BlockMap, Instr, Src};
        let t = ThreadCode {
            name: "t".into(),
            code: vec![
                Instr::Jmp { target: 4 },
                Instr::Li { rd: r(3), imm: 0 },
                Instr::Br {
                    cond: BrCond::Ge,
                    ra: r(3),
                    rb: Src::Imm(10),
                    target: 6,
                },
                Instr::Nop,
                Instr::Alu {
                    op: AluOp::Add,
                    rd: r(3),
                    ra: r(3),
                    rb: Src::Imm(1),
                },
                Instr::Jmp { target: 2 },
                Instr::Stop,
            ],
            blocks: BlockMap::default(),
            frame_slots: 0,
            prefetch_bytes: 0,
            fallback: None,
        };
        let err = find_loops(&t).unwrap_err();
        assert_eq!(err, LoopError::EntryIntoLoop { from: 0, to: 4 });
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 1);
        t.stop();
        assert!(find_loops(&t.build()).unwrap().is_empty());
    }
}
