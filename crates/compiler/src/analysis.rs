//! Decouplability analysis.
//!
//! A forward abstract interpretation over a thread's code computes, for
//! every main-memory `READ`, a symbolic address in the [`crate::sym`]
//! affine domain. A read whose address is affine in *frame inputs*,
//! *constants*, and *loop counters* is **decouplable**: its address
//! sequence is computable before the EX block runs, so a PF code block
//! can fetch the data by DMA (paper §3). A read whose address flows from
//! memory contents (e.g. bitcnt's data-dependent table index) is
//! **data-dependent** and stays in place — "it is faster to leave one
//! memory access inside the thread" (§4.3).
//!
//! ## Soundness
//!
//! The interpretation is linear over the instruction list with three
//! structural rules that keep it sound for the structured control flow
//! the builder/assembler produce:
//!
//! 1. at every *forward-branch join* (a pc that is the target of a
//!    forward branch), all registers defined inside the skipped span are
//!    invalidated;
//! 2. at every *loop header*, registers redefined in the body become
//!    loop-varying: recognised induction registers get `init + k·step`,
//!    everything else becomes unknown;
//! 3. at every *loop exit*, induction registers get their final value
//!    (when the trip count is known) and other body-defined registers
//!    stay unknown.
//!
//! Threads with improper loop nesting or side entries into loops are
//! rejected wholesale (the transform then leaves them untouched).

use crate::loops::{find_loops, Guard, Loop, LoopError};
use crate::sym::{Affine, LoopId, Sym};
use dta_isa::{BrCond, Instr, Src, ThreadCode, NUM_REGS};
use std::collections::{BTreeMap, HashMap};

/// Classification of one `READ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReadClass {
    /// Address is affine in inputs/constants/loop counters.
    Decouplable(Affine),
    /// Address is data-dependent but provably inside
    /// `[base, base + span + 3]` (e.g. a masked table index) — a
    /// candidate for whole-structure prefetching (paper §3).
    BoundedObject {
        /// Affine lower bound of the address.
        base: Affine,
        /// Uncertainty width in bytes.
        span: u64,
    },
    /// Address depends on memory contents or unanalysable flow.
    DataDependent,
}

/// Per-`READ` analysis result.
#[derive(Clone, Debug)]
pub struct ReadInfo {
    /// pc of the `READ`.
    pub pc: u32,
    /// Address classification.
    pub class: ReadClass,
    /// Ids of loops containing the read, outermost first.
    pub enclosing: Vec<LoopId>,
}

/// Whole-thread analysis result.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The loop table.
    pub loops: Vec<Loop>,
    /// Trip counts per loop (`None` = not recognised / not affine).
    pub trips: BTreeMap<LoopId, Option<Affine>>,
    /// One entry per `READ` instruction, in pc order.
    pub reads: Vec<ReadInfo>,
}

impl Analysis {
    /// Number of decouplable reads.
    pub fn decouplable(&self) -> usize {
        self.reads
            .iter()
            .filter(|r| matches!(r.class, ReadClass::Decouplable(_)))
            .count()
    }

    /// Trip count of a loop, if known.
    pub fn trip(&self, l: LoopId) -> Option<&Affine> {
        self.trips.get(&l).and_then(|t| t.as_ref())
    }
}

type Env = Vec<Sym>;

fn initial_env() -> Env {
    let mut env = vec![Sym::konst(0); NUM_REGS];
    // r1 (frame pointer) and r2 (prefetch base) hold machine addresses,
    // not analysable data.
    env[1] = Sym::Unknown;
    env[2] = Sym::Unknown;
    env
}

fn src_sym(env: &Env, s: Src) -> Sym {
    match s {
        Src::Reg(r) => env[r.index()].clone(),
        Src::Imm(i) => Sym::konst(i as i64),
    }
}

fn compute_trip(l: &Loop, guard: &Guard, pre: &Env, thread: &ThreadCode) -> Option<Affine> {
    let step = *l.inductions.get(&guard.reg)?;
    if step <= 0 {
        return None;
    }
    // Bound must be loop-invariant: an immediate, or a register not
    // redefined in the body.
    let bound = match guard.bound {
        Src::Imm(i) => Affine::konst(i as i64),
        Src::Reg(r) => {
            for pc in l.header..=l.latch {
                if thread.code[pc as usize].defs().contains(r) {
                    return None;
                }
            }
            pre[r.index()].affine()?.clone()
        }
    };
    let init = pre[guard.reg.index()].affine()?.clone();
    let span = bound.sub(&init);
    match guard.cond {
        BrCond::Ne => span.div_exact(step),
        BrCond::Ge | BrCond::Geu | BrCond::Lt | BrCond::Ltu => {
            if let Some(c) = span.as_const() {
                Some(Affine::konst((c.max(0) + step - 1) / step))
            } else {
                span.div_exact(step)
            }
        }
        _ => None,
    }
}

/// Runs the analysis.
pub fn analyze(thread: &ThreadCode) -> Result<Analysis, LoopError> {
    let loops = find_loops(thread)?;
    let code = &thread.code;
    let len = code.len() as u32;

    // Forward-branch spans keyed by their join point.
    let mut joins: HashMap<u32, Vec<u32>> = HashMap::new(); // target -> sources
    for (pc, instr) in code.iter().enumerate() {
        let pc = pc as u32;
        if let Some(t) = instr.target() {
            if t > pc && t < len {
                joins.entry(t).or_default().push(pc);
            }
        }
    }
    // Loop exits keyed by latch+1.
    let mut exits: HashMap<u32, Vec<usize>> = HashMap::new();
    for (i, l) in loops.iter().enumerate() {
        exits.entry(l.latch + 1).or_default().push(i);
    }
    let header_of: HashMap<u32, usize> = loops
        .iter()
        .enumerate()
        .map(|(i, l)| (l.header, i))
        .collect();

    let mut env = initial_env();
    let mut pre_envs: HashMap<LoopId, Env> = HashMap::new();
    let mut trips: BTreeMap<LoopId, Option<Affine>> = BTreeMap::new();
    let mut reads = Vec::new();

    let kill_range = |env: &mut Env, from: u32, to: u32| {
        for pc in from..to {
            for r in &code[pc as usize].defs() {
                env[r.index()] = Sym::Unknown;
            }
        }
    };

    for pc in 0..len {
        // 1. Joins of forward branches: invalidate skipped definitions.
        if let Some(sources) = joins.get(&pc) {
            for &src in sources {
                kill_range(&mut env, src + 1, pc);
            }
        }
        // 2. Loop exits: finalise induction values.
        if let Some(ids) = exits.get(&pc) {
            for &i in ids {
                let l = &loops[i];
                let trip = trips.get(&l.id).cloned().flatten();
                let pre = &pre_envs[&l.id];
                for pq in l.header..=l.latch {
                    for r in &code[pq as usize].defs() {
                        env[r.index()] = Sym::Unknown;
                    }
                }
                if let Some(trip) = trip {
                    for (&r, &step) in &l.inductions {
                        if let Some(init) = pre[r.index()].affine() {
                            env[r.index()] = Sym::Aff(init.add(&trip.scale(step)));
                        }
                    }
                }
            }
        }
        // 3. Loop header: abstract the body-varying registers.
        if let Some(&i) = header_of.get(&pc) {
            let l = &loops[i];
            let pre = env.clone();
            let trip = l
                .guard
                .as_ref()
                .and_then(|g| compute_trip(l, g, &pre, thread));
            trips.insert(l.id, trip);
            for pq in l.header..=l.latch {
                for r in &code[pq as usize].defs() {
                    env[r.index()] = Sym::Unknown;
                }
            }
            for (&r, &step) in &l.inductions {
                if let Some(init) = pre[r.index()].affine() {
                    env[r.index()] = Sym::Aff(init.add(&Affine::induction(l.id).scale(step)));
                }
            }
            pre_envs.insert(l.id, pre);
        }

        // 4. Interpret the instruction.
        let instr = code[pc as usize];
        if let Instr::Read { ra, off, .. } = instr {
            let class = match &env[ra.index()] {
                Sym::Aff(a) => ReadClass::Decouplable(a.add(&Affine::konst(off as i64))),
                Sym::Bounded { base, span } => ReadClass::BoundedObject {
                    base: base.add(&Affine::konst(off as i64)),
                    span: *span,
                },
                Sym::Unknown => ReadClass::DataDependent,
            };
            let mut enclosing: Vec<LoopId> = loops
                .iter()
                .filter(|l| l.contains(pc))
                .map(|l| l.id)
                .collect();
            enclosing.sort_by_key(|&id| {
                let l = &loops[id as usize];
                std::cmp::Reverse(l.latch - l.header)
            });
            reads.push(ReadInfo {
                pc,
                class,
                enclosing,
            });
        }
        match instr {
            Instr::Alu { op, rd, ra, rb } => {
                let v = Sym::eval(op, &env[ra.index()].clone(), &src_sym(&env, rb));
                if !rd.is_zero() {
                    env[rd.index()] = v;
                }
            }
            Instr::Li { rd, imm } => {
                if !rd.is_zero() {
                    env[rd.index()] = Sym::konst(imm);
                }
            }
            Instr::Mov { rd, ra } => {
                if !rd.is_zero() {
                    env[rd.index()] = env[ra.index()].clone();
                }
            }
            Instr::Load { rd, slot } => {
                if !rd.is_zero() {
                    env[rd.index()] = Sym::Aff(Affine::input(slot));
                }
            }
            Instr::Read { rd, .. } | Instr::LsLoad { rd, .. } | Instr::Falloc { rd, .. } => {
                if !rd.is_zero() {
                    env[rd.index()] = Sym::Unknown;
                }
            }
            // No register effects.
            Instr::Nop
            | Instr::Br { .. }
            | Instr::Jmp { .. }
            | Instr::Store { .. }
            | Instr::Ffree { .. }
            | Instr::Stop
            | Instr::Write { .. }
            | Instr::LsStore { .. }
            | Instr::DmaGet { .. }
            | Instr::DmaGetStrided { .. }
            | Instr::DmaPut { .. }
            | Instr::DmaYield
            | Instr::DmaWait { .. } => {}
        }
    }

    Ok(Analysis {
        loops,
        trips,
        reads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_isa::{reg::r, BrCond, ThreadBuilder};

    #[test]
    fn straight_line_input_address_is_decouplable() {
        // addr = in0 + 16
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 16);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        assert_eq!(a.reads.len(), 1);
        match &a.reads[0].class {
            ReadClass::Decouplable(addr) => {
                assert_eq!(addr.konst, 16);
                assert_eq!(addr.inputs[&0], 1);
                assert!(a.reads[0].enclosing.is_empty());
            }
            other => panic!("expected decouplable, got {other:?}"),
        }
        assert_eq!(a.decouplable(), 1);
    }

    #[test]
    fn data_dependent_chain_is_not_decouplable() {
        // idx = mem[in0]; val = mem[base + idx*4]  (bitcnt-style)
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0); // decouplable
        t.shl(r(5), r(4), 2);
        t.li(r(6), 0x1000);
        t.add(r(6), r(6), r(5));
        t.read(r(7), r(6), 0); // data-dependent
        t.stop();
        let a = analyze(&t.build()).unwrap();
        assert_eq!(a.reads.len(), 2);
        assert!(matches!(a.reads[0].class, ReadClass::Decouplable(_)));
        assert!(matches!(a.reads[1].class, ReadClass::DataDependent));
        assert_eq!(a.decouplable(), 1);
    }

    #[test]
    fn masked_table_lookup_is_a_bounded_object() {
        // idx = (x >> 8) & 0xFF; val = T[idx] — the bitcnt pattern.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0); // x (a frame input, but shifted+masked = bounded)
        t.begin_ex();
        t.read(r(4), r(3), 0); // make the index truly data-dependent
        t.shr(r(5), r(4), 8);
        t.and(r(5), r(5), 0xFF);
        t.shl(r(5), r(5), 2);
        t.li(r(6), 0x2000);
        t.add(r(6), r(6), r(5));
        t.read(r(7), r(6), 4);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        match &a.reads[1].class {
            ReadClass::BoundedObject { base, span } => {
                assert_eq!(base.as_const(), Some(0x2004));
                assert_eq!(*span, 1020);
            }
            other => panic!("expected bounded object, got {other:?}"),
        }
    }

    fn strided_loop_thread(n: i32) -> ThreadCode {
        // base = in0; for (i=0; i<n; i++) sum += mem[base + i*4]
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0); // base
        t.begin_ex();
        t.li(r(4), 0); // i
        t.li(r(5), 0); // sum
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n, done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(5), r(5), r(7));
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        t.build()
    }

    #[test]
    fn loop_read_gets_induction_address_and_trip() {
        let a = analyze(&strided_loop_thread(32)).unwrap();
        assert_eq!(a.reads.len(), 1);
        let info = &a.reads[0];
        let ReadClass::Decouplable(addr) = &info.class else {
            panic!("expected decouplable");
        };
        // addr = in0 + 4*k0
        assert_eq!(addr.inputs[&0], 1);
        assert_eq!(addr.induction_coeff(0), 4);
        assert_eq!(info.enclosing, vec![0]);
        assert_eq!(a.trip(0).unwrap().as_const(), Some(32));
    }

    #[test]
    fn input_dependent_bound_gives_symbolic_trip() {
        // for (i=0; i<in1; i++) ... with step 1: trip = in1.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.load(r(8), 1);
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), r(8), done);
        t.read(r(7), r(3), 0);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        let trip = a.trip(0).expect("symbolic trip");
        assert_eq!(trip.inputs[&1], 1);
        assert_eq!(trip.konst, 0);
    }

    #[test]
    fn nested_loops_give_two_induction_terms() {
        // for (i=0;i<4;i++) for (j=0;j<8;j++) read mem[in0 + i*64 + j*4]
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0); // i
        let otop = t.label_here();
        let odone = t.new_label();
        t.br(BrCond::Ge, r(4), 4, odone);
        t.li(r(5), 0); // j
        let itop = t.label_here();
        let idone = t.new_label();
        t.br(BrCond::Ge, r(5), 8, idone);
        t.mul(r(6), r(4), 64);
        t.shl(r(7), r(5), 2);
        t.add(r(6), r(6), r(7));
        t.add(r(6), r(3), r(6));
        t.read(r(8), r(6), 0);
        t.add(r(5), r(5), 1);
        t.jmp(itop);
        t.bind(idone);
        t.add(r(4), r(4), 1);
        t.jmp(otop);
        t.bind(odone);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        assert_eq!(a.reads.len(), 1);
        let ReadClass::Decouplable(addr) = &a.reads[0].class else {
            panic!("expected decouplable")
        };
        // Outer loop id 0 (larger extent), inner id 1.
        assert_eq!(addr.induction_coeff(0), 64);
        assert_eq!(addr.induction_coeff(1), 4);
        assert_eq!(addr.inputs[&0], 1);
        assert_eq!(a.trip(0).unwrap().as_const(), Some(4));
        assert_eq!(a.trip(1).unwrap().as_const(), Some(8));
        assert_eq!(a.reads[0].enclosing, vec![0, 1]);
    }

    #[test]
    fn conditional_definition_kills_address() {
        // if (in0 != 0) base = 0x100; read mem[base] -> join kills base.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0x200);
        let skip = t.new_label();
        t.br(BrCond::Eq, r(3), 0, skip);
        t.li(r(4), 0x100);
        t.bind(skip);
        t.read(r(5), r(4), 0);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        assert!(matches!(a.reads[0].class, ReadClass::DataDependent));
    }

    #[test]
    fn read_inside_conditional_span_uses_fallthrough_env() {
        // br skips over the read; the read, when executed, sees the
        // fallthrough definitions — which are analysable.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        let skip = t.new_label();
        t.br(BrCond::Eq, r(3), 0, skip);
        t.li(r(4), 0x400);
        t.read(r(5), r(4), 0);
        t.bind(skip);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        let ReadClass::Decouplable(addr) = &a.reads[0].class else {
            panic!("expected decouplable")
        };
        assert_eq!(addr.as_const(), Some(0x400));
    }

    #[test]
    fn post_loop_induction_value_is_final() {
        // After for(i=0;i<10;i++), read mem[in0 + i*4] uses i = 10.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), 10, done);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        let ReadClass::Decouplable(addr) = &a.reads[0].class else {
            panic!("expected decouplable")
        };
        assert_eq!(addr.konst, 40);
        assert_eq!(addr.inputs[&0], 1);
        assert!(addr.is_loop_invariant());
    }

    #[test]
    fn loop_varying_non_induction_is_unknown() {
        // acc doubles every iteration: not affine.
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 0);
        t.li(r(4), 1);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(3), 10, done);
        t.add(r(4), r(4), r(4)); // acc *= 2
        t.read(r(5), r(4), 0);
        t.add(r(3), r(3), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let a = analyze(&t.build()).unwrap();
        assert!(matches!(a.reads[0].class, ReadClass::DataDependent));
    }
}
