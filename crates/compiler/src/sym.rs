//! Symbolic values for the prefetch analysis.
//!
//! The analysis tracks, for every register, an abstract value describing
//! how it derives from what is known *before a thread's EX block runs*:
//! constants, frame inputs, and loop induction variables. A main-memory
//! `READ` whose address is such a value is **decouplable** — exactly the
//! paper's criterion (bitcnt's table index "is not known before the
//! execution starts", so that read stays).
//!
//! The canonical form is an affine expression
//! `konst + Σ coeff·input(slot) + Σ coeff·k_L` where `k_L` is the
//! iteration counter of loop `L` (0-based).

use dta_isa::AluOp;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a natural loop within one thread (index into the loop
/// table).
pub type LoopId = u32;

/// An affine symbolic value. `None`-producing operations yield
/// [`Sym::Unknown`] instead.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Affine {
    /// Constant part.
    pub konst: i64,
    /// Coefficients of frame-input slots.
    pub inputs: BTreeMap<u16, i64>,
    /// Coefficients of loop iteration counters.
    pub inductions: BTreeMap<LoopId, i64>,
}

impl Affine {
    /// The constant `c`.
    pub fn konst(c: i64) -> Self {
        Affine {
            konst: c,
            ..Default::default()
        }
    }

    /// The value of frame input `slot`.
    pub fn input(slot: u16) -> Self {
        let mut inputs = BTreeMap::new();
        inputs.insert(slot, 1);
        Affine {
            inputs,
            ..Default::default()
        }
    }

    /// The iteration counter of loop `l` (0 on the first iteration).
    pub fn induction(l: LoopId) -> Self {
        let mut inductions = BTreeMap::new();
        inductions.insert(l, 1);
        Affine {
            inductions,
            ..Default::default()
        }
    }

    /// Is this a plain constant?
    pub fn as_const(&self) -> Option<i64> {
        if self.inputs.is_empty() && self.inductions.is_empty() {
            Some(self.konst)
        } else {
            None
        }
    }

    /// Is the value independent of any loop counter?
    pub fn is_loop_invariant(&self) -> bool {
        self.inductions.is_empty()
    }

    fn prune(mut self) -> Self {
        self.inputs.retain(|_, c| *c != 0);
        self.inductions.retain(|_, c| *c != 0);
        self
    }

    /// `self + other`.
    pub fn add(&self, other: &Affine) -> Affine {
        let mut r = self.clone();
        r.konst = r.konst.wrapping_add(other.konst);
        for (k, v) in &other.inputs {
            *r.inputs.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.inductions {
            *r.inductions.entry(*k).or_insert(0) += v;
        }
        r.prune()
    }

    /// `self - other`.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// `self * c`.
    pub fn scale(&self, c: i64) -> Affine {
        let mut r = self.clone();
        r.konst = r.konst.wrapping_mul(c);
        for v in r.inputs.values_mut() {
            *v = v.wrapping_mul(c);
        }
        for v in r.inductions.values_mut() {
            *v = v.wrapping_mul(c);
        }
        r.prune()
    }

    /// Exact division by a positive constant, when every coefficient
    /// divides evenly.
    pub fn div_exact(&self, c: i64) -> Option<Affine> {
        if c <= 0 {
            return None;
        }
        if self.konst % c != 0
            || self.inputs.values().any(|v| v % c != 0)
            || self.inductions.values().any(|v| v % c != 0)
        {
            return None;
        }
        let mut r = self.clone();
        r.konst /= c;
        for v in r.inputs.values_mut() {
            *v /= c;
        }
        for v in r.inductions.values_mut() {
            *v /= c;
        }
        Some(r)
    }

    /// Substitutes loop `l`'s counter with the affine `value` (used when a
    /// loop exits with a known final counter, and when splitting a read
    /// address into region base + per-iteration stride).
    pub fn subst_induction(&self, l: LoopId, value: &Affine) -> Affine {
        let mut r = self.clone();
        let Some(coeff) = r.inductions.remove(&l) else {
            return r;
        };
        r.add(&value.scale(coeff)).prune()
    }

    /// Coefficient of loop `l`'s counter.
    pub fn induction_coeff(&self, l: LoopId) -> i64 {
        self.inductions.get(&l).copied().unwrap_or(0)
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.konst)?;
        for (s, c) in &self.inputs {
            write!(f, " + {c}*in{s}")?;
        }
        for (l, c) in &self.inductions {
            write!(f, " + {c}*k{l}")?;
        }
        Ok(())
    }
}

/// A register's abstract value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Sym {
    /// Affine in inputs and loop counters — computable before EX runs.
    Aff(Affine),
    /// `base + u` for some runtime value `u ∈ [0, span]` — typically a
    /// masked, data-dependent index (`(x >> s) & 0xFF`). The *bounds* are
    /// known before EX runs even though the value is not, which is what
    /// enables whole-structure prefetching (paper §3: "prefetch the
    /// entire data structure").
    Bounded {
        /// Known affine lower bound.
        base: Affine,
        /// Non-negative width of the uncertainty interval.
        span: u64,
    },
    /// Depends on memory contents, scheduler results, or unanalyzable
    /// control flow.
    Unknown,
}

impl Sym {
    /// The affine value, if exactly known.
    pub fn affine(&self) -> Option<&Affine> {
        match self {
            Sym::Aff(a) => Some(a),
            _ => None,
        }
    }

    /// Constant constructor.
    pub fn konst(c: i64) -> Self {
        Sym::Aff(Affine::konst(c))
    }

    /// Evaluates an ALU op over two abstract values.
    pub fn eval(op: AluOp, a: &Sym, b: &Sym) -> Sym {
        use Sym::*;
        // Fully constant operands defer to the concrete semantics.
        if let (Aff(x), Aff(y)) = (a, b) {
            if let (Some(ca), Some(cb)) = (x.as_const(), y.as_const()) {
                return Sym::konst(op.eval(ca, cb));
            }
        }
        // Masking anything with a non-negative constant bounds it.
        if op == AluOp::And {
            match (a, b) {
                (_, Aff(y)) if matches!(y.as_const(), Some(m) if m >= 0) => {
                    let m = y.as_const().expect("checked");
                    // A tighter result when the left side is already known
                    // non-negative and smaller than the mask.
                    if let Bounded { base, span } = a {
                        if let Some(lo) = base.as_const() {
                            if lo >= 0 && lo + *span as i64 <= m {
                                return a.clone();
                            }
                        }
                    }
                    return Bounded {
                        base: Affine::konst(0),
                        span: m as u64,
                    };
                }
                (Aff(x), _) if matches!(x.as_const(), Some(m) if m >= 0) => {
                    let m = x.as_const().expect("checked");
                    return Bounded {
                        base: Affine::konst(0),
                        span: m as u64,
                    };
                }
                _ => {}
            }
        }
        match (a, b) {
            (Aff(x), Aff(y)) => {
                match op {
                    AluOp::Add => Aff(x.add(y)),
                    AluOp::Sub => Aff(x.sub(y)),
                    AluOp::Mul => match (x.as_const(), y.as_const()) {
                        (Some(c), _) => Aff(y.scale(c)),
                        (_, Some(c)) => Aff(x.scale(c)),
                        _ => Unknown,
                    },
                    AluOp::Shl => match y.as_const() {
                        Some(c) if (0..63).contains(&c) => Aff(x.scale(1i64 << c)),
                        _ => Unknown,
                    },
                    // Anything else on non-constant operands loses
                    // linearity.
                    _ => Unknown,
                }
            }
            (Bounded { base, span }, Aff(y)) => match op {
                AluOp::Add => Bounded {
                    base: base.add(y),
                    span: *span,
                },
                AluOp::Sub => Bounded {
                    base: base.sub(y),
                    span: *span,
                },
                AluOp::Mul => match y.as_const() {
                    Some(c) if c > 0 => Bounded {
                        base: base.scale(c),
                        span: span.saturating_mul(c as u64),
                    },
                    _ => Unknown,
                },
                AluOp::Shl => match y.as_const() {
                    Some(c) if (0..32).contains(&c) => Bounded {
                        base: base.scale(1i64 << c),
                        span: span.saturating_mul(1u64 << c),
                    },
                    _ => Unknown,
                },
                AluOp::Shr => match (base.as_const(), y.as_const()) {
                    // Only when the whole interval is non-negative.
                    (Some(lo), Some(c)) if lo >= 0 && (0..63).contains(&c) => {
                        let hi = lo + *span as i64;
                        Bounded {
                            base: Affine::konst(lo >> c),
                            span: ((hi >> c) - (lo >> c)) as u64,
                        }
                    }
                    _ => Unknown,
                },
                _ => Unknown,
            },
            (Aff(x), Bounded { base, span }) => match op {
                AluOp::Add => Bounded {
                    base: x.add(base),
                    span: *span,
                },
                // x - [b, b+s] = [x-b-s, x-b]
                AluOp::Sub => Bounded {
                    base: x.sub(base).sub(&Affine::konst(*span as i64)),
                    span: *span,
                },
                AluOp::Mul => match x.as_const() {
                    Some(c) if c > 0 => Bounded {
                        base: base.scale(c),
                        span: span.saturating_mul(c as u64),
                    },
                    _ => Unknown,
                },
                _ => Unknown,
            },
            (Bounded { base: b1, span: s1 }, Bounded { base: b2, span: s2 }) => match op {
                AluOp::Add => Bounded {
                    base: b1.add(b2),
                    span: s1.saturating_add(*s2),
                },
                _ => Unknown,
            },
            _ => Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_arithmetic() {
        let a = Affine::input(0).scale(4).add(&Affine::konst(16));
        assert_eq!(a.konst, 16);
        assert_eq!(a.inputs[&0], 4);
        let b = a.sub(&Affine::input(0).scale(4));
        assert_eq!(b.as_const(), Some(16));
    }

    #[test]
    fn zero_coefficients_are_pruned() {
        let a = Affine::input(3).sub(&Affine::input(3));
        assert_eq!(a.as_const(), Some(0));
        assert!(a.inputs.is_empty());
    }

    #[test]
    fn induction_substitution() {
        // addr = 100 + 4*k0
        let addr = Affine::konst(100).add(&Affine::induction(0).scale(4));
        let at0 = addr.subst_induction(0, &Affine::konst(0));
        assert_eq!(at0.as_const(), Some(100));
        let at_n = addr.subst_induction(0, &Affine::input(1));
        assert_eq!(at_n.konst, 100);
        assert_eq!(at_n.inputs[&1], 4);
        assert!(at_n.is_loop_invariant());
    }

    #[test]
    fn div_exact_checks_all_coefficients() {
        let a = Affine::input(0).scale(8).add(&Affine::konst(4));
        assert_eq!(a.div_exact(4).unwrap().inputs[&0], 2);
        assert!(a.div_exact(3).is_none());
        assert!(a.div_exact(0).is_none());
        assert!(a.div_exact(-2).is_none());
    }

    #[test]
    fn sym_eval_linearity() {
        let x = Sym::Aff(Affine::input(0));
        let four = Sym::konst(4);
        let scaled = Sym::eval(AluOp::Mul, &x, &four);
        assert_eq!(scaled.affine().unwrap().inputs[&0], 4);
        let shifted = Sym::eval(AluOp::Shl, &x, &Sym::konst(2));
        assert_eq!(shifted.affine().unwrap().inputs[&0], 4);
        let sum = Sym::eval(AluOp::Add, &scaled, &shifted);
        assert_eq!(sum.affine().unwrap().inputs[&0], 8);
    }

    #[test]
    fn sym_eval_nonlinear_is_unknown() {
        let x = Sym::Aff(Affine::input(0));
        let y = Sym::Aff(Affine::input(1));
        assert_eq!(Sym::eval(AluOp::Mul, &x, &y), Sym::Unknown);
        assert_eq!(Sym::eval(AluOp::Add, &x, &Sym::Unknown), Sym::Unknown);
        assert_eq!(Sym::eval(AluOp::Xor, &x, &y), Sym::Unknown);
    }

    #[test]
    fn masking_bounds_a_value() {
        // (unknown & 0xFF) in [0, 255]
        let masked = Sym::eval(AluOp::And, &Sym::Unknown, &Sym::konst(255));
        assert_eq!(
            masked,
            Sym::Bounded {
                base: Affine::konst(0),
                span: 255
            }
        );
        // << 2 scales the interval
        let scaled = Sym::eval(AluOp::Shl, &masked, &Sym::konst(2));
        assert_eq!(
            scaled,
            Sym::Bounded {
                base: Affine::konst(0),
                span: 1020
            }
        );
        // + table base shifts it
        let addr = Sym::eval(AluOp::Add, &scaled, &Sym::Aff(Affine::input(0)));
        match addr {
            Sym::Bounded { base, span } => {
                assert_eq!(base.inputs[&0], 1);
                assert_eq!(span, 1020);
            }
            other => panic!("expected bounded, got {other:?}"),
        }
    }

    #[test]
    fn bounded_shr_needs_nonnegative_constant_base() {
        let b = Sym::Bounded {
            base: Affine::konst(16),
            span: 240,
        };
        assert_eq!(
            Sym::eval(AluOp::Shr, &b, &Sym::konst(4)),
            Sym::Bounded {
                base: Affine::konst(1),
                span: 15
            }
        );
        let neg = Sym::Bounded {
            base: Affine::konst(-8),
            span: 4,
        };
        assert_eq!(Sym::eval(AluOp::Shr, &neg, &Sym::konst(1)), Sym::Unknown);
    }

    #[test]
    fn tight_mask_is_a_no_op() {
        // ([0, 15] & 0xFF) stays [0, 15].
        let small = Sym::Bounded {
            base: Affine::konst(0),
            span: 15,
        };
        assert_eq!(Sym::eval(AluOp::And, &small, &Sym::konst(255)), small);
    }

    #[test]
    fn sym_eval_constants_fold_exactly() {
        assert_eq!(
            Sym::eval(AluOp::And, &Sym::konst(0b1100), &Sym::konst(0b1010)),
            Sym::konst(0b1000)
        );
        assert_eq!(
            Sym::eval(AluOp::Div, &Sym::konst(7), &Sym::konst(2)),
            Sym::konst(3)
        );
    }

    #[test]
    fn display_is_readable() {
        let a = Affine::konst(8)
            .add(&Affine::input(2).scale(4))
            .add(&Affine::induction(1).scale(128));
        assert_eq!(a.to_string(), "8 + 4*in2 + 128*k1");
    }
}
