//! The prefetch transformation.
//!
//! Implements the code rewrite of the paper's §3 and Fig. 3 — and
//! automates what the authors did by hand ("prefetching code blocks are
//! added by hand"; full automation is their stated future work):
//!
//! 1. analyse the thread ([`crate::analysis`]) and plan DMA regions
//!    ([`crate::regions`]);
//! 2. synthesise a **PF code block** that computes each region's base
//!    address from frame inputs, programs the DMA unit (Table 3
//!    operands), and ends with a non-blocking `DMAYIELD` (the new "Program
//!    DMA" → "Wait for DMA" lifecycle states of Fig. 4);
//! 3. rewrite each decoupled `READ` in the EX block into a local-store
//!    access ("all READ instructions that the thread contained are
//!    replaced by the compiler with [local] instructions that now access
//!    the prefetched data");
//! 4. leave data-dependent reads in place (the paper's bitcnt decision).
//!
//! Address translation uses per-region *delta registers* computed once in
//! the PF block: for a block region, `LS = mem + (bufbase − membase)`; for
//! a packed strided region the element index is recovered with shifts.

use crate::analysis::{analyze, Analysis};
use crate::regions::{plan, Plan, PlanOptions, Region, RegionShape, SkipReason};
use crate::sym::Affine;
use dta_isa::{
    AluOp, BlockMap, Instr, Program, Reg, Src, ThreadCode, ThreadId, NUM_REGS, PREFETCH_BASE_REG,
};
use std::collections::{BTreeMap, BTreeSet};

/// Transformation options.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransformOptions {
    /// Region planning knobs.
    pub plan: PlanOptions,
}

/// Why a whole thread was left untouched.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ThreadSkip {
    /// No main-memory READs: "threads will remain unchanged as in the
    /// original DTA" (§3).
    NoGlobalReads,
    /// The thread already has a PF block or DMA instructions.
    AlreadyPrefetching,
    /// Control flow too irregular for the analysis.
    Unanalysable(String),
    /// Not enough free architectural registers for the rewrite.
    NoScratchRegisters,
    /// Nothing was decouplable.
    NothingDecouplable,
    /// The thread is another thread's degradation fallback and must stay
    /// PF-free.
    FallbackTarget,
}

/// Per-thread transformation report.
#[derive(Clone, Debug)]
pub struct ThreadReport {
    /// Thread name.
    pub name: String,
    /// Total `READ`s in the thread.
    pub reads: usize,
    /// `READ`s rewritten to local-store accesses.
    pub decoupled: usize,
    /// DMA regions programmed by the PF block.
    pub regions: usize,
    /// Prefetch buffer bytes per instance.
    pub buffer_bytes: u32,
    /// Reads left in place, with reasons.
    pub skipped_reads: Vec<(u32, SkipReason)>,
    /// Why the thread was skipped entirely (when it was).
    pub skipped: Option<ThreadSkip>,
}

impl ThreadReport {
    /// Was any rewrite applied?
    pub fn transformed(&self) -> bool {
        self.skipped.is_none() && self.decoupled > 0
    }
}

/// Whole-program transformation report.
#[derive(Clone, Debug)]
pub struct ProgramReport {
    /// One report per thread.
    pub threads: Vec<ThreadReport>,
}

impl ProgramReport {
    /// Static count of READs across the program.
    pub fn total_reads(&self) -> usize {
        self.threads.iter().map(|t| t.reads).sum()
    }

    /// Static count of decoupled READs.
    pub fn total_decoupled(&self) -> usize {
        self.threads.iter().map(|t| t.decoupled).sum()
    }

    /// Fraction of static READs decoupled (the paper reports 62% for
    /// bitcnt).
    pub fn decoupled_fraction(&self) -> f64 {
        let total = self.total_reads();
        if total == 0 {
            0.0
        } else {
            self.total_decoupled() as f64 / total as f64
        }
    }
}

fn skip_report(thread: &ThreadCode, reads: usize, why: ThreadSkip) -> ThreadReport {
    ThreadReport {
        name: thread.name.clone(),
        reads,
        decoupled: 0,
        regions: 0,
        buffer_bytes: 0,
        skipped_reads: Vec::new(),
        skipped: Some(why),
    }
}

/// Registers the rewrite needs for one region.
#[derive(Clone, Copy, Debug)]
enum RegionRegs {
    /// `delta = bufbase − membase`.
    Block { delta: Reg },
    /// `base_minus_off` and `bufbase` for shift translation.
    Strided { base_minus_off: Reg, bufbase: Reg },
}

/// Emits code computing `dst = affine` (inputs must already be loaded
/// into `input_regs`). Uses `scratch` for scaled terms.
fn emit_affine(
    out: &mut Vec<Instr>,
    a: &Affine,
    dst: Reg,
    scratch: Reg,
    input_regs: &BTreeMap<u16, Reg>,
) {
    out.push(Instr::Li {
        rd: dst,
        imm: a.konst,
    });
    for (slot, &coeff) in &a.inputs {
        let src = input_regs[slot];
        if coeff == 1 {
            out.push(Instr::Alu {
                op: AluOp::Add,
                rd: dst,
                ra: dst,
                rb: Src::Reg(src),
            });
        } else {
            out.push(Instr::Alu {
                op: AluOp::Mul,
                rd: scratch,
                ra: src,
                rb: Src::Imm(coeff as i32),
            });
            out.push(Instr::Alu {
                op: AluOp::Add,
                rd: dst,
                ra: dst,
                rb: Src::Reg(scratch),
            });
        }
    }
}

/// Transforms one thread. Never fails: threads that cannot be transformed
/// are returned unchanged with the reason in the report.
pub fn prefetch_thread(thread: &ThreadCode, opts: &TransformOptions) -> (ThreadCode, ThreadReport) {
    let reads_total = thread
        .code
        .iter()
        .filter(|i| matches!(i, Instr::Read { .. }))
        .count();
    if reads_total == 0 {
        return (
            thread.clone(),
            skip_report(thread, 0, ThreadSkip::NoGlobalReads),
        );
    }
    if thread.blocks.pf_end > 0
        || thread
            .code
            .iter()
            .any(|i| i.class() == dta_isa::IClass::Dma)
    {
        return (
            thread.clone(),
            skip_report(thread, reads_total, ThreadSkip::AlreadyPrefetching),
        );
    }
    let analysis: Analysis = match analyze(thread) {
        Ok(a) => a,
        Err(e) => {
            return (
                thread.clone(),
                skip_report(thread, reads_total, ThreadSkip::Unanalysable(e.to_string())),
            )
        }
    };
    let mut region_plan: Plan = plan(&analysis, &opts.plan);
    if region_plan.regions.is_empty() {
        let mut rep = skip_report(thread, reads_total, ThreadSkip::NothingDecouplable);
        rep.skipped_reads = region_plan.skipped.clone();
        return (thread.clone(), rep);
    }

    // ---- scratch register allocation -----------------------------------
    let mut used: BTreeSet<usize> = [0usize, 1, 2].into_iter().collect();
    for i in &thread.code {
        for r in &i.defs() {
            used.insert(r.index());
        }
        for r in &i.uses() {
            used.insert(r.index());
        }
    }
    let mut pool: Vec<Reg> = (3..NUM_REGS as u8)
        .rev()
        .map(Reg::new)
        .filter(|r| !used.contains(&r.index()))
        .collect();

    // Fixed costs: translation temp + 2 PF transients + inputs.
    let input_slots: BTreeSet<u16> = region_plan
        .regions
        .iter()
        .flat_map(|r| r.base.inputs.keys().copied())
        .collect();
    let per_region = |r: &Region| match r.shape {
        RegionShape::Block { .. } => 1,
        RegionShape::Strided { .. } => 2,
    };
    let fixed = 3 + input_slots.len();
    // Drop regions (latest-planned first) until the register budget fits.
    loop {
        let need: usize = fixed + region_plan.regions.iter().map(per_region).sum::<usize>();
        if need <= pool.len() {
            break;
        }
        if region_plan.regions.is_empty() {
            return (
                thread.clone(),
                skip_report(thread, reads_total, ThreadSkip::NoScratchRegisters),
            );
        }
        let dropped = region_plan.regions.len() - 1;
        region_plan.regions.pop();
        region_plan.assignment.retain(|_, &mut idx| idx != dropped);
    }
    if region_plan.assignment.is_empty() {
        return (
            thread.clone(),
            skip_report(thread, reads_total, ThreadSkip::NothingDecouplable),
        );
    }
    // Recompute buffer offsets after any drops.
    {
        let mut off = 0u32;
        for r in &mut region_plan.regions {
            r.pf_offset = off;
            off += r.shape.buffer_bytes().div_ceil(16) * 16;
        }
        region_plan.buffer_bytes = off;
    }

    let mut take = || pool.pop().expect("budgeted above");
    let trans_tmp = take();
    let pf_tmp1 = take();
    let pf_tmp2 = take();
    let input_regs: BTreeMap<u16, Reg> = input_slots.iter().map(|&s| (s, take())).collect();

    // The `off` of the single read assigned to each strided region.
    let read_off: BTreeMap<u32, i32> = thread
        .code
        .iter()
        .enumerate()
        .filter_map(|(pc, i)| match i {
            Instr::Read { off, .. } => Some((pc as u32, *off)),
            _ => None,
        })
        .collect();

    // ---- PF block synthesis ---------------------------------------------
    let mut pf: Vec<Instr> = Vec::new();
    for (&slot, &reg) in &input_regs {
        pf.push(Instr::Load { rd: reg, slot });
    }
    let mut region_regs: Vec<RegionRegs> = Vec::new();
    for (idx, region) in region_plan.regions.iter().enumerate() {
        let tag = (idx % 32) as u8;
        match region.shape {
            RegionShape::Block { bytes } => {
                let delta = take();
                emit_affine(&mut pf, &region.base, pf_tmp1, pf_tmp2, &input_regs);
                pf.push(Instr::DmaGet {
                    rls: PREFETCH_BASE_REG,
                    ls_off: region.pf_offset as i32,
                    rmem: pf_tmp1,
                    mem_off: 0,
                    bytes: Src::Imm(bytes as i32),
                    tag,
                });
                // delta = (r2 + pf_offset) - base
                pf.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: delta,
                    ra: PREFETCH_BASE_REG,
                    rb: Src::Imm(region.pf_offset as i32),
                });
                pf.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: delta,
                    ra: delta,
                    rb: Src::Reg(pf_tmp1),
                });
                region_regs.push(RegionRegs::Block { delta });
            }
            RegionShape::Strided { count, stride } => {
                let base_minus_off = take();
                let bufbase = take();
                // The single read assigned to this region.
                let (&pc, _) = region_plan
                    .assignment
                    .iter()
                    .find(|&(_, &i)| i == idx)
                    .expect("strided region has exactly one read");
                let off = read_off[&pc];
                emit_affine(&mut pf, &region.base, pf_tmp1, pf_tmp2, &input_regs);
                pf.push(Instr::DmaGetStrided {
                    rls: PREFETCH_BASE_REG,
                    ls_off: region.pf_offset as i32,
                    rmem: pf_tmp1,
                    mem_off: 0,
                    elem_bytes: 4,
                    count: Src::Imm(count as i32),
                    stride: Src::Imm(stride as i32),
                    tag,
                });
                pf.push(Instr::Alu {
                    op: AluOp::Sub,
                    rd: base_minus_off,
                    ra: pf_tmp1,
                    rb: Src::Imm(off),
                });
                pf.push(Instr::Alu {
                    op: AluOp::Add,
                    rd: bufbase,
                    ra: PREFETCH_BASE_REG,
                    rb: Src::Imm(region.pf_offset as i32),
                });
                region_regs.push(RegionRegs::Strided {
                    base_minus_off,
                    bufbase,
                });
            }
        }
    }
    pf.push(Instr::DmaYield);
    let pf_len = pf.len() as u32;

    // ---- body rewrite ----------------------------------------------------
    let old_len = thread.code.len() as u32;
    let mut body: Vec<Instr> = Vec::new();
    let mut map: Vec<u32> = Vec::with_capacity(old_len as usize);
    let mut decoupled = 0usize;
    for (pc, instr) in thread.code.iter().enumerate() {
        let pc = pc as u32;
        map.push(body.len() as u32);
        match (instr, region_plan.assignment.get(&pc)) {
            (&Instr::Read { rd, ra, off }, Some(&idx)) => {
                decoupled += 1;
                match region_regs[idx] {
                    RegionRegs::Block { delta } => {
                        body.push(Instr::Alu {
                            op: AluOp::Add,
                            rd: trans_tmp,
                            ra,
                            rb: Src::Reg(delta),
                        });
                        body.push(Instr::LsLoad {
                            rd,
                            ra: trans_tmp,
                            off,
                        });
                    }
                    RegionRegs::Strided {
                        base_minus_off,
                        bufbase,
                    } => {
                        let RegionShape::Strided { stride, .. } = region_plan.regions[idx].shape
                        else {
                            unreachable!("shape/regs mismatch")
                        };
                        let log2 = stride.trailing_zeros() as i32;
                        body.push(Instr::Alu {
                            op: AluOp::Sub,
                            rd: trans_tmp,
                            ra,
                            rb: Src::Reg(base_minus_off),
                        });
                        body.push(Instr::Alu {
                            op: AluOp::Shr,
                            rd: trans_tmp,
                            ra: trans_tmp,
                            rb: Src::Imm(log2),
                        });
                        body.push(Instr::Alu {
                            op: AluOp::Shl,
                            rd: trans_tmp,
                            ra: trans_tmp,
                            rb: Src::Imm(2),
                        });
                        body.push(Instr::Alu {
                            op: AluOp::Add,
                            rd: trans_tmp,
                            ra: trans_tmp,
                            rb: Src::Reg(bufbase),
                        });
                        body.push(Instr::LsLoad {
                            rd,
                            ra: trans_tmp,
                            off: 0,
                        });
                    }
                }
            }
            _ => body.push(*instr),
        }
    }
    // Retarget branches: new = pf_len + map[old].
    for instr in &mut body {
        if let Some(t) = instr.target() {
            instr.set_target(pf_len + map[t as usize]);
        }
    }

    let boundary = |b: u32| -> u32 {
        if b >= old_len {
            pf_len + body.len() as u32
        } else {
            pf_len + map[b as usize]
        }
    };
    let blocks = BlockMap {
        pf_end: pf_len,
        pl_end: boundary(thread.blocks.pl_end),
        ex_end: boundary(thread.blocks.ex_end),
    };

    let mut code = pf;
    code.extend(body);
    let new_thread = ThreadCode {
        name: thread.name.clone(),
        code,
        blocks,
        frame_slots: thread.frame_slots,
        prefetch_bytes: region_plan.buffer_bytes.max(16),
        fallback: None,
    };

    let report = ThreadReport {
        name: thread.name.clone(),
        reads: reads_total,
        decoupled,
        regions: region_plan.regions.len(),
        buffer_bytes: new_thread.prefetch_bytes,
        skipped_reads: region_plan.skipped,
        skipped: None,
    };
    (new_thread, report)
}

/// Transforms every thread of a program (threads without global reads are
/// untouched, as in the paper).
///
/// Each transformed thread also keeps its untouched original appended at
/// the end of the program as a `__nopf` twin and linked via
/// [`ThreadCode::fallback`], so a PE whose DMA engine has been declared
/// unusable can re-run the thread without a PF block (same frame inputs,
/// same results, baseline blocking READs).
pub fn prefetch_program(program: &Program, opts: &TransformOptions) -> (Program, ProgramReport) {
    let protected: BTreeSet<usize> = program
        .threads
        .iter()
        .filter_map(|t| t.fallback.map(|f| f.index()))
        .collect();
    let mut threads = Vec::with_capacity(program.threads.len());
    let mut reports = Vec::with_capacity(program.threads.len());
    for (i, t) in program.threads.iter().enumerate() {
        if protected.contains(&i) {
            let reads = t
                .code
                .iter()
                .filter(|i| matches!(i, Instr::Read { .. }))
                .count();
            threads.push(t.clone());
            reports.push(skip_report(t, reads, ThreadSkip::FallbackTarget));
            continue;
        }
        let (nt, rep) = prefetch_thread(t, opts);
        threads.push(nt);
        reports.push(rep);
    }
    // Append baseline twins after the original id range so existing
    // FORK immediates keep pointing at the (now prefetching) threads.
    let mut fallbacks = Vec::new();
    for (i, rep) in reports.iter().enumerate() {
        if !rep.transformed() {
            continue;
        }
        let mut twin = program.threads[i].clone();
        twin.name = format!("{}__nopf", twin.name);
        debug_assert_eq!(twin.blocks.pf_end, 0);
        debug_assert_eq!(twin.prefetch_bytes, 0);
        let id = ThreadId((threads.len() + fallbacks.len()) as u32);
        threads[i].fallback = Some(id);
        fallbacks.push(twin);
    }
    threads.extend(fallbacks);
    (
        Program {
            threads,
            entry: program.entry,
            entry_args: program.entry_args,
            globals: program.globals.clone(),
        },
        ProgramReport { threads: reports },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_isa::{reg::r, validate_thread, BrCond, CodeBlock, ThreadBuilder};

    fn strided_sum_thread(n: i32) -> ThreadCode {
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0); // base
        t.load(r(8), 1); // out address
        t.begin_ex();
        t.li(r(4), 0);
        t.li(r(5), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n, done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(5), r(5), r(7));
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.begin_ps();
        t.write(r(5), r(8), 0);
        t.ffree_self();
        t.stop();
        t.build()
    }

    #[test]
    fn loop_read_is_rewritten_into_pf_plus_lsload() {
        let orig = strided_sum_thread(32);
        let (new, rep) = prefetch_thread(&orig, &TransformOptions::default());
        assert!(rep.transformed());
        assert_eq!(rep.reads, 1);
        assert_eq!(rep.decoupled, 1);
        assert_eq!(rep.regions, 1);
        assert!(new.blocks.pf_end > 0);
        // PF ends with a yield.
        assert!(matches!(
            new.code[new.blocks.pf_end as usize - 1],
            Instr::DmaYield
        ));
        // No READs remain; an LSLOAD appeared.
        assert!(!new.code.iter().any(|i| matches!(i, Instr::Read { .. })));
        assert!(new.code.iter().any(|i| matches!(i, Instr::LsLoad { .. })));
        assert!(new.prefetch_bytes >= 128);
        // Block boundaries still map the write into PS.
        let write_pc = new
            .code
            .iter()
            .position(|i| matches!(i, Instr::Write { .. }))
            .unwrap() as u32;
        assert_eq!(new.block_of(write_pc), CodeBlock::Ps);
        // The result still validates.
        let mut errs = Vec::new();
        validate_thread(&new, std::slice::from_ref(&new), &mut errs);
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn branch_targets_survive_the_rewrite() {
        let orig = strided_sum_thread(16);
        let (new, _) = prefetch_thread(&orig, &TransformOptions::default());
        // Every branch target lands on a valid instruction and the loop
        // back-edge still points at the guard.
        for i in &new.code {
            if let Some(t) = i.target() {
                assert!(t < new.len());
            }
        }
        let guard_pc = new
            .code
            .iter()
            .position(|i| {
                matches!(
                    i,
                    Instr::Br {
                        cond: BrCond::Ge,
                        ..
                    }
                )
            })
            .unwrap() as u32;
        let jmp = new
            .code
            .iter()
            .find(|i| matches!(i, Instr::Jmp { .. }))
            .unwrap();
        assert_eq!(jmp.target(), Some(guard_pc));
    }

    #[test]
    fn thread_without_reads_is_untouched() {
        let mut t = ThreadBuilder::new("t");
        t.begin_ex();
        t.li(r(3), 1);
        t.stop();
        let orig = t.build();
        let (new, rep) = prefetch_thread(&orig, &TransformOptions::default());
        assert_eq!(new, orig);
        assert_eq!(rep.skipped, Some(ThreadSkip::NoGlobalReads));
    }

    #[test]
    fn already_prefetching_thread_is_untouched() {
        let mut t = ThreadBuilder::new("t");
        t.prefetch_bytes(64);
        t.li(r(3), 0x1000);
        t.dmaget(r(2), 0, r(3), 0, 64, 0);
        t.dmayield();
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.stop();
        let orig = t.build();
        let (new, rep) = prefetch_thread(&orig, &TransformOptions::default());
        assert_eq!(new, orig);
        assert_eq!(rep.skipped, Some(ThreadSkip::AlreadyPrefetching));
    }

    #[test]
    fn data_dependent_read_is_left_in_place() {
        // One decouplable + one chained read.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.read(r(4), r(3), 0);
        t.shl(r(5), r(4), 2);
        t.add(r(5), r(3), r(5));
        t.read(r(6), r(5), 0);
        t.begin_ps();
        t.ffree_self();
        t.stop();
        let (new, rep) = prefetch_thread(&t.build(), &TransformOptions::default());
        assert_eq!(rep.reads, 2);
        assert_eq!(rep.decoupled, 1);
        assert_eq!(
            new.code
                .iter()
                .filter(|i| matches!(i, Instr::Read { .. }))
                .count(),
            1
        );
        assert_eq!(rep.skipped_reads.len(), 1);
    }

    #[test]
    fn register_pressure_falls_back_gracefully() {
        // A thread using every register leaves no scratch space.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        for i in 3..64u8 {
            t.li(r(i), i as i64);
        }
        t.read(r(4), r(3), 0);
        t.stop();
        let orig = t.build();
        let (new, rep) = prefetch_thread(&orig, &TransformOptions::default());
        assert_eq!(new, orig);
        assert_eq!(rep.skipped, Some(ThreadSkip::NoScratchRegisters));
    }

    #[test]
    fn strided_region_uses_shift_translation() {
        // stride 1024 (power of two), small cap forces packed gather.
        let mut t = ThreadBuilder::new("t");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), 32, done);
        t.shl(r(6), r(4), 10);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.stop();
        let opts = TransformOptions {
            plan: PlanOptions {
                max_region_bytes: 4096,
                ..PlanOptions::default()
            },
        };
        let (new, rep) = prefetch_thread(&t.build(), &opts);
        assert!(rep.transformed());
        assert!(new
            .code
            .iter()
            .any(|i| matches!(i, Instr::DmaGetStrided { .. })));
        // The shift pair appears in the translation.
        assert!(new.code.iter().any(|i| matches!(
            i,
            Instr::Alu {
                op: AluOp::Shr,
                rb: Src::Imm(10),
                ..
            }
        )));
    }

    #[test]
    fn program_report_aggregates() {
        let mut pb = dta_isa::ProgramBuilder::new();
        let a = pb.declare("a");
        let b = pb.declare("b");
        pb.define(a, {
            let mut t = ThreadBuilder::new("a");
            t.begin_pl();
            t.load(r(3), 0);
            t.begin_ex();
            t.read(r(4), r(3), 0);
            t.begin_ps();
            t.ffree_self();
            t.stop();
            t
        });
        pb.define(b, {
            let mut t = ThreadBuilder::new("b");
            t.begin_ex();
            t.li(r(3), 1);
            t.begin_ps();
            t.ffree_self();
            t.stop();
            t
        });
        pb.set_entry(a, 1);
        let p = pb.build();
        let (p2, rep) = prefetch_program(&p, &TransformOptions::default());
        assert_eq!(rep.total_reads(), 1);
        assert_eq!(rep.total_decoupled(), 1);
        assert!((rep.decoupled_fraction() - 1.0).abs() < 1e-9);
        assert!(p2.threads[0].blocks.pf_end > 0);
        assert_eq!(p2.threads[1], p.threads[1]);
        assert!(dta_isa::validate_program(&p2).is_empty());
    }
}
