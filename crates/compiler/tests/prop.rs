//! Randomised property tests for the prefetch compiler.
//!
//! The central property: for randomly generated kernels mixing affine
//! reads, data-dependent (chained) reads, counted read loops, and
//! arithmetic, the **transformed program computes exactly the same result
//! as the baseline**, and both match a host-side model. This is a
//! three-way differential test of the compiler *and* the simulator.
//!
//! Deterministic seeded PRNG (no external property-testing dependency —
//! the repo builds hermetically); failures print the case index so a
//! failure can be replayed by pinning `SEED`.

use dta_compiler::{prefetch_program, TransformOptions};
use dta_core::{simulate, SystemConfig};
use dta_isa::{reg::r, AluOp, BrCond, Program, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

const SEED: u64 = 0xA076_1D64_78BD_642F;
const DATA_WORDS: usize = 512;

/// xorshift64* — small, fast, deterministic.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }
}

fn data_words() -> Vec<i32> {
    (0..DATA_WORDS as u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) & 0xFFFF) as i32)
        .collect()
}

/// One semantic step of the generated kernel.
#[derive(Clone, Debug)]
enum Pat {
    /// `last = data[off + arg[i]*scale]; acc += last` — affine, and thus
    /// decouplable.
    AffineRead { input: usize, scale: i64, off: i64 },
    /// `last = data[last & 63]; acc += last` — data-dependent, must stay.
    ChainedRead,
    /// `acc = op(acc, imm)`.
    Arith { op: AluOp, imm: i64 },
    /// `for k in 0..trip { acc += data[off + arg[i]*scale + k*stride] }` —
    /// a counted loop the planner turns into one DMA region.
    LoopSum {
        input: usize,
        scale: i64,
        trip: i64,
        stride: i64,
        off: i64,
    },
}

fn arb_pat(rng: &mut Rng) -> Pat {
    match rng.below(4) {
        0 => Pat::AffineRead {
            input: rng.below(2) as usize,
            scale: rng.range(0, 4),
            off: rng.range(0, 64),
        },
        1 => Pat::ChainedRead,
        2 => {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Mul];
            Pat::Arith {
                op: ops[rng.below(4) as usize],
                imm: rng.range(-7, 8),
            }
        }
        _ => Pat::LoopSum {
            input: rng.below(2) as usize,
            scale: rng.range(0, 4),
            trip: rng.range(1, 8),
            stride: rng.range(1, 4),
            off: rng.range(0, 64),
        },
    }
}

fn arb_pats(rng: &mut Rng, max: u64) -> Vec<Pat> {
    (0..rng.range(1, max as i64))
        .map(|_| arb_pat(rng))
        .collect()
}

/// Host-side reference semantics.
fn model(pats: &[Pat], args: &[i64; 2]) -> i64 {
    let data = data_words();
    let mut acc = 0i64;
    let mut last = 0i64;
    for p in pats {
        match *p {
            Pat::AffineRead { input, scale, off } => {
                let idx = (off + args[input] * scale) as usize;
                last = data[idx] as i64;
                acc = acc.wrapping_add(last);
            }
            Pat::ChainedRead => {
                let idx = (last & 63) as usize;
                last = data[idx] as i64;
                acc = acc.wrapping_add(last);
            }
            Pat::Arith { op, imm } => acc = op.eval(acc, imm),
            Pat::LoopSum {
                input,
                scale,
                trip,
                stride,
                off,
            } => {
                for k in 0..trip {
                    let idx = (off + args[input] * scale + k * stride) as usize;
                    acc = acc.wrapping_add(data[idx] as i64);
                }
            }
        }
    }
    acc
}

/// Builds the DTA program for a pattern list.
fn build(pats: &[Pat]) -> Program {
    let mut pb = ProgramBuilder::new();
    let data = pb.global_words("data", &data_words());
    let out = pb.global_zeroed("out", 8);
    let main = pb.declare("main");

    let mut t = ThreadBuilder::new("main");
    t.begin_pl();
    t.load(r(3), 0); // arg0
    t.load(r(4), 1); // arg1
    t.begin_ex();
    t.li(r(5), 0); // acc
    t.li(r(6), 0); // last
    t.li(r(7), data as i64); // base
    for p in pats {
        match *p {
            Pat::AffineRead { input, scale, off } => {
                let arg = if input == 0 { r(3) } else { r(4) };
                t.mul(r(8), arg, (scale * 4) as i32);
                t.add(r(8), r(7), r(8));
                t.read(r(6), r(8), (off * 4) as i32);
                t.add(r(5), r(5), r(6));
            }
            Pat::ChainedRead => {
                t.and(r(8), r(6), 63);
                t.shl(r(8), r(8), 2);
                t.add(r(8), r(7), r(8));
                t.read(r(6), r(8), 0);
                t.add(r(5), r(5), r(6));
            }
            Pat::Arith { op, imm } => {
                t.alu(op, r(5), r(5), imm as i32);
            }
            Pat::LoopSum {
                input,
                scale,
                trip,
                stride,
                off,
            } => {
                let arg = if input == 0 { r(3) } else { r(4) };
                t.mul(r(9), arg, (scale * 4) as i32);
                t.add(r(9), r(7), r(9)); // region base for this loop
                t.li(r(13), 0); // k
                let top = t.label_here();
                let done = t.new_label();
                t.br(BrCond::Ge, r(13), trip as i32, done);
                t.mul(r(10), r(13), (stride * 4) as i32);
                t.add(r(10), r(9), r(10));
                t.read(r(11), r(10), (off * 4) as i32);
                t.add(r(5), r(5), r(11));
                t.add(r(13), r(13), 1);
                t.jmp(top);
                t.bind(done);
            }
        }
    }
    t.begin_ps();
    t.li(r(12), out as i64);
    t.write(r(5), r(12), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 2);
    pb.build()
}

/// Baseline, transformed program, and host model all agree, for every
/// argument pair and pattern mix.
#[test]
fn transform_preserves_semantics() {
    let mut rng = Rng::new(SEED);
    for case in 0..48 {
        let pats = arb_pats(&mut rng, 10);
        let args = [rng.range(0, 8), rng.range(0, 8)];
        let expected = model(&pats, &args) as i32;

        let base = build(&pats);
        assert!(dta_isa::validate_program(&base).is_empty(), "case {case}");
        let (pf, report) = prefetch_program(&base, &TransformOptions::default());
        assert!(
            dta_isa::validate_program(&pf).is_empty(),
            "case {case}: transformed program invalid: {:?}",
            dta_isa::validate_program(&pf)
        );

        let cfg = SystemConfig::with_pes(1);
        let (_, sys_b) = simulate(cfg.clone(), Arc::new(base), &args).unwrap();
        assert_eq!(
            sys_b.read_global_word("out", 0),
            Some(expected),
            "case {case}: baseline"
        );
        let (_, sys_p) = simulate(cfg, Arc::new(pf), &args).unwrap();
        assert_eq!(
            sys_p.read_global_word("out", 0),
            Some(expected),
            "case {case}: transformed (report: {:?})",
            report.threads[0]
        );
    }
}

/// Every affine read decouples; a chained read stays exactly when a
/// real memory value has already flowed into `last` (a chained read
/// before any other read has a *constant* address — the analysis is
/// allowed to decouple it).
#[test]
fn classification_matches_construction() {
    let mut rng = Rng::new(SEED ^ 1);
    for case in 0..64 {
        let pats = arb_pats(&mut rng, 10);
        let base = build(&pats);
        let (_, report) = prefetch_program(&base, &TransformOptions::default());
        let rep = &report.threads[0];
        let mut expected_decoupled = 0usize;
        let mut expected_stay = 0usize;
        let mut last_is_known = true;
        let mut reads = 0usize;
        for p in &pats {
            match p {
                Pat::AffineRead { .. } => {
                    reads += 1;
                    expected_decoupled += 1;
                    last_is_known = false;
                }
                Pat::LoopSum { .. } => {
                    reads += 1;
                    expected_decoupled += 1;
                }
                Pat::ChainedRead => {
                    reads += 1;
                    if last_is_known {
                        expected_decoupled += 1;
                    } else {
                        expected_stay += 1;
                    }
                    last_is_known = false;
                }
                Pat::Arith { .. } => {}
            }
        }
        assert_eq!(rep.reads, reads, "case {case}");
        assert_eq!(
            rep.decoupled, expected_decoupled,
            "case {case}: report {rep:?}"
        );
        // The chained reads are masked (`last & 63`), so the analysis
        // classifies them as *bounded* objects; with whole-object
        // prefetching off (the default/paper configuration) they are
        // skipped as not-worthwhile rather than opaque.
        let stayed = rep
            .skipped_reads
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r,
                    dta_compiler::SkipReason::DataDependent
                        | dta_compiler::SkipReason::NotWorthwhile
                )
            })
            .count();
        assert_eq!(stayed, expected_stay, "case {case}");
    }
}

/// With whole-object prefetching enabled, the same kernels still
/// compute identical results (the chained reads' 256-byte window is
/// staged in the local store).
#[test]
fn whole_object_transform_preserves_semantics() {
    let mut rng = Rng::new(SEED ^ 2);
    for case in 0..32 {
        let pats = arb_pats(&mut rng, 10);
        let args = [rng.range(0, 8), rng.range(0, 8)];
        let expected = model(&pats, &args) as i32;
        let base = build(&pats);
        let opts = TransformOptions {
            plan: dta_compiler::PlanOptions {
                whole_object: true,
                whole_object_min_uses: 1,
                ..dta_compiler::PlanOptions::default()
            },
        };
        let (pf, _) = dta_compiler::prefetch_program(&base, &opts);
        assert!(dta_isa::validate_program(&pf).is_empty(), "case {case}");
        let cfg = SystemConfig::with_pes(1);
        let (_, sys_p) = simulate(cfg, Arc::new(pf), &args).unwrap();
        assert_eq!(
            sys_p.read_global_word("out", 0),
            Some(expected),
            "case {case}: whole-object"
        );
    }
}

/// The transformation is idempotent in effect: transforming an
/// already-transformed program changes nothing.
#[test]
fn transform_is_idempotent() {
    let mut rng = Rng::new(SEED ^ 3);
    for case in 0..48 {
        let pats = arb_pats(&mut rng, 8);
        let base = build(&pats);
        let (once, _) = prefetch_program(&base, &TransformOptions::default());
        let (twice, report) = prefetch_program(&once, &TransformOptions::default());
        assert_eq!(once, twice, "case {case}");
        assert!(
            report.threads.iter().all(|t| !t.transformed()),
            "case {case}"
        );
    }
}
