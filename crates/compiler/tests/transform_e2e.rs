//! End-to-end: programs transformed by the prefetch compiler must compute
//! identical results on the simulator, with the memory stalls removed.

use dta_compiler::{prefetch_program, PlanOptions, TransformOptions};
use dta_core::{simulate, StallCat, SystemConfig};
use dta_isa::{reg::r, BrCond, Program, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

/// Parallel array scaling: entry forks one worker per chunk; worker w
/// reads its chunk of `src`, multiplies by 3, writes to `dst`.
fn scale_program(n: usize, chunks: i64) -> Program {
    let chunk = (n as i64) / chunks;
    assert_eq!(n as i64 % chunks, 0);
    let words: Vec<i32> = (0..n as i32).map(|i| i - 100).collect();
    let mut pb = ProgramBuilder::new();
    let src = pb.global_words("src", &words);
    let dst = pb.global_zeroed("dst", n * 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0); // chunk index
    t.li(r(4), chunks);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), r(4), done);
    t.falloc(r(5), worker, 1);
    t.store(r(3), r(5), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    w.begin_pl();
    w.load(r(3), 0); // chunk index
    w.begin_ex();
    w.mul(r(4), r(3), (chunk * 4) as i32); // byte offset of the chunk
    w.li(r(5), src as i64);
    w.add(r(5), r(5), r(4)); // src chunk base
    w.li(r(6), dst as i64);
    w.add(r(6), r(6), r(4)); // dst chunk base
    w.li(r(7), 0); // i
    let top = w.label_here();
    let done = w.new_label();
    w.br(BrCond::Ge, r(7), chunk as i32, done);
    w.shl(r(9), r(7), 2);
    w.add(r(10), r(5), r(9));
    w.read(r(11), r(10), 0);
    w.mul(r(11), r(11), 3);
    w.add(r(12), r(6), r(9));
    w.write(r(11), r(12), 0);
    w.add(r(7), r(7), 1);
    w.jmp(top);
    w.bind(done);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    pb.build()
}

#[test]
fn transformed_program_computes_identical_results() {
    let n = 256;
    let base = scale_program(n, 8);
    let (pf, report) = prefetch_program(&base, &TransformOptions::default());
    assert_eq!(report.total_decoupled(), 1);
    assert!(dta_isa::validate_program(&pf).is_empty());

    let cfg = SystemConfig::with_pes(4);
    let (_, sys_base) = simulate(cfg.clone(), Arc::new(base), &[]).unwrap();
    let (_, sys_pf) = simulate(cfg, Arc::new(pf), &[]).unwrap();
    for i in 0..n {
        let expected = (i as i32 - 100) * 3;
        assert_eq!(sys_base.read_global_word("dst", i), Some(expected));
        assert_eq!(sys_pf.read_global_word("dst", i), Some(expected));
    }
}

#[test]
fn transformed_program_removes_memory_stalls_and_is_faster() {
    let base = scale_program(512, 8);
    let (pf, _) = prefetch_program(&base, &TransformOptions::default());
    let cfg = SystemConfig::with_pes(8);
    let (sb, _) = simulate(cfg.clone(), Arc::new(base), &[]).unwrap();
    let (sp, _) = simulate(cfg, Arc::new(pf), &[]).unwrap();

    let b_base = sb.breakdown();
    let b_pf = sp.breakdown();
    assert!(
        b_base.frac(StallCat::MemStall) > 0.4,
        "baseline memstall {:.2}",
        b_base.frac(StallCat::MemStall)
    );
    assert!(
        b_pf.frac(StallCat::MemStall) < 0.10,
        "prefetch memstall {:.2}",
        b_pf.frac(StallCat::MemStall)
    );
    assert!(
        sp.cycles * 2 < sb.cycles,
        "prefetch {} vs baseline {}",
        sp.cycles,
        sb.cycles
    );
    // The rewrite eliminated the dynamic READs.
    assert_eq!(sp.aggregate.reads, 0);
    assert!(sb.aggregate.reads > 0);
    assert!(sp.dma_commands >= 8);
}

#[test]
fn strided_translation_is_correct_end_to_end() {
    // Read a column of a 32x32 matrix (stride 128) with a tight buffer
    // cap, forcing the packed-gather path, and sum it.
    let n = 32usize;
    let words: Vec<i32> = (0..(n * n) as i32).collect();
    let mut pb = ProgramBuilder::new();
    let mat = pb.global_words("mat", &words);
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");

    let mut t = ThreadBuilder::new("main");
    t.begin_pl();
    t.load(r(3), 0); // column index
    t.begin_ex();
    t.shl(r(4), r(3), 2);
    t.li(r(5), mat as i64);
    t.add(r(5), r(5), r(4)); // &mat[0][col]
    t.li(r(6), 0); // row
    t.li(r(7), 0); // sum
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(6), n as i32, done);
    t.mul(r(9), r(6), (n * 4) as i32);
    t.add(r(9), r(5), r(9));
    t.read(r(10), r(9), 0);
    t.add(r(7), r(7), r(10));
    t.add(r(6), r(6), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.li(r(11), out as i64);
    t.write(r(7), r(11), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 1);
    let base = pb.build();

    let opts = TransformOptions {
        plan: PlanOptions {
            max_region_bytes: 512, // column box is 32*128 = 4096 > cap
            ..PlanOptions::default()
        },
    };
    let (pf, report) = prefetch_program(&base, &opts);
    assert!(report.threads[0].transformed());
    assert!(pf.threads[0]
        .code
        .iter()
        .any(|i| matches!(i, dta_isa::Instr::DmaGetStrided { .. })));

    let col = 5i64;
    let expected: i32 = (0..n as i32).map(|row| row * n as i32 + col as i32).sum();
    let (_, sys_b) = simulate(SystemConfig::with_pes(1), Arc::new(base), &[col]).unwrap();
    assert_eq!(sys_b.read_global_word("out", 0), Some(expected));
    let (_, sys_p) = simulate(SystemConfig::with_pes(1), Arc::new(pf), &[col]).unwrap();
    assert_eq!(sys_p.read_global_word("out", 0), Some(expected));
}

#[test]
fn transformed_programs_run_deterministically() {
    let base = scale_program(128, 4);
    let (pf, _) = prefetch_program(&base, &TransformOptions::default());
    let p = Arc::new(pf);
    let (a, _) = simulate(SystemConfig::with_pes(4), p.clone(), &[]).unwrap();
    let (b, _) = simulate(SystemConfig::with_pes(4), p, &[]).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.aggregate, b.aggregate);
}
