//! Engine-invariance property for the observability layer (PR 4).
//!
//! The merged event stream — sorted by the simulator's deterministic
//! wall order `(cycle, unit, seq)` and stripped of the engine's own
//! epoch records — must be **bit-identical** across `Parallelism::Off`
//! and `Threads(2|4)`, on the paper's three benchmarks, with and
//! without a seeded `FaultPlan`. Also checks the layer is pure
//! observation (identical `RunStats` with sinks on or off) and that the
//! Perfetto export of mmul(32) PF actually shows the paper's Fig. 4
//! overlap: DMA-in-flight spans overlapping other threads' EX slices on
//! the same PE.

use dta_core::{
    simulate, FaultPlan, ObsMode, Parallelism, RunStats, System, SystemConfig, ThreadEvent,
};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::Arc;

fn cfg(par: Parallelism, mode: ObsMode, faults: Option<FaultPlan>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.parallelism = par;
    cfg.obs.mode = mode;
    cfg.obs.metrics_interval = 500;
    cfg.faults = faults;
    cfg.max_cycles = 50_000_000;
    cfg
}

fn run(
    build: &dyn Fn() -> WorkloadProgram,
    par: Parallelism,
    mode: ObsMode,
    faults: Option<FaultPlan>,
) -> (RunStats, System) {
    let wp = build();
    simulate(cfg(par, mode, faults), Arc::new(wp.program), &wp.args)
        .unwrap_or_else(|e| panic!("{par:?}/{mode:?} failed: {e}"))
}

/// A mixed recoverable plan: transient DMA failures, every message-fault
/// kind, and FALLOC denials — rates low enough that the paper benchmarks
/// complete with verified results.
fn mixed_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(0x0B5E_11A7);
    plan.dma_fail_ppm = 30_000;
    plan.dma_backoff_base = 16;
    plan.msg_drop_ppm = 10_000;
    plan.msg_dup_ppm = 10_000;
    plan.msg_delay_ppm = 10_000;
    plan.falloc_deny_ppm = 50_000;
    plan
}

fn assert_stream_invariant(
    name: &str,
    build: &dyn Fn() -> WorkloadProgram,
    verify: &dyn Fn(&System) -> Result<(), String>,
    faults: Option<FaultPlan>,
) {
    let (oracle_stats, oracle_sys) = run(build, Parallelism::Off, ObsMode::All, faults);
    verify(&oracle_sys).unwrap_or_else(|e| panic!("{name}: sequential result wrong: {e}"));
    // Conservation: every simulated PE-cycle lands in exactly one fine
    // attribution category — with or without injected faults. (The fine
    // array rides in `PeStats`, so the `assert_eq!` below also proves
    // attribution is bit-identical across engines.)
    for (pe, p) in oracle_stats.per_pe.iter().enumerate() {
        assert_eq!(
            p.total_fine_cycles(),
            p.total_cycles(),
            "{name}: fine-attribution conservation violated on PE {pe}"
        );
    }
    // Reconciliation: the attribution-side overlap census (compute with
    // DMA open) can never exceed the busy-span overlap the metrics fold
    // reports, which also counts intra-span stall cycles.
    let attr_overlap: u64 = oracle_stats
        .per_pe
        .iter()
        .map(|p| p.attr_overlap_cycles)
        .sum();
    let metrics = oracle_sys.metrics().expect("metrics on");
    assert!(
        attr_overlap <= metrics.overlap_cycles,
        "{name}: attribution overlap {attr_overlap} exceeds metrics overlap {}",
        metrics.overlap_cycles
    );
    let oracle = oracle_sys.obs().expect("observability on");
    let oracle_det = oracle.deterministic();
    assert!(!oracle_det.is_empty(), "{name}: empty event stream");

    for threads in [2u16, 4] {
        let (stats, sys) = run(build, Parallelism::Threads(threads), ObsMode::All, faults);
        verify(&sys).unwrap_or_else(|e| panic!("{name}: Threads({threads}) result wrong: {e}"));
        assert_eq!(
            oracle_stats, stats,
            "{name}: Threads({threads}) stats diverged"
        );
        let stream = sys.obs().expect("observability on");
        assert_eq!(
            oracle.dropped, stream.dropped,
            "{name}: Threads({threads}) ring-drop count diverged"
        );
        let det = stream.deterministic();
        assert_eq!(
            oracle_det.len(),
            det.len(),
            "{name}: Threads({threads}) stream length diverged"
        );
        // Bit-identical wall order: first divergence reported precisely.
        for (i, (a, b)) in oracle_det.iter().zip(det.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{name}: Threads({threads}) stream diverged at record {i}"
            );
        }
    }
}

#[test]
fn bitcnt_stream_is_engine_invariant() {
    assert_stream_invariant(
        "bitcnt(10000)",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        None,
    );
}

#[test]
fn mmul_stream_is_engine_invariant() {
    assert_stream_invariant(
        "mmul(32)",
        &|| mmul::build(32, Variant::HandPrefetch),
        &|s| mmul::verify(s, 32),
        None,
    );
}

#[test]
fn zoom_stream_is_engine_invariant() {
    assert_stream_invariant(
        "zoom(32)",
        &|| zoom::build(32, Variant::HandPrefetch),
        &|s| zoom::verify(s, 32),
        None,
    );
}

#[test]
fn bitcnt_stream_is_engine_invariant_under_faults() {
    assert_stream_invariant(
        "bitcnt(10000)+faults",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        Some(mixed_plan()),
    );
}

#[test]
fn mmul_stream_is_engine_invariant_under_faults() {
    assert_stream_invariant(
        "mmul(32)+faults",
        &|| mmul::build(32, Variant::HandPrefetch),
        &|s| mmul::verify(s, 32),
        Some(mixed_plan()),
    );
}

#[test]
fn zoom_stream_is_engine_invariant_under_faults() {
    assert_stream_invariant(
        "zoom(32)+faults",
        &|| zoom::build(32, Variant::HandPrefetch),
        &|s| zoom::verify(s, 32),
        Some(mixed_plan()),
    );
}

/// Observation is free: enabling the full observability stack (events +
/// gauges) must leave every `RunStats` counter — including the cycle
/// count — byte-identical to a run with observability off.
#[test]
fn observability_is_pure_observation() {
    let build = || mmul::build(16, Variant::HandPrefetch);
    let (off, sys_off) = run(&build, Parallelism::Off, ObsMode::Off, None);
    assert!(sys_off.obs().is_none(), "mode Off must collect nothing");
    for mode in [ObsMode::Events, ObsMode::Metrics, ObsMode::All] {
        let (on, _) = run(&build, Parallelism::Off, mode, None);
        assert_eq!(off, on, "{mode:?} perturbed the simulation");
        assert_eq!(off.cycles, on.cycles);
    }
}

/// The metrics layer must quantify the paper's non-blocking property:
/// on mmul(32) with hand prefetch, pipelines are busy while the same
/// PE's MFC has DMA in flight (Fig. 4 overlap).
#[test]
fn mmul_pf_metrics_show_nonblocking_overlap() {
    let (stats, sys) = run(
        &|| mmul::build(32, Variant::HandPrefetch),
        Parallelism::Off,
        ObsMode::All,
        None,
    );
    let m = sys.metrics().expect("metrics on");
    assert!(m.busy_cycles > 0, "no busy cycles measured");
    assert!(
        m.overlap_cycles > 0,
        "PF variant must overlap execution with DMA: {}",
        m.render()
    );
    // The attribution-side census must see the same overlap: positive on
    // a PF workload, and bounded above by the busy-span accounting.
    let attr_overlap: u64 = stats.per_pe.iter().map(|p| p.attr_overlap_cycles).sum();
    assert!(
        attr_overlap > 0,
        "attribution saw no compute cycles with DMA in flight"
    );
    assert!(
        attr_overlap <= m.overlap_cycles,
        "attribution overlap {attr_overlap} exceeds metrics overlap {}",
        m.overlap_cycles
    );
    assert!(m.dma_latency.total > 0, "no DMA latencies measured");
    assert!(m.samples > 0, "no gauge samples taken");
    assert!(m.max_dma_in_flight > 0, "gauges never saw DMA in flight");
    // The report renders without panicking and mentions the overlap.
    assert!(m.render().contains("overlap"));
}

/// The Perfetto export is well-formed JSON whose DMA async spans overlap
/// EX slices of *other* thread instances on the same PE track — the
/// visual form of the acceptance criterion.
#[test]
fn mmul_pf_perfetto_trace_shows_dma_overlapping_foreign_ex() {
    let (_, sys) = run(
        &|| mmul::build(32, Variant::HandPrefetch),
        Parallelism::Off,
        ObsMode::All,
        None,
    );
    let text = sys.perfetto_trace().expect("observability on");
    let doc = dta_json::parse(&text).expect("trace.json must parse");
    let events = match doc.get("traceEvents") {
        Some(dta_json::Json::Arr(a)) => a,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert!(!events.is_empty());

    let fget = |e: &dta_json::Json, k: &str| e.get(k).and_then(|v| v.as_u64());
    let sget = |e: &dta_json::Json, k: &str| {
        e.get(k)
            .and_then(|v| v.as_str())
            .map(str::to_string)
            .unwrap_or_default()
    };

    // DMA async spans live on the MFC track (tid = 200000 + pe); EX
    // slices on the PE track (tid = pe + 1). Pair begin/end by async id.
    const MFC_TID_BASE: u64 = 200_000;
    let mut dma_open: std::collections::HashMap<String, (u64, u64, u64)> =
        std::collections::HashMap::new();
    let mut dma_spans: Vec<(u64, u64, u64, u64)> = Vec::new(); // (pid, pe, b, e)
    let mut ex: Vec<(u64, u64, u64, u64)> = Vec::new(); // (pid, pe, s, e)
    for e in events {
        let ph = sget(e, "ph");
        let pid = fget(e, "pid").unwrap_or(0);
        let tid = fget(e, "tid").unwrap_or(0);
        let ts = fget(e, "ts").unwrap_or(0);
        match ph.as_str() {
            "b" => {
                dma_open.insert(sget(e, "id"), (pid, tid - MFC_TID_BASE, ts));
            }
            "e" => {
                if let Some((p, pe, b)) = dma_open.remove(&sget(e, "id")) {
                    dma_spans.push((p, pe, b, ts));
                }
            }
            "X" => {
                let dur = fget(e, "dur").unwrap_or(0);
                ex.push((pid, tid - 1, ts, ts + dur));
            }
            _ => {}
        }
    }
    assert!(!dma_spans.is_empty(), "no DMA async spans exported");
    assert!(!ex.is_empty(), "no EX slices exported");

    // Some EX slice must overlap a DMA-in-flight span *on the same PE*:
    // the pipeline keeps executing while its MFC moves memory — the
    // paper's non-blocking claim, visible in Perfetto.
    let overlapping = dma_spans.iter().any(|&(pid, pe, b, e)| {
        ex.iter()
            .any(|&(xp, xpe, s, t)| xp == pid && xpe == pe && s < e && b < t)
    });
    assert!(
        overlapping,
        "no EX slice overlaps a DMA-in-flight span on the same PE"
    );
}

/// The lifecycle events on the bus match what the legacy `Trace` shim
/// reconstructs: every retained trace record originates from a `Thread`
/// event in the stream.
#[test]
fn trace_shim_is_a_view_of_the_stream() {
    let build = || bitcnt::build(1024, Variant::HandPrefetch);
    let wp = build();
    let mut c = cfg(Parallelism::Off, ObsMode::Events, None);
    c.trace = true;
    let (_, sys) = simulate(c, Arc::new(wp.program), &wp.args).expect("run");
    let trace = sys.trace().expect("trace shim built");
    let stream = sys.obs().expect("events on");
    let lifecycle = stream
        .records
        .iter()
        .filter(|r| matches!(r.ev, dta_core::ObsEvent::Thread { .. }))
        .count();
    assert_eq!(
        trace.events().len() as u64 + trace.dropped,
        lifecycle as u64,
        "trace shim must retain exactly the stream's lifecycle events"
    );
    assert!(trace.count(|e| matches!(e.kind, dta_core::TraceKind::Dispatched)) > 0);
    // Nothing dropped at default capacity, so the counts match exactly.
    assert_eq!(trace.dropped, 0);
    let waits = stream
        .records
        .iter()
        .filter(|r| {
            matches!(
                r.ev,
                dta_core::ObsEvent::Thread {
                    what: ThreadEvent::WaitDma,
                    ..
                }
            )
        })
        .count();
    assert_eq!(
        trace.count(|e| matches!(e.kind, dta_core::TraceKind::WaitDma)),
        waits,
        "trace and stream disagree on wait-DMA count"
    );
}
