//! The effective FALLOC denial rate must track the configured
//! `falloc_deny_ppm`: each admission rolls an independent deterministic
//! hash against the rate, so over thousands of admissions the observed
//! ratio denials/(denials + grants) has to land near ppm/1e6.
//!
//! (Replaces the temporary println-only `tmp_verify_deny` check from the
//! fault-injection PR with real assertions.)

use dta_core::{simulate, FaultPlan, Parallelism, RunStats, SystemConfig};
use dta_workloads::{bitcnt, Variant};
use std::sync::Arc;

/// Runs bitcnt(4096) under a seeded deny plan and returns its stats.
fn run_with_deny(seed: u64, ppm: u32) -> RunStats {
    let wp = bitcnt::build(4096, Variant::HandPrefetch);
    let mut cfg = SystemConfig::paper_default();
    cfg.max_cycles = 50_000_000;
    cfg.parallelism = Parallelism::Off;
    let mut plan = FaultPlan::seeded(seed);
    plan.falloc_deny_ppm = ppm;
    plan.falloc_retry_timeout = 300;
    cfg.faults = Some(plan);
    let (stats, sys) = simulate(cfg, Arc::new(wp.program), &wp.args).expect("denied run completes");
    bitcnt::verify(&sys, 4096).expect("denials must not corrupt the result");
    stats
}

/// Observed denial fraction of all admission attempts (grants retry after
/// a denial, so attempts = completed instances + denials).
fn rate(stats: &RunStats) -> f64 {
    stats.falloc_denials as f64 / (stats.instances + stats.falloc_denials) as f64
}

/// With denial injection off, not a single FALLOC is denied.
#[test]
fn zero_ppm_denies_nothing() {
    let stats = run_with_deny(21, 0);
    assert_eq!(stats.falloc_denials, 0);
}

/// For each configured rate the observed denial fraction stays within
/// [0.5x, 1.5x] of ppm/1e6 — loose enough for hash noise over a few
/// thousand admissions, tight enough to catch a rate applied to the
/// wrong population (e.g. per-retry instead of per-admission) or a
/// broken roll.
#[test]
fn denial_rate_tracks_configured_ppm() {
    for ppm in [10_000u32, 50_000, 200_000] {
        let stats = run_with_deny(21, ppm);
        assert!(
            stats.falloc_denials > 0,
            "ppm={ppm}: schedule never fired over {} instances",
            stats.instances
        );
        let want = ppm as f64 / 1e6;
        let got = rate(&stats);
        assert!(
            (0.5 * want..=1.5 * want).contains(&got),
            "ppm={ppm}: observed denial rate {got:.4} outside [{:.4}, {:.4}]",
            0.5 * want,
            1.5 * want
        );
    }
}

/// Raising the configured rate must raise the observed rate — the knob
/// is monotone even where the absolute tolerance above is loose.
#[test]
fn denial_rate_is_monotone_in_ppm() {
    let rates: Vec<f64> = [10_000u32, 50_000, 200_000, 500_000]
        .iter()
        .map(|&ppm| rate(&run_with_deny(21, ppm)))
        .collect();
    for pair in rates.windows(2) {
        assert!(
            pair[1] > pair[0],
            "denial rate must grow with ppm: {rates:?}"
        );
    }
}
