//! Precise pipeline-timing tests: dual issue, the register scoreboard,
//! and branch penalties, measured through instruction/cycle counters on
//! single-thread programs.

use dta_core::{simulate, RunStats, StallCat, SystemConfig};
use dta_isa::{reg::r, BrCond, Program, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

/// A 1-PE config with every penalty and latency pinned for exact math.
fn pinned() -> SystemConfig {
    let mut cfg = SystemConfig::with_pes(1);
    cfg.dispatch_penalty = 0;
    cfg.taken_branch_penalty = 0;
    cfg
}

fn run_one(body: impl FnOnce(&mut ThreadBuilder)) -> (RunStats, Program) {
    let mut pb = ProgramBuilder::new();
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    body(&mut t);
    pb.define(main, t);
    pb.set_entry(main, 0);
    let p = pb.build();
    let (stats, _) = simulate(pinned(), Arc::new(p.clone()), &[]).unwrap();
    (stats, p)
}

#[test]
fn independent_compute_and_frame_ops_dual_issue() {
    // Pairs of (ALU, frame STORE to own... no: use LSSTORE) should issue
    // two per cycle: N pairs -> ~N issue cycles with 2N instructions.
    let n = 32;
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 0); // LS address register
        for i in 0..n {
            // Independent compute (different dests) + LS store.
            t.add(r(5), r(4), i);
            t.lsstore(r(4), r(4), i * 4);
        }
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    let agg = &stats.aggregate;
    assert!(
        agg.dual_cycles >= (n as u64) - 2,
        "expected ~{n} dual-issue cycles, got {}",
        agg.dual_cycles
    );
    assert!(agg.issued >= 2 * n as u64);
}

#[test]
fn dependent_alu_chain_single_issues() {
    // A strict dependency chain can never dual-issue.
    let n = 64;
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 1);
        for _ in 0..n {
            t.add(r(4), r(4), 1);
        }
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    assert_eq!(stats.aggregate.dual_cycles, 0);
    // issue cycles ≈ instructions (1 IPC on the chain).
    assert!(stats.aggregate.issue_cycles as i64 - stats.aggregate.issued as i64 <= 1);
}

#[test]
fn scoreboard_charges_ls_latency_to_early_consumers() {
    // lsload followed immediately by its use stalls ~ls_latency cycles,
    // attributed to LS stalls.
    let uses = 32;
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 0);
        for i in 0..uses {
            t.lsload(r(5), r(4), i * 4);
            t.add(r(6), r(5), 1); // immediate use -> stall
        }
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    let ls = stats.aggregate.cat(StallCat::LsStall);
    // Each pair loses ~(ls_latency - 1) cycles; allow generous bounds.
    assert!(
        ls >= (uses as u64) * 3,
        "expected LS stalls from immediate consumers, got {ls}"
    );
}

#[test]
fn scheduling_independent_work_hides_ls_latency() {
    // The same loads with 6 independent ALU ops in between: no LS stalls.
    let uses = 32;
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 0);
        for i in 0..uses {
            t.lsload(r(5), r(4), i * 4);
            for k in 0..6 {
                t.add(r(7), r(4), k); // independent filler
            }
            t.add(r(6), r(5), 1);
        }
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    assert!(
        stats.aggregate.cat(StallCat::LsStall) <= 2,
        "scheduled loads should hide LS latency, got {}",
        stats.aggregate.cat(StallCat::LsStall)
    );
}

#[test]
fn taken_branch_penalty_is_charged() {
    // A counted loop of k iterations takes ~penalty extra cycles per
    // taken branch.
    let iters = 100u64;
    let build = |penalty: u64| {
        let mut pb = ProgramBuilder::new();
        let main = pb.declare("main");
        let mut t = ThreadBuilder::new("main");
        t.begin_ex();
        t.li(r(4), 0);
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), iters as i32, done);
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
        t.begin_ps();
        t.ffree_self();
        t.stop();
        pb.define(main, t);
        pb.set_entry(main, 0);
        let mut cfg = pinned();
        cfg.taken_branch_penalty = penalty;
        simulate(cfg, Arc::new(pb.build()), &[]).unwrap().0.cycles
    };
    let fast = build(0);
    let slow = build(4);
    // Each iteration takes one taken jmp (+ the final taken guard);
    // penalty 4 adds ~4 cycles per taken branch.
    let delta = slow - fast;
    assert!(
        (delta as i64 - (4 * (iters as i64 + 1))).abs() <= 8,
        "penalty delta {delta}, expected ~{}",
        4 * (iters + 1)
    );
}

#[test]
fn blocking_read_round_trip_is_exact() {
    // One READ on an otherwise empty machine: memory stall cycles equal
    // the documented round trip (command 1+wire, port 1, latency, data
    // 1+wire).
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 0x10_0000);
        t.read(r(5), r(4), 0);
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    let cfg = SystemConfig::paper_default();
    let expected = 1 + cfg.wire_latency + 1 + cfg.mem_latency + 1 + cfg.wire_latency;
    assert_eq!(stats.aggregate.cat(StallCat::MemStall), expected);
}

#[test]
fn read_and_dual_issue_dont_overcount_instructions() {
    // Total issued instructions must equal the static path length for a
    // straight-line thread.
    let (stats, p) = run_one(|t| {
        t.begin_ex();
        t.li(r(4), 0x10_0000);
        t.read(r(5), r(4), 0);
        t.add(r(6), r(5), 1);
        t.li(r(7), 128); // a local-store address
        t.lsstore(r(6), r(7), 0);
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    assert_eq!(stats.aggregate.issued, p.threads[0].code.len() as u64);
}

#[test]
fn nop_runs_at_one_per_cycle() {
    let n = 50;
    let (stats, _) = run_one(|t| {
        t.begin_ex();
        for _ in 0..n {
            t.nop();
        }
        t.begin_ps();
        t.ffree_self();
        t.stop();
    });
    // NOPs are compute-class and cannot pair with each other.
    assert_eq!(stats.aggregate.dual_cycles, 0);
    assert!(stats.aggregate.cat(StallCat::Working) >= n as u64);
}
