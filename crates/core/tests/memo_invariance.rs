//! Memoization invariance properties (PR 10).
//!
//! Instance memoization + timing replay is a pure *host-time*
//! optimisation: `RunStats`, the deterministic observability stream,
//! and every typed `RunError` must be **bit-identical** across the full
//! `{Dense, FastForward} × {Off, Threads(2), Threads(4)} × memo {on,
//! off}` matrix — on the paper's benchmarks and under seeded fault
//! plans (where the memo layer must disarm itself entirely). A final
//! group of tests pins that the layer actually does something: replays
//! fire on the paper workloads, and an open contention window
//! (concurrent DMA on the same MFC) correctly suppresses firing.

use dta_core::{
    simulate, FaultPlan, MemoConfig, ObsMode, Parallelism, RunError, RunStats, SchedMode, System,
    SystemConfig,
};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::Arc;

/// Every engine configuration the invariance property quantifies over.
/// `(Dense, Off)` with memo off is the oracle; every other point of the
/// `MATRIX × {memo on, memo off}` product must match it exactly.
const MATRIX: [(SchedMode, Parallelism); 6] = [
    (SchedMode::Dense, Parallelism::Off),
    (SchedMode::Dense, Parallelism::Threads(2)),
    (SchedMode::Dense, Parallelism::Threads(4)),
    (SchedMode::FastForward, Parallelism::Off),
    (SchedMode::FastForward, Parallelism::Threads(2)),
    (SchedMode::FastForward, Parallelism::Threads(4)),
];

fn cfg(sched: SchedMode, par: Parallelism, faults: Option<FaultPlan>, memo: bool) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.sched = sched;
    cfg.parallelism = par;
    cfg.obs.mode = ObsMode::All;
    cfg.obs.metrics_interval = 500;
    cfg.faults = faults;
    cfg.max_cycles = 50_000_000;
    if memo {
        cfg.memo = MemoConfig::on();
    }
    cfg
}

fn run(
    build: &dyn Fn() -> WorkloadProgram,
    sched: SchedMode,
    par: Parallelism,
    faults: Option<FaultPlan>,
    memo: bool,
) -> (RunStats, System) {
    let wp = build();
    simulate(
        cfg(sched, par, faults, memo),
        Arc::new(wp.program),
        &wp.args,
    )
    .unwrap_or_else(|e| panic!("{sched:?}/{par:?}/memo={memo} failed: {e}"))
}

/// Same mixed recoverable plan as the fast-forward invariance suite:
/// transient DMA failures, every message-fault kind, FALLOC denials.
/// Non-benign, so the memo layer must disarm itself under it.
fn mixed_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(0x0B5E_11A7);
    plan.dma_fail_ppm = 30_000;
    plan.dma_backoff_base = 16;
    plan.msg_drop_ppm = 10_000;
    plan.msg_dup_ppm = 10_000;
    plan.msg_delay_ppm = 10_000;
    plan.falloc_deny_ppm = 50_000;
    plan
}

fn assert_memo_invariant(
    name: &str,
    build: &dyn Fn() -> WorkloadProgram,
    verify: &dyn Fn(&System) -> Result<(), String>,
    faults: Option<FaultPlan>,
) {
    let (oracle_stats, oracle_sys) = run(build, SchedMode::Dense, Parallelism::Off, faults, false);
    verify(&oracle_sys).unwrap_or_else(|e| panic!("{name}: dense oracle result wrong: {e}"));
    let oracle = oracle_sys.obs().expect("observability on");
    let oracle_det = oracle.deterministic();
    assert!(!oracle_det.is_empty(), "{name}: empty event stream");

    for memo in [false, true] {
        for (sched, par) in MATRIX {
            if !memo && (sched, par) == (SchedMode::Dense, Parallelism::Off) {
                continue; // the oracle itself
            }
            let (stats, sys) = run(build, sched, par, faults, memo);
            verify(&sys).unwrap_or_else(|e| {
                panic!("{name}: {sched:?}/{par:?}/memo={memo} result wrong: {e}")
            });
            assert_eq!(
                oracle_stats, stats,
                "{name}: {sched:?}/{par:?}/memo={memo} stats diverged"
            );
            let stream = sys.obs().expect("observability on");
            assert_eq!(
                oracle.dropped, stream.dropped,
                "{name}: {sched:?}/{par:?}/memo={memo} ring-drop count diverged"
            );
            let det = stream.deterministic();
            assert_eq!(
                oracle_det.len(),
                det.len(),
                "{name}: {sched:?}/{par:?}/memo={memo} stream length diverged"
            );
            for (i, (a, b)) in oracle_det.iter().zip(det.iter()).enumerate() {
                assert_eq!(
                    a, b,
                    "{name}: {sched:?}/{par:?}/memo={memo} stream diverged at record {i}"
                );
            }
            if memo && faults.is_some() {
                // Non-benign plans disarm the memo layer entirely: it
                // must neither fire nor record.
                let r = sys.engine_report();
                assert_eq!(
                    (r.memo_hits, r.memo_misses),
                    (0, 0),
                    "{name}: {sched:?}/{par:?} memo ran under a fault plan"
                );
            }
        }
    }
}

#[test]
fn bitcnt_is_memo_invariant() {
    assert_memo_invariant(
        "bitcnt(10000)",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        None,
    );
}

#[test]
fn mmul_is_memo_invariant() {
    assert_memo_invariant(
        "mmul(32)",
        &|| mmul::build(32, Variant::HandPrefetch),
        &|s| mmul::verify(s, 32),
        None,
    );
}

#[test]
fn zoom_is_memo_invariant() {
    assert_memo_invariant(
        "zoom(32)",
        &|| zoom::build(32, Variant::HandPrefetch),
        &|s| zoom::verify(s, 32),
        None,
    );
}

/// Baseline (decoupled-READ) variants have no DMA at all — every pure
/// span fires under gate A. Pin those too.
#[test]
fn mmul_baseline_is_memo_invariant() {
    assert_memo_invariant(
        "mmul(32)/baseline",
        &|| mmul::build(32, Variant::Baseline),
        &|s| mmul::verify(s, 32),
        None,
    );
}

#[test]
fn bitcnt_under_faults_disarms_memo_and_stays_invariant() {
    assert_memo_invariant(
        "bitcnt(10000)+faults",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        Some(mixed_plan()),
    );
}

/// A run that trips `max_cycles` must produce the *same typed error* —
/// same cycle, same live-instance diagnostic — with memoization on or
/// off, on every engine. (The fire gate refuses replays that would
/// cross the cycle budget precisely so this holds.)
#[test]
fn cycle_limit_error_is_memo_invariant() {
    let go = |sched: SchedMode, par: Parallelism, memo: bool| {
        let mut c = cfg(sched, par, None, memo);
        c.max_cycles = 2_000; // far too small for bitcnt(1024)
        let wp = bitcnt::build(1024, Variant::HandPrefetch);
        simulate(c, Arc::new(wp.program), &wp.args)
    };
    let oracle = go(SchedMode::Dense, Parallelism::Off, false)
        .expect_err("a 2k-cycle budget cannot complete bitcnt(1024)");
    assert!(
        matches!(oracle, RunError::CycleLimit { .. }),
        "expected a cycle-limit trip, got: {oracle}"
    );
    let oracle_dbg = format!("{oracle:?}");
    for memo in [false, true] {
        for (sched, par) in MATRIX {
            if !memo && (sched, par) == (SchedMode::Dense, Parallelism::Off) {
                continue;
            }
            let err = go(sched, par, memo).expect_err("all engines must fail alike");
            assert_eq!(
                format!("{err:?}"),
                oracle_dbg,
                "{sched:?}/{par:?}/memo={memo} error diverged"
            );
        }
    }
}

/// The layer must actually do something on the paper workloads: hits
/// land and replayed cycles accumulate on both engines.
#[test]
fn memo_fires_on_paper_workloads() {
    let build = || bitcnt::build(10_000, Variant::HandPrefetch);
    for sched in [SchedMode::Dense, SchedMode::FastForward] {
        let (stats, sys) = run(&build, sched, Parallelism::Off, None, true);
        let r = sys.engine_report();
        assert!(
            r.memo_hits > 0 && r.memo_replayed_cycles > 0,
            "{sched:?}: memo never fired: {r:?}"
        );
        assert!(
            r.memo_hits > stats.instances * 9 / 10,
            "{sched:?}: hit rate too low: {} hits for {} instances",
            r.memo_hits,
            stats.instances
        );
    }
}

/// The pure span must outlast the DMA completion latency so that a
/// transfer issued just before it lands *inside* the replay window.
const CONTENDED_SPAN: usize = 600;

/// Builds a single-thread loop around one long pure span whose entry
/// key is identical every iteration, but whose MFC context alternates:
/// even iterations issue a `DMAGET` right before it (the completion
/// lands mid-span — an open contention window), odd iterations leave
/// the MFC quiet. With memo on, the quiet iterations record and then
/// replay the span, while every contended attempt must be refused.
fn contended_loop(iters: i32) -> Arc<dta_isa::Program> {
    use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};
    let mut pb = ProgramBuilder::new();
    let src: Vec<i32> = (0..16).collect();
    let src_addr = pb.global_words("SRC", &src);
    pb.global_zeroed("OUT", 4);
    let out = pb.global_addr("OUT").unwrap();
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    t.prefetch_bytes(64);
    t.begin_ex();
    t.li(r(3), 0); // i
    t.li(r(4), src_addr as i64);
    t.li(r(9), 0); // acc
    t.li(r(5), 0); // span scratch
    let top = t.label_here();
    t.and(r(13), r(3), 1);
    let nofetch = t.new_label();
    t.br(BrCond::Ne, r(13), 0, nofetch);
    t.dmaget(r(2), 0, r(4), 0, 64, 0); // even iterations only
    t.bind(nofetch);
    t.dmawait(1); // tag 1 is never used: a pure no-op boundary, so the
                  // span below starts at the same pc on every iteration
    for _ in 0..CONTENDED_SPAN {
        t.add(r(5), r(5), 1);
    }
    t.dmawait(0);
    // Post-wait span: pure compute on the landed data, MFC quiet.
    t.lsload(r(8), r(2), 4);
    t.add(r(9), r(9), r(8));
    t.add(r(3), r(3), 1);
    t.br(BrCond::Lt, r(3), iters, top);
    t.li(r(10), out as i64);
    t.begin_ps();
    t.write(r(9), r(10), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 0);
    Arc::new(pb.build())
}

#[test]
fn contention_window_suppresses_firing() {
    let iters = 32;
    let program = contended_loop(iters);
    let go = |memo: bool| {
        let mut c = cfg(SchedMode::Dense, Parallelism::Off, None, memo);
        c.pes_per_node = 1;
        simulate(c, Arc::clone(&program), &[]).expect("contended loop failed")
    };
    let (off_stats, off_sys) = go(false);
    let (on_stats, on_sys) = go(true);
    // src[1] == 1, summed once per iteration (iteration 0 waits for its
    // own fetch before loading).
    assert_eq!(off_sys.read_global_word("OUT", 0), Some(iters));
    assert_eq!(on_stats, off_stats, "memo perturbed the contended loop");

    let r = on_sys.engine_report();
    // Quiet (odd) iterations record the span once, then replay it.
    assert!(r.memo_hits > 0, "quiet-window span never fired: {r:?}");
    // Contended (even) iterations find the in-flight transfer's
    // completion inside the replay window and must be refused — the
    // first as an invalidated recording, the rest at the fire gate.
    assert!(
        r.memo_aborts >= (iters as u64) / 2 - 2,
        "contended span was not suppressed: {r:?}"
    );
}
