//! Temporary review check: effective FALLOC denial rate vs configured ppm.

use dta_core::{simulate, FaultPlan, Parallelism, SystemConfig};
use dta_workloads::{bitcnt, Variant};
use std::sync::Arc;

#[test]
fn measure_denial_rate() {
    for ppm in [10_000u32, 50_000, 500_000] {
        let wp = bitcnt::build(4096, Variant::HandPrefetch);
        let mut cfg = SystemConfig::paper_default();
        cfg.max_cycles = 50_000_000;
        cfg.parallelism = Parallelism::Off;
        let mut plan = FaultPlan::seeded(21);
        plan.falloc_deny_ppm = ppm;
        plan.falloc_retry_timeout = 300;
        cfg.faults = Some(plan);
        let (stats, _sys) = simulate(cfg, Arc::new(wp.program), &wp.args).expect("run");
        println!(
            "ppm={} instances={} denials={} (effective rate ~{:.1}%)",
            ppm,
            stats.instances,
            stats.falloc_denials,
            100.0 * stats.falloc_denials as f64
                / (stats.instances + stats.falloc_denials) as f64
        );
    }
}
