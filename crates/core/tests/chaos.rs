//! Chaos properties for the fault-injection layer (ISSUE PR 2).
//!
//! Under any seeded [`FaultPlan`], a benchmark must either complete with
//! results identical to the fault-free oracle, or fail with a typed
//! [`RunError`] — never hang, never panic — and the entire outcome
//! (including every `RunStats` counter) must be bit-identical across
//! `Parallelism::Off` and `Parallelism::Threads(n)`.

use dta_core::{simulate, FaultPlan, Parallelism, RunError, RunStats, System, SystemConfig};
use dta_mem::fault::{roll, SITE_DSE_CRASH, SITE_LSE_CRASH};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::Arc;

/// Hard per-run cycle bound: converts any liveness bug into a typed
/// `CycleLimit` failure instead of a hung test.
const MAX_CYCLES: u64 = 5_000_000;

const SEED: u64 = 0xD1B5_4A32_D192_ED03;

/// In-tree xorshift64* generator (same idiom as `dta-mem`'s property
/// tests) — no external crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn cfg(faults: Option<FaultPlan>, par: Parallelism) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.max_cycles = MAX_CYCLES;
    cfg.parallelism = par;
    cfg.faults = faults;
    cfg
}

fn run(
    build: &dyn Fn() -> WorkloadProgram,
    faults: Option<FaultPlan>,
    par: Parallelism,
) -> Result<(RunStats, System), RunError> {
    let wp = build();
    simulate(cfg(faults, par), Arc::new(wp.program), &wp.args)
}

const ENGINES: [Parallelism; 3] = [
    Parallelism::Off,
    Parallelism::Threads(2),
    Parallelism::Threads(4),
];

/// Runs `build` under `plan` on every engine and checks the outcomes are
/// identical: all `Ok` with bit-identical stats and verified results, or
/// all `Err` with the same variant. Returns the sequential outcome.
fn engine_invariant_outcome(
    name: &str,
    build: &dyn Fn() -> WorkloadProgram,
    plan: FaultPlan,
    verify: &dyn Fn(&System) -> Result<(), String>,
) -> Result<RunStats, RunError> {
    let oracle = run(build, Some(plan), Parallelism::Off);
    for par in ENGINES {
        let got = run(build, Some(plan), par);
        match (&oracle, &got) {
            (Ok((os, _)), Ok((gs, sys))) => {
                assert_eq!(
                    os, gs,
                    "{name} seed={:#x}: {par:?} stats diverged",
                    plan.seed
                );
                // Conservation holds under arbitrary seeded fault plans:
                // crashes, degradation and retries must never leak a
                // cycle out of the exclusive fine attribution.
                for (pe, p) in gs.per_pe.iter().enumerate() {
                    assert_eq!(
                        p.total_fine_cycles(),
                        p.total_cycles(),
                        "{name} seed={:#x}: fine-attribution conservation \
                         violated on PE {pe} under {par:?}",
                        plan.seed
                    );
                }
                verify(sys).unwrap_or_else(|e| {
                    panic!("{name} seed={:#x}: {par:?} wrong result: {e}", plan.seed)
                });
            }
            (Err(oe), Err(ge)) => {
                assert_eq!(
                    std::mem::discriminant(oe),
                    std::mem::discriminant(ge),
                    "{name} seed={:#x}: {par:?} error kind diverged: {oe} vs {ge}",
                    plan.seed
                );
            }
            (o, g) => panic!(
                "{name} seed={:#x}: outcome diverged: Off {} vs {par:?} {}",
                plan.seed,
                if o.is_ok() { "Ok" } else { "Err" },
                if g.is_ok() { "Ok" } else { "Err" },
            ),
        }
    }
    oracle.map(|(s, _)| s)
}

struct Bench {
    name: &'static str,
    build: fn() -> WorkloadProgram,
    verify: fn(&System) -> Result<(), String>,
}

const BENCHES: [Bench; 3] = [
    Bench {
        name: "bitcnt(1024)",
        build: || bitcnt::build(1024, Variant::HandPrefetch),
        verify: |s| bitcnt::verify(s, 1024),
    },
    Bench {
        name: "mmul(16)",
        build: || mmul::build(16, Variant::HandPrefetch),
        verify: |s| mmul::verify(s, 16),
    },
    Bench {
        name: "zoom(16)",
        build: || zoom::build(16, Variant::HandPrefetch),
        verify: |s| zoom::verify(s, 16),
    },
];

/// Transient DMA failures with retry headroom are fully absorbed: runs
/// complete, results match the fault-free oracle, and the retry counters
/// prove the schedule actually fired.
#[test]
fn recoverable_dma_faults_preserve_results() {
    for bench in &BENCHES {
        let clean = run(&bench.build, None, Parallelism::Off).expect("fault-free run");
        (bench.verify)(&clean.1).expect("fault-free result");

        let mut retries_seen = 0;
        for seed in [1, 2, 3] {
            let mut plan = FaultPlan::seeded(seed);
            plan.dma_fail_ppm = 50_000;
            plan.dma_backoff_base = 16;
            let stats = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify)
                .unwrap_or_else(|e| panic!("{} seed={seed}: {e}", bench.name));
            assert_eq!(
                stats.instructions, clean.0.instructions,
                "{} seed={seed}: retries must not change the instruction stream",
                bench.name
            );
            assert!(
                stats.dma_exhausted == 0 && stats.degraded_pes.is_empty(),
                "{} seed={seed}: budget should absorb a 5% transient rate",
                bench.name
            );
            retries_seen += stats.dma_retries;
        }
        assert!(retries_seen > 0, "{}: no injected faults fired", bench.name);
    }
}

/// A hopeless transient rate exhausts the retry budget: the command still
/// completes via the fail-safe slow path, the PE degrades, and later
/// threads there run their PF-free fallback twin — correct results, with
/// the degradation visible in `RunStats`.
#[test]
fn dma_exhaustion_degrades_to_fallback_threads() {
    for bench in &BENCHES {
        let mut plan = FaultPlan::seeded(7);
        plan.dma_fail_ppm = 1_000_000;
        plan.dma_retry_budget = 2;
        plan.dma_backoff_base = 8;
        let stats = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(stats.dma_exhausted > 0, "{}: no exhaustion", bench.name);
        assert!(
            !stats.degraded_pes.is_empty(),
            "{}: exhaustion must degrade PEs",
            bench.name
        );
        assert!(
            stats.fallback_instances > 0,
            "{}: degraded PEs must substitute fallback threads",
            bench.name
        );
    }
}

/// Dropped, duplicated, and delayed scheduler messages are recovered by
/// re-send and duplicate discard; results stay correct and engines agree.
#[test]
fn message_faults_are_recovered() {
    for bench in &BENCHES {
        let mut fired = (0, 0, 0);
        for seed in [11, 12] {
            let mut plan = FaultPlan::seeded(seed);
            plan.msg_drop_ppm = 20_000;
            plan.msg_dup_ppm = 20_000;
            plan.msg_delay_ppm = 20_000;
            let stats = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify)
                .unwrap_or_else(|e| panic!("{} seed={seed}: {e}", bench.name));
            fired.0 += stats.msgs_dropped;
            fired.1 += stats.msgs_duplicated;
            fired.2 += stats.msgs_delayed;
        }
        assert!(
            fired.0 > 0 && fired.1 > 0 && fired.2 > 0,
            "{}: message fault sites never fired: {fired:?}",
            bench.name
        );
    }
}

/// Injected FALLOC denials park requests at the DSE and are recovered by
/// the re-arbitration timer without losing frames.
#[test]
fn falloc_denials_are_re_arbitrated() {
    for bench in &BENCHES {
        let mut plan = FaultPlan::seeded(21);
        plan.falloc_deny_ppm = 200_000;
        plan.falloc_retry_timeout = 300;
        let stats = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        assert!(stats.falloc_denials > 0, "{}: no denials fired", bench.name);
    }
}

/// Permanently wedged DMA commands cannot complete; the run must end in a
/// typed `Watchdog` error (not a hang, not a bare deadlock report), and
/// both engines must agree.
#[test]
fn permanent_stalls_trip_the_watchdog() {
    for bench in &BENCHES {
        let mut plan = FaultPlan::seeded(31);
        plan.dma_stall_ppm = 1_000_000;
        let err = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify)
            .expect_err("an all-stall plan cannot complete");
        match err {
            RunError::Watchdog { stalled_dma, .. } => {
                assert!(stalled_dma > 0, "{}: no stalled commands", bench.name)
            }
            other => panic!("{}: expected Watchdog, got {other}", bench.name),
        }
    }
}

/// A 2-node, 8-PE machine (failover needs peers; total PE count matches
/// the paper platform so the benchmarks still fit comfortably).
fn crash_cfg(faults: Option<FaultPlan>, par: Parallelism) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.nodes = 2;
    cfg.pes_per_node = 4;
    cfg.max_cycles = MAX_CYCLES;
    cfg.parallelism = par;
    cfg.faults = faults;
    cfg
}

/// Like [`engine_invariant_outcome`] but over an arbitrary config
/// builder, so crash tests can use multi-node topologies.
fn engine_invariant_cfg(
    name: &str,
    mk_cfg: &dyn Fn(Parallelism) -> SystemConfig,
    build: &dyn Fn() -> WorkloadProgram,
    verify: &dyn Fn(&System) -> Result<(), String>,
) -> Result<RunStats, RunError> {
    let go = |par: Parallelism| {
        let wp = build();
        simulate(mk_cfg(par), Arc::new(wp.program), &wp.args)
    };
    let oracle = go(Parallelism::Off);
    for par in ENGINES {
        let got = go(par);
        match (&oracle, &got) {
            (Ok((os, _)), Ok((gs, sys))) => {
                assert_eq!(os, gs, "{name}: {par:?} stats diverged");
                verify(sys).unwrap_or_else(|e| panic!("{name}: {par:?} wrong result: {e}"));
            }
            (Err(oe), Err(ge)) => {
                assert_eq!(
                    std::mem::discriminant(oe),
                    std::mem::discriminant(ge),
                    "{name}: {par:?} error kind diverged: {oe} vs {ge}"
                );
            }
            (o, g) => panic!(
                "{name}: outcome diverged: Off {} vs {par:?} {}",
                if o.is_ok() { "Ok" } else { "Err" },
                if g.is_ok() { "Ok" } else { "Err" },
            ),
        }
    }
    oracle.map(|(s, _)| s)
}

/// The smallest seed whose per-node crash rolls match `want` exactly
/// (crash scheduling is a pure hash, so tests can pick their scenario).
fn seed_where(ppm: u32, want: &[bool]) -> u64 {
    (0..20_000u64)
        .find(|&s| {
            want.iter()
                .enumerate()
                .all(|(n, &w)| roll(s, SITE_DSE_CRASH, n as u64, ppm) == w)
        })
        .expect("no seed matches the wanted crash pattern in 20k tries")
}

/// One node's DSE dies mid-run and never comes back: arbitration fails
/// over to the surviving peer, the dead node's LSEs re-register, and the
/// run completes with verified results — identically on every engine.
#[test]
fn dse_crash_single_failure_fails_over_and_completes() {
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 500;
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+crash",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("single failure must fail over: {e}"));
    assert_eq!(stats.dse_crashes, 1, "exactly node 0 crashes");
    assert_eq!(stats.failovers, 1, "arbitration moved to the peer");
    assert!(
        stats.resync_msgs >= 4,
        "all four LSEs of the dead node must re-register, got {}",
        stats.resync_msgs
    );
}

/// The crashed DSE restarts after its planned outage: it rejoins cold,
/// its LSEs re-register home, the former successor drops its fostered
/// mirrors, and the run still completes verified.
#[test]
fn dse_crash_restart_rejoins_cold() {
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 500;
    plan.dse_restart_after = 20_000;
    let stats = engine_invariant_cfg(
        "mmul(16)+crash+restart",
        &|par| crash_cfg(Some(plan), par),
        &|| mmul::build(16, Variant::HandPrefetch),
        &|s| mmul::verify(s, 16),
    )
    .unwrap_or_else(|e| panic!("restarting plan must complete: {e}"));
    assert_eq!(stats.dse_crashes, 1);
    assert_eq!(stats.failovers, 1);
}

/// Restart-during-rehome: the DSE comes back *before* its silence lease
/// expires, so arbitration never actually moves — peers keep routing
/// home, early deliveries bounce to the restarted self, and no failover
/// is counted.
#[test]
fn dse_crash_restart_during_rehome_keeps_arbitration_home() {
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 2_000;
    plan.dse_restart_after = 100; // well inside the lease
    let stats = engine_invariant_cfg(
        "zoom(16)+fast-restart",
        &|par| crash_cfg(Some(plan), par),
        &|| zoom::build(16, Variant::HandPrefetch),
        &|s| zoom::verify(s, 16),
    )
    .unwrap_or_else(|e| panic!("fast restart must complete: {e}"));
    assert_eq!(stats.dse_crashes, 1);
    assert_eq!(
        stats.failovers, 0,
        "a restart inside the lease must not move arbitration"
    );
}

/// Double failure including crash-of-successor: every DSE dies and nobody
/// restarts. The run must end in a typed `Watchdog` error carrying the
/// crash evidence — not a hang, not a panic — on every engine.
#[test]
fn dse_crash_total_loss_is_a_typed_error() {
    let mut plan = FaultPlan::seeded(0xDEAD);
    plan.dse_crash_ppm = 1_000_000; // every node, including each successor
    plan.dse_crash_window = 2_000;
    plan.dse_failover_detect = 300;
    let err = engine_invariant_cfg(
        "bitcnt(1024)+total-loss",
        &|par| {
            let mut cfg = crash_cfg(Some(plan), par);
            cfg.nodes = 4;
            cfg.pes_per_node = 2;
            cfg
        },
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .expect_err("with every DSE dead the run cannot finish");
    match err {
        RunError::Watchdog { crashed_dses, .. } => {
            assert_eq!(crashed_dses, 4, "all four crashes must be reported")
        }
        other => panic!("expected Watchdog with crash evidence, got {other}"),
    }
}

/// Same total loss, but every DSE restarts: the bounced traffic waits out
/// the outages and the run completes verified (crash-of-successor with
/// recovery).
#[test]
fn dse_crash_total_loss_with_restarts_recovers() {
    let mut plan = FaultPlan::seeded(0xDEAD);
    plan.dse_crash_ppm = 1_000_000;
    plan.dse_crash_window = 2_000;
    plan.dse_failover_detect = 300;
    plan.dse_restart_after = 5_000;
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+restarts",
        &|par| {
            let mut cfg = crash_cfg(Some(plan), par);
            cfg.nodes = 4;
            cfg.pes_per_node = 2;
            cfg
        },
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("restarting cluster must recover: {e}"));
    assert_eq!(stats.dse_crashes, 4);
}

/// A plan whose crash sites never roll builds no schedule at all: stats
/// are byte-identical to the same plan with crashes disabled (the
/// zero-overhead-when-off guarantee).
#[test]
fn dse_crash_quiet_plan_is_byte_identical_to_off() {
    let ppm = 200_000;
    let quiet = seed_where(ppm, &[false, false]);
    let mut on = FaultPlan::seeded(quiet);
    on.dse_crash_ppm = ppm;
    let off = FaultPlan::seeded(quiet);
    let wp = bitcnt::build(1024, Variant::HandPrefetch);
    let prog = Arc::new(wp.program);
    let (s_on, _) = simulate(
        crash_cfg(Some(on), Parallelism::Off),
        prog.clone(),
        &wp.args,
    )
    .expect("on");
    let (s_off, _) = simulate(crash_cfg(Some(off), Parallelism::Off), prog, &wp.args).expect("off");
    assert_eq!(s_on, s_off, "a quiet crash plan must cost nothing");
    assert_eq!(s_on.dse_crashes, 0);
    assert_eq!(s_on.failovers, 0);
    assert_eq!(s_on.rehomed_fallocs, 0);
    assert_eq!(s_on.resync_msgs, 0);
}

/// Randomised crash sweep: any mix of crash rate, window, lease and
/// restart policy — stacked on light DMA/message faults — terminates in a
/// verified result or a typed error, bit-identically on every engine.
#[test]
fn dse_crash_sweep_is_engine_invariant_and_bounded() {
    let mut rng = Rng::new(SEED ^ 0xD5EC);
    for case in 0..4 {
        let mut plan = FaultPlan::seeded(rng.next());
        plan.dse_crash_ppm = 250_000 + rng.below(750_000) as u32;
        plan.dse_crash_window = 1 + rng.below(20_000);
        plan.dse_failover_detect = rng.below(2_000);
        plan.dse_restart_after = if rng.below(2) == 0 {
            0
        } else {
            1 + rng.below(10_000)
        };
        plan.dma_fail_ppm = rng.below(20_000) as u32;
        plan.msg_drop_ppm = rng.below(5_000) as u32;
        plan.msg_dup_ppm = rng.below(5_000) as u32;
        let bench = &BENCHES[case % BENCHES.len()];
        let outcome = engine_invariant_cfg(
            bench.name,
            &|par| crash_cfg(Some(plan), par),
            &bench.build,
            &bench.verify,
        );
        if let Err(e) = outcome {
            assert!(
                matches!(
                    e,
                    RunError::Watchdog { .. }
                        | RunError::Deadlock { .. }
                        | RunError::CycleLimit { .. }
                ),
                "case {case} ({}): untyped failure {e}",
                bench.name
            );
        }
    }
}

/// Restart-vs-in-flight-message race: the DSE restarts just after its
/// silence lease expires, so bounced FALLOCs, the failover hand-off, and
/// the restart resync are all in flight at once. Whatever interleaving
/// results must be bit-identical across engines (the
/// [`engine_invariant_cfg`] harness asserts exactly that).
#[test]
fn dse_crash_restart_races_in_flight_messages() {
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 500;
    plan.dse_restart_after = 600; // restart lands amid the bounce traffic
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+restart-race",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("racing restart must still complete: {e}"));
    assert_eq!(stats.dse_crashes, 1, "the planned crash must fire");
}

/// The smallest seed whose per-PE LSE crash rolls match `want` exactly
/// (the LSE schedule is a pure hash of `(seed, SITE_LSE_CRASH, pe)`).
fn lse_seed_where(ppm: u32, want: &[bool]) -> u64 {
    (0..2_000_000u64)
        .find(|&s| {
            want.iter()
                .enumerate()
                .all(|(pe, &w)| roll(s, SITE_LSE_CRASH, pe as u64, ppm) == w)
        })
        .expect("no seed matches the wanted LSE crash pattern in 2M tries")
}

/// Exactly one LSE on the 2×4 machine crashes.
const LSE_ONE: [bool; 8] = [true, false, false, false, false, false, false, false];

/// One LSE dies mid-run and never comes back: pre-start frames are
/// evacuated to a live peer, started instances are killed and replayed
/// via fresh FALLOCs, and the run completes with verified results —
/// identically on every engine.
#[test]
fn lse_crash_single_failure_recovers_and_completes() {
    let ppm = 500_000;
    let mut plan = FaultPlan::seeded(lse_seed_where(ppm, &LSE_ONE));
    plan.lse_crash_ppm = ppm;
    plan.lse_crash_window = 5_000;
    plan.lse_detect = 500;
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+lse-crash",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("single LSE failure must recover: {e}"));
    assert_eq!(stats.lse_crashes, 1, "exactly PE 0's LSE crashes");
    assert!(stats.evacuated_frames > 0, "no pre-start frames evacuated");
    assert!(
        stats.readmitted_instances >= stats.evacuated_frames,
        "every evacuee must be re-admitted on the peer ({} < {})",
        stats.readmitted_instances,
        stats.evacuated_frames
    );
}

/// A crash windowed over the run's busy phase catches started (but
/// untainted) instances on the pipeline: they are killed, counted, and
/// transparently replayed from their parent's FALLOC — the results still
/// verify against the fault-free oracle.
#[test]
fn lse_crash_kills_started_instances_and_replays() {
    let ppm = 500_000;
    let mut plan = FaultPlan::seeded(lse_seed_where(ppm, &LSE_ONE));
    plan.lse_crash_ppm = ppm;
    plan.lse_crash_window = 5_000;
    plan.lse_detect = 500;
    plan.lse_restart_after = 20_000;
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+lse-kill",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("killed instances must be replayed: {e}"));
    assert_eq!(stats.lse_crashes, 1);
    assert!(
        stats.killed_instances > 0,
        "the crash window must catch started instances"
    );
}

/// The crashed LSE restarts after its planned outage: it rejoins cold
/// with an empty frame table, re-registers with its arbiter, and serves
/// new FALLOCs again — verified completion on every engine.
#[test]
fn lse_crash_restart_rejoins_cold() {
    let ppm = 500_000;
    let mut plan = FaultPlan::seeded(lse_seed_where(ppm, &LSE_ONE));
    plan.lse_crash_ppm = ppm;
    plan.lse_crash_window = 5_000;
    plan.lse_detect = 500;
    plan.lse_restart_after = 10_000;
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+lse-restart",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("restarting LSE must rejoin: {e}"));
    assert_eq!(stats.lse_crashes, 1);
    assert!(
        stats.resync_msgs > 0,
        "the restarted LSE must re-register its capacity"
    );
}

/// Compound failure domain: one node loses a PE's LSE *and* its DSE in
/// the same run. Evacuation, adoption, re-homing, and both restart paths
/// overlap; the run must still complete verified, identically everywhere.
///
/// A crash that catches a *tainted* instance is unrecoverable by design
/// (its effects cannot be replayed), so the test deterministically scans
/// the matching seeds for one whose timing spares the tainted population
/// — proving the compound-recovery machinery works when recovery is
/// possible at all.
#[test]
fn lse_crash_with_dse_crash_on_same_node_recovers() {
    let ppm = 500_000;
    let mk_plan = |seed: u64| {
        let mut plan = FaultPlan::seeded(seed);
        plan.dse_crash_ppm = ppm;
        plan.dse_crash_window = 10_000;
        plan.dse_failover_detect = 500;
        plan.dse_restart_after = 20_000;
        plan.lse_crash_ppm = ppm;
        plan.lse_crash_window = 5_000;
        plan.lse_detect = 500;
        plan.lse_restart_after = 20_000;
        plan
    };
    let candidates: Vec<u64> = (0..4_000_000u64)
        .filter(|&s| {
            roll(s, SITE_DSE_CRASH, 0, ppm)
                && !roll(s, SITE_DSE_CRASH, 1, ppm)
                && LSE_ONE
                    .iter()
                    .enumerate()
                    .all(|(pe, &w)| roll(s, SITE_LSE_CRASH, pe as u64, ppm) == w)
        })
        .take(8)
        .collect();
    let seed = candidates
        .iter()
        .copied()
        .find(|&s| {
            let wp = bitcnt::build(1024, Variant::HandPrefetch);
            simulate(
                crash_cfg(Some(mk_plan(s)), Parallelism::Off),
                Arc::new(wp.program),
                &wp.args,
            )
            .is_ok()
        })
        .expect("no candidate seed recovers from the compound failure");
    let plan = mk_plan(seed);
    let stats = engine_invariant_cfg(
        "bitcnt(1024)+lse+dse-crash",
        &|par| crash_cfg(Some(plan), par),
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 1024),
    )
    .unwrap_or_else(|e| panic!("compound node failure must recover: {e}"));
    assert_eq!(stats.lse_crashes, 1, "PE 0's LSE crash must fire");
    assert_eq!(stats.dse_crashes, 1, "node 0's DSE crash must fire");
}

/// A plan whose LSE crash sites never roll builds no outage table: stats
/// are byte-identical to the same plan with LSE crashes disabled (the
/// zero-overhead-when-off guarantee, extended to the LSE layer).
#[test]
fn lse_crash_quiet_plan_is_byte_identical_to_off() {
    let ppm = 200_000;
    let quiet = lse_seed_where(ppm, &[false; 8]);
    let mut on = FaultPlan::seeded(quiet);
    on.lse_crash_ppm = ppm;
    let off = FaultPlan::seeded(quiet);
    let wp = bitcnt::build(1024, Variant::HandPrefetch);
    let prog = Arc::new(wp.program);
    let (s_on, _) = simulate(
        crash_cfg(Some(on), Parallelism::Off),
        prog.clone(),
        &wp.args,
    )
    .expect("on");
    let (s_off, _) = simulate(crash_cfg(Some(off), Parallelism::Off), prog, &wp.args).expect("off");
    assert_eq!(s_on, s_off, "a quiet LSE crash plan must cost nothing");
    assert_eq!(s_on.lse_crashes, 0);
    assert_eq!(s_on.evacuated_frames, 0);
    assert_eq!(s_on.readmitted_instances, 0);
    assert_eq!(s_on.killed_instances, 0);
}

/// Randomised LSE crash sweep: any mix of crash rate, window, detect
/// latency and restart policy — stacked on light DMA/message faults —
/// terminates in a verified result or a typed error, bit-identically on
/// every engine.
#[test]
fn lse_crash_sweep_is_engine_invariant_and_bounded() {
    let mut rng = Rng::new(SEED ^ 0x15EC);
    for case in 0..4 {
        let mut plan = FaultPlan::seeded(rng.next());
        plan.lse_crash_ppm = 100_000 + rng.below(500_000) as u32;
        plan.lse_crash_window = 1 + rng.below(20_000);
        plan.lse_detect = rng.below(2_000);
        plan.lse_restart_after = if rng.below(2) == 0 {
            0
        } else {
            1 + rng.below(20_000)
        };
        plan.dma_fail_ppm = rng.below(20_000) as u32;
        plan.msg_drop_ppm = rng.below(5_000) as u32;
        plan.msg_dup_ppm = rng.below(5_000) as u32;
        let bench = &BENCHES[case % BENCHES.len()];
        let outcome = engine_invariant_cfg(
            bench.name,
            &|par| crash_cfg(Some(plan), par),
            &bench.build,
            &bench.verify,
        );
        if let Err(e) = outcome {
            assert!(
                matches!(
                    e,
                    RunError::Watchdog { .. }
                        | RunError::Deadlock { .. }
                        | RunError::CycleLimit { .. }
                ),
                "case {case} ({}): untyped failure {e}",
                bench.name
            );
        }
    }
}

/// Acceptance check at the paper's full benchmark sizes — bitcnt(10000),
/// mmul(32), zoom(32) — under a seeded single-node crash: every engine
/// completes verified with the crash and failover counters lit. Slow
/// (minutes), so ignored by default; the quick-size `dse_crash_*` tests
/// enforce the same property in CI. Run with `-- --ignored`.
#[test]
#[ignore = "paper-size acceptance run (minutes); quick-size dse_crash tests cover CI"]
fn dse_crash_paper_sizes_engine_invariant() {
    type Build = fn() -> WorkloadProgram;
    type Verify = fn(&System) -> Result<(), String>;
    let benches: [(&str, Build, Verify); 3] = [
        (
            "bitcnt(10000)",
            || bitcnt::build(10_000, Variant::HandPrefetch),
            |s| bitcnt::verify(s, 10_000),
        ),
        (
            "mmul(32)",
            || mmul::build(32, Variant::HandPrefetch),
            |s| mmul::verify(s, 32),
        ),
        (
            "zoom(32)",
            || zoom::build(32, Variant::HandPrefetch),
            |s| zoom::verify(s, 32),
        ),
    ];
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 500;
    for (name, build, verify) in benches {
        let stats = engine_invariant_cfg(
            name,
            &|par| {
                let mut cfg = crash_cfg(Some(plan), par);
                cfg.max_cycles = 100_000_000;
                cfg
            },
            &build,
            &verify,
        )
        .unwrap_or_else(|e| panic!("{name}: must fail over and complete: {e}"));
        assert!(
            stats.dse_crashes > 0 && stats.failovers > 0,
            "{name}: crash schedule never fired ({stats:?})"
        );
    }
}

/// Randomised sweep: whatever the mix of fault rates, every engine
/// produces the same outcome — verified results or the same typed error —
/// within the cycle bound. The test finishing at all is the no-hang proof.
#[test]
fn chaos_sweep_is_engine_invariant_and_bounded() {
    let mut rng = Rng::new(SEED);
    for case in 0..6 {
        let mut plan = FaultPlan::seeded(rng.next());
        plan.dma_fail_ppm = rng.below(100_000) as u32;
        plan.dma_stall_ppm = if rng.below(4) == 0 { 2_000 } else { 0 };
        plan.dma_retry_budget = 1 + rng.below(4) as u32;
        plan.dma_backoff_base = 1 << rng.below(6);
        plan.msg_drop_ppm = rng.below(10_000) as u32;
        plan.msg_dup_ppm = rng.below(10_000) as u32;
        plan.msg_delay_ppm = rng.below(10_000) as u32;
        plan.falloc_deny_ppm = rng.below(50_000) as u32;
        let bench = &BENCHES[case % BENCHES.len()];
        let outcome = engine_invariant_outcome(bench.name, &bench.build, plan, &bench.verify);
        if let Err(e) = outcome {
            assert!(
                matches!(
                    e,
                    RunError::Watchdog { .. }
                        | RunError::Deadlock { .. }
                        | RunError::CycleLimit { .. }
                ),
                "case {case} ({}): untyped failure {e}",
                bench.name
            );
        }
    }
}

/// PR 4: every fault, recovery, and failover event on the structured
/// observability bus reconciles *exactly* with the `RunStats` counters —
/// the two are independent tallies of the same incidents (counters
/// accumulate in the substrate, events on the bus), so any drift is a
/// lost or double-counted incident. Checked on every engine, across
/// plans that exercise each event family.
#[test]
fn obs_events_reconcile_with_run_stats() {
    use dta_core::{CountingSink, ObsMode};

    // (name, plan, multi-node?) — all plans must complete Ok: retry
    // events are emitted when a DMA plan is admitted but counted when it
    // commits, so exactness holds only when everything planned runs.
    let dma = {
        let mut p = FaultPlan::seeded(1);
        p.dma_fail_ppm = 50_000;
        p.dma_backoff_base = 16;
        p
    };
    let exhaustion = {
        let mut p = FaultPlan::seeded(7);
        p.dma_fail_ppm = 1_000_000;
        p.dma_retry_budget = 2;
        p.dma_backoff_base = 8;
        p
    };
    let msgs = {
        let mut p = FaultPlan::seeded(11);
        p.msg_drop_ppm = 20_000;
        p.msg_dup_ppm = 20_000;
        p.msg_delay_ppm = 20_000;
        p
    };
    let denials = {
        let mut p = FaultPlan::seeded(21);
        p.falloc_deny_ppm = 200_000;
        p.falloc_retry_timeout = 300;
        p
    };
    let crash_restart = {
        let ppm = 500_000;
        let mut p = FaultPlan::seeded(seed_where(ppm, &[true, false]));
        p.dse_crash_ppm = ppm;
        p.dse_crash_window = 10_000;
        p.dse_failover_detect = 500;
        p.dse_restart_after = 20_000;
        p
    };
    let lse_crash = {
        // Tainted kills are unrecoverable by design, so scan the matching
        // seeds for one whose crash timing lets the mmul run complete
        // (the reconciliation below needs an `Ok` outcome).
        let ppm = 500_000;
        let mk = |s: u64| {
            let mut p = FaultPlan::seeded(s);
            p.lse_crash_ppm = ppm;
            p.lse_crash_window = 5_000;
            p.lse_detect = 500;
            p.lse_restart_after = 20_000;
            p
        };
        let seed = (0..2_000_000u64)
            .filter(|&s| {
                LSE_ONE
                    .iter()
                    .enumerate()
                    .all(|(pe, &w)| roll(s, SITE_LSE_CRASH, pe as u64, ppm) == w)
            })
            .take(8)
            .find(|&s| {
                let wp = mmul::build(16, Variant::HandPrefetch);
                simulate(
                    crash_cfg(Some(mk(s)), Parallelism::Off),
                    Arc::new(wp.program),
                    &wp.args,
                )
                .is_ok()
            })
            .expect("no candidate LSE crash seed completes under mmul");
        mk(seed)
    };
    let scenarios: [(&str, FaultPlan, bool); 6] = [
        ("dma-retries", dma, false),
        ("dma-exhaustion", exhaustion, false),
        ("msg-faults", msgs, false),
        ("falloc-denials", denials, false),
        ("crash-restart", crash_restart, true),
        ("lse-crash", lse_crash, true),
    ];

    let mut families = CountingSink::default();
    for (name, plan, multi_node) in scenarios {
        for par in ENGINES {
            let mut cfg = if multi_node {
                crash_cfg(Some(plan), par)
            } else {
                cfg(Some(plan), par)
            };
            cfg.obs.mode = ObsMode::Events;
            let wp = mmul::build(16, Variant::HandPrefetch);
            let (stats, sys) = simulate(cfg, Arc::new(wp.program), &wp.args)
                .unwrap_or_else(|e| panic!("{name} {par:?}: plan must complete: {e}"));
            mmul::verify(&sys, 16).unwrap_or_else(|e| panic!("{name} {par:?}: {e}"));

            let stream = sys.obs().expect("events enabled");
            assert_eq!(
                stream.dropped, 0,
                "{name} {par:?}: ring overflow would break exact reconciliation"
            );
            let mut sink = CountingSink::default();
            stream.feed(&mut sink);

            let pairs: [(&str, u64, u64); 16] = [
                ("dma_retries", sink.dma_retries, stats.dma_retries),
                ("dma_exhausted", sink.dma_exhausted, stats.dma_exhausted),
                (
                    "degraded_pes",
                    sink.degraded_pes,
                    stats.degraded_pes.len() as u64,
                ),
                ("watchdog_parks", sink.watchdog_parks, stats.watchdog_parks),
                (
                    "fallback_instances",
                    sink.fallback_instances,
                    stats.fallback_instances,
                ),
                ("msgs_dropped", sink.msgs_dropped, stats.msgs_dropped),
                (
                    "msgs_duplicated",
                    sink.msgs_duplicated,
                    stats.msgs_duplicated,
                ),
                ("msgs_delayed", sink.msgs_delayed, stats.msgs_delayed),
                ("falloc_denials", sink.falloc_denials, stats.falloc_denials),
                ("dse_crashes", sink.dse_crashes, stats.dse_crashes),
                ("failovers", sink.failovers, stats.failovers),
                ("resync_msgs", sink.resync_msgs, stats.resync_msgs),
                ("lse_crashes", sink.lse_crashes, stats.lse_crashes),
                (
                    "evacuated_frames",
                    sink.evacuated_frames,
                    stats.evacuated_frames,
                ),
                (
                    "readmitted_instances",
                    sink.readmitted_instances,
                    stats.readmitted_instances,
                ),
                (
                    "killed_instances",
                    sink.killed_instances,
                    stats.killed_instances,
                ),
            ];
            for (field, from_events, from_stats) in pairs {
                assert_eq!(
                    from_events, from_stats,
                    "{name} {par:?}: {field} events diverge from RunStats"
                );
            }
            // Thread lifecycle events always flow.
            assert!(sink.thread_events > 0, "{name} {par:?}: silent bus");

            families.dma_retries += sink.dma_retries;
            families.dma_exhausted += sink.dma_exhausted;
            families.msgs_dropped += sink.msgs_dropped;
            families.msgs_duplicated += sink.msgs_duplicated;
            families.msgs_delayed += sink.msgs_delayed;
            families.falloc_denials += sink.falloc_denials;
            families.dse_crashes += sink.dse_crashes;
            families.failovers += sink.failovers;
            families.dse_restarts += sink.dse_restarts;
            families.resync_msgs += sink.resync_msgs;
            families.fallback_instances += sink.fallback_instances;
            families.lse_crashes += sink.lse_crashes;
            families.lse_restarts += sink.lse_restarts;
            families.evacuated_frames += sink.evacuated_frames;
            families.readmitted_instances += sink.readmitted_instances;
            families.killed_instances += sink.killed_instances;
        }
    }

    // The scenario set must actually exercise every reconciled family —
    // a reconciliation over zeros proves nothing.
    assert!(families.dma_retries > 0, "no retries fired");
    assert!(families.dma_exhausted > 0, "no exhaustion fired");
    assert!(families.fallback_instances > 0, "no fallbacks substituted");
    assert!(
        families.msgs_dropped > 0 && families.msgs_duplicated > 0 && families.msgs_delayed > 0,
        "message-fault families incomplete"
    );
    assert!(families.falloc_denials > 0, "no denials fired");
    assert!(
        families.dse_crashes > 0 && families.failovers > 0 && families.dse_restarts > 0,
        "crash/failover/restart family incomplete"
    );
    assert!(families.resync_msgs > 0, "no resyncs fired");
    assert!(
        families.lse_crashes > 0 && families.lse_restarts > 0,
        "LSE crash/restart family incomplete"
    );
    assert!(
        families.evacuated_frames > 0 && families.readmitted_instances > 0,
        "LSE evacuation/re-admission family incomplete"
    );
}
