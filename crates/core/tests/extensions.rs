//! Tests for the two architecture extensions: the optional scalar data
//! cache and the SP/XP PF-block overlap.

use dta_core::{simulate, StallCat, SystemConfig};
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};
use dta_mem::CacheParams;
use std::sync::Arc;

/// A read-heavy single thread with strong line reuse: sums an array
/// twice.
fn reuse_program(n: usize) -> Arc<dta_isa::Program> {
    let words: Vec<i32> = (0..n as i32).collect();
    let mut pb = ProgramBuilder::new();
    let arr = pb.global_words("arr", &words);
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), arr as i64);
    t.li(r(5), 0); // acc
    for _pass in 0..2 {
        t.li(r(4), 0); // i
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n as i32, done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(5), r(5), r(7));
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
    }
    t.begin_ps();
    t.li(r(8), out as i64);
    t.write(r(5), r(8), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 0);
    Arc::new(pb.build())
}

#[test]
fn cache_accelerates_read_heavy_code_and_stays_correct() {
    let n = 256;
    let expected: i32 = 2 * (0..n as i32).sum::<i32>();

    let (no_cache, sys) = simulate(SystemConfig::with_pes(1), reuse_program(n), &[]).unwrap();
    assert_eq!(sys.read_global_word("out", 0), Some(expected));

    let mut cfg = SystemConfig::with_pes(1);
    cfg.cache = Some(CacheParams::default());
    let (cached, sys) = simulate(cfg, reuse_program(n), &[]).unwrap();
    assert_eq!(sys.read_global_word("out", 0), Some(expected));

    // 512 reads over 256 words: 8 line fills (128B lines), everything
    // else hits.
    assert_eq!(cached.cache_misses, 8);
    assert_eq!(cached.cache_hits, 504);
    assert!(
        cached.cycles * 5 < no_cache.cycles,
        "cache {} vs none {}",
        cached.cycles,
        no_cache.cycles
    );
    assert_eq!(no_cache.cache_hits + no_cache.cache_misses, 0);
}

#[test]
fn prefetch_beats_or_matches_cache_on_streaming_kernels() {
    // The paper's §4.3 claim: prefetching "can almost eliminate the need
    // for caches". Compare baseline+cache against prefetch-no-cache on
    // the streaming zoom workload.
    use dta_workloads::{zoom, Variant};
    let n = 16;
    let mut cached_cfg = SystemConfig::with_pes(8);
    cached_cfg.cache = Some(CacheParams::default());
    let base = zoom::build(n, Variant::Baseline);
    let (with_cache, sys) = simulate(cached_cfg, Arc::new(base.program), &base.args).unwrap();
    zoom::verify(&sys, n).unwrap();

    let pf = zoom::build(n, Variant::HandPrefetch);
    let (with_pf, sys) =
        simulate(SystemConfig::with_pes(8), Arc::new(pf.program), &pf.args).unwrap();
    zoom::verify(&sys, n).unwrap();

    assert!(
        with_pf.cycles <= with_cache.cycles * 2,
        "prefetch ({}) should be in the same league as a cache ({})",
        with_pf.cycles,
        with_cache.cycles
    );
}

#[test]
fn sp_overlap_moves_pf_work_off_the_pipeline() {
    use dta_workloads::{mmul, Variant};
    let n = 16;
    let celldta = SystemConfig::with_pes(4); // paper: no SP/XP overlap
    let mut dtac = SystemConfig::with_pes(4);
    dtac.sp_pf_overlap = true;

    let wp = mmul::build(n, Variant::HandPrefetch);
    let (base_stats, sys) = simulate(celldta, Arc::new(wp.program), &wp.args).unwrap();
    mmul::verify(&sys, n).unwrap();

    let wp = mmul::build(n, Variant::HandPrefetch);
    let (sp_stats, sys) = simulate(dtac, Arc::new(wp.program), &wp.args).unwrap();
    mmul::verify(&sys, n).unwrap();

    // PF work shows up on the SP pipeline, and pipeline prefetch overhead
    // shrinks.
    assert_eq!(base_stats.aggregate.sp_pf_cycles, 0);
    assert!(sp_stats.aggregate.sp_pf_cycles > 0);
    assert!(
        sp_stats.aggregate.cat(StallCat::Prefetch) < base_stats.aggregate.cat(StallCat::Prefetch),
        "sp {} vs base {}",
        sp_stats.aggregate.cat(StallCat::Prefetch),
        base_stats.aggregate.cat(StallCat::Prefetch)
    );
    // And never slower overall.
    assert!(sp_stats.cycles <= base_stats.cycles);
}

#[test]
fn sp_overlap_keeps_results_identical_across_workloads() {
    use dta_workloads::{bitcnt, colsum, stencil, Variant};
    let mut cfg = SystemConfig::with_pes(4);
    cfg.sp_pf_overlap = true;
    for variant in [Variant::HandPrefetch, Variant::AutoPrefetch] {
        let wp = bitcnt::build(96, variant);
        let (_, sys) = simulate(cfg.clone(), Arc::new(wp.program), &wp.args).unwrap();
        bitcnt::verify(&sys, 96).unwrap_or_else(|e| panic!("{variant:?}: {e}"));

        let wp = stencil::build(64, 4, variant);
        let (_, sys) = simulate(cfg.clone(), Arc::new(wp.program), &wp.args).unwrap();
        stencil::verify(&sys, 64).unwrap_or_else(|e| panic!("{variant:?}: {e}"));

        let wp = colsum::build(16, variant);
        let (_, sys) = simulate(cfg.clone(), Arc::new(wp.program), &wp.args).unwrap();
        colsum::verify(&sys, 16).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
    }
}

#[test]
fn sp_overlap_fixes_the_latency_one_bitcnt_regression() {
    // Paper §4.3: at latency 1, bitcnt's prefetch overhead makes it
    // *slower*. With the SP/XP overlap the paper attributes to DTA-C,
    // the overhead leaves the critical path.
    use dta_workloads::{bitcnt, Variant};
    let base_cfg = SystemConfig::with_pes(8).latency_one();
    let mut sp_cfg = base_cfg.clone();
    sp_cfg.sp_pf_overlap = true;

    let wp = bitcnt::build(512, Variant::HandPrefetch);
    let (celldta, _) = simulate(base_cfg, Arc::new(wp.program), &wp.args).unwrap();
    let wp = bitcnt::build(512, Variant::HandPrefetch);
    let (dtac, _) = simulate(sp_cfg, Arc::new(wp.program), &wp.args).unwrap();
    // The pipeline's own prefetch overhead must drop out entirely...
    assert!(
        dtac.aggregate.cat(StallCat::Prefetch) < celldta.aggregate.cat(StallCat::Prefetch) / 2,
        "SP overlap should remove pipeline PF overhead: {} vs {}",
        dtac.aggregate.cat(StallCat::Prefetch),
        celldta.aggregate.cat(StallCat::Prefetch)
    );
    // ...and total time must stay in the same ballpark (the extra
    // ready-queue hop costs a percent or two of second-order scheduling).
    assert!(
        dtac.cycles <= celldta.cycles * 105 / 100,
        "SP overlap should not be materially slower: {} vs {}",
        dtac.cycles,
        celldta.cycles
    );
}
