//! Incremental observability streaming (`ObsConfig::stream_interval`).
//!
//! The engines can drain fully-simulated records out of the per-unit
//! rings *during* the run — at loop bottoms in the sequential engines,
//! at epoch barriers in the sharded one — feeding an attached
//! [`ObsSink`] in wall order long before the post-run merge. This suite
//! pins the contract on the paper workloads: the final merged stream
//! (records **and** drop count) is bit-identical to a non-streaming
//! run's, `RunStats` is untouched, and the live sink sees exactly the
//! final stream, in exactly its order, batch by batch.

use dta_core::{
    simulate, FaultPlan, ObsMode, ObsRecord, ObsSink, Parallelism, RunStats, System, SystemConfig,
};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::{Arc, Mutex};

fn cfg(par: Parallelism, stream_interval: u64, faults: Option<FaultPlan>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.parallelism = par;
    cfg.obs.mode = ObsMode::All;
    cfg.obs.metrics_interval = 500;
    cfg.obs.stream_interval = stream_interval;
    cfg.faults = faults;
    cfg.max_cycles = 50_000_000;
    cfg
}

/// A sink that records everything it is fed, in feed order. The engines
/// require `Send` sinks (bench sweeps move finished `System`s across
/// threads), hence the mutex; there is no contention — the engine feeds
/// from one thread at a time.
#[derive(Default)]
struct CollectSink {
    out: Arc<Mutex<(Vec<ObsRecord>, u64)>>,
}

impl ObsSink for CollectSink {
    fn record(&mut self, rec: &ObsRecord) {
        self.out.lock().unwrap().0.push(*rec);
    }
    fn dropped(&mut self, n: u64) {
        self.out.lock().unwrap().1 += n;
    }
}

/// Runs `build` with streaming at `interval` and a collecting sink;
/// returns the run results plus everything the sink consumed.
fn run_streaming(
    build: &dyn Fn() -> WorkloadProgram,
    par: Parallelism,
    interval: u64,
    faults: Option<FaultPlan>,
) -> (RunStats, System, Vec<ObsRecord>, u64) {
    let wp = build();
    let mut sys = System::new(cfg(par, interval, faults), Arc::new(wp.program)).expect("build");
    let collected = Arc::new(Mutex::new((Vec::new(), 0u64)));
    sys.attach_stream_sink(Box::new(CollectSink {
        out: Arc::clone(&collected),
    }));
    sys.launch(&wp.args).expect("launch");
    let stats = sys.run().unwrap_or_else(|e| panic!("{par:?} failed: {e}"));
    let (fed, dropped) = std::mem::take(&mut *collected.lock().unwrap());
    (stats, sys, fed, dropped)
}

fn assert_streaming_invariant(
    name: &str,
    build: &dyn Fn() -> WorkloadProgram,
    faults: Option<FaultPlan>,
) {
    // Oracle: no streaming, post-run merge only (the default path every
    // other suite exercises).
    let wp = build();
    let (oracle_stats, oracle_sys) = simulate(
        cfg(Parallelism::Off, 0, faults),
        Arc::new(wp.program),
        &wp.args,
    )
    .unwrap_or_else(|e| panic!("{name}: oracle failed: {e}"));
    let oracle = oracle_sys.obs().expect("observability on");
    assert!(!oracle.records.is_empty(), "{name}: empty oracle stream");

    for par in [Parallelism::Off, Parallelism::Threads(2)] {
        let (stats, sys, fed, fed_dropped) = run_streaming(build, par, 512, faults);
        assert_eq!(oracle_stats, stats, "{name}/{par:?}: stats perturbed");
        let stream = sys.obs().expect("observability on");
        assert_eq!(
            oracle.dropped, stream.dropped,
            "{name}/{par:?}: drop count diverged"
        );
        // The engine-invariant records match the oracle exactly; engine
        // epoch records depend on the shard layout, so under Threads(2)
        // only the deterministic projection is comparable.
        assert_eq!(
            oracle.deterministic(),
            stream.deterministic(),
            "{name}/{par:?}: streamed merge diverged from post-run merge"
        );
        // The live sink saw exactly the final stream, in wall order:
        // batches are cycle-partitioned by the safe-horizon rule, so
        // their concatenation is already sorted.
        assert_eq!(
            fed, stream.records,
            "{name}/{par:?}: sink feed order diverged from the merged stream"
        );
        assert_eq!(
            fed_dropped, stream.dropped,
            "{name}/{par:?}: sink drop count diverged"
        );
    }
}

#[test]
fn bitcnt_streaming_matches_post_run_merge() {
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        assert_streaming_invariant("bitcnt", &move || bitcnt::build(1024, variant), None);
    }
}

#[test]
fn mmul_streaming_matches_post_run_merge() {
    assert_streaming_invariant("mmul", &|| mmul::build(16, Variant::HandPrefetch), None);
}

#[test]
fn zoom_streaming_matches_post_run_merge() {
    assert_streaming_invariant("zoom", &|| zoom::build(16, Variant::HandPrefetch), None);
}

/// Fault records flow through `obs_misc` (the system/shard-local side
/// vectors) — the streaming prefix drain must not lose or reorder them.
#[test]
fn faulty_run_streams_identically() {
    let mut plan = FaultPlan::seeded(0x0B5E_11A7);
    plan.dma_fail_ppm = 30_000;
    plan.dma_backoff_base = 16;
    plan.msg_drop_ppm = 10_000;
    plan.msg_dup_ppm = 10_000;
    plan.msg_delay_ppm = 10_000;
    plan.falloc_deny_ppm = 50_000;
    assert_streaming_invariant(
        "bitcnt+faults",
        &|| bitcnt::build(1024, Variant::HandPrefetch),
        Some(plan),
    );
}

/// The point of streaming: bounded rings stop overflowing on long runs,
/// because fully-simulated records leave them mid-run. With rings far
/// too small for the whole run, the post-run-merge path must drop
/// records while the streaming path keeps every one — direct proof that
/// batches really leave the rings between epochs, not just at the end.
#[test]
fn streaming_relieves_ring_pressure() {
    let run = |interval: u64| {
        let wp = mmul::build(16, Variant::HandPrefetch);
        let mut c = cfg(Parallelism::Off, interval, None);
        c.obs.event_capacity = 48;
        c.obs.metrics_interval = 100;
        simulate(c, Arc::new(wp.program), &wp.args).expect("run failed")
    };
    let (_, merged_sys) = run(0);
    let lost = merged_sys.obs().expect("obs on").dropped;
    assert!(lost > 0, "rings were large enough — test proves nothing");
    let (_, streamed_sys) = run(128);
    let stream = streamed_sys.obs().expect("obs on");
    assert_eq!(stream.dropped, 0, "streaming still overflowed the rings");
    assert!(stream.len() > merged_sys.obs().expect("obs on").len());
}
