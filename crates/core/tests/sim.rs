//! End-to-end simulator tests: whole programs through `System`.

use dta_core::{simulate, RunError, StallCat, SystemConfig};
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

/// entry(arg) -> worker(x, out_addr): writes x*2 to memory.
fn producer_consumer_program() -> Arc<dta_isa::Program> {
    let mut pb = ProgramBuilder::new();
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_pl();
    t.load(r(3), 0); // arg
    t.begin_ex();
    t.falloc(r(4), worker, 2);
    t.li(r(5), out as i64);
    t.begin_ps();
    t.store(r(3), r(4), 0);
    t.store(r(5), r(4), 1);
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    w.begin_pl();
    w.load(r(3), 0); // x
    w.load(r(4), 1); // out address
    w.begin_ex();
    w.add(r(5), r(3), r(3));
    w.begin_ps();
    w.write(r(5), r(4), 0);
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 1);
    Arc::new(pb.build())
}

#[test]
fn producer_consumer_computes_and_terminates() {
    let (stats, sys) = simulate(
        SystemConfig::with_pes(2),
        producer_consumer_program(),
        &[21],
    )
    .expect("runs");
    assert_eq!(sys.read_global_word("out", 0), Some(42));
    assert_eq!(stats.instances, 2);
    assert!(stats.cycles > 0);
    assert_eq!(stats.aggregate.loads, 3);
    assert_eq!(stats.aggregate.stores, 2);
    assert_eq!(stats.aggregate.writes, 1);
    assert_eq!(stats.aggregate.reads, 0);
    // Every PE's category sums must equal the total runtime.
    for pe in &stats.per_pe {
        assert_eq!(pe.total_cycles(), stats.cycles);
    }
}

#[test]
fn simulation_is_deterministic() {
    let p = producer_consumer_program();
    let (a, _) = simulate(SystemConfig::with_pes(4), p.clone(), &[5]).unwrap();
    let (b, _) = simulate(SystemConfig::with_pes(4), p, &[5]).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.aggregate, b.aggregate);
    assert_eq!(a.per_pe, b.per_pe);
}

/// Entry forks `n` workers; worker i writes i*i to out[i].
fn fanout_program(n: i64) -> Arc<dta_isa::Program> {
    let mut pb = ProgramBuilder::new();
    let out = pb.global_zeroed("out", (n as usize) * 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0); // i
    t.li(r(4), n);
    let loop_top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), r(4), done);
    t.falloc(r(5), worker, 1);
    t.store(r(3), r(5), 0);
    t.add(r(3), r(3), 1);
    t.jmp(loop_top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    w.begin_pl();
    w.load(r(3), 0); // i
    w.begin_ex();
    w.mul(r(4), r(3), r(3));
    w.shl(r(5), r(3), 2); // i*4
    w.li(r(6), out as i64);
    w.add(r(6), r(6), r(5));
    w.begin_ps();
    w.write(r(4), r(6), 0);
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    Arc::new(pb.build())
}

#[test]
fn fanout_distributes_work_across_pes() {
    let (stats, sys) = simulate(SystemConfig::with_pes(4), fanout_program(32), &[]).unwrap();
    for i in 0..32 {
        assert_eq!(
            sys.read_global_word("out", i),
            Some((i * i) as i32),
            "out[{i}]"
        );
    }
    assert_eq!(stats.instances, 33); // entry + 32 workers
                                     // The DSE load-balances: more than one PE must have dispatched threads.
    let active_pes = stats
        .per_pe
        .iter()
        .filter(|p| p.threads_dispatched > 0)
        .count();
    assert!(active_pes >= 2, "only {active_pes} PEs used");
}

#[test]
fn more_pes_run_fanout_faster() {
    let (s1, _) = simulate(SystemConfig::with_pes(1), fanout_program(64), &[]).unwrap();
    let (s8, _) = simulate(SystemConfig::with_pes(8), fanout_program(64), &[]).unwrap();
    assert!(
        s8.cycles < s1.cycles,
        "8 PEs ({}) not faster than 1 PE ({})",
        s8.cycles,
        s1.cycles
    );
}

/// Two versions of "sum 64 words from a global array":
/// with `reads` the EX block READs each word from main memory; otherwise a
/// PF block DMAs the whole array into the local store first.
fn sum_program(use_reads: bool) -> Arc<dta_isa::Program> {
    let n = 64usize;
    let words: Vec<i32> = (0..n as i32).collect();
    let mut pb = ProgramBuilder::new();
    let arr = pb.global_words("arr", &words);
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");

    let mut t = ThreadBuilder::new("main");
    if use_reads {
        t.begin_ex();
        t.li(r(3), arr as i64); // base
        t.li(r(4), 0); // i
        t.li(r(5), 0); // acc
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n as i32, done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(3), r(6));
        t.read(r(7), r(6), 0);
        t.add(r(5), r(5), r(7));
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
    } else {
        t.prefetch_bytes((n * 4) as u32);
        // PF block: one DMA for the whole array, then yield.
        t.li(r(3), arr as i64);
        t.dmaget(r(2), 0, r(3), 0, (n * 4) as i32, 0);
        t.dmayield();
        t.begin_ex();
        t.li(r(4), 0); // i
        t.li(r(5), 0); // acc
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Ge, r(4), n as i32, done);
        t.shl(r(6), r(4), 2);
        t.add(r(6), r(2), r(6));
        t.lsload(r(7), r(6), 0);
        t.add(r(5), r(5), r(7));
        t.add(r(4), r(4), 1);
        t.jmp(top);
        t.bind(done);
    }
    t.begin_ps();
    t.li(r(8), out as i64);
    t.write(r(5), r(8), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 0);
    Arc::new(pb.build())
}

#[test]
fn read_and_prefetch_versions_compute_the_same_sum() {
    let expected: i32 = (0..64).sum();
    let (_, sys_r) = simulate(SystemConfig::with_pes(1), sum_program(true), &[]).unwrap();
    assert_eq!(sys_r.read_global_word("out", 0), Some(expected));
    let (_, sys_p) = simulate(SystemConfig::with_pes(1), sum_program(false), &[]).unwrap();
    assert_eq!(sys_p.read_global_word("out", 0), Some(expected));
}

#[test]
fn prefetch_eliminates_memory_stalls_and_wins_at_high_latency() {
    let (reads, _) = simulate(SystemConfig::with_pes(1), sum_program(true), &[]).unwrap();
    let (pf, _) = simulate(SystemConfig::with_pes(1), sum_program(false), &[]).unwrap();

    let b_reads = reads.breakdown();
    let b_pf = pf.breakdown();
    // READ version: dominated by memory stalls (64 blocking 150-cycle
    // round trips).
    assert!(
        b_reads.frac(StallCat::MemStall) > 0.5,
        "read version memstall {:.2}",
        b_reads.frac(StallCat::MemStall)
    );
    // Prefetch version: memory stalls gone from the EX block.
    assert!(
        b_pf.frac(StallCat::MemStall) < 0.05,
        "pf version memstall {:.2}",
        b_pf.frac(StallCat::MemStall)
    );
    assert!(b_pf.frac(StallCat::Prefetch) > 0.0);
    // And it is much faster overall.
    assert!(
        pf.cycles * 3 < reads.cycles,
        "prefetch {} vs reads {}",
        pf.cycles,
        reads.cycles
    );
    // Table-5-style counters.
    assert_eq!(reads.aggregate.reads, 64);
    assert_eq!(pf.aggregate.reads, 0);
    assert_eq!(pf.dma_commands, 1);
}

#[test]
fn latency_one_shrinks_the_prefetch_advantage() {
    let cfg = SystemConfig::with_pes(1).latency_one();
    let (reads, _) = simulate(cfg.clone(), sum_program(true), &[]).unwrap();
    let (pf, _) = simulate(cfg, sum_program(false), &[]).unwrap();
    let speedup_low = reads.cycles as f64 / pf.cycles as f64;

    let (reads_hi, _) = simulate(SystemConfig::with_pes(1), sum_program(true), &[]).unwrap();
    let (pf_hi, _) = simulate(SystemConfig::with_pes(1), sum_program(false), &[]).unwrap();
    let speedup_hi = reads_hi.cycles as f64 / pf_hi.cycles as f64;

    assert!(
        speedup_hi > speedup_low,
        "high-latency speedup {speedup_hi:.2} should exceed latency-1 speedup {speedup_low:.2}"
    );
}

#[test]
fn deadlock_is_detected() {
    // Entry forks a worker with sc=1 but never stores to it.
    let mut pb = ProgramBuilder::new();
    let main = pb.declare("main");
    let worker = pb.declare("worker");
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.falloc(r(3), worker, 1);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    let mut w = ThreadBuilder::new("worker");
    w.begin_pl();
    w.load(r(3), 0);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(worker, w);
    pb.set_entry(main, 0);

    let err = simulate(SystemConfig::with_pes(1), Arc::new(pb.build()), &[]).unwrap_err();
    assert!(matches!(err, RunError::Deadlock { live: 1, .. }), "{err}");
    // The report breaks the count down per PE with each stuck instance's
    // lifecycle state, so a wedged run names its culprits.
    let RunError::Deadlock { pes, .. } = &err else {
        unreachable!()
    };
    assert_eq!(pes.len(), 1, "one PE holds live instances");
    assert_eq!(pes[0].pe, 0);
    assert_eq!(pes[0].instances.len(), 1);
    let rendered = err.to_string();
    assert!(
        rendered.contains("pe 0:"),
        "per-PE line missing: {rendered}"
    );
}

#[test]
fn wrong_arg_count_is_a_launch_error() {
    let err = simulate(SystemConfig::with_pes(1), producer_consumer_program(), &[]).unwrap_err();
    assert!(matches!(err, RunError::Launch(_)), "{err}");
}

#[test]
fn invalid_program_is_rejected() {
    let mut pb = ProgramBuilder::new();
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    t.nop(); // no STOP
    pb.define(main, t);
    pb.set_entry(main, 0);
    let err = simulate(SystemConfig::with_pes(1), Arc::new(pb.build()), &[]).unwrap_err();
    assert!(matches!(err, RunError::Validation(_)), "{err}");
}

#[test]
fn idle_pes_account_their_time() {
    // 8 PEs, serial program: 7 PEs are idle essentially the whole time.
    let (stats, _) = simulate(SystemConfig::with_pes(8), sum_program(true), &[]).unwrap();
    let idle_pes = stats
        .per_pe
        .iter()
        .filter(|p| p.cat(StallCat::Idle) as f64 > 0.95 * stats.cycles as f64)
        .count();
    assert!(idle_pes >= 7, "{idle_pes} fully-idle PEs");
}

#[test]
fn dma_wait_blocks_until_completion() {
    // Same as the prefetch sum but with a blocking DMAWAIT in PF instead
    // of a yield: still correct, slower or equal.
    let n = 64usize;
    let words: Vec<i32> = (0..n as i32).map(|i| 2 * i).collect();
    let mut pb = ProgramBuilder::new();
    let arr = pb.global_words("arr", &words);
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    t.prefetch_bytes((n * 4) as u32);
    t.li(r(3), arr as i64);
    t.dmaget(r(2), 0, r(3), 0, (n * 4) as i32, 5);
    t.dmawait(5);
    t.begin_ex();
    t.li(r(4), 0);
    t.li(r(5), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(4), n as i32, done);
    t.shl(r(6), r(4), 2);
    t.add(r(6), r(2), r(6));
    t.lsload(r(7), r(6), 0);
    t.add(r(5), r(5), r(7));
    t.add(r(4), r(4), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.li(r(8), out as i64);
    t.write(r(5), r(8), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 0);

    let (stats, sys) = simulate(SystemConfig::with_pes(1), Arc::new(pb.build()), &[]).unwrap();
    let expected: i32 = (0..64).map(|i| 2 * i).sum();
    assert_eq!(sys.read_global_word("out", 0), Some(expected));
    // The blocking wait shows up as prefetch overhead.
    assert!(stats.breakdown().frac(StallCat::Prefetch) > 0.1);
}
