//! Fast-forward invariance properties (PR 5).
//!
//! The event-driven fast-forward scheduler and the adaptive epoch
//! coordinator are pure *host-time* optimisations: `RunStats`, the
//! deterministic observability stream (minus the engine's own epoch
//! markers, which [`ObsStream::deterministic`] already strips), and
//! every typed `RunError` must be **bit-identical** across the full
//! `{Dense, FastForward} × {Off, Threads(2), Threads(4)}` matrix — on
//! the paper's benchmarks, under a seeded mixed `FaultPlan`, and under
//! DSE crash/restart schedules. A final pair of tests pins that the
//! optimisation actually does something: fast-forward skips blocked/idle
//! ticks and the adaptive coordinator merges epochs when only one shard
//! has activity due.

use dta_core::{
    simulate, FaultPlan, ObsMode, Parallelism, RunError, RunStats, SchedMode, System, SystemConfig,
};
use dta_mem::fault::{roll, SITE_DSE_CRASH, SITE_LSE_CRASH};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::Arc;

/// Every engine configuration the invariance property quantifies over.
/// `(Dense, Off)` is the oracle; the other five must match it exactly.
const MATRIX: [(SchedMode, Parallelism); 6] = [
    (SchedMode::Dense, Parallelism::Off),
    (SchedMode::Dense, Parallelism::Threads(2)),
    (SchedMode::Dense, Parallelism::Threads(4)),
    (SchedMode::FastForward, Parallelism::Off),
    (SchedMode::FastForward, Parallelism::Threads(2)),
    (SchedMode::FastForward, Parallelism::Threads(4)),
];

fn cfg(sched: SchedMode, par: Parallelism, faults: Option<FaultPlan>) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    cfg.sched = sched;
    cfg.parallelism = par;
    cfg.obs.mode = ObsMode::All;
    cfg.obs.metrics_interval = 500;
    cfg.faults = faults;
    cfg.max_cycles = 50_000_000;
    cfg
}

fn run(
    build: &dyn Fn() -> WorkloadProgram,
    sched: SchedMode,
    par: Parallelism,
    faults: Option<FaultPlan>,
) -> (RunStats, System) {
    let wp = build();
    simulate(cfg(sched, par, faults), Arc::new(wp.program), &wp.args)
        .unwrap_or_else(|e| panic!("{sched:?}/{par:?} failed: {e}"))
}

/// Same mixed recoverable plan as the obs-invariance suite: transient
/// DMA failures, every message-fault kind, and FALLOC denials.
fn mixed_plan() -> FaultPlan {
    let mut plan = FaultPlan::seeded(0x0B5E_11A7);
    plan.dma_fail_ppm = 30_000;
    plan.dma_backoff_base = 16;
    plan.msg_drop_ppm = 10_000;
    plan.msg_dup_ppm = 10_000;
    plan.msg_delay_ppm = 10_000;
    plan.falloc_deny_ppm = 50_000;
    plan
}

fn assert_ff_invariant(
    name: &str,
    build: &dyn Fn() -> WorkloadProgram,
    verify: &dyn Fn(&System) -> Result<(), String>,
    faults: Option<FaultPlan>,
) {
    let (oracle_stats, oracle_sys) = run(build, SchedMode::Dense, Parallelism::Off, faults);
    verify(&oracle_sys).unwrap_or_else(|e| panic!("{name}: dense oracle result wrong: {e}"));
    // Conservation: the exclusive fine attribution sums to the cycle
    // count on every PE. Because the fine array is part of `PeStats`,
    // the stats `assert_eq!` in the matrix loop below then proves the
    // attribution is bit-identical across {dense, fast-forward} ×
    // {Off, Threads(2), Threads(4)}.
    for (pe, p) in oracle_stats.per_pe.iter().enumerate() {
        assert_eq!(
            p.total_fine_cycles(),
            p.total_cycles(),
            "{name}: fine-attribution conservation violated on PE {pe}"
        );
    }
    let oracle = oracle_sys.obs().expect("observability on");
    let oracle_det = oracle.deterministic();
    assert!(!oracle_det.is_empty(), "{name}: empty event stream");

    for (sched, par) in MATRIX {
        if (sched, par) == (SchedMode::Dense, Parallelism::Off) {
            continue;
        }
        let (stats, sys) = run(build, sched, par, faults);
        verify(&sys).unwrap_or_else(|e| panic!("{name}: {sched:?}/{par:?} result wrong: {e}"));
        assert_eq!(
            oracle_stats, stats,
            "{name}: {sched:?}/{par:?} stats diverged"
        );
        let stream = sys.obs().expect("observability on");
        assert_eq!(
            oracle.dropped, stream.dropped,
            "{name}: {sched:?}/{par:?} ring-drop count diverged"
        );
        let det = stream.deterministic();
        assert_eq!(
            oracle_det.len(),
            det.len(),
            "{name}: {sched:?}/{par:?} stream length diverged"
        );
        for (i, (a, b)) in oracle_det.iter().zip(det.iter()).enumerate() {
            assert_eq!(
                a, b,
                "{name}: {sched:?}/{par:?} stream diverged at record {i}"
            );
        }
    }
}

#[test]
fn bitcnt_is_ff_invariant() {
    assert_ff_invariant(
        "bitcnt(10000)",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        None,
    );
}

#[test]
fn mmul_is_ff_invariant() {
    assert_ff_invariant(
        "mmul(32)",
        &|| mmul::build(32, Variant::HandPrefetch),
        &|s| mmul::verify(s, 32),
        None,
    );
}

#[test]
fn zoom_is_ff_invariant() {
    assert_ff_invariant(
        "zoom(32)",
        &|| zoom::build(32, Variant::HandPrefetch),
        &|s| zoom::verify(s, 32),
        None,
    );
}

#[test]
fn bitcnt_is_ff_invariant_under_faults() {
    assert_ff_invariant(
        "bitcnt(10000)+faults",
        &|| bitcnt::build(10_000, Variant::HandPrefetch),
        &|s| bitcnt::verify(s, 10_000),
        Some(mixed_plan()),
    );
}

#[test]
fn mmul_is_ff_invariant_under_faults() {
    assert_ff_invariant(
        "mmul(32)+faults",
        &|| mmul::build(32, Variant::HandPrefetch),
        &|s| mmul::verify(s, 32),
        Some(mixed_plan()),
    );
}

/// Baseline (decoupled-READ) variants spend most cycles blocked on
/// memory — exactly the shape fast-forward exists for. Pin that too.
#[test]
fn mmul_baseline_is_ff_invariant() {
    assert_ff_invariant(
        "mmul(32)/baseline",
        &|| mmul::build(32, Variant::Baseline),
        &|s| mmul::verify(s, 32),
        None,
    );
}

/// Picks a seed whose per-node crash rolls match `want` (same idiom as
/// the chaos suite).
fn seed_where(ppm: u32, want: &[bool]) -> u64 {
    (0..20_000u64)
        .find(|&s| {
            want.iter()
                .enumerate()
                .all(|(n, &w)| roll(s, SITE_DSE_CRASH, n as u64, ppm) == w)
        })
        .expect("no seed matches the wanted crash pattern in 20k tries")
}

/// DSE crash + cold restart on a two-node topology: the failover
/// detection timers, re-homing, and restart schedule must land on the
/// same cycles whichever scheduler and engine runs them.
#[test]
fn dse_crash_restart_is_ff_invariant() {
    let ppm = 500_000;
    let seed = seed_where(ppm, &[true, false]);
    let mut plan = FaultPlan::seeded(seed);
    plan.dse_crash_ppm = ppm;
    plan.dse_crash_window = 10_000;
    plan.dse_failover_detect = 500;
    plan.dse_restart_after = 20_000;

    let go = |sched: SchedMode, par: Parallelism| {
        let mut c = cfg(sched, par, Some(plan));
        c.nodes = 2;
        c.pes_per_node = 4;
        c.max_cycles = 5_000_000;
        let wp = mmul::build(16, Variant::HandPrefetch);
        simulate(c, Arc::new(wp.program), &wp.args)
    };
    let (oracle_stats, oracle_sys) =
        go(SchedMode::Dense, Parallelism::Off).expect("dense oracle failed");
    mmul::verify(&oracle_sys, 16).expect("dense oracle result wrong");
    let oracle_det = oracle_sys.obs().expect("obs on").deterministic();
    for (sched, par) in MATRIX {
        if (sched, par) == (SchedMode::Dense, Parallelism::Off) {
            continue;
        }
        let (stats, sys) = go(sched, par).unwrap_or_else(|e| panic!("{sched:?}/{par:?}: {e}"));
        mmul::verify(&sys, 16).unwrap_or_else(|e| panic!("{sched:?}/{par:?} result wrong: {e}"));
        assert_eq!(oracle_stats, stats, "{sched:?}/{par:?} stats diverged");
        assert_eq!(
            oracle_det,
            sys.obs().expect("obs on").deterministic(),
            "{sched:?}/{par:?} stream diverged"
        );
    }
}

/// LSE crash + cold restart on a two-node topology (robustness PR): the
/// evacuation/re-admission protocol, kill-and-replay, and the restart
/// resync must land on the same cycles whichever scheduler and engine
/// runs them — the capacity-aware elections are pure functions of the
/// schedule, so the whole matrix must agree bit-for-bit.
#[test]
fn lse_crash_restart_is_ff_invariant() {
    let ppm = 500_000;
    // Exactly one PE's LSE crashes (pe 0 of 8), same scenario-picking
    // idiom as the chaos suite's `lse_seed_where`.
    let want = [true, false, false, false, false, false, false, false];
    let seed = (0..2_000_000u64)
        .find(|&s| {
            want.iter()
                .enumerate()
                .all(|(pe, &w)| roll(s, SITE_LSE_CRASH, pe as u64, ppm) == w)
        })
        .expect("no seed matches the wanted LSE crash pattern in 2M tries");
    let mut plan = FaultPlan::seeded(seed);
    plan.lse_crash_ppm = ppm;
    plan.lse_crash_window = 5_000;
    plan.lse_detect = 500;
    plan.lse_restart_after = 20_000;

    let go = |sched: SchedMode, par: Parallelism| {
        let mut c = cfg(sched, par, Some(plan));
        c.nodes = 2;
        c.pes_per_node = 4;
        c.max_cycles = 5_000_000;
        let wp = bitcnt::build(1024, Variant::HandPrefetch);
        simulate(c, Arc::new(wp.program), &wp.args)
    };
    let (oracle_stats, oracle_sys) =
        go(SchedMode::Dense, Parallelism::Off).expect("dense oracle failed");
    bitcnt::verify(&oracle_sys, 1024).expect("dense oracle result wrong");
    assert!(oracle_stats.lse_crashes > 0, "the plan must actually crash");
    let oracle_det = oracle_sys.obs().expect("obs on").deterministic();
    for (sched, par) in MATRIX {
        if (sched, par) == (SchedMode::Dense, Parallelism::Off) {
            continue;
        }
        let (stats, sys) = go(sched, par).unwrap_or_else(|e| panic!("{sched:?}/{par:?}: {e}"));
        bitcnt::verify(&sys, 1024)
            .unwrap_or_else(|e| panic!("{sched:?}/{par:?} result wrong: {e}"));
        assert_eq!(oracle_stats, stats, "{sched:?}/{par:?} stats diverged");
        assert_eq!(
            oracle_det,
            sys.obs().expect("obs on").deterministic(),
            "{sched:?}/{par:?} stream diverged"
        );
    }
}

/// An unrecoverable plan must produce the *same typed error* on every
/// scheduler/engine combination — fast-forward may not turn a watchdog
/// trip into a hang or a different failure.
#[test]
fn watchdog_error_is_ff_invariant() {
    let mut plan = FaultPlan::seeded(31);
    plan.dma_stall_ppm = 1_000_000;
    let go = |sched: SchedMode, par: Parallelism| {
        let mut c = cfg(sched, par, Some(plan));
        c.max_cycles = 5_000_000;
        let wp = bitcnt::build(1024, Variant::HandPrefetch);
        simulate(c, Arc::new(wp.program), &wp.args)
    };
    let oracle =
        go(SchedMode::Dense, Parallelism::Off).expect_err("an all-stall plan cannot complete");
    let RunError::Watchdog { cycle, .. } = &oracle else {
        panic!("expected a watchdog trip, got: {oracle}");
    };
    let oracle_cycle = *cycle;
    for (sched, par) in MATRIX {
        if (sched, par) == (SchedMode::Dense, Parallelism::Off) {
            continue;
        }
        let err = go(sched, par).expect_err("all engines must fail alike");
        match err {
            RunError::Watchdog { cycle, .. } => assert_eq!(
                cycle, oracle_cycle,
                "{sched:?}/{par:?} watchdog tripped at a different cycle"
            ),
            other => panic!("{sched:?}/{par:?}: expected watchdog, got {other}"),
        }
    }
}

/// Fast-forward must actually skip work: on a DMA-dominated baseline
/// run the dense engine ticks every PE every visited cycle, while the
/// fast-forward engine touches only due PEs.
#[test]
fn fast_forward_skips_blocked_ticks() {
    let build = || mmul::build(32, Variant::Baseline);
    let (_, dense) = run(&build, SchedMode::Dense, Parallelism::Off, None);
    let (_, ff) = run(&build, SchedMode::FastForward, Parallelism::Off, None);
    let d = dense.engine_report();
    let f = ff.engine_report();
    assert_eq!(d.visited_cycles, f.visited_cycles, "visited sets diverged");
    assert_eq!(d.skipped_ticks, 0, "dense engine must tick everything");
    assert!(f.skipped_ticks > 0, "fast-forward skipped nothing: {f:?}");
    assert!(
        f.pe_ticks < d.pe_ticks,
        "fast-forward did not reduce tick work: dense={d:?} ff={f:?}"
    );
}

/// When only one shard has activity due, the adaptive coordinator must
/// widen epochs past the fixed lookahead. A single-thread program pins
/// this deterministically: all activity lives on PE 0, so the second
/// shard of a `Threads(2)` split is idle from cycle 0.
#[test]
fn adaptive_coordinator_merges_single_runner_epochs() {
    use dta_isa::{reg::r, ProgramBuilder, ThreadBuilder};
    let mut pb = ProgramBuilder::new();
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");
    let mut t = ThreadBuilder::new("main");
    t.begin_pl();
    t.load(r(3), 0);
    t.begin_ex();
    t.add(r(4), r(3), 1);
    t.li(r(5), out as i64);
    t.begin_ps();
    t.write(r(4), r(5), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);
    pb.set_entry(main, 1);
    let program = Arc::new(pb.build());

    let go = |sched: SchedMode| {
        let mut c = cfg(sched, Parallelism::Threads(2), None);
        c.obs.mode = ObsMode::Off;
        simulate(c, Arc::clone(&program), &[41]).expect("single-thread run failed")
    };
    let (ff_stats, ff_sys) = go(SchedMode::FastForward);
    assert_eq!(ff_sys.read_global_word("out", 0), Some(42));
    let report = ff_sys.engine_report();
    assert!(
        report.merged_epochs > 0,
        "single-runner epochs were not merged: {report:?}"
    );
    assert!(report.epochs > 0);

    let (dense_stats, dense_sys) = go(SchedMode::Dense);
    assert_eq!(ff_stats, dense_stats, "adaptive epochs perturbed stats");
    assert_eq!(dense_sys.engine_report().merged_epochs, 0);
}
