//! End-to-end tests of the execution trace: the recorded events must
//! follow the thread lifecycle of the paper's Fig. 4.

use dta_core::{simulate, SystemConfig, TraceKind};
use dta_isa::{reg::r, ProgramBuilder, ThreadBuilder};
use std::sync::Arc;

/// main forks one prefetching worker that DMAs 64 bytes, sums them, and
/// writes the result.
fn traced_program() -> Arc<dta_isa::Program> {
    let mut pb = ProgramBuilder::new();
    let arr = pb.global_words("arr", &[1, 2, 3, 4]);
    let out = pb.global_zeroed("out", 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.falloc(r(3), worker, 1);
    t.li(r(4), out as i64);
    t.begin_ps();
    t.store(r(4), r(3), 0);
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    w.prefetch_bytes(16);
    w.li(r(3), arr as i64);
    w.dmaget(r(2), 0, r(3), 0, 16, 0);
    w.dmayield();
    w.begin_pl();
    w.load(r(4), 0); // out address
    w.begin_ex();
    w.lsload(r(5), r(2), 0);
    w.lsload(r(6), r(2), 4);
    w.add(r(5), r(5), r(6));
    w.lsload(r(6), r(2), 8);
    w.add(r(5), r(5), r(6));
    w.lsload(r(6), r(2), 12);
    w.add(r(5), r(5), r(6));
    w.begin_ps();
    w.write(r(5), r(4), 0);
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    Arc::new(pb.build())
}

#[test]
fn trace_records_the_fig4_lifecycle() {
    let mut cfg = SystemConfig::with_pes(2);
    cfg.trace = true;
    let (_, sys) = simulate(cfg, traced_program(), &[]).unwrap();
    assert_eq!(sys.read_global_word("out", 0), Some(10));
    let trace = sys.trace().expect("tracing enabled");
    assert!(!trace.truncated);

    // Find the worker instance: it issued DMA.
    let dma_issue = trace
        .events()
        .into_iter()
        .find(|e| matches!(e.kind, TraceKind::DmaIssued { .. }))
        .expect("worker issued DMA");
    let worker = dma_issue.instance;
    let kinds: Vec<_> = trace.for_instance(worker).iter().map(|e| e.kind).collect();

    // Fig. 4 order: frame granted -> store (ready) -> dispatched
    // (Program DMA) -> DMA issued -> Wait for DMA -> DMA completed ->
    // dispatched again (Execution) -> stopped -> frame freed.
    let pos = |k: fn(&TraceKind) -> bool| kinds.iter().position(&k);
    let granted = pos(|k| matches!(k, TraceKind::FrameGranted { .. })).expect("granted");
    let store = pos(|k| {
        matches!(
            k,
            TraceKind::StoreApplied {
                became_ready: true,
                ..
            }
        )
    })
    .expect("store made it ready");
    let first_dispatch = pos(|k| matches!(k, TraceKind::Dispatched)).expect("dispatched");
    let issued = pos(|k| matches!(k, TraceKind::DmaIssued { .. })).expect("dma");
    let wait = pos(|k| matches!(k, TraceKind::WaitDma)).expect("wait-dma");
    let done = pos(|k| matches!(k, TraceKind::DmaCompleted { .. })).expect("dma done");
    let stopped = pos(|k| matches!(k, TraceKind::Stopped)).expect("stopped");
    let freed = pos(|k| matches!(k, TraceKind::FrameFreed)).expect("freed");
    assert!(granted < store, "{kinds:?}");
    assert!(store < first_dispatch, "{kinds:?}");
    assert!(first_dispatch < issued, "{kinds:?}");
    assert!(issued < wait, "{kinds:?}");
    assert!(wait < done, "{kinds:?}");
    assert!(done < stopped, "{kinds:?}");
    assert!(freed < stopped || stopped < freed, "{kinds:?}"); // both present

    // Two dispatches: Program DMA, then Execution.
    assert_eq!(
        kinds
            .iter()
            .filter(|k| matches!(k, TraceKind::Dispatched))
            .count(),
        2
    );

    // The rendered table names the worker thread.
    let rendered = sys.render_trace().unwrap();
    assert!(rendered.contains("worker"), "{rendered}");
    assert!(rendered.contains("main"), "{rendered}");
}

#[test]
fn tracing_off_records_nothing_and_changes_nothing() {
    let cfg = SystemConfig::with_pes(2);
    let (a, sys) = simulate(cfg.clone(), traced_program(), &[]).unwrap();
    assert!(sys.trace().is_none());
    let mut traced = cfg;
    traced.trace = true;
    let (b, _) = simulate(traced, traced_program(), &[]).unwrap();
    // Tracing is observation only: identical timing and counters.
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.aggregate, b.aggregate);
}

#[test]
fn trace_capacity_truncates_gracefully() {
    use dta_workloads::{bitcnt, Variant};
    let mut cfg = SystemConfig::with_pes(2);
    cfg.trace = true;
    cfg.trace_capacity = 50;
    let wp = bitcnt::build(96, Variant::Baseline);
    let (_, sys) = simulate(cfg, Arc::new(wp.program), &wp.args).unwrap();
    let trace = sys.trace().unwrap();
    assert!(trace.truncated);
    assert_eq!(trace.events().len(), 50);
    assert!(sys.render_trace().unwrap().contains("truncated"));
}

#[test]
fn sp_offload_appears_in_the_trace() {
    let mut cfg = SystemConfig::with_pes(2);
    cfg.trace = true;
    cfg.sp_pf_overlap = true;
    let (_, sys) = simulate(cfg, traced_program(), &[]).unwrap();
    let trace = sys.trace().unwrap();
    assert!(trace.count(|e| matches!(e.kind, TraceKind::PfOffloaded)) > 0);
    // Offloaded PF means only ONE pipeline dispatch for the worker.
    let off = trace
        .events()
        .into_iter()
        .find(|e| matches!(e.kind, TraceKind::PfOffloaded))
        .unwrap();
    assert_eq!(
        trace
            .for_instance(off.instance)
            .iter()
            .filter(|e| matches!(e.kind, TraceKind::Dispatched))
            .count(),
        1
    );
}
