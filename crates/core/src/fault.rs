//! Message-level fault injection for the core engines.
//!
//! DMA faults are resolved inside the MFC (see `dta_mem::fault`); this
//! module handles the *protocol* faults — dropping, duplicating and
//! delaying LSE↔DSE messages — plus the bookkeeping both engines share.
//!
//! Every decision is a pure roll on the message's deterministic source
//! stamp ([`MsgSeq`]), so the sequential and epoch-sharded engines
//! transform exactly the same messages in exactly the same way. All
//! transforms only ever *increase* delivery time, which keeps the sharded
//! engine's epoch horizon sound (a message can never be moved into an
//! epoch that already executed).
//!
//! Recovery model:
//!
//! * **drop** — the message is lost on the wire; the sender's idempotent
//!   re-send delivers it `msg_resend_timeout` cycles later with a fresh
//!   stamp (the original stamp tagged [`RESEND_STAMP_BIT`], preserving
//!   stamp uniqueness and the deterministic `(time, stamp)` tie-break).
//! * **duplicate** — a second copy is delivered carrying
//!   [`DUP_STAMP_BIT`]; receivers discard marked copies at event pop, so
//!   duplicates cost network determinism nothing and handlers stay
//!   single-delivery.
//! * **delay** — delivery slips by `msg_delay_jitter` cycles.
//!
//! `FallocRetry` (the denial-recovery timer) and `ReadDone` (carries a
//! synthetic stamp already) are exempt: faulting the recovery path itself
//! would turn bounded recovery into unbounded recursion.

use crate::config::FaultPlan;
use dta_mem::fault::{
    mix64, roll, SITE_DSE_CRASH, SITE_LSE_CRASH, SITE_MSG_DELAY, SITE_MSG_DROP, SITE_MSG_DUP,
};
use dta_sched::{Message, MsgSeq};
use std::cmp::Reverse;

/// Stamp-sequence bit marking a duplicated copy (discarded at delivery).
pub const DUP_STAMP_BIT: u64 = 1 << 62;
/// Stamp-sequence bit marking the re-send of a dropped message.
pub const RESEND_STAMP_BIT: u64 = 1 << 61;

/// Shared message-fault counters (per engine shard; merged at collect).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped on the wire (each recovered by one re-send).
    pub msgs_dropped: u64,
    /// Duplicate copies injected (each discarded at delivery).
    pub msgs_duplicated: u64,
    /// Messages whose delivery slipped by the configured jitter.
    pub msgs_delayed: u64,
}

impl FaultCounters {
    /// Adds another counter set into this one (shard merge).
    pub fn absorb(&mut self, other: FaultCounters) {
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_delayed += other.msgs_delayed;
    }

    /// Any fault recorded at all?
    pub fn any(&self) -> bool {
        self.msgs_dropped + self.msgs_duplicated + self.msgs_delayed > 0
    }
}

/// Messages the injector must never touch: the recovery timer itself, the
/// synthetic-stamped scalar-read completion, and the whole crash/failover
/// protocol (the injector silencing its own recovery traffic would turn a
/// planned outage into an unrecoverable one).
pub fn msg_exempt(msg: &Message) -> bool {
    matches!(
        msg,
        Message::FallocRetry
            | Message::ReadDone { .. }
            | Message::DseCrash
            | Message::DseRestart
            | Message::DseResync
            | Message::DseRegister { .. }
            | Message::FosterRelease { .. }
            | Message::LseCrash
            | Message::LseRestart
            | Message::LseAdopt { .. }
            | Message::LseAdoptStore { .. }
    )
}

/// The planned outage of one node's DSE.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DseOutage {
    /// Cycle at which the DSE falls silent.
    pub crash_at: u64,
    /// Cycle at which peers treat it as dead (heartbeat lease expiry).
    pub detect_at: u64,
    /// Cycle at which it rejoins cold, if the plan restarts it at all.
    pub restart_at: Option<u64>,
}

/// The planned outage of one PE's LSE (the per-PE scheduler dying while
/// its node's DSE survives — the finest failure domain in the machine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LseOutage {
    /// Cycle at which the LSE (and with it the PE) falls silent.
    pub crash_at: u64,
    /// Cycle at which evacuation lands at the peer (lease expiry).
    pub detect_at: u64,
    /// Cycle at which it rejoins cold, if the plan restarts it at all.
    pub restart_at: Option<u64>,
    /// Same-node peer elected at plan resolution to adopt the evacuated
    /// instances. Capacity-aware: the live peer with the most *planned*
    /// free frames (frame capacity minus earlier planned evacuations —
    /// never runtime state), ties broken towards the lowest PE id.
    /// `None` = no live same-node peer at detection; evacuees are lost
    /// and the run ends in a typed error if any existed.
    pub evac_to: Option<u16>,
}

/// The fully resolved DSE + LSE crash/restart schedule of a fault plan.
///
/// Built once at system construction from pure hashes of `(seed, node)`
/// and `(seed, pe)`, so both engines — and every shard — agree on every
/// outage without exchanging any state. All liveness queries (and both
/// successor elections: the DSE arbiter and the LSE evacuation peer) are
/// pure functions of `(unit, time)` and the schedule itself, which is
/// what makes the failover protocol engine-invariant by construction:
/// routing decisions never depend on who observed what, only on the
/// schedule and the current cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FailoverSchedule {
    /// Per-node planned outage (`None` = this node's roll did not fire).
    outages: Vec<Option<DseOutage>>,
    /// Per-PE planned LSE outage (`None` = this PE's roll did not fire).
    lse_outages: Vec<Option<LseOutage>>,
    /// DSE silence-detection latency (clamped ≥ message latency ≥ 1 so
    /// every failover hop is epoch-safe in the sharded engine).
    detect: u64,
    /// LSE silence-detection latency (same clamp).
    lse_detect: u64,
    /// Machine shape: PEs per node (for node↔PE mapping).
    pes_per_node: u16,
    /// Physical frames per PE (the planned-capacity unit both elections
    /// score on).
    frame_capacity: u32,
}

impl FailoverSchedule {
    /// Resolves the plan's `dse_crash` and `lse_crash` sites for an
    /// `nodes`-node machine with `pes_per_node` PEs per node. Returns
    /// `None` when the plan cannot crash anything (rates zero or no
    /// roll fired) — the `None` gates every failover code path, which is
    /// the zero-overhead-when-off guarantee.
    pub fn from_plan(
        plan: &FaultPlan,
        nodes: u16,
        pes_per_node: u16,
        frame_capacity: u32,
        msg_latency: u64,
    ) -> Option<Self> {
        let detect = plan.dse_failover_detect.max(msg_latency).max(1);
        let window = plan.dse_crash_window.max(1);
        let outages: Vec<Option<DseOutage>> = (0..nodes)
            .map(|n| {
                if !plan.has_dse_crash()
                    || !roll(plan.seed, SITE_DSE_CRASH, n as u64, plan.dse_crash_ppm)
                {
                    return None;
                }
                // Crash no earlier than cycle 1: launch seeds the first
                // FALLOC through the DSE inline at t = 0.
                let crash_at = 1 + mix64(
                    mix64(plan.seed ^ SITE_DSE_CRASH).wrapping_add(0x43_5241_5348 ^ n as u64),
                ) % window;
                // Deliberately NOT clamped past detection: a restart
                // before the lease expires is the restart-during-rehome
                // interleaving (arbitration never leaves home).
                let restart_at =
                    (plan.dse_restart_after > 0).then(|| crash_at + plan.dse_restart_after);
                Some(DseOutage {
                    crash_at,
                    detect_at: crash_at + detect,
                    restart_at,
                })
            })
            .collect();
        let lse_detect = plan.lse_detect.max(msg_latency).max(1);
        let lse_window = plan.lse_crash_window.max(1);
        let lse_outages: Vec<Option<LseOutage>> = (0..nodes * pes_per_node)
            .map(|pe| {
                if !plan.has_lse_crash()
                    || !roll(plan.seed, SITE_LSE_CRASH, pe as u64, plan.lse_crash_ppm)
                {
                    return None;
                }
                let crash_at = 1 + mix64(
                    mix64(plan.seed ^ SITE_LSE_CRASH).wrapping_add(0x43_5241_5348 ^ pe as u64),
                ) % lse_window;
                let restart_at =
                    (plan.lse_restart_after > 0).then(|| crash_at + plan.lse_restart_after);
                Some(LseOutage {
                    crash_at,
                    detect_at: crash_at + lse_detect,
                    restart_at,
                    evac_to: None,
                })
            })
            .collect();
        if !outages.iter().any(Option::is_some) && !lse_outages.iter().any(Option::is_some) {
            return None;
        }
        let mut s = FailoverSchedule {
            outages,
            lse_outages,
            detect,
            lse_detect,
            pes_per_node,
            frame_capacity,
        };
        s.resolve_evacuation_peers();
        Some(s)
    }

    /// Elects the evacuation peer of every planned LSE outage: crashes
    /// are processed in `(crash_at, pe)` order and each elects the live
    /// same-node peer with the most *planned* free frames — the PE's
    /// frame capacity minus the number of earlier evacuations already
    /// assigned to it — with ties towards the lowest PE id. The score is
    /// a pure function of the schedule (never of runtime frame tables),
    /// so both engines and every shard elect identically.
    fn resolve_evacuation_peers(&mut self) {
        let mut order: Vec<(u64, u16)> = self
            .lse_outages
            .iter()
            .enumerate()
            .filter_map(|(pe, o)| o.map(|o| (o.crash_at, pe as u16)))
            .collect();
        order.sort_unstable();
        let mut planned_load = vec![0u32; self.lse_outages.len()];
        for (_, pe) in order {
            let o = self.lse_outages[pe as usize].expect("in order list");
            let node = pe / self.pes_per_node;
            let peer = (node * self.pes_per_node..(node + 1) * self.pes_per_node)
                .filter(|&q| q != pe && !self.lse_dead(q, o.detect_at))
                .map(|q| {
                    (
                        self.frame_capacity.saturating_sub(planned_load[q as usize]),
                        Reverse(q),
                    )
                })
                .max()
                .map(|(_, Reverse(q))| q);
            if let Some(q) = peer {
                planned_load[q as usize] += 1;
            }
            self.lse_outages[pe as usize]
                .as_mut()
                .expect("present")
                .evac_to = peer;
        }
    }

    /// The planned outage of `node`, if any.
    #[inline]
    pub fn outage(&self, node: u16) -> Option<DseOutage> {
        self.outages[node as usize]
    }

    /// Silence-detection latency in cycles (≥ message latency).
    #[inline]
    pub fn detect_latency(&self) -> u64 {
        self.detect
    }

    /// Is `node`'s DSE dead at cycle `t`? (Crashed, not yet restarted.)
    pub fn dead(&self, node: u16, t: u64) -> bool {
        self.outages[node as usize]
            .is_some_and(|o| t >= o.crash_at && o.restart_at.is_none_or(|r| t < r))
    }

    /// Has `node`'s death been *detected* by cycle `t`? Peers keep
    /// routing to a dead DSE until its lease expires (those messages
    /// bounce), which is what makes detection a fixed-latency event both
    /// engines agree on.
    pub fn detected(&self, node: u16, t: u64) -> bool {
        self.dead(node, t)
            && self.outages[node as usize].is_some_and(|o| t >= o.crash_at + self.detect)
    }

    /// The planned outage of `pe`'s LSE, if any.
    #[inline]
    pub fn lse_outage(&self, pe: u16) -> Option<LseOutage> {
        self.lse_outages[pe as usize]
    }

    /// LSE silence-detection latency in cycles (≥ message latency).
    #[inline]
    pub fn lse_detect_latency(&self) -> u64 {
        self.lse_detect
    }

    /// Does the plan crash any LSE at all? Gates the LSE-failover code
    /// paths the way `Option<FailoverSchedule>` gates DSE failover.
    pub fn lse_dead_any(&self) -> bool {
        self.lse_outages.iter().any(Option::is_some)
    }

    /// Is `pe`'s LSE dead at cycle `t`? (Crashed, not yet restarted.)
    pub fn lse_dead(&self, pe: u16, t: u64) -> bool {
        self.lse_outages[pe as usize]
            .is_some_and(|o| t >= o.crash_at && o.restart_at.is_none_or(|r| t < r))
    }

    /// Has `pe`'s LSE death been *detected* by cycle `t`? The node's DSE
    /// keeps granting to a dead PE until the lease expires (those grants
    /// bounce back as re-homed requests), which keeps detection a
    /// fixed-latency event both engines agree on.
    pub fn lse_detected(&self, pe: u16, t: u64) -> bool {
        self.lse_dead(pe, t)
            && self.lse_outages[pe as usize].is_some_and(|o| t >= o.crash_at + self.lse_detect)
    }

    /// The PEs of `node` whose LSE death has been detected by cycle `t`
    /// (what a DSE excludes from arbitration). Sorted by construction.
    pub fn detected_dead_pes(&self, node: u16, t: u64) -> Vec<u16> {
        (node * self.pes_per_node..(node + 1) * self.pes_per_node)
            .filter(|&pe| self.lse_detected(pe, t))
            .collect()
    }

    /// Every PE in the machine whose LSE death has been detected by `t`
    /// — what an arbiter (home DSE or fostering successor) excludes from
    /// arbitration. Sorted by construction.
    pub fn all_detected_dead_pes(&self, t: u64) -> Vec<u16> {
        (0..self.lse_outages.len() as u16)
            .filter(|&pe| self.lse_detected(pe, t))
            .collect()
    }

    /// Planned frame capacity of `node` at cycle `t`: frame capacity
    /// summed over the node's PEs whose LSE is alive. A pure function of
    /// the schedule — never of runtime frame tables — so it is safe to
    /// elect on.
    pub fn planned_node_capacity(&self, node: u16, t: u64) -> u64 {
        (node * self.pes_per_node..(node + 1) * self.pes_per_node)
            .filter(|&pe| !self.lse_dead(pe, t))
            .map(|_| self.frame_capacity as u64)
            .sum()
    }

    /// Who arbitrates `node`'s FALLOC traffic at cycle `t`?
    ///
    /// The node itself until its death is detected; then the live peer
    /// with the most *planned* frame capacity (capacity-aware successor
    /// election — PEs with dead LSEs don't count), ties towards the
    /// lowest node id, which degenerates to the historical lowest-id
    /// election when no LSE outages are scheduled; if *every* DSE is
    /// dead, the one that restarts soonest (its mailbox holds traffic
    /// until the restart); `None` if nobody ever comes back.
    pub fn arbiter(&self, node: u16, t: u64) -> Option<u16> {
        if !self.detected(node, t) {
            return Some(node);
        }
        let n = self.outages.len() as u16;
        if let Some(m) = (0..n)
            .filter(|&m| !self.dead(m, t))
            .map(|m| (self.planned_node_capacity(m, t), Reverse(m)))
            .max()
            .map(|(_, Reverse(m))| m)
        {
            return Some(m);
        }
        (0..n)
            .filter_map(|m| {
                self.outages[m as usize]
                    .and_then(|o| o.restart_at)
                    .filter(|&r| r > t)
                    .map(|r| (r, m))
            })
            .min()
            .map(|(_, m)| m)
    }

    /// PR 3's historical lowest-id successor election, kept for the
    /// capacity-aware-vs-lowest-id A/B in the failover benchmark. Not
    /// used for routing.
    pub fn lowest_id_arbiter(&self, node: u16, t: u64) -> Option<u16> {
        if !self.detected(node, t) {
            return Some(node);
        }
        let n = self.outages.len() as u16;
        if let Some(m) = (0..n).find(|&m| !self.dead(m, t)) {
            return Some(m);
        }
        (0..n)
            .filter_map(|m| {
                self.outages[m as usize]
                    .and_then(|o| o.restart_at)
                    .filter(|&r| r > t)
                    .map(|r| (r, m))
            })
            .min()
            .map(|(_, m)| m)
    }

    /// Send-time routing: the arbiter of `home` at `t`, or `home` itself
    /// when nobody is left (the message dead-letters at the silent DSE,
    /// and the quiescence watchdog reports the loss as a typed error).
    pub fn route(&self, home: u16, t: u64) -> u16 {
        self.arbiter(home, t).unwrap_or(home)
    }
}

/// Applies the message-fault rolls of `plan` to a delivery scheduled at
/// `(time, stamp)`. Returns the (possibly transformed) primary delivery
/// and an optional duplicate copy. The caller must have checked
/// [`msg_exempt`] first.
pub fn transform(
    plan: &FaultPlan,
    time: u64,
    stamp: MsgSeq,
    counts: &mut FaultCounters,
) -> ((u64, MsgSeq), Option<(u64, MsgSeq)>) {
    let key = ((stamp.src_rank as u64) << 40) ^ stamp.seq;
    if roll(plan.seed, SITE_MSG_DROP, key, plan.msg_drop_ppm) {
        // Lost on the wire; the idempotent re-send is the only delivery.
        counts.msgs_dropped += 1;
        let resent = MsgSeq {
            src_rank: stamp.src_rank,
            seq: stamp.seq | RESEND_STAMP_BIT,
        };
        return ((time + plan.msg_resend_timeout, resent), None);
    }
    let mut at = time;
    if roll(plan.seed, SITE_MSG_DELAY, key, plan.msg_delay_ppm) {
        counts.msgs_delayed += 1;
        at += plan.msg_delay_jitter;
    }
    let dup = if roll(plan.seed, SITE_MSG_DUP, key, plan.msg_dup_ppm) {
        counts.msgs_duplicated += 1;
        Some((
            at,
            MsgSeq {
                src_rank: stamp.src_rank,
                seq: stamp.seq | DUP_STAMP_BIT,
            },
        ))
    } else {
        None
    };
    ((at, stamp), dup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop: u32, dup: u32, delay: u32) -> FaultPlan {
        FaultPlan {
            msg_drop_ppm: drop,
            msg_dup_ppm: dup,
            msg_delay_ppm: delay,
            ..FaultPlan::seeded(0x5EED)
        }
    }

    fn stamp(rank: u32, seq: u64) -> MsgSeq {
        MsgSeq {
            src_rank: rank,
            seq,
        }
    }

    #[test]
    fn benign_plan_is_identity() {
        let p = plan(0, 0, 0);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(3, 7), &mut c);
        assert_eq!((t, s), (100, stamp(3, 7)));
        assert!(dup.is_none());
        assert!(!c.any());
    }

    #[test]
    fn drop_resends_later_with_marked_stamp() {
        let p = plan(1_000_000, 1_000_000, 1_000_000);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(1, 5), &mut c);
        assert_eq!(t, 100 + p.msg_resend_timeout);
        assert_eq!(s.seq, 5 | RESEND_STAMP_BIT);
        assert_eq!(s.src_rank, 1);
        // Drop excludes the other faults.
        assert!(dup.is_none());
        assert_eq!(
            (c.msgs_dropped, c.msgs_duplicated, c.msgs_delayed),
            (1, 0, 0)
        );
    }

    #[test]
    fn dup_copies_the_delayed_time() {
        let p = plan(0, 1_000_000, 1_000_000);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(2, 9), &mut c);
        assert_eq!(t, 100 + p.msg_delay_jitter);
        assert_eq!(s, stamp(2, 9), "primary stamp is unchanged");
        let (dt, ds) = dup.expect("dup fires at 100%");
        assert_eq!(dt, t);
        assert_eq!(ds.seq, 9 | DUP_STAMP_BIT);
        assert_eq!(
            (c.msgs_dropped, c.msgs_duplicated, c.msgs_delayed),
            (0, 1, 1)
        );
    }

    #[test]
    fn transforms_never_deliver_earlier() {
        let p = plan(400_000, 400_000, 400_000);
        let mut c = FaultCounters::default();
        for seq in 0..2_000u64 {
            let ((t, _), dup) = transform(&p, 50, stamp(0, seq), &mut c);
            assert!(t >= 50);
            if let Some((dt, _)) = dup {
                assert!(dt >= 50);
            }
        }
        assert!(c.any(), "40% rates must fire over 2000 rolls");
    }

    #[test]
    fn exemptions_cover_recovery_messages() {
        assert!(msg_exempt(&Message::FallocRetry));
        assert!(msg_exempt(&Message::ReadDone {
            value: 0,
            ready_at: 0
        }));
        assert!(msg_exempt(&Message::DseCrash));
        assert!(msg_exempt(&Message::DseRestart));
        assert!(msg_exempt(&Message::DseResync));
        assert!(msg_exempt(&Message::DseRegister { pe: 0, free: 0 }));
        assert!(msg_exempt(&Message::FosterRelease { node: 0 }));
        assert!(msg_exempt(&Message::LseCrash));
        assert!(msg_exempt(&Message::LseRestart));
        assert!(msg_exempt(&Message::LseAdopt {
            home: 0,
            index: 0,
            thread: dta_isa::ThreadId(0),
            sc: 0,
            slots: 0,
            needs_pf: false
        }));
        assert!(msg_exempt(&Message::LseAdoptStore {
            home: 0,
            index: 0,
            slot: 0,
            value: 0,
            sync: true
        }));
        assert!(!msg_exempt(&Message::FrameFreed { pe: 0 }));
    }

    fn crash_plan(ppm: u32, restart_after: u64) -> FaultPlan {
        FaultPlan {
            dse_crash_ppm: ppm,
            dse_crash_window: 1000,
            dse_failover_detect: 50,
            dse_restart_after: restart_after,
            ..FaultPlan::seeded(0xC0FFEE)
        }
    }

    #[test]
    fn schedule_is_none_when_off_or_no_roll_fires() {
        assert!(FailoverSchedule::from_plan(&crash_plan(0, 0), 4, 1, 64, 5).is_none());
        // A zero-ppm-adjacent rate that cannot fire for any of 2 nodes:
        // scan seeds for one where neither node rolls.
        let mut plan = crash_plan(1, 0);
        for seed in 0..64u64 {
            plan.seed = seed;
            if !(0..2).any(|n| roll(seed, SITE_DSE_CRASH, n, 1)) {
                assert!(FailoverSchedule::from_plan(&plan, 2, 1, 64, 5).is_none());
                return;
            }
        }
        panic!("no quiet seed in 64 tries at 1 ppm");
    }

    #[test]
    fn certain_crash_schedules_every_node_deterministically() {
        let plan = crash_plan(1_000_000, 300);
        let s = FailoverSchedule::from_plan(&plan, 3, 1, 64, 5).expect("all nodes fire");
        let s2 = FailoverSchedule::from_plan(&plan, 3, 1, 64, 5).expect("replay");
        assert_eq!(s, s2, "schedule is pure in the plan");
        for n in 0..3 {
            let o = s.outage(n).expect("fired");
            assert!(o.crash_at >= 1 && o.crash_at <= 1000);
            assert_eq!(o.detect_at, o.crash_at + 50);
            assert_eq!(o.restart_at, Some(o.crash_at + 300));
        }
        // Crash cycles differ across nodes (per-node hash keys).
        let c: Vec<u64> = (0..3).map(|n| s.outage(n).unwrap().crash_at).collect();
        assert!(c[0] != c[1] || c[1] != c[2]);
    }

    #[test]
    fn detect_clamps_to_message_latency() {
        let mut plan = crash_plan(1_000_000, 0);
        plan.dse_failover_detect = 0;
        let s = FailoverSchedule::from_plan(&plan, 1, 1, 64, 7).unwrap();
        assert_eq!(s.detect_latency(), 7);
    }

    #[test]
    fn liveness_and_arbiter_follow_the_lease() {
        let plan = crash_plan(1_000_000, 0); // no restart
        let s = FailoverSchedule::from_plan(&plan, 2, 1, 64, 5).unwrap();
        let o0 = s.outage(0).unwrap();
        assert!(!s.dead(0, o0.crash_at - 1));
        assert!(s.dead(0, o0.crash_at));
        assert!(!s.detected(0, o0.detect_at - 1));
        assert!(s.detected(0, o0.detect_at));
        // Before detection the home node still arbitrates (bounces).
        assert_eq!(s.arbiter(0, o0.crash_at), Some(0));
        // After detection: lowest-id live peer... but with certain crash
        // both fired; whoever is still alive at that cycle wins, else the
        // soonest restarter, else None.
        let o1 = s.outage(1).unwrap();
        let t = o0.detect_at.max(o1.detect_at);
        assert_eq!(s.arbiter(0, t), None, "no restart, everyone dead");
    }

    #[test]
    fn arbiter_prefers_lowest_live_then_soonest_restart() {
        let plan = crash_plan(1_000_000, 10_000);
        let s = FailoverSchedule::from_plan(&plan, 2, 1, 64, 5).unwrap();
        let o0 = s.outage(0).unwrap();
        let o1 = s.outage(1).unwrap();
        // Pick a cycle where 0 is detected dead but 1 still lives (or
        // vice versa) — the live one must arbitrate for both.
        if o0.detect_at < o1.crash_at {
            assert_eq!(s.arbiter(0, o0.detect_at), Some(1));
            assert_eq!(s.arbiter(1, o0.detect_at), Some(1));
        } else if o1.detect_at < o0.crash_at {
            assert_eq!(s.arbiter(1, o1.detect_at), Some(0));
            assert_eq!(s.arbiter(0, o1.detect_at), Some(0));
        }
        // Once both are detected dead, the soonest restarter holds the
        // mail; after restarts, home arbitrates again.
        let both = o0.detect_at.max(o1.detect_at);
        if s.dead(0, both) && s.dead(1, both) {
            let soonest = if o0.restart_at <= o1.restart_at { 0 } else { 1 };
            assert_eq!(s.arbiter(0, both), Some(soonest));
        }
        let back = o0.restart_at.unwrap().max(o1.restart_at.unwrap());
        assert_eq!(s.arbiter(0, back), Some(0));
        assert_eq!(s.route(1, back), 1);
    }

    fn lse_crash_plan(ppm: u32, restart_after: u64) -> FaultPlan {
        FaultPlan {
            lse_crash_ppm: ppm,
            lse_crash_window: 1000,
            lse_detect: 50,
            lse_restart_after: restart_after,
            ..FaultPlan::seeded(0xC0FFEE)
        }
    }

    #[test]
    fn lse_schedule_is_pure_and_per_pe() {
        let plan = lse_crash_plan(1_000_000, 300);
        let s = FailoverSchedule::from_plan(&plan, 2, 4, 64, 5).expect("all PEs fire");
        let s2 = FailoverSchedule::from_plan(&plan, 2, 4, 64, 5).expect("replay");
        assert_eq!(s, s2, "LSE schedule is pure in the plan");
        for pe in 0..8 {
            let o = s.lse_outage(pe).expect("fired");
            assert!(o.crash_at >= 1 && o.crash_at <= 1000);
            assert_eq!(o.detect_at, o.crash_at + 50);
            assert_eq!(o.restart_at, Some(o.crash_at + 300));
        }
        let c: Vec<u64> = (0..8)
            .map(|pe| s.lse_outage(pe).unwrap().crash_at)
            .collect();
        assert!(c.windows(2).any(|w| w[0] != w[1]), "per-PE hash keys");
        // No DSE outage rolled: DSE liveness queries are all-alive.
        assert!(s.outage(0).is_none());
        assert!(!s.dead(0, 10_000));
    }

    #[test]
    fn lse_liveness_follows_the_lease() {
        let plan = lse_crash_plan(1_000_000, 0); // no restart
        let s = FailoverSchedule::from_plan(&plan, 1, 2, 64, 5).unwrap();
        let o = s.lse_outage(0).unwrap();
        assert!(!s.lse_dead(0, o.crash_at - 1));
        assert!(s.lse_dead(0, o.crash_at));
        assert!(!s.lse_detected(0, o.detect_at - 1));
        assert!(s.lse_detected(0, o.detect_at));
        assert!(s.lse_dead_any());
        assert_eq!(s.lse_detect_latency(), 50);
        // Detection-based DSE exclusion list.
        let t = s
            .lse_outage(0)
            .unwrap()
            .detect_at
            .max(s.lse_outage(1).unwrap().detect_at);
        assert_eq!(s.detected_dead_pes(0, t), vec![0, 1]);
    }

    #[test]
    fn lse_detect_clamps_to_message_latency() {
        let mut plan = lse_crash_plan(1_000_000, 0);
        plan.lse_detect = 0;
        let s = FailoverSchedule::from_plan(&plan, 1, 1, 64, 7).unwrap();
        assert_eq!(s.lse_detect_latency(), 7);
    }

    #[test]
    fn evacuation_peer_is_capacity_aware_and_load_balanced() {
        // Certain crash on a 1-node × 4-PE machine: crashes elect peers
        // in (crash_at, pe) order, each charging one unit of planned
        // load, so no peer is elected twice while an equally-free one
        // remains — and every election is same-node.
        let plan = lse_crash_plan(1_000_000, 500_000);
        let s = FailoverSchedule::from_plan(&plan, 2, 4, 64, 5).unwrap();
        let mut order: Vec<(u64, u16)> = (0..8)
            .map(|pe| (s.lse_outage(pe).unwrap().crash_at, pe))
            .collect();
        order.sort_unstable();
        let mut load = [0u32; 8];
        for (_, pe) in order {
            let o = s.lse_outage(pe).unwrap();
            let node = pe / 4;
            // Recompute the expected winner exactly as the schedule does.
            let expect = (node * 4..(node + 1) * 4)
                .filter(|&q| q != pe && !s.lse_dead(q, o.detect_at))
                .map(|q| (64u32.saturating_sub(load[q as usize]), Reverse(q)))
                .max()
                .map(|(_, Reverse(q))| q);
            assert_eq!(o.evac_to, expect, "pe {pe}");
            if let Some(q) = o.evac_to {
                assert_eq!(q / 4, node, "evacuation never leaves the node");
                assert_ne!(q, pe);
                load[q as usize] += 1;
            }
        }
    }

    #[test]
    fn single_pe_node_has_no_evacuation_peer() {
        let plan = lse_crash_plan(1_000_000, 0);
        let s = FailoverSchedule::from_plan(&plan, 2, 1, 64, 5).unwrap();
        assert_eq!(s.lse_outage(0).unwrap().evac_to, None);
        assert_eq!(s.lse_outage(1).unwrap().evac_to, None);
    }

    #[test]
    fn capacity_aware_arbiter_skips_capacity_poor_nodes() {
        // Node 0's DSE crashes; node 1 has all LSEs dead while node 2 is
        // fully alive: the capacity-aware election must pick node 2 even
        // though node 1 has the lower id, and the historical lowest-id
        // election must pick node 1 — the A/B the benchmark reports.
        let mut s = FailoverSchedule::from_plan(&crash_plan(1_000_000, 0), 3, 2, 64, 5).unwrap();
        // Force a shape where only node 0's DSE is down.
        s.outages[1] = None;
        s.outages[2] = None;
        let t = s.outage(0).unwrap().detect_at;
        for pe in 2..4 {
            s.lse_outages[pe] = Some(LseOutage {
                crash_at: 1,
                detect_at: 1 + 50,
                restart_at: None,
                evac_to: None,
            });
        }
        assert_eq!(s.planned_node_capacity(1, t), 0);
        assert_eq!(s.planned_node_capacity(2, t), 128);
        assert_eq!(s.arbiter(0, t), Some(2), "capacity-aware");
        assert_eq!(s.lowest_id_arbiter(0, t), Some(1), "historical");
        // With equal capacities the two elections agree (PR 3 behaviour).
        for pe in 2..4 {
            s.lse_outages[pe] = None;
        }
        assert_eq!(s.arbiter(0, t), s.lowest_id_arbiter(0, t));
    }
}
