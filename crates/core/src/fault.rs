//! Message-level fault injection for the core engines.
//!
//! DMA faults are resolved inside the MFC (see `dta_mem::fault`); this
//! module handles the *protocol* faults — dropping, duplicating and
//! delaying LSE↔DSE messages — plus the bookkeeping both engines share.
//!
//! Every decision is a pure roll on the message's deterministic source
//! stamp ([`MsgSeq`]), so the sequential and epoch-sharded engines
//! transform exactly the same messages in exactly the same way. All
//! transforms only ever *increase* delivery time, which keeps the sharded
//! engine's epoch horizon sound (a message can never be moved into an
//! epoch that already executed).
//!
//! Recovery model:
//!
//! * **drop** — the message is lost on the wire; the sender's idempotent
//!   re-send delivers it `msg_resend_timeout` cycles later with a fresh
//!   stamp (the original stamp tagged [`RESEND_STAMP_BIT`], preserving
//!   stamp uniqueness and the deterministic `(time, stamp)` tie-break).
//! * **duplicate** — a second copy is delivered carrying
//!   [`DUP_STAMP_BIT`]; receivers discard marked copies at event pop, so
//!   duplicates cost network determinism nothing and handlers stay
//!   single-delivery.
//! * **delay** — delivery slips by `msg_delay_jitter` cycles.
//!
//! `FallocRetry` (the denial-recovery timer) and `ReadDone` (carries a
//! synthetic stamp already) are exempt: faulting the recovery path itself
//! would turn bounded recovery into unbounded recursion.

use crate::config::FaultPlan;
use dta_mem::fault::{roll, SITE_MSG_DELAY, SITE_MSG_DROP, SITE_MSG_DUP};
use dta_sched::{Message, MsgSeq};

/// Stamp-sequence bit marking a duplicated copy (discarded at delivery).
pub const DUP_STAMP_BIT: u64 = 1 << 62;
/// Stamp-sequence bit marking the re-send of a dropped message.
pub const RESEND_STAMP_BIT: u64 = 1 << 61;

/// Shared message-fault counters (per engine shard; merged at collect).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Messages dropped on the wire (each recovered by one re-send).
    pub msgs_dropped: u64,
    /// Duplicate copies injected (each discarded at delivery).
    pub msgs_duplicated: u64,
    /// Messages whose delivery slipped by the configured jitter.
    pub msgs_delayed: u64,
}

impl FaultCounters {
    /// Adds another counter set into this one (shard merge).
    pub fn absorb(&mut self, other: FaultCounters) {
        self.msgs_dropped += other.msgs_dropped;
        self.msgs_duplicated += other.msgs_duplicated;
        self.msgs_delayed += other.msgs_delayed;
    }

    /// Any fault recorded at all?
    pub fn any(&self) -> bool {
        self.msgs_dropped + self.msgs_duplicated + self.msgs_delayed > 0
    }
}

/// Messages the injector must never touch: the recovery timer itself and
/// the synthetic-stamped scalar-read completion.
pub fn msg_exempt(msg: &Message) -> bool {
    matches!(msg, Message::FallocRetry | Message::ReadDone { .. })
}

/// Applies the message-fault rolls of `plan` to a delivery scheduled at
/// `(time, stamp)`. Returns the (possibly transformed) primary delivery
/// and an optional duplicate copy. The caller must have checked
/// [`msg_exempt`] first.
pub fn transform(
    plan: &FaultPlan,
    time: u64,
    stamp: MsgSeq,
    counts: &mut FaultCounters,
) -> ((u64, MsgSeq), Option<(u64, MsgSeq)>) {
    let key = ((stamp.src_rank as u64) << 40) ^ stamp.seq;
    if roll(plan.seed, SITE_MSG_DROP, key, plan.msg_drop_ppm) {
        // Lost on the wire; the idempotent re-send is the only delivery.
        counts.msgs_dropped += 1;
        let resent = MsgSeq {
            src_rank: stamp.src_rank,
            seq: stamp.seq | RESEND_STAMP_BIT,
        };
        return ((time + plan.msg_resend_timeout, resent), None);
    }
    let mut at = time;
    if roll(plan.seed, SITE_MSG_DELAY, key, plan.msg_delay_ppm) {
        counts.msgs_delayed += 1;
        at += plan.msg_delay_jitter;
    }
    let dup = if roll(plan.seed, SITE_MSG_DUP, key, plan.msg_dup_ppm) {
        counts.msgs_duplicated += 1;
        Some((
            at,
            MsgSeq {
                src_rank: stamp.src_rank,
                seq: stamp.seq | DUP_STAMP_BIT,
            },
        ))
    } else {
        None
    };
    ((at, stamp), dup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(drop: u32, dup: u32, delay: u32) -> FaultPlan {
        FaultPlan {
            msg_drop_ppm: drop,
            msg_dup_ppm: dup,
            msg_delay_ppm: delay,
            ..FaultPlan::seeded(0x5EED)
        }
    }

    fn stamp(rank: u32, seq: u64) -> MsgSeq {
        MsgSeq {
            src_rank: rank,
            seq,
        }
    }

    #[test]
    fn benign_plan_is_identity() {
        let p = plan(0, 0, 0);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(3, 7), &mut c);
        assert_eq!((t, s), (100, stamp(3, 7)));
        assert!(dup.is_none());
        assert!(!c.any());
    }

    #[test]
    fn drop_resends_later_with_marked_stamp() {
        let p = plan(1_000_000, 1_000_000, 1_000_000);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(1, 5), &mut c);
        assert_eq!(t, 100 + p.msg_resend_timeout);
        assert_eq!(s.seq, 5 | RESEND_STAMP_BIT);
        assert_eq!(s.src_rank, 1);
        // Drop excludes the other faults.
        assert!(dup.is_none());
        assert_eq!(
            (c.msgs_dropped, c.msgs_duplicated, c.msgs_delayed),
            (1, 0, 0)
        );
    }

    #[test]
    fn dup_copies_the_delayed_time() {
        let p = plan(0, 1_000_000, 1_000_000);
        let mut c = FaultCounters::default();
        let ((t, s), dup) = transform(&p, 100, stamp(2, 9), &mut c);
        assert_eq!(t, 100 + p.msg_delay_jitter);
        assert_eq!(s, stamp(2, 9), "primary stamp is unchanged");
        let (dt, ds) = dup.expect("dup fires at 100%");
        assert_eq!(dt, t);
        assert_eq!(ds.seq, 9 | DUP_STAMP_BIT);
        assert_eq!(
            (c.msgs_dropped, c.msgs_duplicated, c.msgs_delayed),
            (0, 1, 1)
        );
    }

    #[test]
    fn transforms_never_deliver_earlier() {
        let p = plan(400_000, 400_000, 400_000);
        let mut c = FaultCounters::default();
        for seq in 0..2_000u64 {
            let ((t, _), dup) = transform(&p, 50, stamp(0, seq), &mut c);
            assert!(t >= 50);
            if let Some((dt, _)) = dup {
                assert!(dt >= 50);
            }
        }
        assert!(c.any(), "40% rates must fire over 2000 rolls");
    }

    #[test]
    fn exemptions_cover_recovery_messages() {
        assert!(msg_exempt(&Message::FallocRetry));
        assert!(msg_exempt(&Message::ReadDone {
            value: 0,
            ready_at: 0
        }));
        assert!(!msg_exempt(&Message::FrameFreed { pe: 0 }));
    }
}
