//! Execution statistics.
//!
//! Everything the paper's evaluation section reports is derived from the
//! counters here:
//!
//! * **Figure 5** — the per-SPU execution-time breakdown into Working /
//!   Idle / Memory stalls / LS stalls / LSE stalls / Prefetching
//!   ([`StallCat`], [`Breakdown`]);
//! * **Table 5** — dynamic instruction counts, total and per memory class
//!   ([`PeStats::loads`] etc.);
//! * **Figure 9** — pipeline usage ([`Breakdown::pipeline_usage`]);
//! * **Figures 6-8** — execution time and scalability
//!   ([`RunStats::cycles`]).

use dta_isa::IClass;
use dta_json::{Json, ToJson};
pub use dta_obs::{FineCat, NUM_FINE};
use std::fmt;

/// Cycle-breakdown categories (the paper's Fig. 5 legend).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum StallCat {
    /// "when the SPU works without stalls".
    Working = 0,
    /// "when the SPU has no ready threads to execute".
    Idle = 1,
    /// "when SPU waits for a response from main memory (including the
    /// time that a request to memory spends on the network)".
    MemStall = 2,
    /// "when SPU is waiting for a response from the Local Store".
    LsStall = 3,
    /// "when the SPU waits for a response from the LSE".
    LseStall = 4,
    /// "prefetching overhead ... SPU must spend some time in order to
    /// program the DMA unit".
    Prefetch = 5,
}

impl StallCat {
    /// All categories, in display order.
    pub const ALL: [StallCat; 6] = [
        StallCat::Working,
        StallCat::Idle,
        StallCat::MemStall,
        StallCat::LsStall,
        StallCat::LseStall,
        StallCat::Prefetch,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StallCat::Working => "Working",
            StallCat::Idle => "Idle",
            StallCat::MemStall => "Memory stalls",
            StallCat::LsStall => "LS stalls",
            StallCat::LseStall => "LSE stalls",
            StallCat::Prefetch => "Prefetching",
        }
    }
}

impl fmt::Display for StallCat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

const NUM_CATS: usize = 6;
const NUM_CLASSES: usize = 7;

fn class_index(c: IClass) -> usize {
    match c {
        IClass::Compute => 0,
        IClass::Branch => 1,
        IClass::Frame => 2,
        IClass::Mem => 3,
        IClass::Ls => 4,
        IClass::Dma => 5,
        IClass::Sched => 6,
    }
}

/// Per-PE counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeStats {
    /// Cycle counts per [`StallCat`] (indexed by the enum discriminant).
    pub cycles: [u64; NUM_CATS],
    /// Cycle counts per exclusive [`FineCat`] attribution category.
    /// Charged at the same sites as `cycles`, so both arrays sum to the
    /// same total (the conservation invariant) and stay bit-identical
    /// across engines.
    pub fine: [u64; NUM_FINE],
    /// Cycles charged [`FineCat::Compute`] (or `Degraded`) while this
    /// PE had DMA commands in flight — the attribution-side view of the
    /// paper's non-blocking overlap. A strict subset of the
    /// `MetricsReport::overlap_cycles` busy-span accounting, which also
    /// counts intra-span stall cycles.
    pub attr_overlap_cycles: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Cycles in which two instructions issued.
    pub dual_cycles: u64,
    /// Cycles in which at least one instruction issued.
    pub issue_cycles: u64,
    /// Instructions per [`dta_isa::IClass`].
    pub class_counts: [u64; NUM_CLASSES],
    /// Frame-memory LOADs (Table 5).
    pub loads: u64,
    /// Frame-memory STOREs (Table 5).
    pub stores: u64,
    /// Main-memory READs (Table 5).
    pub reads: u64,
    /// Main-memory WRITEs (Table 5).
    pub writes: u64,
    /// Thread instances dispatched onto this pipeline.
    pub threads_dispatched: u64,
    /// Cycles lost retrying a full MFC queue.
    pub dma_queue_retries: u64,
    /// Cycles the LSE's SP pipeline spent executing PF blocks (only with
    /// the `sp_pf_overlap` extension; these run in parallel with the main
    /// pipeline and are not part of the breakdown buckets).
    pub sp_pf_cycles: u64,
}

impl PeStats {
    /// Adds `n` cycles to a coarse category and its exclusive fine
    /// attribution twin. Taking both at once makes the conservation
    /// invariant structural: no charge site can update one array
    /// without the other.
    #[inline]
    pub fn add_cycles(&mut self, cat: StallCat, fine: FineCat, n: u64) {
        self.cycles[cat as usize] += n;
        self.fine[fine as usize] += n;
    }

    /// Records an issued instruction of class `c`.
    #[inline]
    pub fn record_issue(&mut self, c: IClass) {
        self.issued += 1;
        self.class_counts[class_index(c)] += 1;
    }

    /// Total attributed cycles.
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Cycles in a category.
    #[inline]
    pub fn cat(&self, cat: StallCat) -> u64 {
        self.cycles[cat as usize]
    }

    /// Cycles in a fine attribution category.
    #[inline]
    pub fn fine_cat(&self, f: FineCat) -> u64 {
        self.fine[f as usize]
    }

    /// Total fine-attributed cycles; equals [`Self::total_cycles`] by
    /// the conservation invariant.
    pub fn total_fine_cycles(&self) -> u64 {
        self.fine.iter().sum()
    }

    /// Instructions of a class.
    #[inline]
    pub fn class(&self, c: IClass) -> u64 {
        self.class_counts[class_index(c)]
    }

    /// Merges another PE's counters into this one.
    pub fn merge(&mut self, other: &PeStats) {
        for i in 0..NUM_CATS {
            self.cycles[i] += other.cycles[i];
        }
        for i in 0..NUM_FINE {
            self.fine[i] += other.fine[i];
        }
        self.attr_overlap_cycles += other.attr_overlap_cycles;
        for i in 0..NUM_CLASSES {
            self.class_counts[i] += other.class_counts[i];
        }
        self.issued += other.issued;
        self.dual_cycles += other.dual_cycles;
        self.issue_cycles += other.issue_cycles;
        self.loads += other.loads;
        self.stores += other.stores;
        self.reads += other.reads;
        self.writes += other.writes;
        self.threads_dispatched += other.threads_dispatched;
        self.dma_queue_retries += other.dma_queue_retries;
        self.sp_pf_cycles += other.sp_pf_cycles;
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// counters (all fields are monotone, so plain subtraction is exact).
    /// Together with [`Self::merge`] this is the record/replay seam of
    /// the memoization layer: a segment's stat delta is captured once and
    /// re-merged on every replay. Destructured without `..` so a new
    /// counter cannot be silently dropped from recorded skeletons.
    pub fn delta_since(&self, earlier: &PeStats) -> PeStats {
        let PeStats {
            mut cycles,
            mut fine,
            mut attr_overlap_cycles,
            mut issued,
            mut dual_cycles,
            mut issue_cycles,
            mut class_counts,
            mut loads,
            mut stores,
            mut reads,
            mut writes,
            mut threads_dispatched,
            mut dma_queue_retries,
            mut sp_pf_cycles,
        } = *self;
        for (c, e) in cycles.iter_mut().zip(earlier.cycles.iter()) {
            *c -= e;
        }
        for (f, e) in fine.iter_mut().zip(earlier.fine.iter()) {
            *f -= e;
        }
        for (c, e) in class_counts.iter_mut().zip(earlier.class_counts.iter()) {
            *c -= e;
        }
        attr_overlap_cycles -= earlier.attr_overlap_cycles;
        issued -= earlier.issued;
        dual_cycles -= earlier.dual_cycles;
        issue_cycles -= earlier.issue_cycles;
        loads -= earlier.loads;
        stores -= earlier.stores;
        reads -= earlier.reads;
        writes -= earlier.writes;
        threads_dispatched -= earlier.threads_dispatched;
        dma_queue_retries -= earlier.dma_queue_retries;
        sp_pf_cycles -= earlier.sp_pf_cycles;
        PeStats {
            cycles,
            fine,
            attr_overlap_cycles,
            issued,
            dual_cycles,
            issue_cycles,
            class_counts,
            loads,
            stores,
            reads,
            writes,
            threads_dispatched,
            dma_queue_retries,
            sp_pf_cycles,
        }
    }
}

/// A normalised execution-time breakdown (Fig. 5 bar).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Breakdown {
    /// Fraction of time per category, summing to ~1.
    pub fractions: [f64; NUM_CATS],
    /// Fraction of cycles with at least one instruction issued (Fig. 9's
    /// "pipeline usage").
    pub pipeline_usage: f64,
    /// Average instructions per cycle.
    pub ipc: f64,
}

impl Breakdown {
    /// Computes the breakdown of (aggregated) PE counters.
    pub fn from_stats(s: &PeStats) -> Self {
        let total = s.total_cycles();
        let mut fractions = [0.0; NUM_CATS];
        if total > 0 {
            for (f, &c) in fractions.iter_mut().zip(s.cycles.iter()) {
                *f = c as f64 / total as f64;
            }
        }
        Breakdown {
            fractions,
            pipeline_usage: if total > 0 {
                s.issue_cycles as f64 / total as f64
            } else {
                0.0
            },
            ipc: if total > 0 {
                s.issued as f64 / total as f64
            } else {
                0.0
            },
        }
    }

    /// Fraction for one category.
    #[inline]
    pub fn frac(&self, cat: StallCat) -> f64 {
        self.fractions[cat as usize]
    }

    /// Percentage for one category.
    #[inline]
    pub fn pct(&self, cat: StallCat) -> f64 {
        self.frac(cat) * 100.0
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, cat) in StallCat::ALL.iter().enumerate() {
            if i > 0 {
                write!(f, "  ")?;
            }
            write!(f, "{}: {:5.1}%", cat.name(), self.fractions[i] * 100.0)?;
        }
        Ok(())
    }
}

/// Host-engine execution report: how the engine advanced simulated time.
///
/// Deliberately *not* part of [`RunStats`]: these counters describe the
/// host-side schedule (which differs across [`SchedMode`] and
/// [`Parallelism`] by design), while `RunStats` is compared bit-for-bit
/// across engines by the determinism suites. Read it from
/// [`System::engine_report`] after a run.
///
/// [`SchedMode`]: crate::config::SchedMode
/// [`Parallelism`]: crate::config::Parallelism
/// [`System::engine_report`]: crate::system::System::engine_report
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineReport {
    /// Simulated cycles the engine actually visited (summed across shards
    /// under the threaded engine).
    pub visited_cycles: u64,
    /// `Pe::tick` calls actually made.
    pub pe_ticks: u64,
    /// Ticks a dense engine would have made at the visited cycles but
    /// fast-forward skipped (`Σ visited_cycles × shard PEs − pe_ticks`;
    /// zero in dense mode).
    pub skipped_ticks: u64,
    /// Epoch barriers executed by the sharded engine (zero sequential).
    pub epochs: u64,
    /// Fixed-width epochs that adaptive widening merged away — how many
    /// extra barrier rendezvous a fixed-width schedule would have run
    /// (zero when dense or sequential).
    pub merged_epochs: u64,
    /// Wall-clock µs each shard spent ticking its PEs (one entry per
    /// shard; a single entry covering the whole loop for the sequential
    /// engine). Host-time: varies run to run by design.
    pub shard_wall_us: Vec<u64>,
    /// Wall-clock µs the coordinator spent resolving epoch barriers
    /// (ticket merge + rendezvous); zero for the sequential engine.
    pub merge_wall_us: u64,
    /// Occupancy of the fast-forward wake heap, sampled once per
    /// visited cycle per shard (empty in dense mode). Quantifies the
    /// pending-wakeup population the event-driven scheduler carries.
    pub wake_heap_occupancy: dta_obs::Histogram,
    /// Host-side message deliveries to PE-owned units (LSE + pipeline).
    pub pe_deliveries: u64,
    /// Host-side message deliveries to DSE arbiters — the per-unit
    /// "tick" count of the purely event-driven frame arbiters.
    pub dse_deliveries: u64,
    /// Host-side transfer requests resolved by the shared memory system
    /// (bus + memory ports), including DMA, scalar and PF traffic.
    pub mem_requests: u64,
    /// Memoized segments fired as timing replays (summed across PEs).
    pub memo_hits: u64,
    /// Memoizable segments executed live because their key was not yet
    /// cached (each starts a recording).
    pub memo_misses: u64,
    /// Simulated cycles covered by fired replays — span lengths the host
    /// did not re-interpret instruction by instruction.
    pub memo_replayed_cycles: u64,
    /// Memoization attempts abandoned by a safety gate: a contention
    /// window (DMA completions landing inside the would-be span), the
    /// pre-execution step cap, a full cache, or the cycle-limit guard.
    pub memo_aborts: u64,
}

impl ToJson for EngineReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("visited_cycles", self.visited_cycles.to_json()),
            ("pe_ticks", self.pe_ticks.to_json()),
            ("skipped_ticks", self.skipped_ticks.to_json()),
            ("epochs", self.epochs.to_json()),
            ("merged_epochs", self.merged_epochs.to_json()),
            ("shard_wall_us", self.shard_wall_us.to_json()),
            ("merge_wall_us", self.merge_wall_us.to_json()),
            (
                "wake_heap_occupancy",
                dta_obs::codec::histogram_to_json(&self.wake_heap_occupancy),
            ),
            ("pe_deliveries", self.pe_deliveries.to_json()),
            ("dse_deliveries", self.dse_deliveries.to_json()),
            ("mem_requests", self.mem_requests.to_json()),
            ("memo_hits", self.memo_hits.to_json()),
            ("memo_misses", self.memo_misses.to_json()),
            ("memo_replayed_cycles", self.memo_replayed_cycles.to_json()),
            ("memo_aborts", self.memo_aborts.to_json()),
        ])
    }
}

/// Whole-run results returned by the simulator.
///
/// `PartialEq` exists so determinism tests can assert bit-identical runs
/// across repeats and across host-parallelism modes.
#[derive(Clone, Debug, PartialEq)]
pub struct RunStats {
    /// Total execution time in cycles (until all threads and traffic
    /// drained).
    pub cycles: u64,
    /// Per-PE counters.
    pub per_pe: Vec<PeStats>,
    /// Counters summed over all PEs.
    pub aggregate: PeStats,
    /// Total dynamic instructions (all PEs).
    pub instructions: u64,
    /// Thread instances created.
    pub instances: u64,
    /// Bus utilisation over the run.
    pub bus_utilisation: f64,
    /// Memory-port utilisation over the run.
    pub mem_utilisation: f64,
    /// Payload bytes moved to/from main memory.
    pub mem_payload_bytes: u64,
    /// DMA commands issued.
    pub dma_commands: u64,
    /// Peak pending FALLOCs at any DSE.
    pub max_dse_pending: usize,
    /// Cache hits across all PEs (0 when no cache is configured).
    pub cache_hits: u64,
    /// Cache misses across all PEs.
    pub cache_misses: u64,
    /// Fault injection & recovery — all zero on a fault-free run.
    ///
    /// Total DMA engine attempts (one per command plus one per retry).
    pub dma_attempts: u64,
    /// Retried DMA attempts across all MFCs.
    pub dma_retries: u64,
    /// DMA commands that exhausted their retry budget (completed via the
    /// fail-safe slow path; their PE degraded).
    pub dma_exhausted: u64,
    /// DMA commands permanently stalled by injection.
    pub dma_stalled: u64,
    /// Total exponential-backoff cycles spent by DMA retries.
    pub dma_backoff_cycles: u64,
    /// Protocol messages dropped (each recovered by an idempotent
    /// re-send).
    pub msgs_dropped: u64,
    /// Duplicate protocol messages injected (each discarded at delivery).
    pub msgs_duplicated: u64,
    /// Protocol messages delivered late by injected jitter.
    pub msgs_delayed: u64,
    /// FALLOC arbitrations denied by injection (each recovered by the
    /// retry timer).
    pub falloc_denials: u64,
    /// PEs that were degraded (retry budget exhausted) at run end, sorted
    /// by PE index.
    pub degraded_pes: Vec<u16>,
    /// Instances that ran a PF-skipping fallback thread body.
    pub fallback_instances: u64,
    /// Instances parked off a pipeline by the spin watchdog.
    pub watchdog_parks: u64,
    /// DSE failover — all zero without a `dse_crash` schedule.
    ///
    /// Planned DSE crashes that fired.
    pub dse_crashes: u64,
    /// Arbitration hand-offs to a successor DSE.
    pub failovers: u64,
    /// FALLOC requests re-homed away from a dead DSE (orphan replays plus
    /// in-flight bounces).
    pub rehomed_fallocs: u64,
    /// LSE re-registration messages absorbed by arbiters.
    pub resync_msgs: u64,
    /// LSE crash/recovery — all zero without an `lse_crash` schedule.
    ///
    /// Planned LSE crashes that fired.
    pub lse_crashes: u64,
    /// Pre-start frames evacuated off crashed LSEs.
    pub evacuated_frames: u64,
    /// Evacuated instances re-admitted on a peer LSE.
    pub readmitted_instances: u64,
    /// Started instances killed by LSE crashes (untainted ones are
    /// replayed via a fresh FALLOC; tainted ones are lost work).
    pub killed_instances: u64,
}

impl RunStats {
    /// The average per-SPU breakdown (paper Fig. 5 is the average over the
    /// eight SPUs).
    pub fn breakdown(&self) -> Breakdown {
        Breakdown::from_stats(&self.aggregate)
    }

    /// Table 5 row: (total, LOAD, STORE, READ, WRITE).
    pub fn table5_row(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.instructions,
            self.aggregate.loads,
            self.aggregate.stores,
            self.aggregate.reads,
            self.aggregate.writes,
        )
    }
}

impl ToJson for PeStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", self.cycles.to_json()),
            ("fine", self.fine.to_json()),
            ("attr_overlap_cycles", self.attr_overlap_cycles.to_json()),
            ("issued", self.issued.to_json()),
            ("dual_cycles", self.dual_cycles.to_json()),
            ("issue_cycles", self.issue_cycles.to_json()),
            ("class_counts", self.class_counts.to_json()),
            ("loads", self.loads.to_json()),
            ("stores", self.stores.to_json()),
            ("reads", self.reads.to_json()),
            ("writes", self.writes.to_json()),
            ("threads_dispatched", self.threads_dispatched.to_json()),
            ("dma_queue_retries", self.dma_queue_retries.to_json()),
            ("sp_pf_cycles", self.sp_pf_cycles.to_json()),
        ])
    }
}

impl ToJson for Breakdown {
    fn to_json(&self) -> Json {
        Json::obj([
            ("fractions", self.fractions.to_json()),
            ("pipeline_usage", self.pipeline_usage.to_json()),
            ("ipc", self.ipc.to_json()),
        ])
    }
}

impl ToJson for RunStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", self.cycles.to_json()),
            ("per_pe", self.per_pe.to_json()),
            ("aggregate", self.aggregate.to_json()),
            ("instructions", self.instructions.to_json()),
            ("instances", self.instances.to_json()),
            ("bus_utilisation", self.bus_utilisation.to_json()),
            ("mem_utilisation", self.mem_utilisation.to_json()),
            ("mem_payload_bytes", self.mem_payload_bytes.to_json()),
            ("dma_commands", self.dma_commands.to_json()),
            ("max_dse_pending", self.max_dse_pending.to_json()),
            ("cache_hits", self.cache_hits.to_json()),
            ("cache_misses", self.cache_misses.to_json()),
            ("dma_attempts", self.dma_attempts.to_json()),
            ("dma_retries", self.dma_retries.to_json()),
            ("dma_exhausted", self.dma_exhausted.to_json()),
            ("dma_stalled", self.dma_stalled.to_json()),
            ("dma_backoff_cycles", self.dma_backoff_cycles.to_json()),
            ("msgs_dropped", self.msgs_dropped.to_json()),
            ("msgs_duplicated", self.msgs_duplicated.to_json()),
            ("msgs_delayed", self.msgs_delayed.to_json()),
            ("falloc_denials", self.falloc_denials.to_json()),
            ("degraded_pes", self.degraded_pes.to_json()),
            ("fallback_instances", self.fallback_instances.to_json()),
            ("watchdog_parks", self.watchdog_parks.to_json()),
            ("dse_crashes", self.dse_crashes.to_json()),
            ("failovers", self.failovers.to_json()),
            ("rehomed_fallocs", self.rehomed_fallocs.to_json()),
            ("resync_msgs", self.resync_msgs.to_json()),
            ("lse_crashes", self.lse_crashes.to_json()),
            ("evacuated_frames", self.evacuated_frames.to_json()),
            ("readmitted_instances", self.readmitted_instances.to_json()),
            ("killed_instances", self.killed_instances.to_json()),
        ])
    }
}

// --- JSON decoders -------------------------------------------------------
//
// The `ToJson` impls above define the canonical encoding used by cached
// `JobResult`s (see `crate::job`); these decoders are their inverses so a
// result can be reloaded from the on-disk store bit-for-bit. All counters
// here are cycle/instruction counts far below 2^53, so plain JSON numbers
// round-trip exactly.

fn u64_field(v: &Json, key: &str) -> Option<u64> {
    v.get(key).and_then(Json::as_u64)
}

fn f64_field(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}

fn u64_array<const N: usize>(v: &Json, key: &str) -> Option<[u64; N]> {
    let arr = v.get(key)?.as_arr()?;
    if arr.len() != N {
        return None;
    }
    let mut out = [0u64; N];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = item.as_u64()?;
    }
    Some(out)
}

impl PeStats {
    /// Decodes the [`ToJson`] encoding.
    pub fn from_json(v: &Json) -> Option<PeStats> {
        Some(PeStats {
            cycles: u64_array::<NUM_CATS>(v, "cycles")?,
            fine: u64_array::<NUM_FINE>(v, "fine")?,
            attr_overlap_cycles: u64_field(v, "attr_overlap_cycles")?,
            issued: u64_field(v, "issued")?,
            dual_cycles: u64_field(v, "dual_cycles")?,
            issue_cycles: u64_field(v, "issue_cycles")?,
            class_counts: u64_array::<NUM_CLASSES>(v, "class_counts")?,
            loads: u64_field(v, "loads")?,
            stores: u64_field(v, "stores")?,
            reads: u64_field(v, "reads")?,
            writes: u64_field(v, "writes")?,
            threads_dispatched: u64_field(v, "threads_dispatched")?,
            dma_queue_retries: u64_field(v, "dma_queue_retries")?,
            sp_pf_cycles: u64_field(v, "sp_pf_cycles")?,
        })
    }
}

impl EngineReport {
    /// Decodes the [`ToJson`] encoding.
    pub fn from_json(v: &Json) -> Option<EngineReport> {
        Some(EngineReport {
            visited_cycles: u64_field(v, "visited_cycles")?,
            pe_ticks: u64_field(v, "pe_ticks")?,
            skipped_ticks: u64_field(v, "skipped_ticks")?,
            epochs: u64_field(v, "epochs")?,
            merged_epochs: u64_field(v, "merged_epochs")?,
            shard_wall_us: v
                .get("shard_wall_us")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()?,
            merge_wall_us: u64_field(v, "merge_wall_us")?,
            wake_heap_occupancy: dta_obs::codec::histogram_from_json(
                v.get("wake_heap_occupancy")?,
            )?,
            pe_deliveries: u64_field(v, "pe_deliveries")?,
            dse_deliveries: u64_field(v, "dse_deliveries")?,
            mem_requests: u64_field(v, "mem_requests")?,
            memo_hits: u64_field(v, "memo_hits")?,
            memo_misses: u64_field(v, "memo_misses")?,
            memo_replayed_cycles: u64_field(v, "memo_replayed_cycles")?,
            memo_aborts: u64_field(v, "memo_aborts")?,
        })
    }
}

impl RunStats {
    /// Decodes the [`ToJson`] encoding.
    pub fn from_json(v: &Json) -> Option<RunStats> {
        Some(RunStats {
            cycles: u64_field(v, "cycles")?,
            per_pe: v
                .get("per_pe")?
                .as_arr()?
                .iter()
                .map(PeStats::from_json)
                .collect::<Option<Vec<_>>>()?,
            aggregate: PeStats::from_json(v.get("aggregate")?)?,
            instructions: u64_field(v, "instructions")?,
            instances: u64_field(v, "instances")?,
            bus_utilisation: f64_field(v, "bus_utilisation")?,
            mem_utilisation: f64_field(v, "mem_utilisation")?,
            mem_payload_bytes: u64_field(v, "mem_payload_bytes")?,
            dma_commands: u64_field(v, "dma_commands")?,
            max_dse_pending: u64_field(v, "max_dse_pending")? as usize,
            cache_hits: u64_field(v, "cache_hits")?,
            cache_misses: u64_field(v, "cache_misses")?,
            dma_attempts: u64_field(v, "dma_attempts")?,
            dma_retries: u64_field(v, "dma_retries")?,
            dma_exhausted: u64_field(v, "dma_exhausted")?,
            dma_stalled: u64_field(v, "dma_stalled")?,
            dma_backoff_cycles: u64_field(v, "dma_backoff_cycles")?,
            msgs_dropped: u64_field(v, "msgs_dropped")?,
            msgs_duplicated: u64_field(v, "msgs_duplicated")?,
            msgs_delayed: u64_field(v, "msgs_delayed")?,
            falloc_denials: u64_field(v, "falloc_denials")?,
            degraded_pes: v
                .get("degraded_pes")?
                .as_arr()?
                .iter()
                .map(|p| p.as_u64().map(|p| p as u16))
                .collect::<Option<Vec<_>>>()?,
            fallback_instances: u64_field(v, "fallback_instances")?,
            watchdog_parks: u64_field(v, "watchdog_parks")?,
            dse_crashes: u64_field(v, "dse_crashes")?,
            failovers: u64_field(v, "failovers")?,
            rehomed_fallocs: u64_field(v, "rehomed_fallocs")?,
            resync_msgs: u64_field(v, "resync_msgs")?,
            lse_crashes: u64_field(v, "lse_crashes")?,
            evacuated_frames: u64_field(v, "evacuated_frames")?,
            readmitted_instances: u64_field(v, "readmitted_instances")?,
            killed_instances: u64_field(v, "killed_instances")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let mut s = PeStats::default();
        s.add_cycles(StallCat::Working, FineCat::Compute, 30);
        s.add_cycles(StallCat::MemStall, FineCat::ReadStall, 60);
        s.add_cycles(StallCat::Idle, FineCat::Idle, 10);
        assert_eq!(s.total_fine_cycles(), s.total_cycles());
        let b = Breakdown::from_stats(&s);
        let sum: f64 = b.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!((b.frac(StallCat::MemStall) - 0.6).abs() < 1e-9);
        assert!((b.pct(StallCat::Working) - 30.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_give_zero_breakdown() {
        let b = Breakdown::from_stats(&PeStats::default());
        assert_eq!(b.pipeline_usage, 0.0);
        assert_eq!(b.ipc, 0.0);
        assert!(b.fractions.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn record_issue_buckets_by_class() {
        let mut s = PeStats::default();
        s.record_issue(IClass::Compute);
        s.record_issue(IClass::Compute);
        s.record_issue(IClass::Mem);
        assert_eq!(s.issued, 3);
        assert_eq!(s.class(IClass::Compute), 2);
        assert_eq!(s.class(IClass::Mem), 1);
        assert_eq!(s.class(IClass::Dma), 0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = PeStats::default();
        a.add_cycles(StallCat::Working, FineCat::Compute, 5);
        a.loads = 2;
        a.issued = 7;
        let mut b = PeStats::default();
        b.add_cycles(StallCat::Working, FineCat::Degraded, 3);
        b.attr_overlap_cycles = 2;
        b.loads = 1;
        b.issued = 2;
        a.merge(&b);
        assert_eq!(a.cat(StallCat::Working), 8);
        assert_eq!(a.fine_cat(FineCat::Compute), 5);
        assert_eq!(a.fine_cat(FineCat::Degraded), 3);
        assert_eq!(a.attr_overlap_cycles, 2);
        assert_eq!(a.loads, 3);
        assert_eq!(a.issued, 9);
    }

    #[test]
    fn pipeline_usage_and_ipc() {
        let mut s = PeStats::default();
        s.add_cycles(StallCat::Working, FineCat::Compute, 50);
        s.add_cycles(StallCat::MemStall, FineCat::ReadStall, 50);
        s.issue_cycles = 50;
        s.issued = 80; // 30 dual-issue cycles
        let b = Breakdown::from_stats(&s);
        assert!((b.pipeline_usage - 0.5).abs() < 1e-9);
        assert!((b.ipc - 0.8).abs() < 1e-9);
    }

    #[test]
    fn display_contains_all_categories() {
        let b = Breakdown::from_stats(&PeStats::default());
        let s = b.to_string();
        for cat in StallCat::ALL {
            assert!(s.contains(cat.name()), "missing {cat}");
        }
    }

    #[test]
    fn stats_json_roundtrip() {
        let mut pe = PeStats::default();
        pe.add_cycles(StallCat::MemStall, FineCat::DmaWait, 11);
        pe.record_issue(IClass::Dma);
        pe.attr_overlap_cycles = 4;
        pe.loads = 3;
        let stats = RunStats {
            cycles: 1234,
            per_pe: vec![pe, PeStats::default()],
            aggregate: pe,
            instructions: 42,
            instances: 7,
            bus_utilisation: 0.25,
            mem_utilisation: 0.5,
            mem_payload_bytes: 4096,
            dma_commands: 9,
            max_dse_pending: 3,
            cache_hits: 1,
            cache_misses: 2,
            dma_attempts: 10,
            dma_retries: 1,
            dma_exhausted: 0,
            dma_stalled: 0,
            dma_backoff_cycles: 64,
            msgs_dropped: 0,
            msgs_duplicated: 0,
            msgs_delayed: 0,
            falloc_denials: 0,
            degraded_pes: vec![1, 5],
            fallback_instances: 2,
            watchdog_parks: 0,
            dse_crashes: 0,
            failovers: 0,
            rehomed_fallocs: 0,
            resync_msgs: 0,
            lse_crashes: 1,
            evacuated_frames: 4,
            readmitted_instances: 3,
            killed_instances: 2,
        };
        let text = stats.to_json().to_string_compact();
        let back = RunStats::from_json(&dta_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, stats);
        let mut heap = dta_obs::Histogram::default();
        heap.add(0);
        heap.add(7);
        let er = EngineReport {
            visited_cycles: 5,
            pe_ticks: 4,
            skipped_ticks: 3,
            epochs: 2,
            merged_epochs: 1,
            shard_wall_us: vec![120, 95],
            merge_wall_us: 33,
            wake_heap_occupancy: heap,
            pe_deliveries: 17,
            dse_deliveries: 6,
            mem_requests: 12,
            memo_hits: 4100,
            memo_misses: 9,
            memo_replayed_cycles: 777_216,
            memo_aborts: 3,
        };
        let er_text = er.to_json().to_string_compact();
        assert_eq!(
            EngineReport::from_json(&dta_json::parse(&er_text).unwrap()),
            Some(er)
        );
    }

    #[test]
    fn finecat_names_are_unique_and_cover_all() {
        let mut names: Vec<_> = FineCat::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), NUM_FINE);
    }

    #[test]
    fn stallcat_names_are_unique() {
        let mut names: Vec<_> = StallCat::ALL.iter().map(|c| c.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
