//! The processing element: an SPU-like pipeline plus its LSE, local
//! store, and MFC.
//!
//! The pipeline keeps the SPU properties the paper relies on (§4.1):
//! in-order, dual-issue (one *compute*-class + one *memory*-class
//! instruction per cycle), no caches, no branch prediction (taken branches
//! pay a small fixed penalty). Asynchronous results (frame `LOAD`s,
//! `LSLOAD`s) flow through a per-register scoreboard so local-store
//! latency overlaps with execution ("LS stalls ... are mostly hidden",
//! §4.3), while main-memory `READ`s block the pipeline outright — the
//! stalls the prefetch mechanism exists to remove.
//!
//! Every cycle is attributed to exactly one [`StallCat`] bucket; cycles
//! spent anywhere inside a PF code block (including waiting for a full MFC
//! queue) are *Prefetching* overhead, as in the paper's Fig. 5.

use crate::config::MemoConfig;
use crate::memo::{self, Effect, MemoCounters, MemoState, Recording, Replay, Skeleton};
use crate::stats::{FineCat, PeStats, StallCat};
use dta_isa::{
    CodeBlock, FramePtr, IClass, Instr, Program, Reg, Src, FRAME_PTR_REG, NUM_REGS,
    PREFETCH_BASE_REG, ZERO_REG,
};
use dta_mem::{
    Cache, CacheParams, DmaCommand, DmaKind, DmaPlan, LocalStore, MainMemory, MemorySystem, Mfc,
    MfcParams, ResourcePool, TransferKind,
};
use dta_obs::{GaugeKind, ObsEvent, ObsLog, ThreadEvent};
use dta_sched::{CrashReport, Dest, InstanceId, Lse, LseParams, Message, MsgSeq, ThreadState};
use std::collections::VecDeque;

/// A stamped outbox entry: `(absolute delivery cycle, destination,
/// message, deterministic source stamp)`.
pub type OutMsg = (u64, Dest, Message, MsgSeq);

/// Shared-resource access deferred from a shard to the epoch barrier.
///
/// Tickets record, in issue order, every touch of the globally shared
/// memory system a PE wanted to make while its shard was ticking in
/// parallel. The coordinator resolves all shards' tickets sorted by
/// `(time, pe, seq)` — exactly the order the sequential engine (which
/// ticks PEs in index order within a cycle, with at most one
/// shared-memory operation per PE per cycle) would have performed them,
/// so reservation watermarks and functional memory state evolve
/// identically.
#[derive(Clone, Copy, Debug)]
pub struct Ticket {
    /// Cycle at which the PE issued the operation.
    pub time: u64,
    /// Issuing PE (global index).
    pub pe: u16,
    /// Per-PE issue counter (disambiguates nothing today — one shared
    /// operation per cycle — but keeps the sort total and future-proof).
    pub seq: u64,
    /// The operation.
    pub kind: TicketKind,
}

/// The deferred operation behind a [`Ticket`].
#[derive(Clone, Copy, Debug)]
pub enum TicketKind {
    /// Scalar `READ`: the pipeline blocks until the coordinator posts a
    /// [`Message::ReadDone`] back.
    Read {
        /// Main-memory byte address.
        addr: u64,
    },
    /// Scalar `WRITE`: posted, pipeline does not block.
    Write {
        /// Main-memory byte address.
        addr: u64,
        /// The stored word.
        value: u32,
    },
    /// DMA command admitted by the shard-local MFC queue; the coordinator
    /// runs the data movement and schedules the `DmaDone`.
    Dma {
        /// The admitted command.
        cmd: DmaCommand,
        /// Owning instance (the `DmaDone` correlation token).
        owner: InstanceId,
        /// Source stamp reserved at issue for the eventual `DmaDone`
        /// event (keeps per-PE stamp counters identical to the
        /// sequential engine, which stamps the completion at issue).
        stamp: MsgSeq,
    },
}

/// How a ticking PE reaches the shared memory system.
pub enum MemPort<'a> {
    /// Sequential engine: direct mutable access, operations resolve
    /// inline.
    Direct {
        /// The shared interconnect + memory controller.
        sys: &'a mut MemorySystem,
        /// Main-memory contents.
        mem: &'a mut MainMemory,
    },
    /// Sharded engine: operations are recorded as [`Ticket`]s and
    /// resolved at the epoch barrier.
    Deferred {
        /// Ticket sink (drained by the shard after each tick).
        tickets: &'a mut Vec<Ticket>,
    },
}

/// Pipeline tuning knobs (extracted from
/// [`SystemConfig`](crate::config::SystemConfig)).
#[derive(Clone, Copy, Debug)]
pub struct PipelineParams {
    /// Penalty cycles for taken branches.
    pub taken_branch_penalty: u64,
    /// Cycles to dispatch a ready thread.
    pub dispatch_penalty: u64,
    /// Scheduler-message latency (remote destinations).
    pub msg_latency: u64,
    /// Local-store access latency.
    pub ls_latency: u64,
    /// Local-store ports.
    pub ls_ports: usize,
    /// Optional scalar data cache (extension; `None` = paper platform).
    pub cache: Option<CacheParams>,
    /// Run straight-line PF blocks on the LSE's SP pipeline (extension).
    pub sp_pf_overlap: bool,
    /// Record structured observability events.
    pub obs_events: bool,
    /// Gauge sampling stride, cycles (0 = off).
    pub obs_interval: u64,
    /// Per-unit observability ring capacity.
    pub obs_capacity: usize,
    /// Instance-memoization tuning knobs.
    pub memo: MemoConfig,
    /// Memoization may actually run on this PE (config on, no SP
    /// offload, fault plan benign).
    pub memo_active: bool,
    /// Run cycle budget: replays never extend past it, so the
    /// cycle-limit error path is memo-invariant.
    pub max_cycles: u64,
}

/// What a PE did this cycle — drives the system loop's time skipping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Activity {
    /// Issued/stalled productively; tick again next cycle.
    Active,
    /// Blocked until the given cycle (stall cycles already attributed) or
    /// until an external event (`u64::MAX`).
    Blocked(u64),
    /// No current thread and nothing ready.
    Idle,
}

/// Shared mutable state a PE needs while ticking.
pub struct SysCtx<'a> {
    /// Access to the shared memory system (direct or epoch-deferred).
    pub port: MemPort<'a>,
    /// The program being executed.
    pub program: &'a Program,
    /// Outbox: stamped `(absolute delivery cycle, destination, message)`.
    pub out: &'a mut Vec<OutMsg>,
    /// Latest cycle at which posted writes will have drained.
    pub drain_until: &'a mut u64,
    /// DSE crash/restart schedule: FALLOCs route to the home node's
    /// *current* arbiter (None = fixed topology).
    pub failover: Option<&'a crate::fault::FailoverSchedule>,
}

enum Exec {
    /// Advance to the next instruction.
    Next,
    /// Taken branch/jump to this pc.
    Redirect(u32),
    /// Could not issue (e.g. MFC queue full); retry next cycle.
    Retry(StallCat, FineCat),
    /// Issued; pipeline blocked until the given cycle.
    Block {
        until: u64,
        cat: StallCat,
        fine: FineCat,
    },
    /// Issued a FALLOC; blocked until the response message arrives.
    BlockFalloc,
    /// Issued a deferred scalar READ (sharded engine); blocked until the
    /// `ReadDone` message arrives.
    BlockRead,
    /// DMAYIELD with outstanding transfers: the thread leaves the
    /// pipeline in the *Wait for DMA* state.
    Yield,
    /// STOP.
    Stop,
}

/// Bookkeeping for a deferred scalar READ between issue and `ReadDone`.
struct ReadWait {
    /// Destination register.
    rd: Reg,
    /// Issue cycle (the whole blocked span is charged at completion).
    start: u64,
    /// Stall bucket the blocked span belongs to (decided at issue).
    cat: StallCat,
    /// Fine attribution twin of `cat` (also decided at issue).
    fine: FineCat,
}

/// A processing element.
pub struct Pe {
    pe: u16,
    node: u16,
    /// The PE's Local Scheduler Element (owns all local instances).
    pub lse: Lse,
    /// The PE's local store.
    pub ls: LocalStore,
    /// The PE's DMA engine.
    pub mfc: Mfc,
    /// Optional scalar data cache.
    pub cache: Option<Cache>,
    ls_ports: ResourcePool,
    /// The SP pipeline (PF offload) is free from this cycle.
    sp_free_at: u64,
    params: PipelineParams,
    current: Option<InstanceId>,
    /// Pipeline resumes at this cycle (stall already attributed).
    resume_at: u64,
    /// Destination register of an in-flight FALLOC.
    waiting_falloc: Option<Reg>,
    falloc_block_start: u64,
    /// An in-flight deferred scalar READ (sharded engine only).
    waiting_read: Option<ReadWait>,
    /// Deterministic source stamp for posted messages (rank = PE index).
    pub(crate) stamp: MsgSeq,
    /// Issue counter for deferred shared-memory tickets (a separate
    /// sequence from `stamp`: the sequential engine posts no message for
    /// scalar READ/WRITE, so tickets must not advance message stamps).
    ticket_seq: u64,
    /// Instances parked off the pipeline because their FALLOC was queued
    /// at the DSE (FIFO: grants arrive in queue order).
    parked_fallocs: VecDeque<InstanceId>,
    /// Scoreboard: cycle at which each register's value is usable.
    reg_ready: [u64; NUM_REGS],
    /// Which stall bucket a too-early consumer of each register charges.
    reg_stall: [StallCat; NUM_REGS],
    idle_since: Option<u64>,
    /// A DMA command on this PE exhausted its retry budget: subsequent
    /// frame allocations substitute the thread's PF-skipping fallback (the
    /// baseline decoupled READ/WRITE path) when the program provides one.
    pub degraded: bool,
    /// Instances dispatched on a fallback (PF-skipped) thread body.
    pub fallbacks: u64,
    /// Watchdog: consecutive cycles the current instruction has retried
    /// without issuing.
    spin: u64,
    /// Watchdog spin bound; `None` when fault injection is off, so
    /// fault-free runs are cycle-identical to the unwatched pipeline.
    watchdog_spin_limit: Option<u64>,
    /// Instances parked off the pipeline by the spin watchdog.
    pub watchdog_parks: u64,
    /// The most recent pipeline vacancy came from a watchdog park: the
    /// next closed idle span is attributed [`FineCat::Parked`]. Set at
    /// park, cleared at the next dispatch — both simulated events, so
    /// the attribution is engine-invariant.
    parked_hint: bool,
    /// DMA commands issued by this PE and not yet completed, maintained
    /// at the same points that emit `DmaIssued`/`DmaCompleted` events
    /// (issue in [`Self::tick`]'s exec, completion at `DmaDone`
    /// delivery). Compute cycles charged while this is non-zero feed
    /// `PeStats::attr_overlap_cycles`.
    pub dma_open: u64,
    /// Instance-memoization state (segment cache, recording/replay
    /// cursors, counters).
    memo: MemoState,
    /// Executed-instruction counters.
    pub stats: PeStats,
    /// Structured observability log (events + gauge samples), merged
    /// into the run's `ObsStream` at the end.
    pub obs: ObsLog,
}

impl Pe {
    /// Creates PE `pe` of node `node`.
    pub fn new(
        pe: u16,
        node: u16,
        lse_params: LseParams,
        mfc_params: MfcParams,
        ls_size: u32,
        params: PipelineParams,
    ) -> Self {
        Pe {
            pe,
            node,
            lse: Lse::new(pe, lse_params),
            ls: LocalStore::new(ls_size as usize),
            mfc: Mfc::new(mfc_params),
            cache: params.cache.map(Cache::new),
            ls_ports: ResourcePool::new(params.ls_ports),
            sp_free_at: 0,
            params,
            current: None,
            resume_at: 0,
            waiting_falloc: None,
            falloc_block_start: 0,
            waiting_read: None,
            stamp: MsgSeq::first(pe as u32),
            ticket_seq: 0,
            parked_fallocs: VecDeque::new(),
            reg_ready: [0; NUM_REGS],
            reg_stall: [StallCat::Working; NUM_REGS],
            idle_since: None,
            degraded: false,
            fallbacks: 0,
            spin: 0,
            watchdog_spin_limit: None,
            watchdog_parks: 0,
            parked_hint: false,
            dma_open: 0,
            memo: MemoState::new(params.memo, params.memo_active),
            stats: PeStats::default(),
            obs: ObsLog::new(
                pe as u32,
                params.obs_capacity,
                params.obs_events,
                params.obs_interval,
            ),
        }
    }

    /// Arms the spin watchdog: after `limit` consecutive retry cycles on
    /// one instruction the current instance is parked off the pipeline
    /// (recoverable if its DMA completions ever arrive; a quiescent park
    /// is reported as a watchdog trip instead of a silent hang).
    pub fn arm_watchdog(&mut self, limit: u64) {
        self.watchdog_spin_limit = Some(limit.max(1));
    }

    /// Global PE index.
    #[inline]
    pub fn id(&self) -> u16 {
        self.pe
    }

    /// The instance currently on the pipeline.
    #[inline]
    pub fn current(&self) -> Option<InstanceId> {
        self.current
    }

    /// Charges `n` cycles to a coarse/fine category pair, accumulating
    /// the attribution-side DMA overlap: compute cycles charged while
    /// this PE has DMA in flight are exactly the paper's "pipeline busy
    /// while DMA transfers" claim, counted from the simulator's own
    /// books rather than the event stream.
    #[inline]
    fn charge(&mut self, cat: StallCat, fine: FineCat, n: u64) {
        self.stats.add_cycles(cat, fine, n);
        if self.dma_open > 0 && matches!(fine, FineCat::Compute | FineCat::Degraded) {
            self.stats.attr_overlap_cycles += n;
        }
    }

    /// Fine category for productive pipeline activity: PF-block cycles
    /// are prefetch overhead; otherwise compute, demoted to `Degraded`
    /// once the PE's DMA retry budget is exhausted.
    #[inline]
    fn act_fine(&self, in_pf: bool) -> FineCat {
        if in_pf {
            FineCat::PfGated
        } else if self.degraded {
            FineCat::Degraded
        } else {
            FineCat::Compute
        }
    }

    /// Fine category for the idle span that is closing now.
    #[inline]
    fn idle_fine(&self) -> FineCat {
        if self.parked_hint {
            FineCat::Parked
        } else {
            FineCat::Idle
        }
    }

    /// Would a `FallocResponse` for `for_inst` land on a live wait?
    /// (Stale responses for instances destroyed by an LSE crash drop.)
    pub fn expects_falloc_response(&self, for_inst: InstanceId) -> bool {
        (self.waiting_falloc.is_some() && self.current == Some(for_inst))
            || self.parked_fallocs.contains(&for_inst)
    }

    /// Is the pipeline blocked on a deferred scalar READ?
    pub fn expects_read(&self) -> bool {
        self.waiting_read.is_some()
    }

    /// The scheduled LSE crash fires on this PE: the pipeline drops every
    /// in-flight hold on destroyed instances and the LSE classifies its
    /// population (see [`Lse::crash`]). `evac_to` is the planned adoption
    /// peer from the failover schedule.
    ///
    /// Stall attribution is closed out *at the crash cycle*: open wait
    /// spans are normally attributed by the event that completes them,
    /// which will never arrive now, and the idle tail must start at a
    /// point derived from simulated history — never from the (engine-
    /// dependent) cycle at which the dead PE happens to be visited next.
    pub fn crash_lse(&mut self, now: u64, evac_to: Option<u16>) -> CrashReport {
        if self.waiting_falloc.take().is_some() {
            self.charge(
                StallCat::LseStall,
                FineCat::FallocWait,
                now - self.falloc_block_start,
            );
        }
        self.current = None;
        // The crash destroys every local instance; their in-flight DMA
        // completions (if any) will be dropped as stale upstream, so the
        // overlap census restarts from zero.
        self.dma_open = 0;
        self.parked_fallocs.clear();
        self.spin = 0;
        // Execution latencies are attributed at issue (through
        // `resume_at`), so idle time starts at whichever of issue-horizon
        // and crash cycle is later. An open deferred READ is the
        // exception: the sequential engine charges a READ's full latency
        // inline at issue, so the deferred twin must stay open until its
        // in-flight `ReadDone` closes the span ([`Self::dead_read_done`])
        // — truncating it at the crash cycle would skew the buckets
        // between engines.
        if self.waiting_read.is_none() {
            self.idle_since.get_or_insert(self.resume_at.max(now));
        }
        self.lse.crash(evac_to)
    }

    /// Closes a deferred READ orphaned by an LSE crash: the `ReadDone`
    /// arrives at exactly the cycle the sequential engine's inline charge
    /// ran through, so charging the span here (and starting the idle tail
    /// now) keeps the buckets engine-invariant. Returns false when there
    /// is no orphaned wait (the message is for a live post-restart READ,
    /// or a plain stale drop).
    pub fn dead_read_done(&mut self, now: u64) -> bool {
        if self.current.is_none() {
            if let Some(w) = self.waiting_read.take() {
                self.charge(w.cat, w.fine, now - w.start);
                self.idle_since = Some(now);
                return true;
            }
        }
        false
    }

    /// The scheduled LSE restart fires: the PE rejoins cold (the caller
    /// re-registers its capacity with the arbiter).
    pub fn restart_lse(&mut self) {
        self.lse.restart();
    }

    /// Closes out trailing idle time at the end of a run so per-PE
    /// category sums equal total cycles.
    pub fn finish(&mut self, final_cycle: u64) {
        if let Some(t0) = self.idle_since.take() {
            self.charge(
                StallCat::Idle,
                self.idle_fine(),
                final_cycle.saturating_sub(t0),
            );
        }
    }

    /// Delivers a FALLOC response: writes the frame pointer, attributes
    /// the LSE-stall time, and unblocks the pipeline — or, if the waiting
    /// thread was descheduled by a `FallocDeferred`, re-readies the parked
    /// instance.
    pub fn complete_falloc(&mut self, now: u64, frame: FramePtr, for_inst: InstanceId) {
        if self.waiting_falloc.is_some() && self.current == Some(for_inst) {
            let rd = self.waiting_falloc.take().expect("checked");
            self.set_reg(for_inst, rd, frame.encode() as i64, now, StallCat::Working);
            // The response itself takes a cycle to process.
            let resume = now + 1;
            self.charge(
                StallCat::LseStall,
                FineCat::FallocWait,
                resume - self.falloc_block_start,
            );
            self.resume_at = resume;
            self.memo.arm();
            return;
        }
        let pos = self
            .parked_fallocs
            .iter()
            .position(|&p| p == for_inst)
            .expect("FALLOC response without a waiting or parked FALLOC");
        let id = self
            .parked_fallocs
            .remove(pos)
            .expect("position just found");
        let inst = self.lse.instance_mut(id);
        let rd = inst
            .pending_falloc
            .take()
            .expect("parked instance lost its pending FALLOC register");
        if !rd.is_zero() {
            inst.regs[rd.index()] = frame.encode() as i64;
        }
        self.lse.make_ready(now, id);
    }

    /// Delivers a `FallocDeferred` nack: the waiting thread leaves the
    /// pipeline so other ready threads can run; its grant arrives later as
    /// a normal response.
    pub fn defer_falloc(&mut self, now: u64, for_inst: InstanceId) {
        if self.waiting_falloc.is_none() || self.current != Some(for_inst) {
            // Under injected message delays a nack can arrive after the
            // grant already completed the FALLOC; it is stale — ignore it.
            return;
        }
        let rd = self.waiting_falloc.take().expect("checked");
        let id = self.current.take().expect("checked");
        let inst = self.lse.instance_mut(id);
        inst.pending_falloc = Some(rd);
        inst.state = ThreadState::WaitFalloc;
        self.parked_fallocs.push_back(id);
        self.record(now, id, ThreadEvent::ParkedWaitFalloc);
        let resume = now + 1;
        self.charge(
            StallCat::LseStall,
            FineCat::FallocWait,
            resume - self.falloc_block_start,
        );
        self.resume_at = resume;
    }

    /// Delivers a deferred scalar READ's result (sharded engine): writes
    /// the register, charges the whole blocked span to the bucket chosen
    /// at issue, and unblocks the pipeline. Timing-identical to the
    /// sequential engine's inline `Exec::Block`: the delivery cycle is the
    /// resolved completion clamped to issue+1, so the charged span and
    /// resume cycle match the inline `until.max(now + 1)` exactly.
    pub fn complete_read(&mut self, now: u64, value: i64, ready_at: u64) {
        let wait = self
            .waiting_read
            .take()
            .expect("ReadDone without a waiting READ");
        let id = self.current.expect("ReadDone with no current thread");
        self.set_reg(id, wait.rd, value, ready_at, StallCat::MemStall);
        self.charge(wait.cat, wait.fine, now - wait.start);
        self.resume_at = now;
        self.memo.arm();
    }

    /// Handles a DMA completion that belongs to the *currently running*
    /// instance (still on the pipeline, e.g. in its PF block).
    pub fn current_dma_done(&mut self, owner: InstanceId, tag: u8) -> bool {
        if self.current == Some(owner) {
            let inst = self.lse.instance_mut(owner);
            inst.dma_complete(tag);
            true
        } else {
            false
        }
    }

    #[inline]
    fn reg(&self, id: InstanceId, r: Reg) -> i64 {
        if r.is_zero() {
            0
        } else {
            self.lse.instance(id).regs[r.index()]
        }
    }

    #[inline]
    fn set_reg(&mut self, id: InstanceId, r: Reg, v: i64, ready_at: u64, stall: StallCat) {
        if r.is_zero() {
            return;
        }
        self.lse.instance_mut(id).regs[r.index()] = v;
        self.reg_ready[r.index()] = ready_at;
        self.reg_stall[r.index()] = stall;
    }

    #[inline]
    fn src_val(&self, id: InstanceId, s: Src) -> i64 {
        match s {
            Src::Reg(r) => self.reg(id, r),
            Src::Imm(i) => i as i64,
        }
    }

    /// If an operand of `instr` is not yet ready, returns the coarse and
    /// fine stall buckets to charge. The fine twin is derived from the
    /// producer's coarse bucket — `LsStall` operands come from
    /// local-store loads, `MemStall` operands from blocking READs — so
    /// the mapping is a pure function of simulated state.
    fn operand_stall(&self, instr: &Instr, now: u64, in_pf: bool) -> Option<(StallCat, FineCat)> {
        let mut worst: Option<(u64, StallCat)> = None;
        for r in &instr.uses() {
            let t = self.reg_ready[r.index()];
            if t > now && worst.is_none_or(|(wt, _)| t > wt) {
                worst = Some((t, self.reg_stall[r.index()]));
            }
        }
        worst.map(|(_, cat)| {
            if in_pf {
                (StallCat::Prefetch, FineCat::PfGated)
            } else {
                let fine = match cat {
                    StallCat::LsStall => FineCat::LsStall,
                    StallCat::MemStall => FineCat::ReadStall,
                    _ => self.act_fine(false),
                };
                (cat, fine)
            }
        })
    }

    /// One simulation cycle.
    pub fn tick(&mut self, now: u64, ctx: &mut SysCtx<'_>) -> Activity {
        if self.obs.metrics_on() {
            self.flush_gauges(now);
        }
        // A crashed LSE takes its PE down with it: the pipeline cannot
        // dispatch (the ready queue is gone) and must not retire the
        // in-flight instruction of a destroyed instance. `idle_since` is
        // NOT touched here — visit times are engine-dependent; the crash
        // and `dead_read_done` paths pin it from simulated history.
        if self.lse.is_dead() {
            return Activity::Idle;
        }
        if self.waiting_falloc.is_some() || self.waiting_read.is_some() {
            return Activity::Blocked(u64::MAX);
        }
        if self.resume_at > now {
            return Activity::Blocked(self.resume_at);
        }

        // Dispatch if the pipeline is free. With the SP/XP extension,
        // ready threads whose next work is a straight-line PF block are
        // offloaded to the SP pipeline instead of occupying this one.
        if self.current.is_none() {
            let id = loop {
                let Some(id) = self.lse.pop_ready() else {
                    self.idle_since.get_or_insert(now);
                    return Activity::Idle;
                };
                if self.params.sp_pf_overlap && self.sp_offloadable(id, ctx.program) {
                    self.run_pf_on_sp(id, now, ctx);
                    continue;
                }
                break id;
            };
            if let Some(t0) = self.idle_since.take() {
                self.charge(StallCat::Idle, self.idle_fine(), now - t0);
            }
            self.dispatch(id, now, ctx.program);
            if self.params.dispatch_penalty > 0 {
                self.charge(
                    StallCat::Working,
                    self.act_fine(false),
                    self.params.dispatch_penalty,
                );
                self.resume_at = now + self.params.dispatch_penalty;
                return Activity::Blocked(self.resume_at);
            }
        }

        self.memo_issue(now, ctx)
    }

    fn dispatch(&mut self, id: InstanceId, now: u64, program: &Program) {
        let inst = self.lse.instance_mut(id);
        let thread = &program.threads[inst.thread.index()];
        let starting = inst.pc == 0;
        inst.state = if thread.block_of(inst.pc) == CodeBlock::Pf {
            ThreadState::ProgramDma
        } else {
            ThreadState::Running
        };
        if starting {
            inst.regs[FRAME_PTR_REG.index()] = inst.frame.encode() as i64;
            inst.regs[PREFETCH_BASE_REG.index()] = if inst.pf_buf_addr == u32::MAX {
                0
            } else {
                inst.pf_buf_addr as i64
            };
        }
        // All register values live in the instance; everything is ready.
        self.reg_ready = [now; NUM_REGS];
        self.stats.threads_dispatched += 1;
        self.current = Some(id);
        self.parked_hint = false;
        self.record(now, id, ThreadEvent::Dispatched);
        self.memo.arm();
    }

    fn issue(&mut self, now: u64, ctx: &mut SysCtx<'_>) -> Activity {
        let id = self.current.expect("issue without a current thread");
        let (thread_id, mut pc) = {
            let inst = self.lse.instance(id);
            (inst.thread, inst.pc)
        };
        let thread = &ctx.program.threads[thread_id.index()];
        let block = thread.block_of(pc);
        let in_pf = block == CodeBlock::Pf;
        let cycle_cat = if in_pf {
            StallCat::Prefetch
        } else {
            StallCat::Working
        };

        let i1 = thread.code[pc as usize];
        if let Some((cat, fine)) = self.operand_stall(&i1, now, in_pf) {
            self.charge(cat, fine, 1);
            return Activity::Active;
        }

        let r1 = self.exec(now, id, i1, in_pf, ctx);
        if let Exec::Retry(cat, fine) = r1 {
            self.charge(cat, fine, 1);
            self.stats.dma_queue_retries += 1;
            self.spin += 1;
            if let Some(limit) = self.watchdog_spin_limit {
                if self.spin >= limit {
                    return self.watchdog_park(now, id);
                }
            }
            return Activity::Active;
        }
        self.spin = 0;

        self.stats.record_issue(i1.class());
        self.count_mem_op(&i1);
        self.stats.issue_cycles += 1;

        match r1 {
            Exec::Retry(..) => unreachable!("handled above"),
            Exec::Next => {
                pc += 1;
                // Try to pair a second instruction (dual issue).
                if (pc as usize) < thread.code.len() {
                    let i2 = thread.code[pc as usize];
                    if pairable(i1.class(), i2.class())
                        && thread.block_of(pc) == block
                        && self.operand_stall(&i2, now, in_pf).is_none()
                    {
                        let r2 = self.exec(now, id, i2, in_pf, ctx);
                        match r2 {
                            Exec::Next => {
                                self.stats.record_issue(i2.class());
                                self.count_mem_op(&i2);
                                self.stats.dual_cycles += 1;
                                pc += 1;
                            }
                            Exec::Redirect(target) => {
                                self.stats.record_issue(i2.class());
                                self.stats.dual_cycles += 1;
                                pc = target;
                                self.apply_branch_penalty(now, cycle_cat, in_pf);
                            }
                            // Pairable classes never block, retry, yield
                            // or stop.
                            _ => unreachable!("non-simple instruction slipped into dual issue"),
                        }
                    }
                }
                self.charge(cycle_cat, self.act_fine(in_pf), 1);
                self.lse.instance_mut(id).pc = pc;
                if memo::may_bound_segment(&i1) {
                    self.memo.arm();
                }
                Activity::Active
            }
            Exec::Redirect(target) => {
                self.charge(cycle_cat, self.act_fine(in_pf), 1);
                self.apply_branch_penalty(now, cycle_cat, in_pf);
                self.lse.instance_mut(id).pc = target;
                if self.resume_at > now + 1 {
                    Activity::Blocked(self.resume_at)
                } else {
                    Activity::Active
                }
            }
            Exec::Block { until, cat, fine } => {
                let until = until.max(now + 1);
                self.charge(cat, fine, until - now);
                self.resume_at = until;
                self.lse.instance_mut(id).pc = pc + 1;
                self.memo.arm();
                Activity::Blocked(until)
            }
            Exec::BlockFalloc => {
                self.falloc_block_start = now;
                self.lse.instance_mut(id).pc = pc + 1;
                Activity::Blocked(u64::MAX)
            }
            Exec::BlockRead => {
                // Stall cycles are charged on completion (`complete_read`),
                // once the coordinator has resolved the contended latency.
                self.lse.instance_mut(id).pc = pc + 1;
                Activity::Blocked(u64::MAX)
            }
            Exec::Yield => {
                self.charge(cycle_cat, self.act_fine(in_pf), 1);
                let inst = self.lse.instance_mut(id);
                inst.pc = pc + 1;
                inst.state = ThreadState::WaitDma;
                self.current = None;
                self.record(now, id, ThreadEvent::WaitDma);
                Activity::Active
            }
            Exec::Stop => {
                self.charge(cycle_cat, self.act_fine(in_pf), 1);
                self.record(now, id, ThreadEvent::Stopped);
                self.lse.stop(id);
                self.current = None;
                Activity::Active
            }
        }
    }

    /// [`Self::issue`] with the memoization layer interposed (a straight
    /// pass-through when memoization is inactive).
    ///
    /// Order matters: an active replay advances first; otherwise a
    /// completed recording is finalised *before* its boundary issues
    /// (the span's stats delta must not include boundary charges); then
    /// an armed segment entry attempts to fire or record; finally the
    /// normal interpreter runs, with its outbox pushes captured into any
    /// recording in progress.
    fn memo_issue(&mut self, now: u64, ctx: &mut SysCtx<'_>) -> Activity {
        if !self.memo.active {
            return self.issue(now, ctx);
        }
        if self.memo.replay.is_some() {
            if let Some(act) = self.replay_step(now, ctx) {
                return act;
            }
            // Segment end reached: the boundary issues below, this tick.
        } else {
            self.maybe_finalize(now);
            if self.memo.armed {
                self.memo.armed = false;
                self.memo_attempt(now, ctx);
                if self.memo.replay.is_some() {
                    if let Some(act) = self.replay_step(now, ctx) {
                        return act;
                    }
                }
            }
        }
        let out_before = ctx.out.len();
        let act = self.issue(now, ctx);
        if let Some(rec) = self.memo.recording.as_mut() {
            for _ in out_before..ctx.out.len() {
                rec.post_rels.push(now - rec.base);
            }
        }
        act
    }

    /// If a recording's segment just completed (the pipeline is at its
    /// boundary pc), files it as a cached skeleton — unless something
    /// perturbed the span (instance switched, a DMA completion landed,
    /// the path diverged from pre-execution), in which case it is
    /// discarded: a miss, never an error.
    fn maybe_finalize(&mut self, now: u64) {
        let Some(rec) = self.memo.recording.as_ref() else {
            return;
        };
        if self.current != Some(rec.owner) {
            self.memo.recording = None;
            self.memo.counters.aborts += 1;
            return;
        }
        if self.lse.instance(rec.owner).pc != rec.stop_pc {
            return; // still mid-span
        }
        let rec = self.memo.recording.take().expect("checked above");
        if self.dma_open != rec.dma_open_at_base || rec.post_rels.len() != rec.expected_posts {
            self.memo.counters.aborts += 1;
            return;
        }
        let mut delta = self.stats.delta_since(&rec.stats_at);
        let overlap_cycles =
            delta.fine[FineCat::Compute as usize] + delta.fine[FineCat::Degraded as usize];
        // With `dma_open` constant through the span (checked above) the
        // overlap attribution is exactly the compute+degraded fine
        // cycles when DMA was in flight, zero otherwise — so it can be
        // normalised out here and re-derived at fire time.
        debug_assert_eq!(
            delta.attr_overlap_cycles,
            if rec.dma_open_at_base > 0 {
                overlap_cycles
            } else {
                0
            },
            "span overlap attribution must be a pure function of its fine cycles"
        );
        delta.attr_overlap_cycles = 0;
        let mut end_reg_rel = [0u64; NUM_REGS];
        for (rel, &ready) in end_reg_rel.iter_mut().zip(&self.reg_ready) {
            *rel = ready.saturating_sub(rec.base);
        }
        let ls_rel: Vec<u64> = self
            .ls_ports
            .free_times()
            .iter()
            .map(|&t| t.saturating_sub(rec.base))
            .collect();
        let skel = Skeleton {
            len: now - rec.base,
            stop_pc: rec.stop_pc,
            post_rels: rec.post_rels,
            stats_delta: delta,
            overlap_cycles,
            end_reg_rel,
            end_reg_stall: self.reg_stall,
            ls_rel,
            ls_busy_delta: self.ls_ports.busy_cycles() - rec.ls_busy_at,
        };
        self.memo.insert(rec.key, skel);
    }

    /// Attempts to fire or record the segment starting at the current
    /// pc. Every bail-out path falls back to plain interpretation.
    fn memo_attempt(&mut self, now: u64, ctx: &mut SysCtx<'_>) {
        // A recording that never reached its boundary (the instance left
        // the pipeline mid-span) is stale by the next segment entry.
        if self.memo.recording.is_some() {
            self.memo.recording = None;
            self.memo.counters.aborts += 1;
        }
        let id = self.current.expect("memo attempt without a current thread");
        let inst = self.lse.instance(id);
        let thread = &ctx.program.threads[inst.thread.index()];
        let Some(fx) = memo::fn_exec(
            thread,
            inst,
            &self.ls,
            &self.reg_ready,
            &self.reg_stall,
            self.ls_ports.free_times(),
            self.degraded,
            now,
            self.memo.cfg.max_steps,
        ) else {
            self.memo.counters.aborts += 1;
            return;
        };
        if fx.steps < self.memo.cfg.min_span {
            return; // too short to be worth caching: neither miss nor abort
        }
        if let Some(skel) = self.memo.lookup(fx.key) {
            // Fire only inside a contention-free window: either no DMA
            // in flight, or the in-flight set provably constant through
            // the span — and never across the cycle-limit horizon, so
            // the `CycleLimit` error path stays memo-invariant.
            let end = now + skel.len;
            let overlap_add = if self.dma_open == 0 {
                Some(0)
            } else if self.mfc.quiet_until(now, end) {
                Some(skel.overlap_cycles)
            } else {
                None
            };
            match overlap_add {
                Some(overlap_add) if end <= self.params.max_cycles => {
                    debug_assert_eq!(skel.stop_pc, fx.stop_pc);
                    debug_assert_eq!(skel.post_rels.len(), fx.effects.len());
                    self.memo.counters.hits += 1;
                    self.memo.counters.replayed_cycles += skel.len;
                    self.memo.replay = Some(Replay {
                        skel,
                        base: now,
                        effects: fx.effects,
                        regs: fx.regs,
                        next_effect: 0,
                        overlay: fx.overlay,
                        overlap_add,
                    });
                }
                _ => self.memo.counters.aborts += 1,
            }
        } else if self.memo.can_insert() {
            self.memo.counters.misses += 1;
            self.memo.recording = Some(Recording {
                key: fx.key,
                owner: id,
                base: now,
                stop_pc: fx.stop_pc,
                dma_open_at_base: self.dma_open,
                expected_posts: fx.effects.len(),
                stats_at: self.stats,
                ls_busy_at: self.ls_ports.busy_cycles(),
                post_rels: Vec::new(),
            });
        } else {
            self.memo.counters.aborts += 1;
        }
    }

    /// Advances an active replay at `now`: emits the effects recorded
    /// for this cycle through the normal post path, then sleeps to the
    /// next event. Returns `None` once the segment end is reached — the
    /// boundary then issues normally in the same tick, exactly as
    /// interpretation would.
    fn replay_step(&mut self, now: u64, ctx: &mut SysCtx<'_>) -> Option<Activity> {
        let id = self.current.expect("replay without a current thread");
        loop {
            let rep = self.memo.replay.as_ref().expect("active replay");
            let i = rep.next_effect;
            if i >= rep.effects.len() || rep.base + rep.skel.post_rels[i] != now {
                break;
            }
            let effect = rep.effects[i];
            self.memo
                .replay
                .as_mut()
                .expect("active replay")
                .next_effect = i + 1;
            self.emit_effect(now, id, effect, ctx);
        }
        let rep = self.memo.replay.as_ref().expect("active replay");
        let end = rep.base + rep.skel.len;
        if now < end {
            let next = match rep.skel.post_rels.get(rep.next_effect) {
                Some(&rel) => (rep.base + rel).min(end),
                None => end,
            };
            self.resume_at = next;
            return Some(Activity::Blocked(next));
        }
        self.finish_replay(now, id);
        None
    }

    /// Emits one replayed effect with fresh values, stamped and routed
    /// exactly as [`Self::exec`] would have.
    fn emit_effect(&mut self, now: u64, id: InstanceId, effect: Effect, ctx: &mut SysCtx<'_>) {
        let (dest_pe, msg) = match effect {
            Effect::Store { frame, slot, value } => {
                (frame.pe, Message::Store { frame, slot, value })
            }
            Effect::Ffree { frame } => (frame.pe, Message::Ffree { frame }),
        };
        let delay = self.msg_delay(dest_pe);
        let stamp = self.stamp.bump();
        self.lse.instance_mut(id).tainted = true;
        ctx.out.push((now + delay, Dest::Lse(dest_pe), msg, stamp));
    }

    /// Installs a finished replay's end state: final registers and pc,
    /// scoreboard, LS writes and port watermarks, and the span's stats
    /// delta with the fire-window's overlap attribution re-added.
    fn finish_replay(&mut self, now: u64, id: InstanceId) {
        let rep = self.memo.replay.take().expect("active replay");
        debug_assert_eq!(now, rep.base + rep.skel.len);
        debug_assert_eq!(rep.next_effect, rep.effects.len());
        // Local-store writes: nothing observes LS bytes mid-span inside
        // a contention-free window (no SP offload, no DMA completion),
        // so applying them at the segment end is order-equivalent.
        for &(addr, value) in &rep.overlay {
            self.ls.write_u32(addr, value);
        }
        {
            let inst = self.lse.instance_mut(id);
            let mut regs = rep.regs;
            regs[ZERO_REG.index()] = inst.regs[ZERO_REG.index()];
            inst.regs = regs;
            inst.pc = rep.skel.stop_pc;
        }
        for (ready, &rel) in self.reg_ready.iter_mut().zip(&rep.skel.end_reg_rel) {
            *ready = rep.base + rel;
        }
        self.reg_stall = rep.skel.end_reg_stall;
        self.ls_ports
            .restore(rep.base, &rep.skel.ls_rel, rep.skel.ls_busy_delta);
        self.stats.merge(&rep.skel.stats_delta);
        self.stats.attr_overlap_cycles += rep.overlap_add;
    }

    /// This PE's memoization counters (host-side observability, summed
    /// into the [`EngineReport`](crate::stats::EngineReport)).
    pub fn memo_counters(&self) -> MemoCounters {
        self.memo.counters
    }

    /// Parks the current instance after `watchdog_spin_limit` consecutive
    /// retry cycles on one instruction. The pc is *not* advanced: if the
    /// instance's outstanding DMA completions ever arrive it is re-readied
    /// and re-executes the same (idempotent) instruction — `DMAWAIT`
    /// re-checks its tag, a DMA enqueue re-attempts admission. If nothing
    /// re-readies it the machine quiesces and the run ends with a typed
    /// watchdog error instead of spinning to the cycle limit.
    fn watchdog_park(&mut self, now: u64, id: InstanceId) -> Activity {
        self.spin = 0;
        self.watchdog_parks += 1;
        self.parked_hint = true;
        let inst = self.lse.instance_mut(id);
        inst.state = ThreadState::WaitDma;
        self.current = None;
        if self.obs.events_on() {
            self.obs.emit(
                now,
                ObsEvent::WatchdogPark {
                    pe: self.pe,
                    instance: id.0,
                },
            );
        }
        self.record(now, id, ThreadEvent::WaitDma);
        Activity::Active
    }

    fn apply_branch_penalty(&mut self, now: u64, cat: StallCat, in_pf: bool) {
        if self.params.taken_branch_penalty > 0 {
            self.charge(cat, self.act_fine(in_pf), self.params.taken_branch_penalty);
            self.resume_at = now + 1 + self.params.taken_branch_penalty;
        }
    }

    fn count_mem_op(&mut self, i: &Instr) {
        match i {
            Instr::Load { .. } => self.stats.loads += 1,
            Instr::Store { .. } => self.stats.stores += 1,
            Instr::Read { .. } => self.stats.reads += 1,
            Instr::Write { .. } => self.stats.writes += 1,
            _ => {}
        }
    }

    fn exec(
        &mut self,
        now: u64,
        id: InstanceId,
        i: Instr,
        in_pf: bool,
        ctx: &mut SysCtx<'_>,
    ) -> Exec {
        match i {
            Instr::Alu { op, rd, ra, rb } => {
                let v = op.eval(self.reg(id, ra), self.src_val(id, rb));
                self.set_reg(id, rd, v, now + 1, StallCat::Working);
                Exec::Next
            }
            Instr::Li { rd, imm } => {
                self.set_reg(id, rd, imm, now + 1, StallCat::Working);
                Exec::Next
            }
            Instr::Mov { rd, ra } => {
                let v = self.reg(id, ra);
                self.set_reg(id, rd, v, now + 1, StallCat::Working);
                Exec::Next
            }
            Instr::Nop => Exec::Next,
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                if cond.eval(self.reg(id, ra), self.src_val(id, rb)) {
                    Exec::Redirect(target)
                } else {
                    Exec::Next
                }
            }
            Instr::Jmp { target } => Exec::Redirect(target),
            Instr::Load { rd, slot } => {
                let v = self.lse.instance(id).slot(slot);
                let ready = self.ls_ports.reserve(now, 1).end + self.params.ls_latency;
                self.set_reg(id, rd, v, ready, StallCat::LsStall);
                Exec::Next
            }
            Instr::Store { rs, rframe, slot } => {
                let frame = FramePtr::decode_expect(self.reg(id, rframe) as u64);
                let value = self.reg(id, rs);
                let delay = self.msg_delay(frame.pe);
                let stamp = self.stamp.bump();
                self.lse.instance_mut(id).tainted = true;
                ctx.out.push((
                    now + delay,
                    Dest::Lse(frame.pe),
                    Message::Store { frame, slot, value },
                    stamp,
                ));
                Exec::Next
            }
            Instr::Falloc { rd, thread, sc } => {
                let stamp = self.stamp.bump();
                self.lse.instance_mut(id).tainted = true;
                let target = ctx.failover.map_or(self.node, |f| f.route(self.node, now));
                ctx.out.push((
                    now + self.params.msg_latency,
                    Dest::Dse(target),
                    Message::FallocRequest {
                        requester: self.pe,
                        for_inst: id,
                        thread,
                        sc,
                        hops: 0,
                    },
                    stamp,
                ));
                self.waiting_falloc = Some(rd);
                Exec::BlockFalloc
            }
            Instr::Ffree { rframe } => {
                let frame = FramePtr::decode_expect(self.reg(id, rframe) as u64);
                let delay = self.msg_delay(frame.pe);
                let stamp = self.stamp.bump();
                self.lse.instance_mut(id).tainted = true;
                ctx.out.push((
                    now + delay,
                    Dest::Lse(frame.pe),
                    Message::Ffree { frame },
                    stamp,
                ));
                Exec::Next
            }
            Instr::Stop => Exec::Stop,
            Instr::Read { rd, ra, off } => {
                let addr = (self.reg(id, ra) + off as i64) as u64;
                let (cat, fine) = if in_pf {
                    (StallCat::Prefetch, FineCat::PfGated)
                } else {
                    (StallCat::MemStall, FineCat::ReadStall)
                };
                if !in_pf {
                    // The stall the prefetch mechanism exists to remove:
                    // feed the per-thread PF-coverage census.
                    self.record(now, id, ThreadEvent::ReadBlocked);
                }
                match &mut ctx.port {
                    MemPort::Direct { sys, mem } => {
                        let v = mem.read_i32_sext(addr);
                        let until = match &mut self.cache {
                            Some(c) => c.read(now, addr, sys),
                            None => sys.request(now, TransferKind::ScalarRead),
                        };
                        self.set_reg(id, rd, v, until, StallCat::MemStall);
                        Exec::Block { until, cat, fine }
                    }
                    MemPort::Deferred { tickets } => {
                        tickets.push(Ticket {
                            time: now,
                            pe: self.pe,
                            seq: self.ticket_seq,
                            kind: TicketKind::Read { addr },
                        });
                        self.ticket_seq += 1;
                        self.waiting_read = Some(ReadWait {
                            rd,
                            start: now,
                            cat,
                            fine,
                        });
                        Exec::BlockRead
                    }
                }
            }
            Instr::Write { rs, ra, off } => {
                let addr = (self.reg(id, ra) + off as i64) as u64;
                let value = self.reg(id, rs) as u32;
                self.lse.instance_mut(id).tainted = true;
                match &mut ctx.port {
                    MemPort::Direct { sys, mem } => {
                        mem.write_u32(addr, value);
                        if let Some(c) = &mut self.cache {
                            c.write(now, addr);
                        }
                        let done = sys.request(now, TransferKind::ScalarWrite);
                        *ctx.drain_until = (*ctx.drain_until).max(done);
                    }
                    MemPort::Deferred { tickets } => {
                        tickets.push(Ticket {
                            time: now,
                            pe: self.pe,
                            seq: self.ticket_seq,
                            kind: TicketKind::Write { addr, value },
                        });
                        self.ticket_seq += 1;
                    }
                }
                Exec::Next
            }
            Instr::LsLoad { rd, ra, off } => {
                let addr = (self.reg(id, ra) + off as i64) as u32;
                let v = self.ls.read_i32_sext(addr);
                let ready = self.ls_ports.reserve(now, 1).end + self.params.ls_latency;
                self.set_reg(id, rd, v, ready, StallCat::LsStall);
                Exec::Next
            }
            Instr::LsStore { rs, ra, off } => {
                let addr = (self.reg(id, ra) + off as i64) as u32;
                self.ls.write_u32(addr, self.reg(id, rs) as u32);
                self.ls_ports.reserve(now, 1);
                Exec::Next
            }
            Instr::DmaGet {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            } => {
                let cmd = DmaCommand {
                    owner: id.token(),
                    tag,
                    ls_addr: (self.reg(id, rls) + ls_off as i64) as u32,
                    mem_addr: (self.reg(id, rmem) + mem_off as i64) as u64,
                    kind: DmaKind::Get {
                        bytes: self.src_val(id, bytes) as u32,
                    },
                };
                self.enqueue_dma(now, id, cmd, in_pf, ctx)
            }
            Instr::DmaGetStrided {
                rls,
                ls_off,
                rmem,
                mem_off,
                elem_bytes,
                count,
                stride,
                tag,
            } => {
                let cmd = DmaCommand {
                    owner: id.token(),
                    tag,
                    ls_addr: (self.reg(id, rls) + ls_off as i64) as u32,
                    mem_addr: (self.reg(id, rmem) + mem_off as i64) as u64,
                    kind: DmaKind::GetStrided {
                        elem_bytes: elem_bytes as u32,
                        count: self.src_val(id, count) as u32,
                        stride: self.src_val(id, stride),
                    },
                };
                self.enqueue_dma(now, id, cmd, in_pf, ctx)
            }
            Instr::DmaPut {
                rls,
                ls_off,
                rmem,
                mem_off,
                bytes,
                tag,
            } => {
                let cmd = DmaCommand {
                    owner: id.token(),
                    tag,
                    ls_addr: (self.reg(id, rls) + ls_off as i64) as u32,
                    mem_addr: (self.reg(id, rmem) + mem_off as i64) as u64,
                    kind: DmaKind::Put {
                        bytes: self.src_val(id, bytes) as u32,
                    },
                };
                let r = self.enqueue_dma(now, id, cmd, in_pf, ctx);
                // A queue-full retry has not issued anything yet; only an
                // accepted put makes the instance unreplayable.
                if !matches!(r, Exec::Retry(..)) {
                    self.lse.instance_mut(id).tainted = true;
                }
                r
            }
            Instr::DmaYield => {
                if self.lse.instance(id).outstanding_dma > 0 {
                    Exec::Yield
                } else {
                    Exec::Next
                }
            }
            Instr::DmaWait { tag } => {
                if self.lse.instance(id).dma_by_tag[tag as usize] > 0 {
                    if in_pf {
                        Exec::Retry(StallCat::Prefetch, FineCat::PfGated)
                    } else {
                        Exec::Retry(StallCat::MemStall, FineCat::DmaWait)
                    }
                } else {
                    Exec::Next
                }
            }
        }
    }

    fn enqueue_dma(
        &mut self,
        now: u64,
        id: InstanceId,
        cmd: DmaCommand,
        in_pf: bool,
        ctx: &mut SysCtx<'_>,
    ) -> Exec {
        // A full MFC queue stalls a PUT on the saturated write path and
        // a GET on the DMA engine itself; inside a PF block both are
        // prefetch-programming overhead.
        let put = matches!(cmd.kind, DmaKind::Put { .. });
        let retry = |in_pf: bool| {
            if in_pf {
                Exec::Retry(StallCat::Prefetch, FineCat::PfGated)
            } else if put {
                Exec::Retry(StallCat::MemStall, FineCat::WriteStall)
            } else {
                Exec::Retry(StallCat::MemStall, FineCat::DmaWait)
            }
        };
        match &mut ctx.port {
            MemPort::Direct { sys, mem } => {
                let Some(plan) = self.mfc.admit(now) else {
                    return retry(in_pf);
                };
                self.note_dma_plan(now, &plan);
                let done = self.mfc.commit(now, cmd, sys, &mut self.ls, mem);
                self.lse.instance_mut(id).dma_issued(cmd.tag);
                self.dma_open += 1;
                self.record(now, id, ThreadEvent::DmaIssued { tag: cmd.tag });
                let stamp = self.stamp.bump();
                if !done.stalled {
                    ctx.out.push((
                        done.at.max(now + 1),
                        Dest::Lse(self.pe),
                        Message::DmaDone {
                            owner: id,
                            tag: cmd.tag,
                        },
                        stamp,
                    ));
                }
                Exec::Next
            }
            MemPort::Deferred { tickets } => {
                // Admission is decidable shard-locally: commands issued
                // inside this epoch cannot retire inside it, so the known
                // outstanding set plus the admitted-pending counter is
                // exact. The coordinator moves the data and schedules the
                // completion; the stamp is consumed now so per-PE stamp
                // streams match the sequential engine. The fault outcome
                // is planned at admission too, so retry exhaustion flips
                // the degraded flag at the same logical point in both
                // engines (the coordinator skips the completion event for
                // stalled commands, mirroring the Direct arm).
                let Some(plan) = self.mfc.admit(now) else {
                    return retry(in_pf);
                };
                self.note_dma_plan(now, &plan);
                self.lse.instance_mut(id).dma_issued(cmd.tag);
                self.dma_open += 1;
                self.record(now, id, ThreadEvent::DmaIssued { tag: cmd.tag });
                let stamp = self.stamp.bump();
                tickets.push(Ticket {
                    time: now,
                    pe: self.pe,
                    seq: self.ticket_seq,
                    kind: TicketKind::Dma {
                        cmd,
                        owner: id,
                        stamp,
                    },
                });
                self.ticket_seq += 1;
                Exec::Next
            }
        }
    }

    /// Can this instance's next work be run on the SP pipeline? True for
    /// a fresh instance whose PF block is straight-line (no control flow,
    /// no blocking main-memory access).
    fn sp_offloadable(&self, id: InstanceId, program: &Program) -> bool {
        let inst = self.lse.instance(id);
        let thread = &program.threads[inst.thread.index()];
        let pf_end = thread.blocks.pf_end;
        if inst.pc != 0 || pf_end == 0 {
            return false;
        }
        thread.code[..pf_end as usize].iter().all(|i| {
            matches!(
                i,
                Instr::Alu { .. }
                    | Instr::Li { .. }
                    | Instr::Mov { .. }
                    | Instr::Nop
                    | Instr::Load { .. }
                    | Instr::LsLoad { .. }
                    | Instr::LsStore { .. }
                    | Instr::DmaGet { .. }
                    | Instr::DmaGetStrided { .. }
                    | Instr::DmaPut { .. }
                    | Instr::DmaYield
            )
        })
    }

    /// Executes an instance's whole PF block on the SP pipeline (one
    /// instruction per SP cycle; the main pipeline keeps running other
    /// threads). The instance moves to *Wait for DMA*, or straight back
    /// to ready when its transfers finished within the block.
    fn run_pf_on_sp(&mut self, id: InstanceId, now: u64, ctx: &mut SysCtx<'_>) {
        let (thread_id, frame, pf_buf_addr) = {
            let inst = self.lse.instance(id);
            (inst.thread, inst.frame, inst.pf_buf_addr)
        };
        let thread = &ctx.program.threads[thread_id.index()];
        let pf_end = thread.blocks.pf_end;
        {
            let inst = self.lse.instance_mut(id);
            inst.regs[FRAME_PTR_REG.index()] = frame.encode() as i64;
            inst.regs[PREFETCH_BASE_REG.index()] = if pf_buf_addr == u32::MAX {
                0
            } else {
                pf_buf_addr as i64
            };
            inst.state = ThreadState::ProgramDma;
        }
        self.record(now, id, ThreadEvent::PfOffloaded);
        let start = self.sp_free_at.max(now);
        let mut t = start;
        for pc in 0..pf_end {
            let i = thread.code[pc as usize];
            self.stats.record_issue(i.class());
            self.count_mem_op(&i);
            match i {
                Instr::Alu { op, rd, ra, rb } => {
                    let v = op.eval(self.reg(id, ra), self.src_val(id, rb));
                    if !rd.is_zero() {
                        self.lse.instance_mut(id).regs[rd.index()] = v;
                    }
                }
                Instr::Li { rd, imm } => {
                    if !rd.is_zero() {
                        self.lse.instance_mut(id).regs[rd.index()] = imm;
                    }
                }
                Instr::Mov { rd, ra } => {
                    let v = self.reg(id, ra);
                    if !rd.is_zero() {
                        self.lse.instance_mut(id).regs[rd.index()] = v;
                    }
                }
                Instr::Load { rd, slot } => {
                    let v = self.lse.instance(id).slot(slot);
                    if !rd.is_zero() {
                        self.lse.instance_mut(id).regs[rd.index()] = v;
                    }
                    t += self.params.ls_latency; // serial SP: no scoreboard
                }
                Instr::LsLoad { rd, ra, off } => {
                    let addr = (self.reg(id, ra) + off as i64) as u32;
                    let v = self.ls.read_i32_sext(addr);
                    if !rd.is_zero() {
                        self.lse.instance_mut(id).regs[rd.index()] = v;
                    }
                    t += self.params.ls_latency;
                }
                Instr::LsStore { rs, ra, off } => {
                    let addr = (self.reg(id, ra) + off as i64) as u32;
                    let v = self.reg(id, rs) as u32;
                    self.ls.write_u32(addr, v);
                }
                Instr::DmaGet { .. } | Instr::DmaGetStrided { .. } | Instr::DmaPut { .. } => {
                    // Re-use the pipeline's command construction, retrying
                    // on a full MFC queue at SP pace. Under fault injection
                    // a stalled command can wedge the queue forever, so
                    // the watchdog bounds the retries: the offload is
                    // abandoned at this pc and the main pipeline resumes
                    // the PF block here if a completion ever re-readies
                    // the instance.
                    let mut spins: u64 = 0;
                    loop {
                        match self.exec(t, id, i, true, ctx) {
                            Exec::Next => break,
                            Exec::Retry(..) => {
                                t += 1;
                                spins += 1;
                                if self.watchdog_spin_limit.is_some_and(|l| spins >= l) {
                                    self.watchdog_parks += 1;
                                    self.parked_hint = true;
                                    self.sp_free_at = t;
                                    self.stats.sp_pf_cycles += t - start;
                                    let inst = self.lse.instance_mut(id);
                                    inst.pc = pc;
                                    inst.state = ThreadState::WaitDma;
                                    if self.obs.events_on() {
                                        self.obs.emit(
                                            now,
                                            ObsEvent::WatchdogPark {
                                                pe: self.pe,
                                                instance: id.0,
                                            },
                                        );
                                    }
                                    self.record(now, id, ThreadEvent::WaitDma);
                                    return;
                                }
                            }
                            _ => unreachable!("DMA exec is Next or Retry"),
                        }
                    }
                }
                Instr::Nop | Instr::DmaYield => {}
                _ => unreachable!("sp_offloadable filtered the PF block"),
            }
            t += 1;
        }
        self.sp_free_at = t;
        self.stats.sp_pf_cycles += t - start;
        let inst = self.lse.instance_mut(id);
        inst.pc = pf_end;
        if inst.outstanding_dma > 0 {
            inst.state = ThreadState::WaitDma;
            self.record(now, id, ThreadEvent::WaitDma);
        } else {
            self.lse.make_ready(now, id);
        }
    }

    /// Records a lifecycle event for `id` (no-op unless events are on).
    /// The instance may already be gone (e.g. a `FrameFreed` for a frame
    /// whose thread stopped before the FFREE message arrived); the
    /// record then carries a sentinel thread id.
    pub(crate) fn record(&mut self, cycle: u64, id: InstanceId, what: ThreadEvent) {
        if self.obs.events_on() {
            let thread = if self.lse.has_instance(id) {
                self.lse.instance(id).thread.0
            } else {
                u32::MAX
            };
            self.obs.emit(
                cycle,
                ObsEvent::Thread {
                    pe: self.pe,
                    instance: id.0,
                    thread,
                    what,
                },
            );
        }
    }

    /// Flushes pending gauge boundaries strictly before `t`. Called at
    /// the top of every tick: boundary records carry the boundary cycle
    /// and grid-derived sequence numbers, so the (engine-dependent) host
    /// time of the flush never shows in the stream.
    fn flush_gauges(&mut self, t: u64) {
        while let Some(b) = self.obs.next_boundary_before(t) {
            self.emit_gauges(b);
        }
    }

    /// Flushes gauge boundaries strictly before `now`. Must run before
    /// any message delivery that can change a sampled value (stores,
    /// frame grants, frees, DMA completions): a boundary's sample then
    /// reflects state after all activity at cycles `<=` the boundary —
    /// a pure function of simulated time, identical whether the PE's
    /// next host-side tick comes from the sequential loop or from an
    /// epoch-sharded engine's forced barrier.
    pub(crate) fn gauge_sync(&mut self, now: u64) {
        if self.obs.metrics_on() {
            self.flush_gauges(now);
        }
    }

    fn emit_gauges(&mut self, b: u64) {
        let pe = self.pe;
        let ready = self.lse.ready_len() as u64;
        let frames = self.lse.frames_in_use() as u64;
        let dma = self.mfc.in_flight(b) as u64;
        let pipe = if self.current.is_some() {
            2
        } else if self.lse.waiting_dma() > 0 {
            1
        } else {
            0
        };
        self.obs.emit_sample(b, GaugeKind::ReadyQueue, pe, ready);
        self.obs.emit_sample(b, GaugeKind::FramesInUse, pe, frames);
        self.obs.emit_sample(b, GaugeKind::DmaInFlight, pe, dma);
        self.obs.emit_sample(b, GaugeKind::PipeState, pe, pipe);
    }

    /// Emits the remaining gauge boundaries through `final_cycle` at the
    /// end of the run.
    pub(crate) fn finish_obs(&mut self, final_cycle: u64) {
        while let Some(b) = self.obs.next_boundary_through(final_cycle) {
            self.emit_gauges(b);
        }
    }

    /// Emits the fault-related events of a freshly admitted DMA plan and
    /// applies the degradation transition.
    fn note_dma_plan(&mut self, now: u64, plan: &DmaPlan) {
        if self.obs.events_on() {
            if plan.attempts > 1 {
                self.obs.emit(
                    now,
                    ObsEvent::DmaRetry {
                        pe: self.pe,
                        retries: plan.attempts - 1,
                    },
                );
            }
            if plan.exhausted {
                self.obs.emit(now, ObsEvent::DmaExhausted { pe: self.pe });
                if !self.degraded {
                    self.obs.emit(now, ObsEvent::PeDegraded { pe: self.pe });
                }
            }
        }
        if plan.exhausted {
            self.degraded = true;
        }
    }

    fn msg_delay(&self, dest_pe: u16) -> u64 {
        if dest_pe == self.pe {
            1
        } else {
            self.params.msg_latency
        }
    }
}

fn pairable(a: IClass, b: IClass) -> bool {
    use IClass::*;
    let simple = |c: IClass| matches!(c, Branch | Frame | Ls);
    (a == Compute && simple(b)) || (simple(a) && b == Compute)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairing_rules() {
        use IClass::*;
        assert!(pairable(Compute, Branch));
        assert!(pairable(Frame, Compute));
        assert!(pairable(Compute, Ls));
        assert!(!pairable(Compute, Compute));
        assert!(!pairable(Compute, Mem));
        assert!(!pairable(Mem, Compute));
        assert!(!pairable(Compute, Dma));
        assert!(!pairable(Sched, Compute));
        assert!(!pairable(Branch, Frame));
    }
}
