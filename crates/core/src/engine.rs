//! The epoch-sharded parallel engine.
//!
//! [`run_sharded`] partitions the machine into per-node **shards** — each
//! owning a contiguous range of PEs plus the DSEs of the nodes whose first
//! PE falls in that range — and executes them on host threads in
//! lock-step **epochs** of `W` simulated cycles, where `W` is the
//! conservative lookahead: the minimum latency of any interaction that
//! can cross a shard boundary or touch globally shared state
//! ([`epoch_width`]).
//!
//! Within an epoch every shard ticks its own PEs against its own event
//! queue; interactions with the *shared* memory system (scalar
//! `READ`/`WRITE`, DMA data movement) are recorded as
//! [`Ticket`]s and resolved at the epoch barrier by the coordinator in
//! `(time, pe, seq)` order — exactly the order in which the sequential
//! engine, which ticks PEs in index order within a cycle, would have
//! performed them. Cross-shard messages always have delivery latency
//! ≥ `W`, so they land in a future epoch and can be exchanged at the
//! barrier. Same-cycle deliveries are ordered by the partition-independent
//! [`MsgSeq`] stamp everywhere. The net effect: identical per-unit event
//! sequences, identical reservation-pool watermarks, and therefore
//! bit-identical [`RunStats`] for any shard count — the property the
//! `determinism` integration test enforces.
//!
//! Shard count and OS-thread count are decoupled: partitioning never
//! affects results, so on a single-core host (or under
//! `DTA_HOST_PARALLELISM=1`) all shards run the identical epoch protocol
//! on the calling thread instead of paying barrier rendezvous with no
//! hardware parallelism behind them.

use crate::config::{FaultPlan, SchedMode, SystemConfig};
use crate::fault::{msg_exempt, FailoverSchedule, FaultCounters, DUP_STAMP_BIT};
use crate::pipeline::{Activity, MemPort, OutMsg, Pe, SysCtx, Ticket, TicketKind};
use crate::stats::{EngineReport, RunStats};
use crate::system::{deliver, transform_obs, DeliverEnv, Event, RunError, System};
use dta_isa::Program;
use dta_mem::{MainMemory, MemorySystem, TransferKind};
use dta_obs::{ObsEvent, ObsLog, ObsRecord, ObsSink};
use dta_sched::{Dest, Dse, Message, MsgSeq};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The conservative epoch width: no interaction that leaves a shard (or
/// returns to one from the shared memory system) can take effect sooner
/// than this many cycles after it is initiated.
///
/// * scheduler messages to any other unit take `msg_latency` (same-PE
///   messages take 1 cycle but never leave the shard);
/// * a DMA completion cannot arrive before `mfc.command_latency` (which
///   also makes shard-local MFC *admission* exact: commands issued inside
///   an epoch cannot retire inside it);
/// * a deferred scalar `READ`'s response cannot arrive before the
///   cheapest read path completes — the cache hit latency when a cache is
///   configured, else a safe lower bound on the uncached path
///   (command packet + memory access + response).
fn epoch_width(config: &SystemConfig) -> u64 {
    let read_floor = match config.cache {
        Some(c) => c.hit_latency,
        None => 1 + config.wire_latency + config.mem_latency,
    };
    config
        .msg_latency
        .min(config.mfc.command_latency)
        .min(read_floor)
        .max(1)
}

/// One shard: a contiguous slice of the machine with its own event queue.
struct Shard {
    pe_base: u16,
    pes: Vec<Pe>,
    dse_base: u16,
    dses: Vec<Dse>,
    dse_stamps: Vec<MsgSeq>,
    events: BinaryHeap<Event>,
    /// Deferred shared-memory operations from the epoch just run.
    tickets: Vec<Ticket>,
    /// Posts destined for other shards, exchanged at the barrier.
    remote: Vec<OutMsg>,
    /// Scratch post buffer (deliveries and ticks both fill it; routed
    /// after each step).
    posts: Vec<OutMsg>,
    /// Observability logs of this shard's DSEs (riding with `dses`).
    dse_obs: Vec<ObsLog>,
    /// Message-fault records from this shard's transform sites (appended
    /// to the system's at reassembly; order is irrelevant — the stream
    /// sort restores deterministic wall order).
    obs_misc: Vec<ObsRecord>,
    /// Whether structured events are recorded (mirrors the PEs' logs).
    obs_events: bool,
    /// Scratch `drain_until` for the tick context; never written through
    /// the deferred port (writes become tickets instead).
    scratch_drain: u64,
    /// The next cycle this shard's own units want to run (≥ the epoch end
    /// it last finished, or `u64::MAX` when fully quiescent).
    next_hint: u64,
    /// Last cycle this shard's body actually visited.
    last_t: u64,
    nodes: u16,
    pes_per_node: u16,
    msg_latency: u64,
    /// Message-fault plan, pre-filtered to `None` when no message rates
    /// are configured (DMA/FALLOC faults don't touch routing).
    msg_faults: Option<FaultPlan>,
    /// The whole fault plan (drives the deliver-time FALLOC denial roll).
    faults: Option<FaultPlan>,
    /// Shared DSE crash/restart schedule (pure-time queries, so every
    /// shard answers routing questions identically). All failover posts
    /// delay by ≥ the message latency ≥ the epoch width, so the protocol
    /// is epoch-safe.
    failover: Option<Arc<FailoverSchedule>>,
    /// This shard's message-fault counters (merged into the system at
    /// reassembly).
    fault_counts: FaultCounters,
    /// Host time-advance mode (fast-forward uses the wake heap below).
    sched: SchedMode,
    /// Cached epoch width (the conservative cross-shard lookahead; also
    /// the adaptive clamp distance).
    epoch_w: u64,
    /// Fast-forward: each local PE's earliest scheduled tick
    /// (`u64::MAX` = none; only a delivery can make it runnable).
    wake: Vec<u64>,
    /// Fast-forward: (time, local PE) wake entries with lazy
    /// invalidation — an entry is stale when its time no longer matches
    /// `wake[pe]`. Pops in (time, pe) order, preserving the dense
    /// engine's within-cycle PE tick order.
    wheap: BinaryHeap<Reverse<(u64, u16)>>,
    /// This shard's visited-cycle/tick counters (merged at reassembly).
    report: EngineReport,
}

impl Shard {
    /// Earliest cycle at which this shard has anything to do.
    fn next_ready(&self) -> u64 {
        self.next_hint
            .min(self.events.peek().map_or(u64::MAX, |e| e.time))
    }

    /// Moves everything in `posts` into the local queue (clamped to
    /// strictly-future delivery, like the sequential engine's `post`) or
    /// the cross-shard buffer. Message faults are applied *here*, before
    /// the local/remote split — the same single injection point per post
    /// as the sequential engine's `post`, rolled on the same stamp key, so
    /// both engines fault the same messages identically. Transforms only
    /// ever increase delivery time, so they cannot violate the epoch
    /// horizon.
    fn route_posts(&mut self, t: u64) {
        let pe_end = self.pe_base + self.pes.len() as u16;
        let dse_end = self.dse_base + self.dses.len() as u16;
        let mut posts = std::mem::take(&mut self.posts);
        for (time, to, msg, stamp) in posts.drain(..) {
            let time = time.max(t + 1);
            let ((time, stamp), dup) = match self.msg_faults {
                Some(f) if !msg_exempt(&msg) => transform_obs(
                    &f,
                    time,
                    stamp,
                    &mut self.fault_counts,
                    self.obs_events,
                    &mut self.obs_misc,
                ),
                _ => ((time, stamp), None),
            };
            let local = match to {
                Dest::Dse(n) => n >= self.dse_base && n < dse_end,
                Dest::Lse(p) | Dest::Pipeline(p) => p >= self.pe_base && p < pe_end,
            };
            for (time, stamp) in dup.into_iter().chain(std::iter::once((time, stamp))) {
                if local {
                    self.events.push(Event {
                        time,
                        stamp,
                        to,
                        msg,
                    });
                } else {
                    self.remote.push((time, to, msg, stamp));
                }
            }
        }
        self.posts = posts;
    }

    /// Runs this shard over simulated cycles `[e_start, e_end)` — the
    /// same deliver-then-tick body as the sequential engine, restricted to
    /// this shard's units, with event-based time skipping inside the
    /// window.
    ///
    /// In fast-forward mode only *due* PEs tick (see the wake-heap notes
    /// on `System::run_sequential_ff`; the skipped ticks are the dense
    /// loop's blocked/idle no-ops). When `adaptive` widening granted a
    /// window beyond one lookahead, the shard self-clamps: the first
    /// cycle `c` that initiates any cross-epoch interaction (a deferred
    /// shared-memory ticket, whose completion is synthesized only at the
    /// barrier, or a cross-shard post) shrinks the window to `c +
    /// epoch_w`, since nothing initiated at `c` can take effect — or
    /// provoke a response — before `c + epoch_w` (DESIGN.md §12).
    fn run_epoch(&mut self, e_start: u64, mut e_end: u64, adaptive: bool, program: &Program) {
        let wall = std::time::Instant::now();
        let ff = self.sched == SchedMode::FastForward;
        let mut t = self.next_ready().max(e_start);
        while t < e_end {
            self.last_t = t;
            self.report.visited_cycles += 1;
            if ff {
                // Host-side heap pressure, sampled once per visited
                // cycle (stale lazy-invalidation entries are real
                // occupancy).
                self.report.wake_heap_occupancy.add(self.wheap.len() as u64);
            } else {
                // Dense shards tick every PE each visited cycle; sample
                // the same "wake set" notion so host-profile occupancy
                // tables compare like with like across engines.
                self.report.wake_heap_occupancy.add(self.pes.len() as u64);
            }

            while self.events.peek().is_some_and(|e| e.time <= t) {
                let e = self.events.pop().expect("peeked");
                if e.stamp.seq & DUP_STAMP_BIT != 0 {
                    // Injected duplicate — discard (same rule as the
                    // sequential engine's event pop).
                    continue;
                }
                match e.to {
                    Dest::Lse(_) | Dest::Pipeline(_) => self.report.pe_deliveries += 1,
                    Dest::Dse(_) => self.report.dse_deliveries += 1,
                }
                if ff {
                    // A delivery to a PE means it must tick this cycle.
                    match e.to {
                        Dest::Lse(p) | Dest::Pipeline(p) => {
                            let slot = &mut self.wake[(p - self.pe_base) as usize];
                            if t < *slot {
                                *slot = t;
                                self.wheap.push(Reverse((t, p - self.pe_base)));
                            }
                        }
                        Dest::Dse(_) => {}
                    }
                }
                let mut env = DeliverEnv {
                    pes: &mut self.pes,
                    pe_base: self.pe_base,
                    dses: &mut self.dses,
                    dse_base: self.dse_base,
                    dse_stamps: &mut self.dse_stamps,
                    program,
                    nodes: self.nodes,
                    pes_per_node: self.pes_per_node,
                    msg_latency: self.msg_latency,
                    dse_obs: &mut self.dse_obs,
                    posts: &mut self.posts,
                    faults: self.faults,
                    failover: self.failover.as_deref(),
                };
                deliver(&mut env, t, e.to, e.msg);
                self.route_posts(t);
            }

            let mut any_active = false;
            let mut next_wake = u64::MAX;
            {
                let mut ctx = SysCtx {
                    port: MemPort::Deferred {
                        tickets: &mut self.tickets,
                    },
                    program,
                    out: &mut self.posts,
                    drain_until: &mut self.scratch_drain,
                    failover: self.failover.as_deref(),
                };
                if ff {
                    while let Some(&Reverse((wt, p))) = self.wheap.peek() {
                        if wt > t {
                            break;
                        }
                        self.wheap.pop();
                        let pi = p as usize;
                        if self.wake[pi] != wt {
                            continue; // stale entry
                        }
                        self.wake[pi] = u64::MAX;
                        self.report.pe_ticks += 1;
                        let next = match self.pes[pi].tick(t, &mut ctx) {
                            Activity::Active => t + 1,
                            Activity::Blocked(w) => w,
                            Activity::Idle => u64::MAX,
                        };
                        if next < u64::MAX {
                            debug_assert!(next > t, "wake must be in the future");
                            self.wake[pi] = next;
                            self.wheap.push(Reverse((next, p)));
                        }
                    }
                } else {
                    self.report.pe_ticks += self.pes.len() as u64;
                    for pe in self.pes.iter_mut() {
                        match pe.tick(t, &mut ctx) {
                            Activity::Active => any_active = true,
                            Activity::Blocked(w) => next_wake = next_wake.min(w),
                            Activity::Idle => {}
                        }
                    }
                }
            }
            self.route_posts(t);

            if adaptive
                && e_end > t + self.epoch_w
                && (!self.tickets.is_empty() || !self.remote.is_empty())
            {
                // First cross-epoch initiation in this widened window.
                e_end = t + self.epoch_w;
            }

            if ff {
                let nw = loop {
                    match self.wheap.peek() {
                        Some(&Reverse((wt, p))) if self.wake[p as usize] != wt => {
                            self.wheap.pop(); // stale
                        }
                        Some(&Reverse((wt, _))) => break wt,
                        None => break u64::MAX,
                    }
                };
                let peek = self.events.peek().map_or(u64::MAX, |e| e.time);
                t = nw.min(peek).max(t + 1);
            } else if any_active {
                t += 1;
            } else {
                let peek = self.events.peek().map_or(u64::MAX, |e| e.time);
                t = next_wake.min(peek).max(t + 1);
            }
        }
        self.next_hint = t;
        // Accumulate this epoch's body wall time into the shard total
        // (single slot; reassembly collects one entry per shard).
        let us = wall.elapsed().as_micros() as u64;
        match self.report.shard_wall_us.first_mut() {
            Some(acc) => *acc += us,
            None => self.report.shard_wall_us.push(us),
        }
    }
}

/// Coordinator-owned shared state for the barrier-time merge.
struct MergeCtx<'a> {
    memsys: &'a mut MemorySystem,
    mem: &'a mut MainMemory,
    drain_until: &'a mut u64,
    /// Owning shard of each global PE index.
    pe_owner: &'a [usize],
    /// Owning shard of each node's DSE.
    dse_owner: &'a [usize],
    /// Ticket scratch, reused across barriers (cleared by `drain`).
    tickets: Vec<Ticket>,
    /// Cross-shard post scratch, reused across barriers.
    remote: Vec<OutMsg>,
}

/// Resolves the epoch's deferred shared-memory tickets in sequential wall
/// order, exchanges cross-shard posts, and returns the two earliest
/// shard-ready cycles `(r1, r2)` — `r1` is the next epoch start
/// (`u64::MAX` when the whole machine is quiescent), `r2` bounds the next
/// adaptive widening.
fn merge_epoch(shards: &mut [&mut Shard], ctx: &mut MergeCtx<'_>) -> (u64, u64) {
    let tickets = &mut ctx.tickets;
    debug_assert!(tickets.is_empty());
    for s in shards.iter_mut() {
        tickets.append(&mut s.tickets);
    }
    // (time, pe, seq) is exactly the order the sequential engine touches
    // the shared memory system: it ticks PEs in index order within each
    // cycle, and deliveries never touch it.
    tickets.sort_unstable_by_key(|t| (t.time, t.pe, t.seq));
    for tk in tickets.drain(..) {
        let shard = &mut *shards[ctx.pe_owner[tk.pe as usize]];
        let idx = (tk.pe - shard.pe_base) as usize;
        match tk.kind {
            TicketKind::Read { addr } => {
                let value = ctx.mem.read_i32_sext(addr);
                let pe = &mut shard.pes[idx];
                let until = match &mut pe.cache {
                    Some(c) => c.read(tk.time, addr, ctx.memsys),
                    None => ctx.memsys.request(tk.time, TransferKind::ScalarRead),
                };
                // The response is synthetic (the sequential engine blocks
                // inline), so its stamp only needs deterministic
                // uniqueness; the high bit keeps it clear of real send
                // counters.
                shard.events.push(Event {
                    time: until.max(tk.time + 1),
                    stamp: MsgSeq {
                        src_rank: tk.pe as u32,
                        seq: (1 << 63) | tk.seq,
                    },
                    to: Dest::Pipeline(tk.pe),
                    msg: Message::ReadDone {
                        value,
                        ready_at: until,
                    },
                });
            }
            TicketKind::Write { addr, value } => {
                ctx.mem.write_u32(addr, value);
                let pe = &mut shard.pes[idx];
                if let Some(c) = &mut pe.cache {
                    c.write(tk.time, addr);
                }
                let done = ctx.memsys.request(tk.time, TransferKind::ScalarWrite);
                *ctx.drain_until = (*ctx.drain_until).max(done);
            }
            TicketKind::Dma { cmd, owner, stamp } => {
                let pe = &mut shard.pes[idx];
                let done = pe.mfc.commit(tk.time, cmd, ctx.memsys, &mut pe.ls, ctx.mem);
                if done.stalled {
                    // Permanently stalled by fault injection: no data
                    // moved and no completion is ever delivered (mirrors
                    // the sequential Direct arm).
                    continue;
                }
                // The completion takes the same fault rolls as the
                // sequential engine's post of this very message (same
                // stamp, so same key).
                let msg = Message::DmaDone {
                    owner,
                    tag: done.tag,
                };
                let time = done.at.max(tk.time + 1);
                let ((time, stamp), dup) = match shard.msg_faults {
                    Some(f) if !msg_exempt(&msg) => transform_obs(
                        &f,
                        time,
                        stamp,
                        &mut shard.fault_counts,
                        shard.obs_events,
                        &mut shard.obs_misc,
                    ),
                    _ => ((time, stamp), None),
                };
                for (time, stamp) in dup.into_iter().chain(std::iter::once((time, stamp))) {
                    shard.events.push(Event {
                        time,
                        stamp,
                        to: Dest::Lse(tk.pe),
                        msg,
                    });
                }
            }
        }
    }

    let remote = &mut ctx.remote;
    debug_assert!(remote.is_empty());
    for s in shards.iter_mut() {
        remote.append(&mut s.remote);
    }
    for (time, to, msg, stamp) in remote.drain(..) {
        let s = match to {
            Dest::Dse(n) => ctx.dse_owner[n as usize],
            Dest::Lse(p) | Dest::Pipeline(p) => ctx.pe_owner[p as usize],
        };
        shards[s].events.push(Event {
            time,
            stamp,
            to,
            msg,
        });
    }

    let (mut r1, mut r2) = (u64::MAX, u64::MAX);
    for r in shards.iter().map(|s| s.next_ready()) {
        if r < r1 {
            r2 = r1;
            r1 = r;
        } else if r < r2 {
            r2 = r;
        }
    }
    (r1, r2)
}

/// Incremental obs streaming at an epoch barrier: drains every record
/// stamped `<= h` out of the shards' per-unit rings (forced gauge flush
/// first — sound because unit state is untouched between visits, so the
/// samples are identical whenever they materialise) and the engine's own
/// log, feeds the attached sink in wall order, and accumulates the batch
/// for the final merge. `h` must be a safe horizon: with `h = next - 1`
/// where `next` is the earliest shard-ready cycle after the merge, every
/// cycle `<= h` is fully simulated machine-wide.
fn stream_epoch<'s>(
    shards: impl Iterator<Item = &'s mut Shard>,
    engine_obs: &mut ObsLog,
    h: u64,
    batch: &mut Vec<ObsRecord>,
    streamed: &mut Vec<ObsRecord>,
    sink: &mut Option<Box<dyn ObsSink + Send>>,
) {
    debug_assert!(batch.is_empty());
    for s in shards {
        for pe in &mut s.pes {
            pe.finish_obs(h);
            pe.obs.drain_through(h, batch);
        }
        for log in &mut s.dse_obs {
            log.drain_through(h, batch);
        }
        // Shard-local fault records carry the faulted message's
        // *delivery* stamp, which can lie past the post time, so the vec
        // is not cycle-sorted: extract by predicate (residual order is
        // irrelevant — the final merge re-sorts on unique keys).
        let mut i = 0;
        while i < s.obs_misc.len() {
            if s.obs_misc[i].cycle <= h {
                batch.push(s.obs_misc.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    engine_obs.drain_through(h, batch);
    batch.sort_unstable_by_key(ObsRecord::key);
    if let Some(sink) = sink.as_deref_mut() {
        for r in batch.iter() {
            sink.record(r);
        }
    }
    streamed.append(batch);
}

/// A sense-reversing spin barrier. Epochs are short (a handful of
/// simulated cycles), so a futex-based barrier's syscall cost would
/// dominate; spinning with a bounded backoff to `yield_now` keeps the
/// rendezvous in the sub-microsecond range.
struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            count: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                spins = spins.wrapping_add(1);
                if spins < 10_000 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

enum Outcome {
    /// Nothing will ever happen again (finished, or deadlocked).
    Exhausted,
    /// The next interesting cycle lies beyond `max_cycles`.
    CycleLimit,
}

/// Chooses the end of the epoch starting at `e`.
///
/// Fixed width `w` in dense mode. Under fast-forward, when the
/// second-earliest shard activity `r2` lies at least one lookahead past
/// `e`, the window widens to `r2`: exactly one shard can run before `r2`,
/// so the only deliveries that could land in a visited past are that
/// shard's own barrier-resolved responses — and its body self-clamps to
/// one lookahead past its first cross-epoch initiation, keeping every
/// such delivery strictly in its future (see `Shard::run_epoch` and
/// DESIGN.md §12). Every other shard first acts at `≥ r2 ≥` the window
/// end, so it simulates nothing inside the window at all.
fn epoch_end_cycle(e: u64, r2: u64, w: u64, adaptive: bool, max_cycles: u64) -> u64 {
    let cap = max_cycles.saturating_add(1);
    let fixed = e.saturating_add(w);
    if adaptive && r2 >= fixed {
        r2.min(cap)
    } else {
        fixed.min(cap)
    }
}

/// How many OS threads are worth spawning. Shard *partitioning* never
/// affects results, so the engine is free to run every shard on one
/// thread when the host has a single core — spawning more would turn
/// each epoch barrier into a scheduler round-trip (observed: 3 orders
/// of magnitude slower on a 1-core container). `DTA_HOST_PARALLELISM`
/// overrides detection, mainly so tests can force the threaded path.
fn host_parallelism() -> usize {
    std::env::var("DTA_HOST_PARALLELISM")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs `sys` to completion on up to `threads` host threads. Produces
/// results bit-identical to [`System::run`] with parallelism off.
pub(crate) fn run_sharded(sys: &mut System, threads: usize) -> Result<RunStats, RunError> {
    let total = sys.config.total_pes() as usize;
    if total == 0 {
        return sys.run_sequential();
    }
    let nshards = threads.min(total).max(1);
    let ppn = sys.config.pes_per_node as usize;

    // Partition: contiguous PE chunks; each node's DSE rides with the
    // shard owning the node's first PE.
    let mut pes = std::mem::take(&mut sys.pes);
    let mut dses = std::mem::take(&mut sys.dses);
    let mut dse_stamps = std::mem::take(&mut sys.dse_stamps);
    let mut dse_obs_all = std::mem::take(&mut sys.dse_obs);
    let obs_events = sys.config.obs_events_on();
    let w = epoch_width(&sys.config);
    let sched = sys.config.sched;
    let base = total / nshards;
    let extra = total % nshards;
    let mut pe_owner = vec![0usize; total];
    let mut dse_owner = vec![0usize; dses.len()];
    let mut shards: Vec<Shard> = Vec::with_capacity(nshards);
    {
        let mut pes_iter = pes.drain(..);
        let mut next_pe = 0usize;
        for s in 0..nshards {
            let n = base + usize::from(s < extra);
            for owner in &mut pe_owner[next_pe..next_pe + n] {
                *owner = s;
            }
            shards.push(Shard {
                pe_base: next_pe as u16,
                pes: pes_iter.by_ref().take(n).collect(),
                dse_base: 0,
                dses: Vec::new(),
                dse_stamps: Vec::new(),
                events: BinaryHeap::new(),
                tickets: Vec::new(),
                remote: Vec::new(),
                posts: Vec::new(),
                dse_obs: Vec::new(),
                obs_misc: Vec::new(),
                obs_events,
                scratch_drain: 0,
                next_hint: 0,
                last_t: 0,
                nodes: sys.config.nodes,
                pes_per_node: sys.config.pes_per_node,
                msg_latency: sys.config.msg_latency,
                msg_faults: sys.config.faults.filter(|f| f.has_msg_faults()),
                faults: sys.config.faults,
                failover: sys.failover.clone(),
                fault_counts: FaultCounters::default(),
                sched,
                epoch_w: w,
                // Every PE is due at cycle 0.
                wake: vec![0; n],
                wheap: (0..n).map(|p| Reverse((0u64, p as u16))).collect(),
                report: EngineReport::default(),
            });
            next_pe += n;
        }
    }
    for (node, ((dse, stamp), obs)) in dses
        .drain(..)
        .zip(dse_stamps.drain(..))
        .zip(dse_obs_all.drain(..))
        .enumerate()
    {
        let s = pe_owner[node * ppn];
        dse_owner[node] = s;
        let shard = &mut shards[s];
        if shard.dses.is_empty() {
            shard.dse_base = node as u16;
        }
        shard.dses.push(dse);
        shard.dse_stamps.push(stamp);
        shard.dse_obs.push(obs);
    }
    // Route any events pending at run start (the failover schedule's
    // pre-posted crash/restart injections; each lands in the shard owning
    // the target DSE).
    for e in sys.events.drain() {
        let s = match e.to {
            Dest::Dse(n) => dse_owner[n as usize],
            Dest::Lse(p) | Dest::Pipeline(p) => pe_owner[p as usize],
        };
        shards[s].events.push(e);
    }

    let max_cycles = sys.config.max_cycles;
    // Adaptive widening needs the self-clamp, which only the fast-forward
    // epoch body implements; dense keeps the fixed lookahead.
    let adaptive = sched == SchedMode::FastForward;
    let program = sys.program.clone();
    let mut drain_until = sys.drain_until;
    let engine_obs = &mut sys.engine_obs;
    let mut mctx = MergeCtx {
        memsys: &mut sys.memsys,
        mem: &mut sys.mem,
        drain_until: &mut drain_until,
        pe_owner: &pe_owner,
        dse_owner: &dse_owner,
        tickets: Vec::new(),
        remote: Vec::new(),
    };
    let mut epochs = 0u64;
    let mut merged_epochs = 0u64;
    let mut merge_wall_us = 0u64;
    let stream_every = sys.config.obs_stream_interval();
    let mut stream_sink = sys.stream_sink.take();
    let mut streamed: Vec<ObsRecord> = Vec::new();
    let mut stream_batch: Vec<ObsRecord> = Vec::new();
    let mut stream_next = stream_every;

    let outcome;
    if nshards == 1 || host_parallelism() == 1 {
        // The full epoch protocol — partitioning, tickets, stamps, epoch
        // skipping, cross-shard routing, barrier-order merge — on the
        // current thread. Taken when there is one shard, or when the host
        // has one core (results are partition-independent, so skipping the
        // OS threads changes nothing but wall-clock).
        let mut e = 0u64;
        let mut r2 = 0u64;
        outcome = loop {
            let e_end = epoch_end_cycle(e, r2, w, adaptive, max_cycles);
            epochs += 1;
            engine_obs.emit(
                e,
                ObsEvent::Epoch {
                    start: e,
                    end: e_end,
                },
            );
            for shard in shards.iter_mut() {
                shard.run_epoch(e, e_end, adaptive, &program);
            }
            let mut refs: Vec<&mut Shard> = shards.iter_mut().collect();
            let merge_t0 = std::time::Instant::now();
            let (next, next2) = merge_epoch(&mut refs, &mut mctx);
            merge_wall_us += merge_t0.elapsed().as_micros() as u64;
            if stream_every > 0 && next != u64::MAX && next.saturating_sub(1) >= stream_next {
                stream_epoch(
                    refs.iter_mut().map(|s| &mut **s),
                    engine_obs,
                    next - 1,
                    &mut stream_batch,
                    &mut streamed,
                    &mut stream_sink,
                );
                stream_next = next.saturating_add(stream_every);
            }
            if e_end > e.saturating_add(w) {
                // Widened window: count the fixed-width barriers it saved.
                let span = next.min(e_end).saturating_sub(e);
                merged_epochs += span.div_ceil(w).saturating_sub(1);
            }
            if next == u64::MAX {
                break Outcome::Exhausted;
            }
            if next > max_cycles {
                break Outcome::CycleLimit;
            }
            e = next;
            r2 = next2;
        };
    } else {
        let stop = AtomicBool::new(false);
        let epoch_start = AtomicU64::new(0);
        let epoch_end = AtomicU64::new(0);
        let barrier = SpinBarrier::new(nshards);
        let mutexes: Vec<Mutex<Shard>> = shards.drain(..).map(Mutex::new).collect();
        let program_ref: &Program = &program;

        let adaptive_flag = adaptive;
        outcome = std::thread::scope(|scope| {
            for i in 1..nshards {
                let (barrier, stop) = (&barrier, &stop);
                let (epoch_start, epoch_end) = (&epoch_start, &epoch_end);
                let mutexes = &mutexes;
                scope.spawn(move || loop {
                    barrier.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let s = epoch_start.load(Ordering::Acquire);
                    let e = epoch_end.load(Ordering::Acquire);
                    let mut shard = mutexes[i].lock().expect("shard mutex poisoned");
                    shard.run_epoch(s, e, adaptive_flag, program_ref);
                    drop(shard);
                    barrier.wait();
                });
            }

            // This thread is worker 0 *and* the coordinator. While it
            // merges, the workers spin at the next epoch's opening
            // barrier, so locking every shard here cannot contend.
            let mut e = 0u64;
            let mut r2 = 0u64;
            loop {
                let e_end = epoch_end_cycle(e, r2, w, adaptive, max_cycles);
                epochs += 1;
                engine_obs.emit(
                    e,
                    ObsEvent::Epoch {
                        start: e,
                        end: e_end,
                    },
                );
                epoch_start.store(e, Ordering::Release);
                epoch_end.store(e_end, Ordering::Release);
                barrier.wait();
                mutexes[0].lock().expect("shard mutex poisoned").run_epoch(
                    e,
                    e_end,
                    adaptive_flag,
                    program_ref,
                );
                barrier.wait();

                let mut guards: Vec<_> = mutexes
                    .iter()
                    .map(|m| m.lock().expect("shard mutex poisoned"))
                    .collect();
                let mut refs: Vec<&mut Shard> = guards.iter_mut().map(|g| &mut **g).collect();
                let merge_t0 = std::time::Instant::now();
                let (next, next2) = merge_epoch(&mut refs, &mut mctx);
                merge_wall_us += merge_t0.elapsed().as_micros() as u64;
                if stream_every > 0 && next != u64::MAX && next.saturating_sub(1) >= stream_next {
                    stream_epoch(
                        refs.iter_mut().map(|s| &mut **s),
                        engine_obs,
                        next - 1,
                        &mut stream_batch,
                        &mut streamed,
                        &mut stream_sink,
                    );
                    stream_next = next.saturating_add(stream_every);
                }
                drop(guards);
                if e_end > e.saturating_add(w) {
                    let span = next.min(e_end).saturating_sub(e);
                    merged_epochs += span.div_ceil(w).saturating_sub(1);
                }

                if next == u64::MAX || next > max_cycles {
                    stop.store(true, Ordering::Release);
                    barrier.wait();
                    break if next == u64::MAX {
                        Outcome::Exhausted
                    } else {
                        Outcome::CycleLimit
                    };
                }
                e = next;
                r2 = next2;
            }
        });

        shards = mutexes
            .into_iter()
            .map(|m| m.into_inner().expect("shard mutex poisoned"))
            .collect();
    }

    // Reassemble the machine (shards hold contiguous, ordered slices).
    sys.drain_until = drain_until;
    let mut now = 0u64;
    let mut report = EngineReport {
        epochs,
        merged_epochs,
        merge_wall_us,
        mem_requests: sys.memsys.stats().total(),
        ..EngineReport::default()
    };
    for shard in &mut shards {
        now = now.max(shard.last_t);
        let npes = shard.pes.len() as u64;
        report.visited_cycles += shard.report.visited_cycles;
        report.pe_ticks += shard.report.pe_ticks;
        report.skipped_ticks += shard
            .report
            .visited_cycles
            .saturating_mul(npes)
            .saturating_sub(shard.report.pe_ticks);
        report
            .shard_wall_us
            .push(shard.report.shard_wall_us.first().copied().unwrap_or(0));
        report
            .wake_heap_occupancy
            .absorb(&shard.report.wake_heap_occupancy);
        report.pe_deliveries += shard.report.pe_deliveries;
        report.dse_deliveries += shard.report.dse_deliveries;
        for pe in &shard.pes {
            let m = pe.memo_counters();
            report.memo_hits += m.hits;
            report.memo_misses += m.misses;
            report.memo_replayed_cycles += m.replayed_cycles;
            report.memo_aborts += m.aborts;
        }
        sys.pes.append(&mut shard.pes);
        sys.dses.append(&mut shard.dses);
        sys.dse_stamps.append(&mut shard.dse_stamps);
        sys.dse_obs.append(&mut shard.dse_obs);
        sys.obs_misc.append(&mut shard.obs_misc);
        sys.fault_counts.absorb(shard.fault_counts);
    }
    sys.engine_report = report;
    sys.streamed.append(&mut streamed);
    sys.stream_sink = stream_sink;
    // The deepest cycle any shard's body visited is exactly the sequential
    // engine's final `now`: every shard-visited cycle is also visited by
    // the sequential loop, and the last sequentially-visited cycle belongs
    // to whichever shard hosted its activity.
    sys.now = now;

    match outcome {
        Outcome::CycleLimit => {
            sys.finalize_obs(sys.now);
            Err(sys.cycle_limit_error())
        }
        Outcome::Exhausted => {
            // Same lost-work gate as the sequential loops: a quiet machine
            // with unrecovered crash work is a fault outcome.
            let live: usize = sys.pes.iter().map(|p| p.lse.live_instances()).sum();
            if live > 0 || sys.unrecovered_work() > 0 {
                sys.finalize_obs(sys.now);
                return Err(sys.quiescence_error());
            }
            let final_cycle = sys.now.max(sys.drain_until);
            for pe in &mut sys.pes {
                pe.finish(final_cycle);
            }
            sys.finalize_obs(final_cycle);
            Ok(sys.collect(final_cycle))
        }
    }
}
