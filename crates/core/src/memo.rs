//! Instance-level memoization & timing replay (R3-DLA applied to the host).
//!
//! The paper's workloads spawn thousands of *byte-identical* thread
//! instances; after fast-forward removed idle ticks, re-interpreting each
//! one instruction by instruction is the dominant host cost. This module
//! lets a PE recognise a repeated **pure segment** — the instruction span
//! between two *boundary* instructions (anything that touches the shared
//! memory system, the scheduler fabric, or the DMA engine) — and replay
//! its recorded timing skeleton instead of re-executing it.
//!
//! The contract is bit-identical simulation output. It rests on three
//! legs:
//!
//! 1. **Functional pre-execution.** Pure instructions (ALU, moves,
//!    branches, frame/local-store accesses) depend only on the instance's
//!    registers, its frame slots and local-store bytes — state that
//!    nothing else mutates while the instance runs. At a segment entry the
//!    PE *functionally* interprets the span in one host pass, producing
//!    the final registers, the outbound `STORE`/`FFREE` effects, and the
//!    local-store writes. Data values are therefore always fresh — only
//!    *timing* is cached.
//! 2. **Path-signature keying.** Segment timing is a pure function of the
//!    executed path (pc sequence — branch decisions included), the
//!    register scoreboard's *relative* ready times and stall buckets, the
//!    LS-port watermarks, and the degraded flag. All of those feed an
//!    FNV-1a-128 key; two segments with equal keys issue identically,
//!    cycle for cycle, relative to their entry cycles.
//! 3. **Contention windows.** A recorded skeleton is only *fired* when
//!    nothing external can perturb the span: either the PE has no DMA in
//!    flight, or its in-flight set provably stays constant through the
//!    span ([`Mfc::quiet_until`](dta_mem::Mfc)). Otherwise the attempt
//!    falls back to normal interpretation — a miss, never an error.
//!
//! Recorded skeletons are *shift-invariant*: every in-span timestamp is
//! stored relative to the entry cycle, and the DMA-overlap attribution
//! (which depends on the fire-time `dma_open`) is normalised out of the
//! recorded stats delta and re-added at fire time.

use crate::config::MemoConfig;
use crate::stats::{PeStats, StallCat};
use dta_isa::program::ThreadCode;
use dta_isa::{FramePtr, Instr, Reg, Src, NUM_REGS, ZERO_REG};
use dta_mem::LocalStore;
use dta_sched::{Instance, InstanceId};
use std::collections::HashMap;
use std::sync::Arc;

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental FNV-1a-style 128-bit hash over the key material, folding
/// whole words (one multiply per word instead of one per byte: the hash
/// sits on the segment-attempt hot path). Local to the memo layer (cache
/// keys never leave the host), so it need not match byte-wise FNV test
/// vectors — only determinism and diffusion matter, and the 128-bit
/// state times the odd FNV prime keeps word-fold collisions negligible.
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    #[inline]
    fn word(&mut self, v: u64) {
        self.0 = (self.0 ^ v as u128).wrapping_mul(FNV_PRIME);
    }

    #[inline]
    fn u8(&mut self, v: u8) {
        self.word(v as u64);
    }

    #[inline]
    fn u32(&mut self, v: u32) {
        self.word(v as u64);
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        self.word(v);
    }

    fn finish(&self) -> u128 {
        self.0
    }
}

/// An outbound message a pure segment produces, with fresh (fire-time)
/// values. Delivery targets and delays are derived from the decoded frame
/// at emission, exactly as in interpretation.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Effect {
    /// `STORE`: a frame-slot write posted to the owning LSE.
    Store {
        /// Destination frame.
        frame: FramePtr,
        /// Destination slot.
        slot: u16,
        /// Stored value.
        value: i64,
    },
    /// `FFREE`: a frame release posted to the owning LSE.
    Ffree {
        /// Released frame.
        frame: FramePtr,
    },
}

/// Is `i` a segment boundary regardless of dynamic state? Boundary
/// instructions touch shared simulation state (memory system, scheduler
/// fabric, DMA engine) whose latency is not a pure function of the PE:
/// they are interpreted normally, and segments span the gaps between
/// them. `DMAYIELD` is dynamic — a boundary only while the instance has
/// outstanding transfers (it then leaves the pipeline) — and is handled
/// by the caller.
pub(crate) fn is_boundary(i: &Instr) -> bool {
    matches!(
        i,
        Instr::Read { .. }
            | Instr::Write { .. }
            | Instr::Falloc { .. }
            | Instr::Stop
            | Instr::DmaGet { .. }
            | Instr::DmaGetStrided { .. }
            | Instr::DmaPut { .. }
            | Instr::DmaWait { .. }
    )
}

/// Can `i` end a segment on its `Exec::Next` path? Used to re-arm the
/// memo attempt after a boundary issues and falls through. Includes
/// `DMAYIELD` (over-arming is harmless: the attempt itself re-checks).
pub(crate) fn may_bound_segment(i: &Instr) -> bool {
    is_boundary(i) || matches!(i, Instr::DmaYield)
}

/// The result of functionally pre-executing a segment.
pub(crate) struct FnExec {
    /// Path-signature cache key.
    pub key: u128,
    /// The boundary instruction the segment stops at.
    pub stop_pc: u32,
    /// Pure instructions in the span (not cycles).
    pub steps: u32,
    /// Final register file (r0 pinned to zero).
    pub regs: [i64; NUM_REGS],
    /// Outbound messages, in issue order.
    pub effects: Vec<Effect>,
    /// Local-store word writes `(addr, value)`, in program order.
    pub overlay: Vec<(u32, u32)>,
}

/// Reads a byte through the write overlay (last write wins), falling back
/// to the underlying local store.
fn overlay_u8(ls: &LocalStore, overlay: &[(u32, u32)], addr: u32) -> u8 {
    for &(wa, wv) in overlay.iter().rev() {
        let off = addr.wrapping_sub(wa);
        if off < 4 {
            return (wv >> (8 * off)) as u8;
        }
    }
    ls.read_u8(addr)
}

fn overlay_i32(ls: &LocalStore, overlay: &[(u32, u32)], addr: u32) -> i64 {
    let b = [
        overlay_u8(ls, overlay, addr),
        overlay_u8(ls, overlay, addr + 1),
        overlay_u8(ls, overlay, addr + 2),
        overlay_u8(ls, overlay, addr + 3),
    ];
    u32::from_le_bytes(b) as i32 as i64
}

/// Functionally interprets the pure segment starting at `inst.pc`,
/// hashing the path signature as it goes. Returns `None` — caller falls
/// back to interpretation — on anything the real pipeline would fault on
/// (bad frame pointer, out-of-range LS access, pc escape) or that exceeds
/// the step budget. Defensive `None`s are always sound: a miss only costs
/// time.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fn_exec(
    thread: &ThreadCode,
    inst: &Instance,
    ls: &LocalStore,
    reg_ready: &[u64; NUM_REGS],
    reg_stall: &[StallCat; NUM_REGS],
    ls_free: &[u64],
    degraded: bool,
    now: u64,
    max_steps: u32,
) -> Option<FnExec> {
    let mut h = Fnv128::new();
    h.u32(inst.thread.0);
    h.u8(degraded as u8);
    // Scoreboard: only still-pending registers shape timing. Values at or
    // before `now` are behaviourally identical, and a pending register's
    // stall bucket decides which category a too-early consumer charges.
    for i in 0..NUM_REGS {
        let rel = reg_ready[i].saturating_sub(now);
        if rel > 0 {
            h.u8(i as u8);
            h.u64(rel);
            h.u8(reg_stall[i] as u8);
        }
    }
    h.u8(0xFE);
    // LS-port watermarks, positional: reservations tie-break by channel
    // index, so the full relative vector pins every in-span reservation.
    for &t in ls_free {
        h.u64(t.saturating_sub(now));
    }

    let code = &thread.code;
    let mut regs = inst.regs;
    regs[ZERO_REG.index()] = 0;
    let mut effects = Vec::new();
    let mut overlay: Vec<(u32, u32)> = Vec::new();
    let mut pc = inst.pc;
    let mut steps = 0u32;
    let dma_pending = inst.outstanding_dma > 0;

    let reg = |regs: &[i64; NUM_REGS], r: Reg| if r.is_zero() { 0 } else { regs[r.index()] };
    let src = |regs: &[i64; NUM_REGS], s: Src| match s {
        Src::Reg(r) => {
            if r.is_zero() {
                0
            } else {
                regs[r.index()]
            }
        }
        Src::Imm(i) => i as i64,
    };
    let ls_addr = |regs: &[i64; NUM_REGS], ra: Reg, off: i32| -> Option<u32> {
        let base = if ra.is_zero() { 0 } else { regs[ra.index()] };
        let addr = base.checked_add(off as i64)? as u32;
        if (addr as usize) + 4 > ls.size() {
            return None;
        }
        Some(addr)
    };

    loop {
        if pc as usize >= code.len() {
            return None;
        }
        let i = code[pc as usize];
        if is_boundary(&i) || (matches!(i, Instr::DmaYield) && dma_pending) {
            h.u8(0xFF);
            h.u32(pc);
            return Some(FnExec {
                key: h.finish(),
                stop_pc: pc,
                steps,
                regs,
                effects,
                overlay,
            });
        }
        if steps >= max_steps {
            return None;
        }
        steps += 1;
        h.u32(pc);
        match i {
            Instr::Alu { op, rd, ra, rb } => {
                let v = op.eval(reg(&regs, ra), src(&regs, rb));
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
                pc += 1;
            }
            Instr::Li { rd, imm } => {
                if !rd.is_zero() {
                    regs[rd.index()] = imm;
                }
                pc += 1;
            }
            Instr::Mov { rd, ra } => {
                let v = reg(&regs, ra);
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
                pc += 1;
            }
            Instr::Nop | Instr::DmaYield => pc += 1,
            Instr::Br {
                cond,
                ra,
                rb,
                target,
            } => {
                pc = if cond.eval(reg(&regs, ra), src(&regs, rb)) {
                    target
                } else {
                    pc + 1
                };
            }
            Instr::Jmp { target } => pc = target,
            Instr::Load { rd, slot } => {
                if slot as usize >= inst.slots.len() {
                    return None;
                }
                if !rd.is_zero() {
                    regs[rd.index()] = inst.slots[slot as usize];
                }
                pc += 1;
            }
            Instr::Store { rs, rframe, slot } => {
                let frame = FramePtr::decode(reg(&regs, rframe) as u64)?;
                effects.push(Effect::Store {
                    frame,
                    slot,
                    value: reg(&regs, rs),
                });
                pc += 1;
            }
            Instr::Ffree { rframe } => {
                let frame = FramePtr::decode(reg(&regs, rframe) as u64)?;
                effects.push(Effect::Ffree { frame });
                pc += 1;
            }
            Instr::LsLoad { rd, ra, off } => {
                let addr = ls_addr(&regs, ra, off)?;
                let v = overlay_i32(ls, &overlay, addr);
                if !rd.is_zero() {
                    regs[rd.index()] = v;
                }
                pc += 1;
            }
            Instr::LsStore { rs, ra, off } => {
                let addr = ls_addr(&regs, ra, off)?;
                overlay.push((addr, reg(&regs, rs) as u32));
                pc += 1;
            }
            Instr::Read { .. }
            | Instr::Write { .. }
            | Instr::Falloc { .. }
            | Instr::Stop
            | Instr::DmaGet { .. }
            | Instr::DmaGetStrided { .. }
            | Instr::DmaPut { .. }
            | Instr::DmaWait { .. } => unreachable!("boundary handled above"),
        }
    }
}

/// A segment's recorded, shift-invariant timing skeleton. Every field is
/// relative to the segment's entry cycle; replay adds the fire-time base
/// back in.
pub(crate) struct Skeleton {
    /// Cycles from entry to the boundary instruction's first issue
    /// attempt.
    pub len: u64,
    /// The boundary pc the segment ends at.
    pub stop_pc: u32,
    /// Relative cycles at which the span pushes outbound messages (one
    /// per [`Effect`], in order; at most one per cycle).
    pub post_rels: Vec<u64>,
    /// Stats accumulated over the span, with the DMA-overlap attribution
    /// normalised to zero (re-derived at fire time from `overlap_cycles`).
    pub stats_delta: PeStats,
    /// Compute + degraded fine cycles in the span: the overlap
    /// attribution a fire inside a DMA-busy (but quiet) window re-adds.
    pub overlap_cycles: u64,
    /// Scoreboard ready times at segment end, relative to entry.
    pub end_reg_rel: [u64; NUM_REGS],
    /// Scoreboard stall buckets at segment end.
    pub end_reg_stall: [StallCat; NUM_REGS],
    /// LS-port free times at segment end, relative to entry (positional).
    pub ls_rel: Vec<u64>,
    /// LS-port busy cycles accumulated over the span.
    pub ls_busy_delta: u64,
}

/// An in-progress recording: the segment runs under normal
/// interpretation while the memo layer captures its outbox cycles and,
/// at the boundary, its stats/scoreboard deltas.
pub(crate) struct Recording {
    /// Cache key the skeleton will be filed under.
    pub key: u128,
    /// The instance being recorded (finalisation is discarded if another
    /// instance reaches the pipeline first).
    pub owner: InstanceId,
    /// Entry cycle.
    pub base: u64,
    /// Predicted boundary pc.
    pub stop_pc: u32,
    /// `dma_open` at entry: if it changed by the boundary, a completion
    /// landed mid-span and the recording is discarded (its overlap
    /// attribution would not be shift-invariant).
    pub dma_open_at_base: u64,
    /// Number of outbound messages the span must push (from pre-exec).
    pub expected_posts: usize,
    /// Stats snapshot at entry.
    pub stats_at: PeStats,
    /// LS-port busy-cycle snapshot at entry.
    pub ls_busy_at: u64,
    /// Relative push cycles observed so far.
    pub post_rels: Vec<u64>,
}

/// An active replay: effects are emitted at their recorded relative
/// cycles, then the end-state is installed and the boundary interprets
/// normally.
pub(crate) struct Replay {
    /// The timing skeleton being replayed.
    pub skel: Arc<Skeleton>,
    /// Fire cycle (segment entry).
    pub base: u64,
    /// Fresh effects from pre-execution, emitted in order.
    pub effects: Vec<Effect>,
    /// Fresh final registers from pre-execution.
    pub regs: [i64; NUM_REGS],
    /// Next effect index to emit.
    pub next_effect: usize,
    /// Local-store writes to apply at segment end.
    pub overlay: Vec<(u32, u32)>,
    /// Overlap attribution to re-add at segment end (0 on a DMA-idle
    /// fire, the skeleton's `overlap_cycles` on a quiet-window fire).
    pub overlap_add: u64,
}

/// Memo counters folded into the host [`EngineReport`]
/// (host-side observability: engines may legitimately differ).
///
/// [`EngineReport`]: crate::stats::EngineReport
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoCounters {
    /// Segments replayed from a cached skeleton.
    pub hits: u64,
    /// Segments recorded (first sighting of a key).
    pub misses: u64,
    /// Simulated cycles covered by replays.
    pub replayed_cycles: u64,
    /// Attempts abandoned: contention window unsatisfiable, pre-execution
    /// bailed, cache full, or a recording invalidated mid-span.
    pub aborts: u64,
}

/// Per-PE memoization state.
pub(crate) struct MemoState {
    /// Master switch (config on, no SP offload, fault plan benign).
    pub active: bool,
    /// Tuning knobs.
    pub cfg: MemoConfig,
    cache: HashMap<u128, Arc<Skeleton>>,
    /// A segment entry was observed; attempt memoization at the next
    /// issue opportunity.
    pub armed: bool,
    /// In-progress recording, if any.
    pub recording: Option<Recording>,
    /// Active replay, if any.
    pub replay: Option<Replay>,
    /// Counters.
    pub counters: MemoCounters,
}

impl MemoState {
    pub fn new(cfg: MemoConfig, active: bool) -> Self {
        MemoState {
            active,
            cfg,
            cache: HashMap::new(),
            armed: false,
            recording: None,
            replay: None,
            counters: MemoCounters::default(),
        }
    }

    /// Marks a segment entry point. Cheap no-op when inactive.
    #[inline]
    pub fn arm(&mut self) {
        if self.active {
            self.armed = true;
        }
    }

    pub fn lookup(&self, key: u128) -> Option<Arc<Skeleton>> {
        self.cache.get(&key).cloned()
    }

    pub fn can_insert(&self) -> bool {
        self.cache.len() < self.cfg.max_entries
    }

    pub fn insert(&mut self, key: u128, skel: Skeleton) {
        self.cache.insert(key, Arc::new(skel));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_isa::{AluOp, BlockMap};

    #[test]
    fn fnv128_is_deterministic_and_sensitive() {
        let mut a = Fnv128::new();
        let mut b = Fnv128::new();
        for h in [&mut a, &mut b] {
            h.u32(7);
            h.u64(42);
            h.u8(0xFF);
        }
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv128::new();
        c.u32(7);
        c.u64(43);
        c.u8(0xFF);
        assert_ne!(a.finish(), c.finish());
        // Empty input must still be a fixed non-zero basis.
        assert_eq!(Fnv128::new().finish(), FNV_OFFSET);
    }

    #[test]
    fn boundary_classification() {
        use dta_isa::Reg;
        let r = Reg::new(3);
        assert!(is_boundary(&Instr::Stop));
        assert!(is_boundary(&Instr::Read {
            rd: r,
            ra: r,
            off: 0
        }));
        assert!(is_boundary(&Instr::DmaWait { tag: 0 }));
        assert!(!is_boundary(&Instr::Nop));
        assert!(!is_boundary(&Instr::Store {
            rs: r,
            rframe: r,
            slot: 0
        }));
        assert!(!is_boundary(&Instr::DmaYield));
        assert!(may_bound_segment(&Instr::DmaYield));
        assert!(!may_bound_segment(&Instr::LsLoad {
            rd: r,
            ra: r,
            off: 0
        }));
    }

    #[test]
    fn overlay_reads_see_last_write() {
        let ls = LocalStore::new(64);
        let overlay = vec![(8, 0x11223344), (8, 0xAABBCCDD), (10, 0x55667788)];
        // Byte 8/9 come from the second write, 10..14 from the third.
        assert_eq!(overlay_u8(&ls, &overlay, 8), 0xDD);
        assert_eq!(overlay_u8(&ls, &overlay, 9), 0xCC);
        assert_eq!(overlay_u8(&ls, &overlay, 10), 0x88);
        assert_eq!(overlay_u8(&ls, &overlay, 13), 0x55);
        // Untouched bytes fall through to the store (zeroed).
        assert_eq!(overlay_u8(&ls, &overlay, 0), 0);
        assert_eq!(overlay_i32(&ls, &overlay, 10), 0x55667788u32 as i32 as i64);
    }

    fn pure_thread(code: Vec<Instr>) -> ThreadCode {
        let len = code.len() as u32;
        ThreadCode {
            name: "t".into(),
            code,
            blocks: BlockMap {
                pf_end: 0,
                pl_end: 0,
                ex_end: len,
            },
            frame_slots: 0,
            prefetch_bytes: 0,
            fallback: None,
        }
    }

    fn instance_at(pc: u32) -> Instance {
        let mut inst = Instance::new(
            InstanceId(1),
            dta_isa::ThreadId(0),
            FramePtr { pe: 0, index: 0 },
            0,
            0,
            u32::MAX,
        );
        inst.pc = pc;
        inst
    }

    #[test]
    fn fn_exec_runs_to_boundary_and_keys_the_path() {
        use dta_isa::Reg;
        let r3 = Reg::new(3);
        let r4 = Reg::new(4);
        let thread = pure_thread(vec![
            Instr::Li { rd: r3, imm: 5 },
            Instr::Alu {
                op: AluOp::Add,
                rd: r4,
                ra: r3,
                rb: Src::Imm(2),
            },
            Instr::Stop,
        ]);
        let inst = instance_at(0);
        let ls = LocalStore::new(64);
        let ready = [0u64; NUM_REGS];
        let stall = [StallCat::Working; NUM_REGS];
        let fx = fn_exec(&thread, &inst, &ls, &ready, &stall, &[0, 0], false, 100, 64)
            .expect("pure prefix");
        assert_eq!(fx.stop_pc, 2);
        assert_eq!(fx.steps, 2);
        assert_eq!(fx.regs[3], 5);
        assert_eq!(fx.regs[4], 7);
        assert!(fx.effects.is_empty());
        // The key is invariant to the absolute entry cycle (everything is
        // hashed relative to `now`).
        let fx2 = fn_exec(&thread, &inst, &ls, &ready, &stall, &[0, 0], false, 0, 64)
            .expect("pure prefix");
        assert_ne!(fx.key, 0);
        let ready_hi = [u64::MAX; NUM_REGS]; // all pending: different key
        assert_eq!(fx.key, fx2.key);
        let fx3 = fn_exec(
            &thread,
            &inst,
            &ls,
            &ready_hi,
            &stall,
            &[0, 0],
            false,
            100,
            64,
        );
        assert_ne!(fx.key, fx3.expect("still pure").key);
    }

    #[test]
    fn fn_exec_bails_on_step_budget_and_pc_escape() {
        use dta_isa::Reg;
        let r3 = Reg::new(3);
        // Infinite pure loop: must hit the step cap, not hang.
        let looping = pure_thread(vec![Instr::Li { rd: r3, imm: 1 }, Instr::Jmp { target: 0 }]);
        let inst = instance_at(0);
        let ls = LocalStore::new(64);
        let ready = [0u64; NUM_REGS];
        let stall = [StallCat::Working; NUM_REGS];
        assert!(fn_exec(&looping, &inst, &ls, &ready, &stall, &[0], false, 0, 100).is_none());
        // Code that runs off the end (no boundary) bails too.
        let open = pure_thread(vec![Instr::Nop]);
        assert!(fn_exec(&open, &inst, &ls, &ready, &stall, &[0], false, 0, 100).is_none());
    }

    #[test]
    fn fn_exec_ls_overlay_round_trips() {
        use dta_isa::Reg;
        let r3 = Reg::new(3);
        let r4 = Reg::new(4);
        let thread = pure_thread(vec![
            Instr::Li {
                rd: r3,
                imm: 0x1234,
            },
            Instr::LsStore {
                rs: r3,
                ra: Reg::new(0),
                off: 16,
            },
            Instr::LsLoad {
                rd: r4,
                ra: Reg::new(0),
                off: 16,
            },
            Instr::Stop,
        ]);
        let inst = instance_at(0);
        let ls = LocalStore::new(64);
        let ready = [0u64; NUM_REGS];
        let stall = [StallCat::Working; NUM_REGS];
        let fx =
            fn_exec(&thread, &inst, &ls, &ready, &stall, &[0], false, 0, 64).expect("pure prefix");
        assert_eq!(fx.overlay, vec![(16, 0x1234)]);
        assert_eq!(fx.regs[4], 0x1234);
        // Out-of-range LS access bails instead of panicking.
        let oob = pure_thread(vec![
            Instr::LsLoad {
                rd: r4,
                ra: Reg::new(0),
                off: 61,
            },
            Instr::Stop,
        ]);
        assert!(fn_exec(&oob, &inst, &ls, &ready, &stall, &[0], false, 0, 64).is_none());
    }

    #[test]
    fn memo_state_cache_bounds() {
        let cfg = MemoConfig {
            enabled: true,
            max_entries: 1,
            min_span: 1,
            max_steps: 16,
        };
        let mut m = MemoState::new(cfg, true);
        assert!(m.can_insert());
        m.insert(
            1,
            Skeleton {
                len: 1,
                stop_pc: 0,
                post_rels: vec![],
                stats_delta: PeStats::default(),
                overlap_cycles: 0,
                end_reg_rel: [0; NUM_REGS],
                end_reg_stall: [StallCat::Working; NUM_REGS],
                ls_rel: vec![0],
                ls_busy_delta: 0,
            },
        );
        assert!(!m.can_insert());
        assert!(m.lookup(1).is_some());
        assert!(m.lookup(2).is_none());
        m.arm();
        assert!(m.armed);
        let mut off = MemoState::new(cfg, false);
        off.arm();
        assert!(!off.armed);
    }
}
