//! System configuration.
//!
//! Defaults reproduce the paper's simulated platform exactly:
//!
//! * Table 2 (memory subsystem): main memory 512 MB / 150-cycle latency /
//!   1 port; local store 156 kB / 6-cycle latency / 3 ports.
//! * Table 4 (communication subsystem): 4 buses × 8 bytes/cycle; MFC
//!   command queue 16, command latency 30.
//! * Topology: one node with eight SPE-like PEs and one DSE (the CellDTA
//!   arrangement; `nodes` > 1 exercises DTA's inter-node forwarding).

use dta_json::{u64_json, Json};
use dta_mem::{BusModel, DmaFaultPlan, MemoryModel, MemorySystem, MfcParams};
use dta_sched::{DseParams, LseParams};

/// How the simulator itself executes on the host.
///
/// All modes produce bit-identical [`RunStats`](crate::stats::RunStats):
/// the sharded engine orders every cross-shard interaction by a
/// partition-independent `(time, source rank, source sequence)` stamp, so
/// the shard count never leaks into simulated behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Parallelism {
    /// The sequential oracle: one host thread, one global event queue.
    Off,
    /// Epoch-sharded execution on up to `n` host threads (PEs and DSEs
    /// are partitioned into per-node shards; `Threads(1)` exercises the
    /// sharded engine without spawning).
    Threads(u16),
    /// `Threads(available_parallelism())`.
    Auto,
}

/// How the engine advances simulated time on the host.
///
/// Both modes produce bit-identical [`RunStats`](crate::stats::RunStats)
/// and observability streams: fast-forward is a pure optimisation of host
/// wall-clock, never of simulated behaviour (`fastforward_invariance.rs`
/// pins this). The scheduler choice is host-side only, exactly like
/// [`Parallelism`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Tick every PE at every visited cycle (the original dense loop).
    Dense,
    /// Event-driven fast-forward: each PE carries a wake horizon
    /// (`Activity::Blocked(w)` from its own tick, or the delivery time of
    /// a message addressed to it) held in a per-engine binary heap, and
    /// only *due* PEs are ticked at each visited cycle. Under the
    /// `Threads(n)` engine this also enables adaptive epoch widths and
    /// all-local epoch merging (see DESIGN.md §12).
    #[default]
    FastForward,
}

impl Parallelism {
    /// Canonical encoding (part of the versioned job form; see
    /// [`SystemConfig::canonical_json`]).
    pub fn canonical_json(&self) -> Json {
        match self {
            Parallelism::Off => Json::Str("off".into()),
            Parallelism::Threads(n) => Json::Str(format!("threads:{n}")),
            Parallelism::Auto => Json::Str("auto".into()),
        }
    }
}

/// Seeded, deterministic fault-injection plan.
///
/// Every fault decision is a pure function of `(seed, site, stable key)`
/// — per-MFC command index, message stamp, per-DSE request counter — so
/// a plan's schedule is reproducible from its seed and bit-identical
/// across `Parallelism::Off` and `Parallelism::Threads(n)`. Rates are in
/// parts-per-million (integer-only config). `FaultPlan::default()` is
/// benign: all rates zero, recovery budgets and the watchdog armed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every roll.
    pub seed: u64,

    /// Per-attempt transient MFC command failure rate (ppm). Recovered
    /// by bounded retry with exponential backoff.
    pub dma_fail_ppm: u32,
    /// Per-command permanent MFC stall rate (ppm). Unrecoverable: the
    /// watchdog converts the resulting quiescence into a typed error.
    pub dma_stall_ppm: u32,
    /// Retries after the first attempt before the MFC gives up,
    /// completes via the fail-safe slow path, and degrades its PE
    /// (subsequent threads there skip the PF block).
    pub dma_retry_budget: u32,
    /// First-retry backoff in cycles; doubles per retry.
    pub dma_backoff_base: u64,

    /// Scheduler-message drop rate (ppm). Recovered by an idempotent
    /// re-send with a fresh sequence stamp after `msg_resend_timeout`.
    pub msg_drop_ppm: u32,
    /// Scheduler-message duplication rate (ppm). The duplicate carries a
    /// marked stamp and is discarded at delivery.
    pub msg_dup_ppm: u32,
    /// Scheduler-message delay rate (ppm); delayed messages arrive
    /// `msg_delay_jitter` cycles late.
    pub msg_delay_ppm: u32,
    /// Re-send latency for dropped messages, cycles.
    pub msg_resend_timeout: u64,
    /// Added latency for delayed messages, cycles.
    pub msg_delay_jitter: u64,

    /// FALLOC arbitration denial rate (ppm): the DSE behaves as if frame
    /// memory were exhausted and queues the request. Recovered by a
    /// re-arbitration timer after `falloc_retry_timeout`.
    pub falloc_deny_ppm: u32,
    /// Re-arbitration timer for denied FALLOCs, cycles.
    pub falloc_retry_timeout: u64,

    /// Per-node DSE crash rate (ppm): each node rolls once at plan build;
    /// a node that fires has its DSE fall silent at a planned cycle
    /// within `dse_crash_window`. Recovered by deterministic failover to
    /// the lowest-id live peer (re-homed queue, fostered mirrors, LSE
    /// re-registration).
    pub dse_crash_ppm: u32,
    /// Window (cycles) within which a planned crash fires; the exact
    /// cycle is a pure hash of `(seed, node)`.
    pub dse_crash_window: u64,
    /// Silence-detection latency in sim cycles: peers treat a DSE as dead
    /// this long after its crash (clamped to at least the message
    /// latency so failover traffic stays epoch-safe).
    pub dse_failover_detect: u64,
    /// Planned outage length: a crashed DSE restarts (cold) this many
    /// cycles after its crash. Zero = never restarts.
    pub dse_restart_after: u64,

    /// Per-PE LSE crash rate (ppm): each PE rolls once at plan build; a
    /// PE that fires has its scheduler (and pipeline) fall silent at a
    /// planned cycle within `lse_crash_window`. Pre-start frames are
    /// evacuated to a live same-node peer LSE; started instances are
    /// killed and replayed from their frame snapshot when replay is
    /// sound (no external effects yet), or reported as lost work via a
    /// typed error otherwise.
    pub lse_crash_ppm: u32,
    /// Window (cycles) within which a planned LSE crash fires; the exact
    /// cycle is a pure hash of `(seed, pe)`.
    pub lse_crash_window: u64,
    /// LSE silence-detection latency in sim cycles (clamped to at least
    /// the message latency so evacuation traffic stays epoch-safe).
    pub lse_detect: u64,
    /// Planned LSE outage length: a crashed LSE restarts (cold) this
    /// many cycles after its crash. Zero = never restarts.
    pub lse_restart_after: u64,

    /// Per-PE watchdog: after this many consecutive retry cycles on one
    /// instruction the instance is parked off the pipeline (re-readied by
    /// a DMA completion, or reported by the quiescence watchdog if none
    /// ever comes).
    pub watchdog_spin_limit: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            dma_fail_ppm: 0,
            dma_stall_ppm: 0,
            dma_retry_budget: 4,
            dma_backoff_base: 64,
            msg_drop_ppm: 0,
            msg_dup_ppm: 0,
            msg_delay_ppm: 0,
            msg_resend_timeout: 200,
            msg_delay_jitter: 23,
            falloc_deny_ppm: 0,
            falloc_retry_timeout: 500,
            dse_crash_ppm: 0,
            dse_crash_window: 50_000,
            dse_failover_detect: 1_000,
            dse_restart_after: 0,
            lse_crash_ppm: 0,
            lse_crash_window: 50_000,
            lse_detect: 1_000,
            lse_restart_after: 0,
            watchdog_spin_limit: 100_000,
        }
    }
}

impl FaultPlan {
    /// A benign plan with a seed (useful as a sweep baseline).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Self::default()
        }
    }

    /// Derives the per-MFC DMA fault schedule for global PE index `pe`.
    pub fn dma_plan_for(&self, pe: u16) -> DmaFaultPlan {
        DmaFaultPlan {
            seed: self.seed,
            salt: pe as u64,
            fail_ppm: self.dma_fail_ppm,
            stall_ppm: self.dma_stall_ppm,
            retry_budget: self.dma_retry_budget,
            backoff_base: self.dma_backoff_base,
        }
    }

    /// Do any message-level fault sites fire at all?
    pub fn has_msg_faults(&self) -> bool {
        self.msg_drop_ppm > 0 || self.msg_dup_ppm > 0 || self.msg_delay_ppm > 0
    }

    /// Can any DSE crash under this plan?
    pub fn has_dse_crash(&self) -> bool {
        self.dse_crash_ppm > 0
    }

    /// Can any LSE crash under this plan?
    pub fn has_lse_crash(&self) -> bool {
        self.lse_crash_ppm > 0
    }

    /// Is this plan's schedule guaranteed fault-free? True when every
    /// rate is zero: the plan arms the watchdog but can never fire a
    /// fault, so execution is cycle-identical to running with no plan at
    /// all. Memoized timing replay keys off this — any plan that *can*
    /// fire disables replay firing entirely, so fault schedules (which
    /// are keyed by per-site counters, not wall cycles) are never
    /// perturbed. Destructured without `..` so a new fault knob fails to
    /// compile here until its benignity is classified.
    pub fn is_benign(&self) -> bool {
        let FaultPlan {
            seed: _,
            dma_fail_ppm,
            dma_stall_ppm,
            dma_retry_budget: _,
            dma_backoff_base: _,
            msg_drop_ppm,
            msg_dup_ppm,
            msg_delay_ppm,
            msg_resend_timeout: _,
            msg_delay_jitter: _,
            falloc_deny_ppm,
            falloc_retry_timeout: _,
            dse_crash_ppm,
            dse_crash_window: _,
            dse_failover_detect: _,
            dse_restart_after: _,
            lse_crash_ppm,
            lse_crash_window: _,
            lse_detect: _,
            lse_restart_after: _,
            watchdog_spin_limit: _,
        } = *self;
        dma_fail_ppm == 0
            && dma_stall_ppm == 0
            && msg_drop_ppm == 0
            && msg_dup_ppm == 0
            && msg_delay_ppm == 0
            && falloc_deny_ppm == 0
            && dse_crash_ppm == 0
            && lse_crash_ppm == 0
    }

    /// Canonical encoding of every fault knob, in declaration order.
    ///
    /// The seed goes through [`u64_json`]: seeds are frequently derived
    /// by full-width multiplicative hashing and must not be rounded by
    /// the `f64` number representation, or two distinct plans could
    /// canonicalise (and therefore hash) identically.
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("seed", u64_json(self.seed)),
            ("dma_fail_ppm", Json::Num(self.dma_fail_ppm as f64)),
            ("dma_stall_ppm", Json::Num(self.dma_stall_ppm as f64)),
            ("dma_retry_budget", Json::Num(self.dma_retry_budget as f64)),
            ("dma_backoff_base", u64_json(self.dma_backoff_base)),
            ("msg_drop_ppm", Json::Num(self.msg_drop_ppm as f64)),
            ("msg_dup_ppm", Json::Num(self.msg_dup_ppm as f64)),
            ("msg_delay_ppm", Json::Num(self.msg_delay_ppm as f64)),
            ("msg_resend_timeout", u64_json(self.msg_resend_timeout)),
            ("msg_delay_jitter", u64_json(self.msg_delay_jitter)),
            ("falloc_deny_ppm", Json::Num(self.falloc_deny_ppm as f64)),
            ("falloc_retry_timeout", u64_json(self.falloc_retry_timeout)),
            ("dse_crash_ppm", Json::Num(self.dse_crash_ppm as f64)),
            ("dse_crash_window", u64_json(self.dse_crash_window)),
            ("dse_failover_detect", u64_json(self.dse_failover_detect)),
            ("dse_restart_after", u64_json(self.dse_restart_after)),
            ("lse_crash_ppm", Json::Num(self.lse_crash_ppm as f64)),
            ("lse_crash_window", u64_json(self.lse_crash_window)),
            ("lse_detect", u64_json(self.lse_detect)),
            ("lse_restart_after", u64_json(self.lse_restart_after)),
            ("watchdog_spin_limit", u64_json(self.watchdog_spin_limit)),
        ])
    }
}

/// What the observability layer records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsMode {
    /// Nothing (zero-cost: the per-unit logs compile down to a flag
    /// check on the event path and no gauge sampling).
    Off,
    /// Structured events only.
    Events,
    /// Cycle-sampled gauges only.
    Metrics,
    /// Events and gauges.
    All,
}

/// Observability configuration (see the `dta-obs` crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    /// What to record.
    pub mode: ObsMode,
    /// Gauge sampling stride, cycles (used when `mode` includes
    /// metrics; must be ≥ 1).
    pub metrics_interval: u64,
    /// Per-unit ring capacity for events and for gauge samples (the
    /// newest records are kept; drops are counted).
    pub event_capacity: usize,
    /// Incremental streaming stride, simulated cycles (0 = off). When
    /// set, the engine drains fully-simulated records out of the
    /// per-unit rings roughly every this many cycles — at loop bottoms
    /// in the sequential engines, at epoch barriers in the sharded one —
    /// feeding any sink attached with `System::attach_stream_sink` in
    /// wall order as the run progresses. The final merged stream is
    /// identical to the post-run merge (the `obs_stream` suite pins
    /// this), except that long runs no longer overflow the rings.
    pub stream_interval: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            mode: ObsMode::Off,
            metrics_interval: 1_000,
            event_capacity: 1 << 18,
            stream_interval: 0,
        }
    }
}

impl ObsMode {
    /// Canonical string form.
    pub fn canonical_str(&self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Events => "events",
            ObsMode::Metrics => "metrics",
            ObsMode::All => "all",
        }
    }
}

impl SchedMode {
    /// Canonical string form.
    pub fn canonical_str(&self) -> &'static str {
        match self {
            SchedMode::Dense => "dense",
            SchedMode::FastForward => "fast-forward",
        }
    }
}

impl ObsConfig {
    /// Whether structured events are recorded.
    pub fn events_on(&self) -> bool {
        matches!(self.mode, ObsMode::Events | ObsMode::All)
    }

    /// Whether gauge sampling is active.
    pub fn metrics_on(&self) -> bool {
        matches!(self.mode, ObsMode::Metrics | ObsMode::All)
    }

    /// Canonical encoding (part of the versioned job form).
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("mode", Json::Str(self.mode.canonical_str().into())),
            ("metrics_interval", u64_json(self.metrics_interval)),
            ("event_capacity", Json::Num(self.event_capacity as f64)),
            ("stream_interval", u64_json(self.stream_interval)),
        ])
    }
}

/// Instance-level memoization & timing replay (DESIGN.md §16).
///
/// When enabled, each PE keeps a per-PE cache of *timing skeletons* for
/// pure instruction segments (spans between boundary instructions that
/// touch shared resources). A repeated segment is replayed — its cycle
/// charges, scoreboard end state, and outbound messages re-injected at
/// shifted absolute cycles — instead of re-interpreted instruction by
/// instruction. Replay is an optimization only: `RunStats`, the
/// deterministic `ObsStream`, and typed errors are bit-identical with
/// memoization on or off (pinned by `memo_invariance`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoConfig {
    /// Master switch (off reproduces the PR 5 interpreter exactly —
    /// trivially, since nothing else runs).
    pub enabled: bool,
    /// Per-PE skeleton cache capacity (entries). When full, new segments
    /// are no longer recorded (existing entries keep firing).
    pub max_entries: usize,
    /// Minimum segment length, in instructions, worth memoizing; shorter
    /// segments are interpreted (counted as neither hit nor miss).
    pub min_span: u32,
    /// Functional pre-execution step cap: a segment whose pure prefix
    /// exceeds this many instructions is not memoized (guards against
    /// unbounded pure loops).
    pub max_steps: u32,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            enabled: false,
            max_entries: 1024,
            min_span: 3,
            max_steps: 4096,
        }
    }
}

impl MemoConfig {
    /// The default tuning with the master switch on.
    pub fn on() -> Self {
        MemoConfig {
            enabled: true,
            ..Self::default()
        }
    }

    /// Canonical encoding (part of the versioned job form).
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("enabled", Json::Bool(self.enabled)),
            ("max_entries", Json::Num(self.max_entries as f64)),
            ("min_span", Json::Num(self.min_span as f64)),
            ("max_steps", Json::Num(self.max_steps as f64)),
        ])
    }
}

/// Full system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Number of DTA nodes (each with its own DSE).
    pub nodes: u16,
    /// Processing elements per node.
    pub pes_per_node: u16,

    /// Main memory size, bytes (Table 2: 512 MB).
    pub mem_size: u64,
    /// Main memory latency, cycles (Table 2: 150).
    pub mem_latency: u64,
    /// Main memory ports (Table 2: 1).
    pub mem_ports: usize,
    /// Memory-array streaming bandwidth, bytes/cycle.
    pub mem_array_bytes_per_cycle: u64,

    /// Local store size, bytes (Table 2: 156 kB).
    pub ls_size: u32,
    /// Local store latency, cycles (Table 2: 6).
    pub ls_latency: u64,
    /// Local store ports (Table 2: 3).
    pub ls_ports: usize,

    /// Number of buses (Table 4: 4).
    pub buses: usize,
    /// Per-bus bandwidth, bytes/cycle (Table 4: 8).
    pub bus_bytes_per_cycle: u64,
    /// One-way interconnect propagation latency, cycles.
    pub wire_latency: u64,
    /// Extra memory-port cycles per strided DMA element.
    pub stride_penalty_per_elem: u64,
    /// Ablation: strided DMA as per-element split transactions instead of
    /// one DMA transaction (paper §3's rejected alternative).
    pub dma_split_transactions: bool,

    /// MFC (DMA controller) parameters (Table 4).
    pub mfc: MfcParams,

    /// Scheduler-message delivery latency, cycles.
    pub msg_latency: u64,
    /// Physical frames per PE.
    pub frame_capacity: u32,
    /// LSE per-operation processing latency, cycles.
    pub lse_op_latency: u64,
    /// DSE per-operation processing latency, cycles.
    pub dse_op_latency: u64,
    /// Virtual frame pointers (paper §4.3 — off in the paper's runs).
    pub virtual_frames: bool,

    /// Optional per-PE data cache for scalar READ/WRITE (extension: the
    /// paper's simulator had none — "does not yet include the cache
    /// module"). `None` reproduces the paper.
    pub cache: Option<dta_mem::CacheParams>,
    /// Extension: execute straight-line PF blocks on the LSE's SP
    /// pipeline, overlapped with other threads' execution — the paper
    /// notes DTA-C's LSE "has two available pipelines (SP and XP)" and
    /// "can overlap this with the execution of other threads, but in the
    /// CellDTA this is not yet available". `false` reproduces CellDTA.
    pub sp_pf_overlap: bool,

    /// Pipeline penalty for taken branches, cycles (the SPU has no branch
    /// prediction; compilers insert hints — we charge a small fixed cost).
    pub taken_branch_penalty: u64,
    /// Cycles to dispatch a ready thread onto the pipeline.
    pub dispatch_penalty: u64,

    /// Record a scheduler-level execution trace (see
    /// [`crate::trace::Trace`]). Compatibility shim over the structured
    /// event bus: implies event recording (see [`ObsConfig`]).
    pub trace: bool,
    /// Maximum trace events retained.
    pub trace_capacity: usize,

    /// Structured observability (event bus + cycle-sampled metrics).
    pub obs: ObsConfig,

    /// Safety valve: abort `run` after this many cycles.
    pub max_cycles: u64,

    /// Host-side execution strategy (simulated results are identical in
    /// every mode).
    pub parallelism: Parallelism,

    /// Host-side time-advance strategy (simulated results are identical
    /// in every mode; see [`SchedMode`]).
    pub sched: SchedMode,

    /// Deterministic fault injection (`None` = the fault-free model;
    /// recovery machinery and the watchdog are armed only when set).
    pub faults: Option<FaultPlan>,

    /// Instance-level memoization & timing replay (host-side perf; the
    /// simulated results are bit-identical on or off).
    pub memo: MemoConfig,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl SystemConfig {
    /// The paper's CellDTA platform (Tables 2-4), with eight PEs.
    pub fn paper_default() -> Self {
        SystemConfig {
            nodes: 1,
            pes_per_node: 8,
            mem_size: 512 << 20,
            mem_latency: 150,
            mem_ports: 1,
            mem_array_bytes_per_cycle: 32,
            ls_size: 156 * 1024,
            ls_latency: 6,
            ls_ports: 3,
            buses: 4,
            bus_bytes_per_cycle: 8,
            wire_latency: 5,
            stride_penalty_per_elem: 1,
            dma_split_transactions: false,
            mfc: MfcParams {
                queue_capacity: 16,
                command_latency: 30,
            },
            msg_latency: 5,
            frame_capacity: 64,
            lse_op_latency: 2,
            dse_op_latency: 4,
            virtual_frames: false,
            cache: None,
            sp_pf_overlap: false,
            taken_branch_penalty: 2,
            dispatch_penalty: 1,
            trace: false,
            trace_capacity: 200_000,
            obs: ObsConfig::default(),
            max_cycles: 2_000_000_000,
            parallelism: Parallelism::Off,
            sched: SchedMode::FastForward,
            faults: None,
            memo: MemoConfig::default(),
        }
    }

    /// Same platform with `pes` total PEs in one node (the paper's
    /// scalability sweeps use 1, 2, 4, 8).
    pub fn with_pes(pes: u16) -> Self {
        SystemConfig {
            pes_per_node: pes,
            ..Self::paper_default()
        }
    }

    /// The paper's §4.3 second experiment: "all memory latencies in the
    /// system set to one cycle" (the always-hit bound).
    pub fn latency_one(mut self) -> Self {
        self.mem_latency = 1;
        self.ls_latency = 1;
        self.wire_latency = 1;
        self
    }

    /// Total number of PEs.
    #[inline]
    pub fn total_pes(&self) -> u16 {
        self.nodes * self.pes_per_node
    }

    /// Whether structured events are recorded (the legacy `trace` flag
    /// rides on the event bus).
    #[inline]
    pub fn obs_events_on(&self) -> bool {
        self.trace || self.obs.events_on()
    }

    /// Effective gauge sampling stride (0 = sampling off).
    #[inline]
    pub fn obs_interval(&self) -> u64 {
        if self.obs.metrics_on() {
            self.obs.metrics_interval.max(1)
        } else {
            0
        }
    }

    /// Whether any observability state is collected at all.
    #[inline]
    pub fn obs_active(&self) -> bool {
        self.obs_events_on() || self.obs_interval() > 0
    }

    /// Effective incremental-streaming stride (0 = post-run merge only).
    #[inline]
    pub fn obs_stream_interval(&self) -> u64 {
        if self.obs_active() {
            self.obs.stream_interval
        } else {
            0
        }
    }

    /// Builds the shared memory system from this configuration.
    pub fn memory_system(&self) -> MemorySystem {
        let mut sys = MemorySystem::new(
            BusModel::new(self.buses, self.bus_bytes_per_cycle, self.wire_latency),
            MemoryModel::new(
                self.mem_ports,
                self.mem_latency,
                self.mem_array_bytes_per_cycle,
            ),
            self.stride_penalty_per_elem,
        );
        sys.split_transactions = self.dma_split_transactions;
        sys
    }

    /// Derives the per-PE LSE parameters for a program that needs
    /// `pf_buf_bytes` of prefetch buffer per instance. Returns an error if
    /// the local store cannot hold even one buffer.
    pub fn lse_params(&self, pf_buf_bytes: u32) -> Result<LseParams, String> {
        // Align buffers to 16 bytes (DMA-friendly, matches global layout).
        let buf = pf_buf_bytes.max(16).div_ceil(16) * 16;
        let pool = (self.ls_size / buf).min(self.frame_capacity);
        if pf_buf_bytes > 0 && pool == 0 {
            return Err(format!(
                "prefetch buffer of {pf_buf_bytes} bytes does not fit in a {}-byte local store",
                self.ls_size
            ));
        }
        Ok(LseParams {
            frame_capacity: self.frame_capacity,
            pf_buf_bytes: buf,
            pf_pool_size: pool.max(1),
            pf_region_base: 0,
            op_latency: self.lse_op_latency,
            virtual_frames: self.virtual_frames,
            // Failover successors arbitrate on approximate fostered
            // mirrors (and adoption after an LSE crash consumes frames
            // the arbiter never granted), so bounded over-grants must
            // park instead of tripping the over-commit assert.
            park_on_full: self
                .faults
                .is_some_and(|f| f.has_dse_crash() || f.has_lse_crash()),
        })
    }

    /// DSE parameters.
    pub fn dse_params(&self) -> DseParams {
        DseParams {
            op_latency: self.dse_op_latency,
            virtual_frames: self.virtual_frames,
        }
    }

    /// Canonical, versioned encoding of the complete configuration.
    ///
    /// This is the config half of the job identity: `JobKey` hashes
    /// `program bytes ‖ args ‖ canonical config` (see `crate::job`), so
    /// **every** field that can influence simulated *or host-side*
    /// behaviour must appear here, in declaration order, with a stable
    /// encoding. Adding, removing, or re-encoding a field is a format
    /// change: bump `crate::job::JOB_FORMAT_VERSION` in the same commit
    /// (DESIGN.md §13 records the rules), which invalidates every
    /// previously cached result.
    ///
    /// Host-side knobs ([`Parallelism`], [`SchedMode`]) are deliberately
    /// *included* even though simulated results are invariant across
    /// them: the determinism suites pin that invariance by comparing
    /// runs across distinct keys, and host-schedule reports
    /// ([`crate::stats::EngineReport`]) legitimately differ per mode.
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("nodes", Json::Num(self.nodes as f64)),
            ("pes_per_node", Json::Num(self.pes_per_node as f64)),
            ("mem_size", u64_json(self.mem_size)),
            ("mem_latency", u64_json(self.mem_latency)),
            ("mem_ports", Json::Num(self.mem_ports as f64)),
            (
                "mem_array_bytes_per_cycle",
                u64_json(self.mem_array_bytes_per_cycle),
            ),
            ("ls_size", Json::Num(self.ls_size as f64)),
            ("ls_latency", u64_json(self.ls_latency)),
            ("ls_ports", Json::Num(self.ls_ports as f64)),
            ("buses", Json::Num(self.buses as f64)),
            ("bus_bytes_per_cycle", u64_json(self.bus_bytes_per_cycle)),
            ("wire_latency", u64_json(self.wire_latency)),
            (
                "stride_penalty_per_elem",
                u64_json(self.stride_penalty_per_elem),
            ),
            (
                "dma_split_transactions",
                Json::Bool(self.dma_split_transactions),
            ),
            (
                "mfc",
                Json::obj([
                    ("queue_capacity", Json::Num(self.mfc.queue_capacity as f64)),
                    ("command_latency", u64_json(self.mfc.command_latency)),
                ]),
            ),
            ("msg_latency", u64_json(self.msg_latency)),
            ("frame_capacity", Json::Num(self.frame_capacity as f64)),
            ("lse_op_latency", u64_json(self.lse_op_latency)),
            ("dse_op_latency", u64_json(self.dse_op_latency)),
            ("virtual_frames", Json::Bool(self.virtual_frames)),
            (
                "cache",
                match &self.cache {
                    None => Json::Null,
                    Some(c) => Json::obj([
                        ("size_bytes", Json::Num(c.size_bytes as f64)),
                        ("line_bytes", Json::Num(c.line_bytes as f64)),
                        ("hit_latency", u64_json(c.hit_latency)),
                    ]),
                },
            ),
            ("sp_pf_overlap", Json::Bool(self.sp_pf_overlap)),
            ("taken_branch_penalty", u64_json(self.taken_branch_penalty)),
            ("dispatch_penalty", u64_json(self.dispatch_penalty)),
            ("trace", Json::Bool(self.trace)),
            ("trace_capacity", Json::Num(self.trace_capacity as f64)),
            ("obs", self.obs.canonical_json()),
            ("max_cycles", u64_json(self.max_cycles)),
            ("parallelism", self.parallelism.canonical_json()),
            ("sched", Json::Str(self.sched.canonical_str().into())),
            (
                "faults",
                match &self.faults {
                    None => Json::Null,
                    Some(f) => f.canonical_json(),
                },
            ),
            ("memo", self.memo.canonical_json()),
        ])
    }

    /// Renders the configuration as the paper's Tables 2-4 (used by the
    /// `repro config` experiment).
    pub fn to_tables(&self) -> String {
        format!(
            "Table 2: memory subsystem\n\
             \x20 Main memory   size            {} MB\n\
             \x20 Main memory   latency         {} cycles\n\
             \x20 Main memory   ports           {}\n\
             \x20 Local store   size            {} kB\n\
             \x20 Local store   latency         {} cycles\n\
             \x20 Local store   ports           {}\n\
             Table 4: communication subsystem\n\
             \x20 Bus           count           {}\n\
             \x20 Bus           bandwidth       {} bytes/cycle each\n\
             \x20 MFC           queue size      {}\n\
             \x20 MFC           command latency {} cycles\n",
            self.mem_size >> 20,
            self.mem_latency,
            self.mem_ports,
            self.ls_size / 1024,
            self.ls_latency,
            self.ls_ports,
            self.buses,
            self.bus_bytes_per_cycle,
            self.mfc.queue_capacity,
            self.mfc.command_latency,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_tables() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.mem_size, 512 << 20);
        assert_eq!(c.mem_latency, 150);
        assert_eq!(c.mem_ports, 1);
        assert_eq!(c.ls_size, 156 * 1024);
        assert_eq!(c.ls_latency, 6);
        assert_eq!(c.ls_ports, 3);
        assert_eq!(c.buses, 4);
        assert_eq!(c.bus_bytes_per_cycle, 8);
        assert_eq!(c.mfc.queue_capacity, 16);
        assert_eq!(c.mfc.command_latency, 30);
        assert_eq!(c.total_pes(), 8);
    }

    #[test]
    fn latency_one_transforms_all_latencies() {
        let c = SystemConfig::paper_default().latency_one();
        assert_eq!(c.mem_latency, 1);
        assert_eq!(c.ls_latency, 1);
        assert_eq!(c.wire_latency, 1);
    }

    #[test]
    fn lse_params_size_buffer_pool() {
        let c = SystemConfig::paper_default();
        let p = c.lse_params(8192).unwrap();
        assert_eq!(p.pf_buf_bytes, 8192);
        assert_eq!(p.pf_pool_size, (156 * 1024 / 8192));
        // No prefetching program: tiny buffer, pool capped by frames.
        let p0 = c.lse_params(0).unwrap();
        assert_eq!(p0.pf_pool_size, 64);
    }

    #[test]
    fn lse_params_reject_oversized_buffer() {
        let c = SystemConfig::paper_default();
        assert!(c.lse_params(200 * 1024).is_err());
    }

    #[test]
    fn lse_params_align_buffers() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.lse_params(100).unwrap().pf_buf_bytes, 112);
    }

    #[test]
    fn tables_render_paper_values() {
        let t = SystemConfig::paper_default().to_tables();
        assert!(t.contains("512 MB"));
        assert!(t.contains("150 cycles"));
        assert!(t.contains("156 kB"));
        assert!(t.contains("queue size      16"));
    }

    #[test]
    fn with_pes_sets_count() {
        assert_eq!(SystemConfig::with_pes(4).total_pes(), 4);
    }

    #[test]
    fn canonical_json_is_stable_and_field_sensitive() {
        let a = SystemConfig::paper_default()
            .canonical_json()
            .to_string_compact();
        let b = SystemConfig::paper_default()
            .canonical_json()
            .to_string_compact();
        assert_eq!(a, b, "canonical form must be deterministic");

        let mut dense = SystemConfig::paper_default();
        dense.sched = SchedMode::Dense;
        assert_ne!(a, dense.canonical_json().to_string_compact());

        let mut threads = SystemConfig::paper_default();
        threads.parallelism = Parallelism::Threads(2);
        assert_ne!(a, threads.canonical_json().to_string_compact());
    }

    #[test]
    fn canonical_json_keeps_full_width_seeds_exact() {
        // Adjacent full-width seeds would collapse to the same f64; the
        // canonical form must keep them distinct.
        let mut a = SystemConfig::paper_default();
        a.faults = Some(FaultPlan::seeded(u64::MAX));
        let mut b = SystemConfig::paper_default();
        b.faults = Some(FaultPlan::seeded(u64::MAX - 1));
        assert_ne!(
            a.canonical_json().to_string_compact(),
            b.canonical_json().to_string_compact()
        );
    }
}
