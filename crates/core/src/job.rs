//! # Jobs as values
//!
//! A simulation run, reified: [`SimJob`] bundles everything that
//! determines a run's outcome — the program, its host arguments, and the
//! complete [`SystemConfig`] — and [`run_job`] maps it to a
//! self-contained [`JobResult`]. Because the simulator is deterministic
//! (same job → bit-identical [`RunStats`] and observability stream,
//! across engines and sched modes), a job's identity *is* its content:
//!
//! ```text
//! JobKey = fnv1a128("dta-job\0" ‖ format ‖ program bytes ‖ args ‖ canonical config)
//! ```
//!
//! which is what makes results content-addressable — the `dta-serve`
//! crate builds its in-memory and on-disk caches on this key. The
//! canonical config encoding lives in [`SystemConfig::canonical_json`];
//! the rules for evolving it (and when [`JOB_FORMAT_VERSION`] must be
//! bumped) are in DESIGN.md §13.
//!
//! [`JobResult`] deliberately excludes host wall-clock time: a cached
//! result must be byte-identical to a fresh one, and wall time is the
//! one thing a cache hit changes. Timing is measured and reported by the
//! caller (see `dta-serve`'s completion records).

use crate::config::SystemConfig;
use crate::stats::{EngineReport, RunStats};
use crate::system::{RunError, System};
use dta_isa::{encode_program, Program};
use dta_json::{fnv1a128, u64_from_json, u64_json, Json, ToJson};
use dta_obs::codec as obs_codec;
use dta_obs::{ObsSink, ObsStream, PerfettoWriter, TrackLayout};
use std::fmt;
use std::sync::Arc;

/// Version of the canonical job/result encoding.
///
/// Participates in every [`JobKey`] and is stamped into every serialized
/// [`JobResult`], so bumping it atomically invalidates all previously
/// cached results (they simply stop matching any key, and entries whose
/// stored format disagrees are discarded on load). Bump it whenever the
/// canonical config form, the program byte encoding, or the result
/// encoding changes meaning.
pub const JOB_FORMAT_VERSION: u32 = 4;

/// Content hash identifying a job (see the module docs for the exact
/// preimage). Rendered as 32 lowercase hex digits in reports and file
/// names.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct JobKey(pub u128);

impl JobKey {
    /// 32-digit lowercase hex form (stable: used as cache file names and
    /// stamped into `BENCH_*.json` records).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the [`JobKey::hex`] form.
    pub fn from_hex(s: &str) -> Option<JobKey> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(JobKey)
    }
}

impl fmt::Display for JobKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

/// A simulation run as a value: program + arguments + full config.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The program to run.
    pub program: Arc<Program>,
    /// Host arguments passed to the entry thread.
    pub args: Vec<i64>,
    /// Complete system configuration (including host-side engine knobs;
    /// see [`SystemConfig::canonical_json`] for why those count).
    pub config: SystemConfig,
}

impl SimJob {
    /// Bundles a job.
    pub fn new(program: Arc<Program>, args: Vec<i64>, config: SystemConfig) -> Self {
        SimJob {
            program,
            args,
            config,
        }
    }

    /// The job's content hash. Pure function of the job value; any
    /// behavioural field perturbation (one instruction, one argument,
    /// one config field) yields a different key.
    pub fn key(&self) -> JobKey {
        let prog = encode_program(&self.program);
        let cfg = self.config.canonical_json().to_string_compact();
        let mut bytes = Vec::with_capacity(16 + prog.len() + 8 * self.args.len() + cfg.len() + 16);
        bytes.extend_from_slice(b"dta-job\0");
        bytes.extend_from_slice(&JOB_FORMAT_VERSION.to_le_bytes());
        // Length-prefix the variable-size sections so field boundaries
        // cannot alias across sections.
        bytes.extend_from_slice(&(prog.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&prog);
        bytes.extend_from_slice(&(self.args.len() as u64).to_le_bytes());
        for a in &self.args {
            bytes.extend_from_slice(&a.to_le_bytes());
        }
        bytes.extend_from_slice(cfg.as_bytes());
        JobKey(fnv1a128(&bytes))
    }
}

/// Read access to a run's final global-memory words.
///
/// Implemented by the live [`System`] and by the detached
/// [`GlobalSnapshot`], so result verification (the workload `verify`
/// functions) works identically on a fresh run and on a cached
/// [`JobOutput`].
pub trait GlobalRead {
    /// Reads 32-bit word `index` of global `name`.
    fn read_global_word(&self, name: &str, index: usize) -> Option<i32>;
}

impl GlobalRead for System {
    fn read_global_word(&self, name: &str, index: usize) -> Option<i32> {
        System::read_global_word(self, name, index)
    }
}

/// The final contents of every program global, detached from the
/// [`System`] that produced them.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct GlobalSnapshot {
    globals: Vec<(String, Vec<i32>)>,
}

impl GlobalSnapshot {
    /// Builds a snapshot from `(name, words)` pairs (in program
    /// declaration order, which makes the encoding canonical).
    pub fn new(globals: Vec<(String, Vec<i32>)>) -> Self {
        GlobalSnapshot { globals }
    }

    /// Canonical encoding: `[{"name": ..., "words": [...]}, ...]`.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.globals
                .iter()
                .map(|(name, words)| {
                    Json::obj([
                        ("name", Json::Str(name.clone())),
                        (
                            "words",
                            Json::Arr(words.iter().map(|w| Json::Num(*w as f64)).collect()),
                        ),
                    ])
                })
                .collect(),
        )
    }

    /// Decodes the [`GlobalSnapshot::to_json`] encoding.
    pub fn from_json(v: &Json) -> Option<GlobalSnapshot> {
        let globals = v
            .as_arr()?
            .iter()
            .map(|g| {
                let name = g.get("name")?.as_str()?.to_string();
                let words = g
                    .get("words")?
                    .as_arr()?
                    .iter()
                    .map(|w| w.as_f64().map(|w| w as i32))
                    .collect::<Option<Vec<_>>>()?;
                Some((name, words))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(GlobalSnapshot { globals })
    }
}

impl GlobalRead for GlobalSnapshot {
    fn read_global_word(&self, name: &str, index: usize) -> Option<i32> {
        self.globals
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, words)| words.get(index).copied())
    }
}

/// Serializable, comparable mirror of [`RunError`].
///
/// A faulting job is as cacheable as a succeeding one — replaying it
/// from the cache must yield the *same typed error* — so the error needs
/// `Clone`/`PartialEq` and a canonical encoding, which [`RunError`]
/// itself (borrowing validation AST nodes, deep per-PE diagnostics)
/// doesn't carry. Structured fields keep the variant and its headline
/// numbers; the full human-readable diagnosis is preserved in `detail`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// The program failed static validation.
    Validation {
        /// One rendered message per validation error.
        errors: Vec<String>,
    },
    /// The program/config combination cannot be launched.
    Launch {
        /// What was wrong.
        message: String,
    },
    /// The system wedged with live instances (program bug).
    Deadlock {
        /// Detection cycle.
        cycle: u64,
        /// Instances still alive.
        live: u64,
        /// Full rendered diagnosis (per-PE breakdown included).
        detail: String,
    },
    /// Quiescence with hard fault evidence (injected unrecoverable
    /// fault).
    Watchdog {
        /// Classification cycle.
        cycle: u64,
        /// Instances still alive.
        live: u64,
        /// Permanently stalled DMA commands.
        stalled_dma: u64,
        /// Watchdog-parked instances.
        parked: u64,
        /// DSE crashes that fired.
        crashed_dses: u64,
        /// Full rendered diagnosis.
        detail: String,
    },
    /// `max_cycles` exceeded.
    CycleLimit {
        /// The exceeded budget.
        cycle: u64,
        /// Instances still alive.
        live: u64,
        /// Full rendered diagnosis.
        detail: String,
    },
    /// The *host* panicked while executing the job (a simulator or
    /// service bug, not a property of the job). Host-side: never
    /// cached — a retry on a healthy host may legitimately succeed.
    HostPanic {
        /// Rendered panic payload of the last failed attempt.
        message: String,
        /// Execution attempts made before giving up.
        attempts: u32,
    },
    /// A host-side wall-clock budget expired before the job finished.
    /// The deterministic backstop remains `max_cycles` (which yields
    /// [`JobError::CycleLimit`]); this variant reports *host* time and
    /// is therefore never cached.
    Timeout {
        /// The expired budget, in milliseconds.
        budget_ms: u64,
        /// Which budget expired (job deadline vs in-flight watchdog).
        message: String,
    },
    /// The service shed this job at admission: too many executions in
    /// flight and the bounded admission queue was full. Host-side —
    /// purely a statement about load, never cached.
    Overloaded {
        /// Submissions queued for an execution slot at shed time.
        queued: u64,
        /// The admission-queue bound.
        limit: u64,
    },
}

impl From<&RunError> for JobError {
    fn from(e: &RunError) -> Self {
        let detail = e.to_string();
        match e {
            RunError::Validation(errs) => JobError::Validation {
                errors: errs.iter().map(|v| v.to_string()).collect(),
            },
            RunError::Launch(msg) => JobError::Launch {
                message: msg.clone(),
            },
            RunError::Deadlock { cycle, live, .. } => JobError::Deadlock {
                cycle: *cycle,
                live: *live as u64,
                detail,
            },
            RunError::Watchdog {
                cycle,
                live,
                stalled_dma,
                parked,
                crashed_dses,
                ..
            } => JobError::Watchdog {
                cycle: *cycle,
                live: *live as u64,
                stalled_dma: *stalled_dma,
                parked: *parked,
                crashed_dses: *crashed_dses,
                detail,
            },
            RunError::CycleLimit { cycle, live, .. } => JobError::CycleLimit {
                cycle: *cycle,
                live: *live as u64,
                detail,
            },
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Validation { errors } => {
                writeln!(f, "program failed validation:")?;
                for e in errors {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            JobError::Launch { message } => write!(f, "launch failed: {message}"),
            JobError::Deadlock { detail, .. }
            | JobError::Watchdog { detail, .. }
            | JobError::CycleLimit { detail, .. } => f.write_str(detail),
            JobError::HostPanic { message, attempts } => {
                write!(f, "host panic after {attempts} attempt(s): {message}")
            }
            JobError::Timeout { budget_ms, message } => {
                write!(f, "host deadline exceeded ({budget_ms} ms): {message}")
            }
            JobError::Overloaded { queued, limit } => {
                write!(
                    f,
                    "service overloaded: admission queue full ({queued}/{limit})"
                )
            }
        }
    }
}

impl JobError {
    /// Whether this error describes the *host* (panic, wall-clock
    /// budget, load shedding) rather than the job itself. Host-side
    /// outcomes are transient — a retry on a healthy, idle host may
    /// succeed — so they must never enter the result cache; only
    /// deterministic outcomes (success or the simulation-defined errors)
    /// are content-addressable.
    pub fn is_host_side(&self) -> bool {
        matches!(
            self,
            JobError::HostPanic { .. } | JobError::Timeout { .. } | JobError::Overloaded { .. }
        )
    }

    /// Canonical encoding: `{"kind": ..., ...fields}`.
    pub fn to_json(&self) -> Json {
        match self {
            JobError::Validation { errors } => Json::obj([
                ("kind", Json::Str("validation".into())),
                ("errors", errors.to_json()),
            ]),
            JobError::Launch { message } => Json::obj([
                ("kind", Json::Str("launch".into())),
                ("message", Json::Str(message.clone())),
            ]),
            JobError::Deadlock {
                cycle,
                live,
                detail,
            } => Json::obj([
                ("kind", Json::Str("deadlock".into())),
                ("cycle", u64_json(*cycle)),
                ("live", u64_json(*live)),
                ("detail", Json::Str(detail.clone())),
            ]),
            JobError::Watchdog {
                cycle,
                live,
                stalled_dma,
                parked,
                crashed_dses,
                detail,
            } => Json::obj([
                ("kind", Json::Str("watchdog".into())),
                ("cycle", u64_json(*cycle)),
                ("live", u64_json(*live)),
                ("stalled_dma", u64_json(*stalled_dma)),
                ("parked", u64_json(*parked)),
                ("crashed_dses", u64_json(*crashed_dses)),
                ("detail", Json::Str(detail.clone())),
            ]),
            JobError::CycleLimit {
                cycle,
                live,
                detail,
            } => Json::obj([
                ("kind", Json::Str("cycle-limit".into())),
                ("cycle", u64_json(*cycle)),
                ("live", u64_json(*live)),
                ("detail", Json::Str(detail.clone())),
            ]),
            JobError::HostPanic { message, attempts } => Json::obj([
                ("kind", Json::Str("host-panic".into())),
                ("message", Json::Str(message.clone())),
                ("attempts", u64_json(*attempts as u64)),
            ]),
            JobError::Timeout { budget_ms, message } => Json::obj([
                ("kind", Json::Str("timeout".into())),
                ("budget_ms", u64_json(*budget_ms)),
                ("message", Json::Str(message.clone())),
            ]),
            JobError::Overloaded { queued, limit } => Json::obj([
                ("kind", Json::Str("overloaded".into())),
                ("queued", u64_json(*queued)),
                ("limit", u64_json(*limit)),
            ]),
        }
    }

    /// Decodes the [`JobError::to_json`] encoding.
    pub fn from_json(v: &Json) -> Option<JobError> {
        let cycle = || v.get("cycle").and_then(u64_from_json);
        let live = || v.get("live").and_then(u64_from_json);
        let detail = || v.get("detail").and_then(Json::as_str).map(str::to_string);
        Some(match v.get("kind")?.as_str()? {
            "validation" => JobError::Validation {
                errors: v
                    .get("errors")?
                    .as_arr()?
                    .iter()
                    .map(|e| e.as_str().map(str::to_string))
                    .collect::<Option<Vec<_>>>()?,
            },
            "launch" => JobError::Launch {
                message: v.get("message")?.as_str()?.to_string(),
            },
            "deadlock" => JobError::Deadlock {
                cycle: cycle()?,
                live: live()?,
                detail: detail()?,
            },
            "watchdog" => JobError::Watchdog {
                cycle: cycle()?,
                live: live()?,
                stalled_dma: v.get("stalled_dma").and_then(u64_from_json)?,
                parked: v.get("parked").and_then(u64_from_json)?,
                crashed_dses: v.get("crashed_dses").and_then(u64_from_json)?,
                detail: detail()?,
            },
            "cycle-limit" => JobError::CycleLimit {
                cycle: cycle()?,
                live: live()?,
                detail: detail()?,
            },
            "host-panic" => JobError::HostPanic {
                message: v.get("message")?.as_str()?.to_string(),
                attempts: v.get("attempts").and_then(u64_from_json)? as u32,
            },
            "timeout" => JobError::Timeout {
                budget_ms: v.get("budget_ms").and_then(u64_from_json)?,
                message: v.get("message")?.as_str()?.to_string(),
            },
            "overloaded" => JobError::Overloaded {
                queued: v.get("queued").and_then(u64_from_json)?,
                limit: v.get("limit").and_then(u64_from_json)?,
            },
            _ => return None,
        })
    }
}

/// Everything a successful run produces.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// Engine-invariant simulation results (bit-identical across
    /// [`crate::config::Parallelism`] and [`crate::config::SchedMode`]
    /// for a fixed job — but those knobs are part of the key anyway).
    pub stats: RunStats,
    /// How the host engine advanced time. Deterministic for a fixed job
    /// on a fixed host, except under `Parallelism::Auto` where the host
    /// core count leaks in — keys meant to be shared across machines
    /// should pin an explicit mode.
    pub engine: EngineReport,
    /// Final contents of every program global (for verification without
    /// the live [`System`]).
    pub globals: GlobalSnapshot,
    /// The merged observability stream, when the job's
    /// [`crate::config::ObsConfig`] collects anything.
    pub obs: Option<ObsStream>,
}

impl JobOutput {
    fn to_json(&self) -> Json {
        // Wall-clock fields are host-nondeterministic: two simulations
        // of the same job must produce byte-identical canonical results
        // (the quarantine-and-resimulate contract), so the canonical
        // form zeroes them. Live runs expose the real numbers through
        // the in-memory `JobOutput`; a cache hit reports none, which is
        // accurate — it did no simulation work.
        let engine = EngineReport {
            shard_wall_us: Vec::new(),
            merge_wall_us: 0,
            ..self.engine.clone()
        };
        Json::obj([
            ("stats", self.stats.to_json()),
            ("engine", engine.to_json()),
            ("globals", self.globals.to_json()),
            (
                "obs",
                match &self.obs {
                    None => Json::Null,
                    Some(s) => obs_codec::stream_to_json(s),
                },
            ),
        ])
    }

    fn from_json(v: &Json) -> Option<JobOutput> {
        Some(JobOutput {
            stats: RunStats::from_json(v.get("stats")?)?,
            engine: EngineReport::from_json(v.get("engine")?)?,
            globals: GlobalSnapshot::from_json(v.get("globals")?)?,
            obs: match v.get("obs")? {
                Json::Null => None,
                s => Some(obs_codec::stream_from_json(s)?),
            },
        })
    }
}

/// The complete, cacheable outcome of one job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// [`JOB_FORMAT_VERSION`] at production time.
    pub format: u32,
    /// The job's content hash.
    pub key: JobKey,
    /// Success payload or typed error — both sides replay identically
    /// from the cache.
    pub outcome: Result<JobOutput, JobError>,
}

impl JobResult {
    /// Whether this result carries a host-side (non-deterministic)
    /// outcome. Such results are completions for the submitter, never
    /// cache entries — see [`JobError::is_host_side`].
    pub fn is_host_side(&self) -> bool {
        matches!(&self.outcome, Err(e) if e.is_host_side())
    }

    /// Canonical document form. Byte-identity of
    /// `canonical_json().to_string_compact()` is the cache-correctness
    /// contract the serve test-suite pins.
    pub fn canonical_json(&self) -> Json {
        Json::obj([
            ("format", Json::Num(self.format as f64)),
            ("key", Json::Str(self.key.hex())),
            (
                "ok",
                match &self.outcome {
                    Ok(out) => out.to_json(),
                    Err(_) => Json::Null,
                },
            ),
            (
                "err",
                match &self.outcome {
                    Ok(_) => Json::Null,
                    Err(e) => e.to_json(),
                },
            ),
        ])
    }

    /// The canonical byte form (compact rendering of
    /// [`JobResult::canonical_json`]).
    pub fn canonical_string(&self) -> String {
        self.canonical_json().to_string_compact()
    }

    /// Decodes a canonical document. Returns `None` for malformed input
    /// *or* a format mismatch — a stale cache entry from an older format
    /// must read as absent, never as wrong data.
    pub fn from_canonical_json(v: &Json) -> Option<JobResult> {
        let format = v.get("format")?.as_u64()? as u32;
        if format != JOB_FORMAT_VERSION {
            return None;
        }
        let key = JobKey::from_hex(v.get("key")?.as_str()?)?;
        let outcome = match (v.get("ok")?, v.get("err")?) {
            (Json::Null, e) => Err(JobError::from_json(e)?),
            (o, Json::Null) => Ok(JobOutput::from_json(o)?),
            _ => return None,
        };
        Some(JobResult {
            format,
            key,
            outcome,
        })
    }

    /// Parses and decodes a canonical document from text.
    pub fn from_canonical_str(text: &str) -> Option<JobResult> {
        JobResult::from_canonical_json(&dta_json::parse(text).ok()?)
    }
}

/// Runs a job to completion. The single entry point subsuming
/// `System::new` + `launch` + `run` + report collection; `dta-serve`
/// adds caching and dedup on top of this.
pub fn run_job(job: &SimJob) -> JobResult {
    run_job_with_sink(job, None).0
}

/// [`run_job`] with an optional live observability subscriber.
///
/// The sink is attached via [`System::attach_stream_sink`], so with
/// [`crate::config::ObsConfig::stream_interval`] set it receives records
/// incrementally *during* the run; otherwise the whole stream arrives at
/// finalisation. Either way the final [`JobOutput::obs`] stream is
/// complete and identical to what the sink saw (the obs layer retains
/// streamed records), which is what lets cache hits replay the exact
/// same stream to later subscribers. The sink is returned to the caller
/// afterwards.
pub fn run_job_with_sink(
    job: &SimJob,
    sink: Option<Box<dyn ObsSink + Send>>,
) -> (JobResult, Option<Box<dyn ObsSink + Send>>) {
    let key = job.key();
    let finish = |outcome| JobResult {
        format: JOB_FORMAT_VERSION,
        key,
        outcome,
    };
    let mut sys = match System::new(job.config.clone(), Arc::clone(&job.program)) {
        Ok(sys) => sys,
        Err(e) => return (finish(Err(JobError::from(&e))), sink),
    };
    let had_sink = sink.is_some();
    if let Some(s) = sink {
        sys.attach_stream_sink(s);
    }
    let run = sys.launch(&job.args).and_then(|()| sys.run());
    let sink = if had_sink {
        sys.take_stream_sink()
    } else {
        None
    };
    let outcome = match run {
        Ok(stats) => Ok(JobOutput {
            stats,
            engine: sys.engine_report().clone(),
            globals: sys.snapshot_globals(),
            obs: sys.obs().cloned(),
        }),
        Err(e) => Err(JobError::from(&e)),
    };
    (finish(outcome), sink)
}

/// Renders a finished job's observability stream as a Chrome/Perfetto
/// `trace.json` document — the detached equivalent of
/// `System::perfetto_trace`, usable on cached results.
pub fn perfetto_trace(config: &SystemConfig, program: &Program, stream: &ObsStream) -> String {
    let layout = TrackLayout {
        total_pes: config.total_pes(),
        pes_per_node: config.pes_per_node,
        nodes: config.nodes,
        thread_names: program.threads.iter().map(|t| t.name.clone()).collect(),
    };
    let mut writer = PerfettoWriter::new(layout);
    stream.feed(&mut writer);
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ObsMode, Parallelism, SchedMode};
    use dta_isa::{reg::r, ProgramBuilder, ThreadBuilder};

    fn tiny_program() -> Arc<Program> {
        let mut pb = ProgramBuilder::new();
        let out = pb.global_zeroed("out", 8);
        let main = pb.declare("main");
        let mut t = ThreadBuilder::new("main");
        t.begin_pl();
        t.load(r(3), 0);
        t.begin_ex();
        t.add(r(4), r(3), 1);
        t.li(r(5), out as i64);
        t.begin_ps();
        t.write(r(4), r(5), 0);
        t.ffree_self();
        t.stop();
        pb.define(main, t);
        pb.set_entry(main, 1);
        Arc::new(pb.build())
    }

    fn tiny_job() -> SimJob {
        SimJob::new(tiny_program(), vec![41], SystemConfig::with_pes(1))
    }

    #[test]
    fn job_key_is_stable_and_sensitive() {
        let base = tiny_job();
        let k = base.key();
        assert_eq!(k, tiny_job().key(), "same content, same key");

        let mut other_arg = base.clone();
        other_arg.args = vec![42];
        assert_ne!(k, other_arg.key());

        let mut other_pes = base.clone();
        other_pes.config.pes_per_node = 2;
        assert_ne!(k, other_pes.key());

        let mut other_sched = base.clone();
        other_sched.config.sched = SchedMode::Dense;
        assert_ne!(k, other_sched.key());

        let mut other_par = base.clone();
        other_par.config.parallelism = Parallelism::Threads(2);
        assert_ne!(k, other_par.key());
    }

    #[test]
    fn key_hex_roundtrips() {
        let k = tiny_job().key();
        assert_eq!(JobKey::from_hex(&k.hex()), Some(k));
        assert_eq!(k.hex().len(), 32);
        assert!(JobKey::from_hex("xyz").is_none());
    }

    #[test]
    fn run_job_matches_simulate_and_snapshots_globals() {
        let job = tiny_job();
        let result = run_job(&job);
        assert_eq!(result.key, job.key());
        let out = result.outcome.expect("tiny job succeeds");
        let (stats, sys) =
            crate::system::simulate(job.config.clone(), job.program.clone(), &job.args).unwrap();
        assert_eq!(out.stats, stats);
        assert_eq!(out.globals.read_global_word("out", 0), Some(42));
        assert_eq!(
            out.globals.read_global_word("out", 0),
            GlobalRead::read_global_word(&sys, "out", 0)
        );
        assert_eq!(out.globals.read_global_word("out", 2), None);
        assert_eq!(out.globals.read_global_word("missing", 0), None);
    }

    #[test]
    fn job_result_roundtrips_with_obs_stream() {
        let mut job = tiny_job();
        job.config.obs.mode = ObsMode::All;
        let result = run_job(&job);
        assert!(result
            .outcome
            .as_ref()
            .is_ok_and(|o| o.obs.as_ref().is_some_and(|s| !s.records.is_empty())));
        let text = result.canonical_string();
        let back = JobResult::from_canonical_str(&text).expect("canonical form decodes");
        // The canonical form deliberately zeroes host wall-clock fields
        // (nondeterministic; see `JobOutput::to_json`) — everything else
        // must survive, and the re-encode must be byte-identical.
        let mut normalized = result.clone();
        if let Ok(out) = &mut normalized.outcome {
            out.engine.shard_wall_us = Vec::new();
            out.engine.merge_wall_us = 0;
        }
        assert_eq!(back, normalized);
        assert_eq!(back.canonical_string(), text, "re-encode is byte-identical");
    }

    #[test]
    fn faulting_job_produces_typed_replayable_error() {
        let mut job = tiny_job();
        job.config.max_cycles = 1;
        let result = run_job(&job);
        let err = result.outcome.clone().expect_err("budget of 1 must trip");
        assert!(matches!(err, JobError::CycleLimit { cycle: 1, .. }));
        let back = JobResult::from_canonical_str(&result.canonical_string()).unwrap();
        assert_eq!(back.outcome, Err(err));
    }

    #[test]
    fn host_side_errors_roundtrip_and_are_flagged() {
        let key = tiny_job().key();
        let host_side = [
            JobError::HostPanic {
                message: "injected panic".into(),
                attempts: 3,
            },
            JobError::Timeout {
                budget_ms: 250,
                message: "job deadline".into(),
            },
            JobError::Overloaded {
                queued: 64,
                limit: 64,
            },
        ];
        for err in host_side {
            assert!(err.is_host_side());
            let result = JobResult {
                format: JOB_FORMAT_VERSION,
                key,
                outcome: Err(err.clone()),
            };
            assert!(result.is_host_side());
            // Host-side completions still transport over the canonical
            // codec (for clients) even though the cache refuses them.
            let back = JobResult::from_canonical_str(&result.canonical_string()).unwrap();
            assert_eq!(back.outcome, Err(err));
        }
        // The deterministic errors stay cacheable.
        let det = JobError::CycleLimit {
            cycle: 1,
            live: 1,
            detail: "d".into(),
        };
        assert!(!det.is_host_side());
        assert!(!JobResult {
            format: JOB_FORMAT_VERSION,
            key,
            outcome: Err(det),
        }
        .is_host_side());
    }

    #[test]
    fn format_mismatch_reads_as_absent() {
        let result = run_job(&tiny_job());
        let mut doc = result.canonical_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = Json::Num((JOB_FORMAT_VERSION + 1) as f64);
        }
        assert!(JobResult::from_canonical_json(&doc).is_none());
    }

    #[test]
    fn perfetto_trace_works_detached_from_system() {
        let mut job = tiny_job();
        job.config.obs.mode = ObsMode::All;
        let result = run_job(&job);
        let out = result.outcome.unwrap();
        let text = perfetto_trace(&job.config, &job.program, out.obs.as_ref().unwrap());
        assert!(dta_json::parse(&text).is_ok());
    }
}
