//! Execution tracing (compatibility shim over the event bus).
//!
//! When enabled ([`crate::SystemConfig::trace`]), the simulator records
//! the scheduler-visible life of every thread instance — frame grants,
//! readiness, dispatches, DMA waits, parks, stops — so the paper's thread
//! lifecycle (Fig. 4) can be *observed*, not just asserted. Traces are
//! bounded true ring buffers: the **newest** events are kept (the
//! interesting end-of-run events survive long runs), the number of
//! dropped events is counted, and truncation is flagged in the rendered
//! timeline.
//!
//! Since the structured observability layer landed (see the `dta-obs`
//! crate and [`crate::ObsConfig`]), this type is derived from the merged
//! event stream after the run ([`Trace::from_obs`]); `render()` output is
//! unchanged for existing users.

use dta_isa::{FramePtr, ThreadId};
use dta_obs::{ObsEvent, ObsRecord, ThreadEvent};
use dta_sched::InstanceId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What happened.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// A frame was granted and the instance was born.
    FrameGranted {
        /// The granted frame.
        frame: FramePtr,
    },
    /// A producer store arrived (`slot`), possibly making it ready.
    StoreApplied {
        /// Destination slot.
        slot: u16,
        /// Did the SC reach zero?
        became_ready: bool,
    },
    /// Dispatched onto a pipeline.
    Dispatched,
    /// PF block offloaded to the SP pipeline (extension).
    PfOffloaded,
    /// Programmed a DMA transfer.
    DmaIssued {
        /// MFC tag.
        tag: u8,
    },
    /// A DMA transfer completed.
    DmaCompleted {
        /// MFC tag.
        tag: u8,
    },
    /// Yielded the pipeline into *Wait for DMA* (Fig. 4).
    WaitDma,
    /// Descheduled while its FALLOC is queued.
    ParkedWaitFalloc,
    /// Executed `STOP`.
    Stopped,
    /// Released its frame.
    FrameFreed,
    /// Issued a blocking scalar main-memory READ on the EX pipeline.
    ReadBlocked,
}

impl TraceKind {
    fn from_thread_event(ev: ThreadEvent) -> TraceKind {
        match ev {
            ThreadEvent::FrameGranted { frame } => TraceKind::FrameGranted {
                frame: FramePtr::decode_expect(frame),
            },
            ThreadEvent::StoreApplied { slot, became_ready } => {
                TraceKind::StoreApplied { slot, became_ready }
            }
            ThreadEvent::Dispatched => TraceKind::Dispatched,
            ThreadEvent::PfOffloaded => TraceKind::PfOffloaded,
            ThreadEvent::DmaIssued { tag } => TraceKind::DmaIssued { tag },
            ThreadEvent::DmaCompleted { tag } => TraceKind::DmaCompleted { tag },
            ThreadEvent::WaitDma => TraceKind::WaitDma,
            ThreadEvent::ParkedWaitFalloc => TraceKind::ParkedWaitFalloc,
            ThreadEvent::Stopped => TraceKind::Stopped,
            ThreadEvent::FrameFreed => TraceKind::FrameFreed,
            ThreadEvent::ReadBlocked => TraceKind::ReadBlocked,
        }
    }
}

/// One trace record.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceRecord {
    /// Simulation cycle.
    pub cycle: u64,
    /// PE on which the event occurred.
    pub pe: u16,
    /// The instance involved.
    pub instance: InstanceId,
    /// Static thread of the instance.
    pub thread: ThreadId,
    /// The event.
    pub kind: TraceKind,
}

/// A bounded event log keeping the newest `capacity` events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Ring storage; `start` is the index of the oldest retained event.
    events: Vec<TraceRecord>,
    start: usize,
    capacity: usize,
    /// Events dropped at capacity (always the oldest).
    pub dropped: u64,
    /// `true` when events were dropped at capacity.
    pub truncated: bool,
}

impl Trace {
    /// A trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            events: Vec::new(),
            start: 0,
            capacity,
            dropped: 0,
            truncated: false,
        }
    }

    /// Builds the legacy trace from a wall-order-sorted event stream,
    /// keeping the newest `capacity` lifecycle events.
    pub fn from_obs(records: &[ObsRecord], capacity: usize) -> Self {
        let mut t = Trace::new(capacity);
        for r in records {
            if let ObsEvent::Thread {
                pe,
                instance,
                thread,
                what,
            } = r.ev
            {
                t.push(TraceRecord {
                    cycle: r.cycle,
                    pe,
                    instance: InstanceId(instance),
                    thread: ThreadId(thread),
                    kind: TraceKind::from_thread_event(what),
                });
            }
        }
        t
    }

    /// Records an event; at capacity the **oldest** retained event is
    /// evicted and counted in [`Trace::dropped`].
    pub fn push(&mut self, rec: TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            self.truncated = true;
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(rec);
        } else {
            self.events[self.start] = rec;
            self.start = (self.start + 1) % self.capacity;
            self.dropped += 1;
            self.truncated = true;
        }
    }

    /// All retained events, in recording order (cycle-monotone per PE).
    pub fn events(&self) -> Vec<TraceRecord> {
        let (tail, head) = self.events.split_at(self.start);
        head.iter().chain(tail.iter()).copied().collect()
    }

    /// Events of one instance, in order.
    pub fn for_instance(&self, id: InstanceId) -> Vec<TraceRecord> {
        self.events()
            .into_iter()
            .filter(|e| e.instance == id)
            .collect()
    }

    /// Count of retained events matching a predicate.
    pub fn count(&self, f: impl Fn(&TraceRecord) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Renders a per-instance lifecycle table: birth, ready latency,
    /// dispatches, DMA waits, stop.
    pub fn render(&self, thread_names: &[String]) -> String {
        #[derive(Default)]
        struct Life {
            thread: usize,
            pe: u16,
            born: Option<u64>,
            dispatches: u64,
            first_dispatch: Option<u64>,
            dma: u64,
            waits: u64,
            stopped: Option<u64>,
        }
        let mut lives: BTreeMap<InstanceId, Life> = BTreeMap::new();
        for e in &self.events {
            let l = lives.entry(e.instance).or_default();
            l.thread = e.thread.index();
            l.pe = e.pe;
            match e.kind {
                TraceKind::FrameGranted { .. } => l.born = Some(e.cycle),
                TraceKind::Dispatched => {
                    l.dispatches += 1;
                    l.first_dispatch.get_or_insert(e.cycle);
                }
                TraceKind::DmaIssued { .. } => l.dma += 1,
                TraceKind::WaitDma => l.waits += 1,
                TraceKind::Stopped => l.stopped = Some(e.cycle),
                _ => {}
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:>3} {:>9} {:>9} {:>5} {:>4} {:>5} {:>9}",
            "instance", "thread", "pe", "born", "dispatch", "disp#", "dma", "waits", "stopped"
        );
        for (id, l) in &lives {
            let name = thread_names
                .get(l.thread)
                .map(String::as_str)
                .unwrap_or("?");
            let fmt_opt = |v: Option<u64>| v.map(|c| c.to_string()).unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<10} {:<12} {:>3} {:>9} {:>9} {:>5} {:>4} {:>5} {:>9}",
                id.to_string(),
                name,
                l.pe,
                fmt_opt(l.born),
                fmt_opt(l.first_dispatch),
                l.dispatches,
                l.dma,
                l.waits,
                fmt_opt(l.stopped),
            );
        }
        if self.truncated {
            let _ = writeln!(
                out,
                "(trace truncated at {} events; {} oldest dropped)",
                self.capacity, self.dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, inst: u64, kind: TraceKind) -> TraceRecord {
        TraceRecord {
            cycle,
            pe: 0,
            instance: InstanceId(inst),
            thread: ThreadId(0),
            kind,
        }
    }

    #[test]
    fn capacity_keeps_newest_and_flags() {
        let mut t = Trace::new(2);
        t.push(rec(1, 1, TraceKind::Dispatched));
        t.push(rec(2, 1, TraceKind::Stopped));
        assert!(!t.truncated);
        t.push(rec(3, 1, TraceKind::FrameFreed));
        assert!(t.truncated);
        assert_eq!(t.dropped, 1);
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        // The *newest* two survive; the oldest was evicted.
        assert_eq!(ev[0].cycle, 2);
        assert_eq!(ev[1].cycle, 3);
    }

    #[test]
    fn per_instance_filter() {
        let mut t = Trace::new(10);
        t.push(rec(1, 1, TraceKind::Dispatched));
        t.push(rec(2, 2, TraceKind::Dispatched));
        t.push(rec(3, 1, TraceKind::Stopped));
        assert_eq!(t.for_instance(InstanceId(1)).len(), 2);
        assert_eq!(t.for_instance(InstanceId(2)).len(), 1);
        assert_eq!(t.count(|e| matches!(e.kind, TraceKind::Dispatched)), 2);
    }

    #[test]
    fn render_summarises_lifecycles() {
        let mut t = Trace::new(10);
        t.push(rec(
            5,
            1,
            TraceKind::FrameGranted {
                frame: FramePtr::new(0, 0),
            },
        ));
        t.push(rec(9, 1, TraceKind::Dispatched));
        t.push(rec(10, 1, TraceKind::DmaIssued { tag: 0 }));
        t.push(rec(11, 1, TraceKind::WaitDma));
        t.push(rec(40, 1, TraceKind::Dispatched));
        t.push(rec(60, 1, TraceKind::Stopped));
        let s = t.render(&["worker".into()]);
        assert!(s.contains("worker"));
        assert!(s.contains("i1"));
        // 2 dispatches, 1 dma, 1 wait, stop at 60.
        let line = s.lines().nth(1).unwrap();
        assert!(line.contains("60"), "{line}");
        assert!(line.contains('2'), "{line}");
    }

    #[test]
    fn from_obs_keeps_newest_lifecycle_events() {
        let mk = |cycle: u64, what: ThreadEvent| ObsRecord {
            cycle,
            unit: 0,
            seq: cycle,
            ev: ObsEvent::Thread {
                pe: 0,
                instance: 1,
                thread: 0,
                what,
            },
        };
        let recs = vec![
            mk(1, ThreadEvent::Dispatched),
            ObsRecord {
                cycle: 2,
                unit: 5,
                seq: 0,
                ev: ObsEvent::DseCrash { node: 0 },
            },
            mk(3, ThreadEvent::WaitDma),
            mk(4, ThreadEvent::Stopped),
        ];
        let t = Trace::from_obs(&recs, 2);
        // Non-lifecycle events are skipped; newest two lifecycle events kept.
        assert_eq!(t.dropped, 1);
        let ev = t.events();
        assert_eq!(ev[0].kind, TraceKind::WaitDma);
        assert_eq!(ev[1].kind, TraceKind::Stopped);
    }
}
