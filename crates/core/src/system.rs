//! The whole-chip simulator.
//!
//! A [`System`] is the paper's CellDTA platform: `nodes × pes_per_node`
//! processing elements (each with pipeline, LSE, local store and MFC), one
//! DSE per node, and a shared interconnect + main memory. The host
//! processor (the Cell PPE) appears only at [`System::launch`], where it
//! allocates the entry thread's frame and stores its arguments — "the PPE
//! is used to initiate the DTA TLP activities" (§4.1).
//!
//! Simulation is cycle-driven with event-based time skipping: scheduler
//! messages and DMA completions sit in a time-ordered queue, and when
//! every pipeline is blocked or idle the clock jumps straight to the next
//! event. Arbitration everywhere is deterministic, so a given
//! (program, config) pair always produces identical results.

use crate::config::{FaultPlan, Parallelism, SchedMode, SystemConfig};
use crate::fault::{msg_exempt, transform, FailoverSchedule, FaultCounters, DUP_STAMP_BIT};
use crate::pipeline::{Activity, MemPort, OutMsg, Pe, PipelineParams, SysCtx};
use crate::stats::{EngineReport, PeStats, RunStats};
use crate::trace::Trace;
use dta_isa::{validate_program, Program, ValidationError};
use dta_mem::fault::{roll, SITE_FALLOC_DENY};
use dta_mem::{MainMemory, MemorySystem};
use dta_obs::{
    MetricsReport, MetricsSink, ObsEvent, ObsLog, ObsRecord, ObsSink, ObsStream, PerfettoWriter,
    ThreadEvent, TrackLayout, ENGINE_UNIT, MSG_DELAY_SEQ_BIT, MSG_DUP_SEQ_BIT, MSG_SEQ_BIT,
};
use dta_sched::dse::FallocDecision;
use dta_sched::{Dest, Dse, InstanceId, Message, MsgSeq, PendingFalloc, ThreadState};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Live instances of one PE at the moment a deadlock was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockPe {
    /// Global PE index.
    pub pe: u16,
    /// Every live instance on that PE with its lifecycle state, sorted by
    /// instance id.
    pub instances: Vec<(InstanceId, ThreadState)>,
}

/// Why a run failed.
#[derive(Debug)]
pub enum RunError {
    /// The program failed static validation.
    Validation(Vec<ValidationError>),
    /// The program/config combination cannot be launched.
    Launch(String),
    /// The system wedged: no events, pipelines blocked or idle, but
    /// instances still alive (a synchronisation bug in the program).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Instances still alive.
        live: usize,
        /// Per-PE breakdown of the stuck instances (PEs with no live
        /// instances are omitted).
        pes: Vec<DeadlockPe>,
    },
    /// The system quiesced with live instances *and* hard fault evidence
    /// (stalled DMA commands or watchdog parks): an injected unrecoverable
    /// fault, not a program bug. Same diagnostic payload as
    /// [`RunError::Deadlock`].
    Watchdog {
        /// Cycle at which the watchdog classified the quiescence.
        cycle: u64,
        /// Instances still alive.
        live: usize,
        /// Permanently stalled DMA commands across all MFCs.
        stalled_dma: u64,
        /// Instances parked off a pipeline by the spin watchdog.
        parked: u64,
        /// Planned DSE crashes that fired (unrecovered work dies with a
        /// DSE when no successor ever takes over).
        crashed_dses: u64,
        /// Planned LSE crashes that fired (tainted instances and orphaned
        /// adoptions die with a PE's scheduler).
        crashed_lses: u64,
        /// Per-PE breakdown of the stuck instances (PEs with no live
        /// instances are omitted).
        pes: Vec<DeadlockPe>,
    },
    /// `max_cycles` exceeded; carries the same per-PE live-instance
    /// breakdown as [`RunError::Deadlock`] so a spinning run is as
    /// diagnosable as a wedged one.
    CycleLimit {
        /// The configured cycle budget that was exceeded.
        cycle: u64,
        /// Instances still alive.
        live: usize,
        /// Per-PE breakdown of the live instances (PEs with no live
        /// instances are omitted).
        pes: Vec<DeadlockPe>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Validation(errs) => {
                writeln!(f, "program failed validation:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            RunError::Launch(msg) => write!(f, "launch failed: {msg}"),
            RunError::Deadlock { cycle, live, pes } => {
                write!(f, "deadlock at cycle {cycle}: {live} instances still alive")?;
                write_pe_report(f, pes)
            }
            RunError::Watchdog {
                cycle,
                live,
                stalled_dma,
                parked,
                crashed_dses,
                crashed_lses,
                pes,
            } => {
                write!(
                    f,
                    "watchdog at cycle {cycle}: {live} instances still alive \
                     ({stalled_dma} stalled DMA commands, {parked} watchdog parks, \
                     {crashed_dses} crashed DSEs, {crashed_lses} crashed LSEs)"
                )?;
                write_pe_report(f, pes)
            }
            RunError::CycleLimit { cycle, live, pes } => {
                write!(
                    f,
                    "cycle limit of {cycle} exceeded: {live} instances still alive"
                )?;
                write_pe_report(f, pes)
            }
        }
    }
}

fn write_pe_report(f: &mut fmt::Formatter<'_>, pes: &[DeadlockPe]) -> fmt::Result {
    for p in pes {
        write!(f, "\n  pe {}:", p.pe)?;
        for (id, state) in &p.instances {
            write!(f, " {id}:{state:?}")?;
        }
    }
    Ok(())
}

impl std::error::Error for RunError {}

#[derive(PartialEq, Eq)]
pub(crate) struct Event {
    pub(crate) time: u64,
    /// Source stamp: the canonical same-cycle tie-break. Partition-
    /// independent, so the sequential and sharded engines deliver
    /// same-cycle messages in the same order.
    pub(crate) stamp: MsgSeq,
    pub(crate) to: Dest,
    pub(crate) msg: Message,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (Reverse(self.time), Reverse(self.stamp)).cmp(&(Reverse(other.time), Reverse(other.stamp)))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything message delivery needs, over an arbitrary sub-range of the
/// machine — the whole machine in the sequential engine, one shard's
/// slice in the sharded engine. Indices arriving in messages are global;
/// `pe_base`/`dse_base` translate them into the slices.
pub(crate) struct DeliverEnv<'a> {
    pub pes: &'a mut [Pe],
    pub pe_base: u16,
    pub dses: &'a mut [Dse],
    pub dse_base: u16,
    /// Send-stamp counters for the DSEs in `dses` (rank = total PEs +
    /// node, continuing the PE rank space).
    pub dse_stamps: &'a mut [MsgSeq],
    pub program: &'a Program,
    pub nodes: u16,
    pub pes_per_node: u16,
    pub msg_latency: u64,
    /// Observability logs of the DSEs in `dses` (same indexing).
    pub dse_obs: &'a mut [ObsLog],
    /// Stamped posts generated by the delivery (absolute delivery times;
    /// the caller routes them into its event queue or across shards).
    pub posts: &'a mut Vec<OutMsg>,
    /// Fault injection plan (None = fault-free).
    pub faults: Option<FaultPlan>,
    /// Resolved DSE crash/restart schedule (None = no DSE can crash; the
    /// gate for every failover code path).
    pub failover: Option<&'a FailoverSchedule>,
}

impl DeliverEnv<'_> {
    #[inline]
    fn pe(&mut self, pe: u16) -> &mut Pe {
        &mut self.pes[(pe - self.pe_base) as usize]
    }

    fn record(&mut self, now: u64, pe: u16, instance: InstanceId, what: ThreadEvent) {
        self.pes[(pe - self.pe_base) as usize].record(now, instance, what);
    }

    /// Emits a structured event from `node`'s DSE (no-op with events off).
    fn dse_emit(&mut self, now: u64, node: u16, ev: ObsEvent) {
        self.dse_obs[(node - self.dse_base) as usize].emit(now, ev);
    }
}

/// Applies the message-fault transforms of [`transform`] and records the
/// corresponding observability events. The records are keyed by the
/// faulted message's *own* stamp (`unit = src_rank`,
/// `seq = stamp.seq | marker bits`) and the pre-transform delivery time,
/// all of which are pure functions of the stamp and the plan — so the
/// sequential engine's `post`, the shard router, and the barrier-time DMA
/// merge produce bit-identical records for the same message.
pub(crate) fn transform_obs(
    plan: &FaultPlan,
    time: u64,
    stamp: MsgSeq,
    counts: &mut FaultCounters,
    events_on: bool,
    obs: &mut Vec<ObsRecord>,
) -> ((u64, MsgSeq), Option<(u64, MsgSeq)>) {
    let before = *counts;
    let out = transform(plan, time, stamp, counts);
    if events_on {
        let rec = |seq_bits: u64, ev: ObsEvent| ObsRecord {
            cycle: time,
            unit: stamp.src_rank,
            seq: stamp.seq | MSG_SEQ_BIT | seq_bits,
            ev,
        };
        if counts.msgs_dropped > before.msgs_dropped {
            obs.push(rec(
                0,
                ObsEvent::MsgDropped {
                    src: stamp.src_rank,
                    resend_at: out.0 .0,
                },
            ));
        }
        if counts.msgs_delayed > before.msgs_delayed {
            obs.push(rec(
                MSG_DELAY_SEQ_BIT,
                ObsEvent::MsgDelayed {
                    src: stamp.src_rank,
                },
            ));
        }
        if counts.msgs_duplicated > before.msgs_duplicated {
            obs.push(rec(
                MSG_DUP_SEQ_BIT,
                ObsEvent::MsgDuplicated {
                    src: stamp.src_rank,
                },
            ));
        }
    }
    out
}

/// Handles the DSE crash/failover protocol for a message addressed to
/// `node`'s DSE. Returns `true` when the message was consumed (the caller
/// must not run the normal arms). All routing decisions are pure
/// functions of the schedule and the current cycle, so both engines make
/// them identically, and every post here delays by at least the message
/// latency (the epoch width bound), keeping the sharded engine sound.
fn deliver_failover(env: &mut DeliverEnv<'_>, now: u64, node: u16, msg: Message) -> bool {
    let Some(f) = env.failover else {
        return false;
    };
    let di = (node - env.dse_base) as usize;
    let detect = f.detect_latency();
    let msg_latency = env.msg_latency;
    let ppn = env.pes_per_node;
    match msg {
        Message::DseCrash => {
            // The planned silence: the DSE dies holding its pending queue
            // and any fostered mirrors. Orphans replay to the successor
            // (elected at lease expiry) straight from this admission-time
            // event — the paper's "replayed from the fault schedule".
            let orphans = env.dses[di].crash();
            env.dse_emit(now, node, ObsEvent::DseCrash { node });
            let o = f.outage(node).expect("crash event implies an outage");
            if let Some(succ) = f.arbiter(node, o.detect_at) {
                if succ != node {
                    env.dses[di].note_failover();
                    env.dse_emit(
                        now,
                        node,
                        ObsEvent::DseFailover {
                            node,
                            successor: succ,
                        },
                    );
                }
                env.dses[di].note_rehomed(orphans.len() as u64);
                env.dse_emit(
                    now,
                    node,
                    ObsEvent::DseRehomed {
                        node,
                        count: orphans.len() as u64,
                    },
                );
                for req in orphans {
                    let stamp = env.dse_stamps[di].bump();
                    env.posts.push((
                        now + detect,
                        Dest::Dse(succ),
                        Message::FallocRequest {
                            requester: req.requester,
                            for_inst: req.for_inst,
                            thread: req.thread,
                            sc: req.sc,
                            hops: 0,
                        },
                        stamp,
                    ));
                }
            }
            // Every node this DSE arbitrated just before dying — its own,
            // plus any it was fostering (crash-of-successor) — gets its
            // LSEs told to re-register with whoever arbitrates next.
            for m in 0..env.nodes {
                if f.arbiter(m, now.saturating_sub(1)) != Some(node) {
                    continue;
                }
                for i in 0..ppn {
                    let pe = m * ppn + i;
                    let stamp = env.dse_stamps[di].bump();
                    env.posts
                        .push((now + detect, Dest::Lse(pe), Message::DseResync, stamp));
                }
            }
            true
        }
        Message::DseRestart => {
            // Cold rejoin: empty queue, zeroed mirrors. Own LSEs resync
            // the authoritative counts; the previous arbiter (if any —
            // a restart inside the lease never moved arbitration) drops
            // its fostered copies of our PEs.
            let prev = f.arbiter(node, now - 1);
            env.dses[di].restart();
            env.dse_emit(now, node, ObsEvent::DseRestart { node });
            for i in 0..ppn {
                let pe = node * ppn + i;
                let stamp = env.dse_stamps[di].bump();
                env.posts
                    .push((now + msg_latency, Dest::Lse(pe), Message::DseResync, stamp));
            }
            if let Some(p) = prev {
                if p != node {
                    let stamp = env.dse_stamps[di].bump();
                    env.posts.push((
                        now + msg_latency,
                        Dest::Dse(p),
                        Message::FosterRelease { node },
                        stamp,
                    ));
                }
            }
            true
        }
        Message::DseRegister { pe, free } if env.dses[di].alive() => {
            let done = env.dses[di].reserve_op(now);
            let grants = env.dses[di].register(pe, free);
            env.dse_emit(now, node, ObsEvent::DseResync { node, pe, free });
            for (target, req) in grants {
                let stamp = env.dse_stamps[di].bump();
                env.posts.push((
                    done + msg_latency,
                    Dest::Lse(target),
                    Dse::alloc_message(req),
                    stamp,
                ));
            }
            true
        }
        Message::FosterRelease { node: m } if env.dses[di].alive() => {
            env.dses[di].release_foster(m * ppn, (m + 1) * ppn);
            true
        }
        _ if !env.dses[di].alive() => {
            // Delivery to a dead DSE. Work that must survive bounces to
            // the current arbiter one lease later (each bounce advances
            // time, so loops terminate at detection, restart, or — when
            // nobody ever comes back — the drop that the quiescence
            // watchdog turns into a typed error).
            match msg {
                Message::FallocRequest { .. } => {
                    if let Some(target) = f.arbiter(node, now) {
                        env.dses[di].note_rehomed(1);
                        env.dse_emit(now, node, ObsEvent::DseRehomed { node, count: 1 });
                        let stamp = env.dse_stamps[di].bump();
                        env.posts
                            .push((now + detect, Dest::Dse(target), msg, stamp));
                    }
                }
                Message::FrameFreed { pe } | Message::DseRegister { pe, .. } => {
                    if let Some(target) = f.arbiter(pe / ppn, now) {
                        let stamp = env.dse_stamps[di].bump();
                        env.posts
                            .push((now + detect, Dest::Dse(target), msg, stamp));
                    }
                }
                // Denial-retry timers, foster releases and other strays
                // reference state that died with the DSE: drop them.
                _ => {}
            }
            true
        }
        _ => false,
    }
}

/// Handles the LSE crash/evacuation protocol for a message addressed to
/// `pe`'s LSE. Returns `true` when the message was consumed. Mirrors
/// [`deliver_failover`]: every routing decision is a pure function of the
/// schedule and the current cycle, and every post delays by at least the
/// message latency, keeping the sharded engine's epoch barrier sound.
fn deliver_lse_failover(env: &mut DeliverEnv<'_>, now: u64, pe: u16, msg: Message) -> bool {
    let Some(f) = env.failover else {
        return false;
    };
    let msg_latency = env.msg_latency;
    let lse_detect = f.lse_detect_latency();
    let node = pe / env.pes_per_node;
    match msg {
        Message::LseCrash => {
            // The planned per-PE scheduler death. The LSE classifies its
            // population (evacuate / replay / lose — see `Lse::crash`);
            // evacuees travel to the planned peer one lease later, and
            // parked allocations replay as fresh FALLOCs through the
            // current arbiter (PR 3's re-homing path).
            let o = f.lse_outage(pe).expect("crash event implies an outage");
            let report = env.pe(pe).crash_lse(now, o.evac_to);
            let p = env.pe(pe);
            if p.obs.events_on() {
                p.obs.emit(now, ObsEvent::LseCrash { pe });
                if report.evacuated > 0 {
                    p.obs.emit(
                        now,
                        ObsEvent::LseEvacuated {
                            pe,
                            count: report.evacuated,
                        },
                    );
                }
                if report.killed > 0 {
                    p.obs.emit(
                        now,
                        ObsEvent::LseKilled {
                            pe,
                            count: report.killed,
                        },
                    );
                }
            }
            if let Some(peer) = o.evac_to {
                for ev in &report.evacuees {
                    let stamp = env.pe(pe).stamp.bump();
                    env.posts.push((
                        now + lse_detect,
                        Dest::Lse(peer),
                        Message::LseAdopt {
                            home: pe,
                            index: ev.index,
                            thread: ev.thread,
                            sc: ev.sc,
                            slots: ev.slots,
                            needs_pf: ev.needs_pf,
                        },
                        stamp,
                    ));
                    // The frame snapshot follows from the same stamp
                    // stream, so it lands after the Adopt and before any
                    // later producer store.
                    for &(slot, value) in &ev.values {
                        let stamp = env.pe(pe).stamp.bump();
                        env.posts.push((
                            now + lse_detect,
                            Dest::Lse(peer),
                            Message::LseAdoptStore {
                                home: pe,
                                index: ev.index,
                                slot,
                                value,
                                sync: false,
                            },
                            stamp,
                        ));
                    }
                }
            }
            for (requester, for_inst, thread, sc, _slots, _needs_pf) in report.replay {
                let stamp = env.pe(pe).stamp.bump();
                env.posts.push((
                    now + lse_detect,
                    Dest::Dse(f.route(node, now)),
                    Message::FallocRequest {
                        requester,
                        for_inst,
                        thread,
                        sc,
                        hops: 0,
                    },
                    stamp,
                ));
            }
            true
        }
        Message::LseRestart => {
            // Cold rejoin: fresh frame pool (minus addresses still
            // draining evacuation forwards); re-register the authoritative
            // capacity with whoever arbitrates this PE now.
            let p = env.pe(pe);
            p.restart_lse();
            if p.obs.events_on() {
                p.obs.emit(now, ObsEvent::LseRestart { pe });
            }
            let free = p.lse.free_frames();
            let stamp = p.stamp.bump();
            env.posts.push((
                now + msg_latency,
                Dest::Dse(f.route(node, now)),
                Message::DseRegister { pe, free },
                stamp,
            ));
            true
        }
        Message::LseAdopt {
            home,
            index,
            thread,
            sc,
            slots,
            needs_pf,
        } => {
            let p = env.pe(pe);
            p.lse.reserve_op(now);
            if p.lse.is_dead() {
                // Simultaneous crashes: the adoption peer died before the
                // evacuee arrived. Unrecoverable.
                p.lse.adopt_lost(home, index);
                return true;
            }
            if let dta_sched::Adopted::Installed(_) =
                p.lse.adopt(now, home, index, thread, sc, slots, needs_pf)
            {
                let p = env.pe(pe);
                if p.obs.events_on() {
                    p.obs.emit(now, ObsEvent::LseReadmitted { pe, home });
                }
                // The install consumed a frame outside the grant path;
                // reset the arbiter's capacity mirror to the truth.
                let free = p.lse.free_frames();
                let stamp = p.stamp.bump();
                env.posts.push((
                    now + msg_latency,
                    Dest::Dse(f.route(node, now)),
                    Message::DseRegister { pe, free },
                    stamp,
                ));
            }
            true
        }
        Message::LseAdoptStore {
            home,
            index,
            slot,
            value,
            sync,
        } => {
            let delivery = env
                .pe(pe)
                .lse
                .adopt_store(now, home, index, slot, value, sync);
            if let dta_sched::StoreDelivery::Forward {
                peer,
                index: local,
                freed,
            } = delivery
            {
                // This LSE adopted the frame, then crashed and evacuated
                // it onward: chain the forward, re-keyed to our index.
                let stamp = env.pe(pe).stamp.bump();
                env.posts.push((
                    now + msg_latency,
                    Dest::Lse(peer),
                    Message::LseAdoptStore {
                        home: pe,
                        index: local,
                        slot,
                        value,
                        sync: true,
                    },
                    stamp,
                ));
                if freed {
                    let stamp = env.pe(pe).stamp.bump();
                    env.posts.push((
                        now + msg_latency,
                        Dest::Dse(f.route(node, now)),
                        Message::FrameFreed { pe },
                        stamp,
                    ));
                }
            }
            true
        }
        Message::Store { frame, slot, value } if env.pe(pe).lse.ever_crashed() => {
            // Producer stores at an LSE that has crashed at least once:
            // evacuated frames forward to their adopter, live frames
            // apply normally, stores for destroyed instances drop (safe:
            // every killed instance had reached SC zero or was lost with
            // its producers' knowledge — see DESIGN.md §14).
            let p = env.pe(pe);
            p.lse.reserve_op(now);
            match p.lse.store_after_crash(now, frame, slot, value) {
                dta_sched::StoreDelivery::Applied(ready) => {
                    if let Some(owner) = env.pe(pe).lse.frame_owner(frame) {
                        env.record(
                            now,
                            pe,
                            owner,
                            ThreadEvent::StoreApplied {
                                slot,
                                became_ready: ready.is_some(),
                            },
                        );
                    }
                }
                dta_sched::StoreDelivery::Forward { peer, index, freed } => {
                    let stamp = env.pe(pe).stamp.bump();
                    env.posts.push((
                        now + msg_latency,
                        Dest::Lse(peer),
                        Message::LseAdoptStore {
                            home: pe,
                            index,
                            slot,
                            value,
                            sync: true,
                        },
                        stamp,
                    ));
                    if freed {
                        let stamp = env.pe(pe).stamp.bump();
                        env.posts.push((
                            now + msg_latency,
                            Dest::Dse(f.route(node, now)),
                            Message::FrameFreed { pe },
                            stamp,
                        ));
                    }
                }
                _ => {}
            }
            true
        }
        _ if env.pe(pe).lse.is_dead() => {
            // Everything except a grant (Ffree / DmaDone / DseResync)
            // references state that died with the LSE: drop it.
            if let Message::AllocFrame {
                requester,
                for_inst,
                thread,
                sc,
            } = msg
            {
                // A grant outran crash detection: bounce it back to
                // the current arbiter as a fresh request one lease
                // later (by then the dead PE is excluded).
                let stamp = env.pe(pe).stamp.bump();
                env.posts.push((
                    now + lse_detect,
                    Dest::Dse(f.route(node, now)),
                    Message::FallocRequest {
                        requester,
                        for_inst,
                        thread,
                        sc,
                        hops: 0,
                    },
                    stamp,
                ));
            }
            true
        }
        _ if env.pe(pe).lse.ever_crashed() => {
            // Restarted LSE: stale traffic for instances destroyed by the
            // crash must drop instead of tripping consistency panics.
            match msg {
                Message::DmaDone { owner, .. }
                    if !env.pe(pe).lse.has_instance(owner)
                        && env.pe(pe).current() != Some(owner) =>
                {
                    true
                }
                Message::Ffree { frame } if env.pe(pe).lse.frame_owner(frame).is_none() => true,
                _ => false,
            }
        }
        _ => false,
    }
}

/// Applies one message to its destination unit, collecting any posts it
/// provokes. Shared verbatim between the sequential and sharded engines,
/// which is what keeps their per-unit behaviour identical by
/// construction.
pub(crate) fn deliver(env: &mut DeliverEnv<'_>, now: u64, to: Dest, msg: Message) {
    match to {
        Dest::Dse(node) => {
            // Detected LSE deaths are excluded from arbitration before any
            // handling. The set is a pure function of the schedule and the
            // cycle, so both engines recompute it identically; a shrink
            // (an LSE restart) can re-open capacity for parked requests.
            if let Some(f) = env.failover {
                if f.lse_dead_any() {
                    let di = (node - env.dse_base) as usize;
                    let grants = env.dses[di].set_dead_pes(f.all_detected_dead_pes(now));
                    for (target, req) in grants {
                        let stamp = env.dse_stamps[di].bump();
                        env.posts.push((
                            now + env.msg_latency,
                            Dest::Lse(target),
                            Dse::alloc_message(req),
                            stamp,
                        ));
                    }
                }
            }
            if env.failover.is_some() && deliver_failover(env, now, node, msg) {
                return;
            }
            let msg_latency = env.msg_latency;
            let dse = &mut env.dses[(node - env.dse_base) as usize];
            match msg {
                Message::FallocRequest {
                    requester,
                    for_inst,
                    thread,
                    sc,
                    hops,
                } => {
                    let done = dse.reserve_op(now);
                    let req = PendingFalloc {
                        requester,
                        for_inst,
                        thread,
                        sc,
                    };
                    // Fault injection: deny this arbitration outright,
                    // simulating transient frame-memory exhaustion. The
                    // requester is parked exactly like a Queued decision,
                    // and a one-shot FallocRetry timer re-runs the skipped
                    // arbitration (a denial never touched the free-frame
                    // mirror, so the retry is guaranteed the capacity this
                    // request would have been granted — recovery cannot
                    // itself starve).
                    // Keyed by admission attempt (granted requests plus
                    // prior denials), so the key advances even when this
                    // roll denies — keying on `requests` alone would
                    // freeze the roll after the first denial and deny
                    // every later arrival too.
                    let denied = env.faults.is_some_and(|f| {
                        roll(
                            f.seed,
                            SITE_FALLOC_DENY,
                            ((node as u64) << 48) ^ (dse.stats().requests + dse.stats().denials),
                            f.falloc_deny_ppm,
                        )
                    });
                    if denied {
                        dse.force_queue(req);
                        env.dse_emit(now, node, ObsEvent::FallocDenied { node, requester });
                        let retry_at = now + env.faults.expect("checked").falloc_retry_timeout;
                        let stamps = &mut env.dse_stamps[(node - env.dse_base) as usize];
                        let stamp = stamps.bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Pipeline(requester),
                            Message::FallocDeferred { for_inst },
                            stamp,
                        ));
                        let stamp = env.dse_stamps[(node - env.dse_base) as usize].bump();
                        env.posts
                            .push((retry_at, Dest::Dse(node), Message::FallocRetry, stamp));
                        return;
                    }
                    let decision = dse.on_falloc(req, hops);
                    let stamp = env.dse_stamps[(node - env.dse_base) as usize].bump();
                    match decision {
                        FallocDecision::Grant { pe } => {
                            env.posts.push((
                                done + msg_latency,
                                Dest::Lse(pe),
                                Message::AllocFrame {
                                    requester,
                                    for_inst,
                                    thread,
                                    sc,
                                },
                                stamp,
                            ));
                        }
                        FallocDecision::Forward => {
                            // Under failover, a forward skips dead peers
                            // (send-time routing to the ring successor's
                            // current arbiter).
                            let ring = (node + 1) % env.nodes;
                            let next = env.failover.map_or(ring, |f| f.route(ring, now));
                            env.posts.push((
                                done + msg_latency,
                                Dest::Dse(next),
                                Message::FallocRequest {
                                    requester,
                                    for_inst,
                                    thread,
                                    sc,
                                    hops: hops + 1,
                                },
                                stamp,
                            ));
                        }
                        FallocDecision::Queued => {
                            // Tell the requester to deschedule; the
                            // grant will arrive once a frame frees up.
                            env.posts.push((
                                done + msg_latency,
                                Dest::Pipeline(requester),
                                Message::FallocDeferred { for_inst },
                                stamp,
                            ));
                        }
                    }
                }
                Message::FrameFreed { pe } => {
                    let done = dse.reserve_op(now);
                    let grants = dse.on_frame_freed(pe);
                    for (target, req) in grants {
                        let stamp = env.dse_stamps[(node - env.dse_base) as usize].bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Lse(target),
                            Message::AllocFrame {
                                requester: req.requester,
                                for_inst: req.for_inst,
                                thread: req.thread,
                                sc: req.sc,
                            },
                            stamp,
                        ));
                    }
                }
                Message::FallocRetry => {
                    // One-shot denial-recovery timer: re-run the
                    // arbitration that an injected denial skipped.
                    let done = dse.reserve_op(now);
                    let grants = dse.re_arbitrate();
                    env.dse_emit(
                        now,
                        node,
                        ObsEvent::FallocRearb {
                            node,
                            grants: grants.len() as u32,
                        },
                    );
                    for (target, req) in grants {
                        let stamp = env.dse_stamps[(node - env.dse_base) as usize].bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Lse(target),
                            Message::AllocFrame {
                                requester: req.requester,
                                for_inst: req.for_inst,
                                thread: req.thread,
                                sc: req.sc,
                            },
                            stamp,
                        ));
                    }
                }
                other => panic!("DSE {node} received unexpected message {other:?}"),
            }
        }
        Dest::Lse(pe) => {
            env.pe(pe).gauge_sync(now);
            if env.failover.is_some() && deliver_lse_failover(env, now, pe, msg) {
                return;
            }
            let msg_latency = env.msg_latency;
            match msg {
                Message::AllocFrame {
                    requester,
                    for_inst,
                    thread,
                    sc,
                } => {
                    // Graceful degradation: once this PE's MFC exhausted a
                    // DMA retry budget, new instances substitute the
                    // thread's PF-skipping fallback body (the baseline
                    // decoupled READ/WRITE path) — same results, degraded
                    // performance. Substituting here, at frame grant,
                    // keeps the decision deterministic: it depends only on
                    // the PE's degraded flag at delivery time, which both
                    // engines flip at the same logical admission.
                    let program = env.program;
                    let mut thread = thread;
                    {
                        let p = env.pe(pe);
                        if p.degraded {
                            if let Some(fb) = program.threads[thread.index()].fallback {
                                thread = fb;
                                p.fallbacks += 1;
                                if p.obs.events_on() {
                                    p.obs.emit(
                                        now,
                                        ObsEvent::FallbackSubstituted { pe, thread: fb.0 },
                                    );
                                }
                            }
                        }
                    }
                    let code = &program.threads[thread.index()];
                    let slots = code.frame_slots;
                    let needs_pf = code.prefetch_bytes > 0;
                    let p = env.pe(pe);
                    let done = p.lse.reserve_op(now);
                    let granted = p
                        .lse
                        .alloc_frame(requester, for_inst, thread, sc, slots, needs_pf);
                    match granted {
                        Some(granted) => {
                            env.record(
                                now,
                                pe,
                                granted.instance,
                                ThreadEvent::FrameGranted {
                                    frame: granted.frame.encode(),
                                },
                            );
                            let stamp = env.pe(pe).stamp.bump();
                            env.posts.push((
                                done + msg_latency,
                                Dest::Pipeline(requester),
                                Message::FallocResponse {
                                    frame: granted.frame,
                                    for_inst: granted.for_inst,
                                },
                                stamp,
                            ));
                        }
                        None => {
                            // Parked on prefetch-buffer exhaustion:
                            // tell the requester to deschedule, like a
                            // DSE queue (the grant arrives when a
                            // buffer frees up).
                            let stamp = env.pe(pe).stamp.bump();
                            env.posts.push((
                                done + msg_latency,
                                Dest::Pipeline(requester),
                                Message::FallocDeferred { for_inst },
                                stamp,
                            ));
                        }
                    }
                }
                Message::Store { frame, slot, value } => {
                    let p = env.pe(pe);
                    p.lse.reserve_op(now);
                    let owner = p.lse.frame_owner(frame);
                    let ready = p.lse.store(now, frame, slot, value);
                    if let Some(owner) = owner {
                        env.record(
                            now,
                            pe,
                            owner,
                            ThreadEvent::StoreApplied {
                                slot,
                                became_ready: ready.is_some(),
                            },
                        );
                    }
                }
                Message::Ffree { frame } => {
                    let p = env.pe(pe);
                    let done = p.lse.reserve_op(now);
                    if let Some(owner) = p.lse.frame_owner(frame) {
                        env.record(now, pe, owner, ThreadEvent::FrameFreed);
                    }
                    let granted = env.pe(pe).lse.ffree(frame);
                    for g in granted {
                        let stamp = env.pe(pe).stamp.bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Pipeline(g.requester),
                            Message::FallocResponse {
                                frame: g.frame,
                                for_inst: g.for_inst,
                            },
                            stamp,
                        ));
                    }
                    // A freed frame can also install a parked adoption
                    // from a crashed peer. When it does, the frame never
                    // returns to the pool — so instead of a FrameFreed
                    // (which would over-credit the arbiter's mirror) we
                    // re-register the authoritative count.
                    let mut adopted: Vec<(u16, u32, InstanceId)> = Vec::new();
                    if env.failover.is_some() {
                        adopted = env.pe(pe).lse.retry_adoptions(now);
                    }
                    let node = pe / env.pes_per_node;
                    let target = env.failover.map_or(node, |f| f.route(node, now));
                    if adopted.is_empty() {
                        // The capacity notification goes to whoever
                        // arbitrates this PE right now (its home DSE, or
                        // the successor fostering it after a crash).
                        let stamp = env.pe(pe).stamp.bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Dse(target),
                            Message::FrameFreed { pe },
                            stamp,
                        ));
                    } else {
                        let p = env.pe(pe);
                        if p.obs.events_on() {
                            for &(home, _, _) in &adopted {
                                p.obs.emit(now, ObsEvent::LseReadmitted { pe, home });
                            }
                        }
                        let free = p.lse.free_frames();
                        let stamp = p.stamp.bump();
                        env.posts.push((
                            done + msg_latency,
                            Dest::Dse(target),
                            Message::DseRegister { pe, free },
                            stamp,
                        ));
                    }
                }
                Message::DmaDone { owner, tag } => {
                    if env.pe(pe).obs.events_on() && env.pe(pe).lse.has_instance(owner) {
                        env.record(now, pe, owner, ThreadEvent::DmaCompleted { tag });
                    }
                    let p = env.pe(pe);
                    if p.lse.has_instance(owner) {
                        // Mirror of the issue-side increment: the overlap
                        // census closes at the same simulated point the
                        // DmaCompleted event is stamped, in both engines
                        // (deliveries precede ticks within a cycle).
                        p.dma_open = p.dma_open.saturating_sub(1);
                    }
                    if !p.current_dma_done(owner, tag) {
                        p.lse.dma_done(now, owner, tag);
                    }
                }
                Message::DseResync => {
                    // Failover: the arbiter changed; report the
                    // authoritative free-frame count to whoever
                    // arbitrates this PE now.
                    let p = env.pe(pe);
                    let done = p.lse.reserve_op(now);
                    let free = p.lse.free_frames();
                    let home = pe / env.pes_per_node;
                    let target = env.failover.map_or(home, |f| f.route(home, now));
                    let stamp = env.pe(pe).stamp.bump();
                    env.posts.push((
                        done + msg_latency,
                        Dest::Dse(target),
                        Message::DseRegister { pe, free },
                        stamp,
                    ));
                }
                other => panic!("LSE {pe} received unexpected message {other:?}"),
            }
        }
        Dest::Pipeline(pe) => {
            if env.failover.is_some() {
                let p = env.pe(pe);
                // A `ReadDone` whose issuing instance the crash destroyed
                // still closes the orphaned wait span (charging the same
                // bucket the sequential engine charged inline at issue).
                if p.lse.ever_crashed() {
                    if let Message::ReadDone { .. } = msg {
                        if p.dead_read_done(now) {
                            return;
                        }
                    }
                }
                // A dead PE's pipeline consumes nothing; after a restart,
                // responses for instances the crash destroyed are stale
                // and must drop instead of tripping delivery panics.
                let p = env.pe(pe);
                let stale = p.lse.is_dead()
                    || (p.lse.ever_crashed()
                        && match msg {
                            Message::FallocResponse { for_inst, .. } => {
                                !p.expects_falloc_response(for_inst)
                            }
                            Message::ReadDone { .. } => !p.expects_read(),
                            _ => false,
                        });
                if stale {
                    return;
                }
            }
            match msg {
                Message::FallocResponse { frame, for_inst } => {
                    env.pe(pe).gauge_sync(now);
                    env.pe(pe).complete_falloc(now, frame, for_inst);
                }
                Message::FallocDeferred { for_inst } => {
                    env.pe(pe).gauge_sync(now);
                    env.pe(pe).defer_falloc(now, for_inst);
                }
                Message::ReadDone { value, ready_at } => {
                    env.pe(pe).gauge_sync(now);
                    env.pe(pe).complete_read(now, value, ready_at);
                }
                other => panic!("pipeline {pe} received unexpected message {other:?}"),
            }
        }
    }
}

/// The simulated machine.
pub struct System {
    pub(crate) config: SystemConfig,
    pub(crate) program: Arc<Program>,
    pub(crate) pes: Vec<Pe>,
    pub(crate) dses: Vec<Dse>,
    pub(crate) dse_stamps: Vec<MsgSeq>,
    pub(crate) memsys: MemorySystem,
    pub(crate) mem: MainMemory,
    pub(crate) events: BinaryHeap<Event>,
    pub(crate) now: u64,
    pub(crate) drain_until: u64,
    launched: bool,
    /// Legacy lifecycle trace, derived from the event stream at
    /// finalisation when [`SystemConfig::trace`] is set.
    pub(crate) trace: Option<Trace>,
    /// Per-DSE observability logs (unit rank = total PEs + node).
    pub(crate) dse_obs: Vec<ObsLog>,
    /// Message-fault records (engine-invariant stamps; see `post`).
    pub(crate) obs_misc: Vec<ObsRecord>,
    /// The engine's own log (epoch boundaries; excluded from the
    /// deterministic stream).
    pub(crate) engine_obs: ObsLog,
    /// The merged wall-order stream, built once at run end.
    pub(crate) obs: Option<ObsStream>,
    obs_finalized: bool,
    /// Records already drained out of the per-unit rings by incremental
    /// streaming ([`ObsConfig::stream_interval`]); prepended to the
    /// final merge.
    pub(crate) streamed: Vec<ObsRecord>,
    /// Scratch batch buffer for `stream_obs_through` (reused across
    /// flushes).
    pub(crate) stream_scratch: Vec<ObsRecord>,
    /// Optional live consumer: fed each streamed batch in wall order as
    /// the run progresses, then the post-run remainder at finalisation.
    pub(crate) stream_sink: Option<Box<dyn ObsSink + Send>>,
    /// Message-fault bookkeeping (shard counters merge in here).
    pub(crate) fault_counts: FaultCounters,
    /// Host-engine execution report (how time was advanced; outside
    /// [`RunStats`] so determinism suites can compare those bit-for-bit
    /// across engines).
    pub(crate) engine_report: EngineReport,
    /// Resolved DSE crash/restart schedule (None = no DSE can crash).
    pub(crate) failover: Option<Arc<FailoverSchedule>>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("pes", &self.pes.len())
            .field("nodes", &self.dses.len())
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system for `program` under `config`.
    ///
    /// Validates the program and sizes the per-PE prefetch-buffer pool
    /// from the program's declared needs.
    pub fn new(config: SystemConfig, program: Arc<Program>) -> Result<Self, RunError> {
        let errors = validate_program(&program);
        if !errors.is_empty() {
            return Err(RunError::Validation(errors));
        }
        let lse_params = config
            .lse_params(program.max_prefetch_bytes())
            .map_err(RunError::Launch)?;
        let pparams = PipelineParams {
            taken_branch_penalty: config.taken_branch_penalty,
            dispatch_penalty: config.dispatch_penalty,
            msg_latency: config.msg_latency,
            ls_latency: config.ls_latency,
            ls_ports: config.ls_ports,
            cache: config.cache,
            sp_pf_overlap: config.sp_pf_overlap,
            obs_events: config.obs_events_on(),
            obs_interval: config.obs_interval(),
            obs_capacity: config.obs.event_capacity,
            memo: config.memo,
            // Memoization only runs where it is provably inert: the SP
            // offload mutates LS bytes asynchronously mid-segment, and a
            // non-benign fault plan perturbs latencies/liveness in ways
            // the contention-window check cannot see.
            memo_active: config.memo.enabled
                && !config.sp_pf_overlap
                && config.faults.is_none_or(|f| f.is_benign()),
            max_cycles: config.max_cycles,
        };
        let mut pes = Vec::with_capacity(config.total_pes() as usize);
        for pe in 0..config.total_pes() {
            let node = pe / config.pes_per_node;
            let mut p = Pe::new(pe, node, lse_params, config.mfc, config.ls_size, pparams);
            if let Some(f) = config.faults {
                p.mfc.set_faults(f.dma_plan_for(pe));
                p.arm_watchdog(f.watchdog_spin_limit);
            }
            pes.push(p);
        }
        let mut dses: Vec<Dse> = (0..config.nodes)
            .map(|node| {
                let local: Vec<u16> = (0..config.pes_per_node)
                    .map(|i| node * config.pes_per_node + i)
                    .collect();
                Dse::new(
                    node,
                    local,
                    config.frame_capacity,
                    config.nodes,
                    config.dse_params(),
                )
            })
            .collect();
        let mut mem = MainMemory::new(config.mem_size);
        mem.load_globals(&program.globals);
        let total = config.total_pes() as u32;
        let dse_obs = (0..config.nodes)
            .map(|node| {
                ObsLog::new(
                    total + node as u32,
                    config.obs.event_capacity,
                    config.obs_events_on(),
                    0,
                )
            })
            .collect();
        let engine_obs = ObsLog::new(
            ENGINE_UNIT,
            config.obs.event_capacity,
            config.obs_events_on(),
            0,
        );
        let dse_stamps = (0..config.nodes)
            .map(|node| MsgSeq::first(total + node as u32))
            .collect();
        // Resolve the DSE crash/restart schedule and pre-post its
        // injection events. The synthetic injector rank sits past every
        // real unit, so a same-cycle crash delivers after all real
        // protocol traffic of that cycle — deterministically in both
        // engines. `None` gates every failover code path (zero overhead
        // when off).
        let failover = config
            .faults
            .as_ref()
            .and_then(|f| {
                FailoverSchedule::from_plan(
                    f,
                    config.nodes,
                    config.pes_per_node,
                    config.frame_capacity,
                    config.msg_latency,
                )
            })
            .map(Arc::new);
        let mut events = BinaryHeap::new();
        if let Some(f) = &failover {
            for d in dses.iter_mut() {
                d.enable_failover();
            }
            for node in 0..config.nodes {
                let Some(o) = f.outage(node) else { continue };
                let rank = total + config.nodes as u32 + node as u32;
                events.push(Event {
                    time: o.crash_at,
                    stamp: MsgSeq {
                        src_rank: rank,
                        seq: 0,
                    },
                    to: Dest::Dse(node),
                    msg: Message::DseCrash,
                });
                if let Some(r) = o.restart_at {
                    events.push(Event {
                        time: r,
                        stamp: MsgSeq {
                            src_rank: rank,
                            seq: 1,
                        },
                        to: Dest::Dse(node),
                        msg: Message::DseRestart,
                    });
                }
            }
            // Per-PE LSE injectors rank past the DSE injectors, so a
            // same-cycle LSE crash delivers after all DSE protocol
            // traffic — deterministically in both engines.
            for pe in 0..config.total_pes() {
                let Some(o) = f.lse_outage(pe) else { continue };
                let rank = total + 2 * config.nodes as u32 + pe as u32;
                events.push(Event {
                    time: o.crash_at,
                    stamp: MsgSeq {
                        src_rank: rank,
                        seq: 0,
                    },
                    to: Dest::Lse(pe),
                    msg: Message::LseCrash,
                });
                if let Some(r) = o.restart_at {
                    events.push(Event {
                        time: r,
                        stamp: MsgSeq {
                            src_rank: rank,
                            seq: 1,
                        },
                        to: Dest::Lse(pe),
                        msg: Message::LseRestart,
                    });
                }
            }
        }
        Ok(System {
            memsys: config.memory_system(),
            config,
            program,
            pes,
            dses,
            dse_stamps,
            mem,
            events,
            now: 0,
            drain_until: 0,
            launched: false,
            trace: None,
            dse_obs,
            obs_misc: Vec::new(),
            engine_obs,
            obs: None,
            obs_finalized: false,
            streamed: Vec::new(),
            stream_scratch: Vec::new(),
            stream_sink: None,
            fault_counts: FaultCounters::default(),
            engine_report: EngineReport::default(),
            failover,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// How the host engine advanced time in the finished run (visited
    /// cycles, ticks made/skipped, epoch barriers/merges). Host-side
    /// only — simulated results are independent of it.
    pub fn engine_report(&self) -> &EngineReport {
        &self.engine_report
    }

    /// Read-only view of main memory (for verifying results after a run).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// The recorded trace, when tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Renders the recorded trace as a per-instance lifecycle table.
    pub fn render_trace(&self) -> Option<String> {
        let names: Vec<String> = self
            .program
            .threads
            .iter()
            .map(|t| t.name.clone())
            .collect();
        self.trace.as_ref().map(|t| t.render(&names))
    }

    /// Reads 32-bit word `index` of global `name`.
    pub fn read_global_word(&self, name: &str, index: usize) -> Option<i32> {
        let g = self.program.global(name)?;
        if (index + 1) * 4 > g.size() {
            return None;
        }
        Some(self.mem.read_u32(g.addr + index as u64 * 4) as i32)
    }

    /// Captures the final contents of every program global as a
    /// self-contained, serializable snapshot, so results can be verified
    /// (and cached) without keeping the [`System`] alive. Part of
    /// [`crate::job::JobOutput`].
    pub fn snapshot_globals(&self) -> crate::job::GlobalSnapshot {
        crate::job::GlobalSnapshot::new(
            self.program
                .globals
                .iter()
                .map(|g| {
                    let words = (0..g.size() / 4)
                        .map(|i| self.mem.read_u32(g.addr + i as u64 * 4) as i32)
                        .collect();
                    (g.name.clone(), words)
                })
                .collect(),
        )
    }

    fn post(&mut self, time: u64, to: Dest, msg: Message, stamp: MsgSeq) {
        let time = time.max(self.now + 1);
        if let Some(f) = self.config.faults {
            if f.has_msg_faults() && !msg_exempt(&msg) {
                let ((t1, s1), dup) = transform_obs(
                    &f,
                    time,
                    stamp,
                    &mut self.fault_counts,
                    self.config.obs_events_on(),
                    &mut self.obs_misc,
                );
                if let Some((t2, s2)) = dup {
                    self.events.push(Event {
                        time: t2,
                        stamp: s2,
                        to,
                        msg,
                    });
                }
                self.events.push(Event {
                    time: t1,
                    stamp: s1,
                    to,
                    msg,
                });
                return;
            }
        }
        self.events.push(Event {
            time,
            stamp,
            to,
            msg,
        });
    }

    /// The host (PPE) side of program start: allocates the entry frame via
    /// the normal DSE path and stores the arguments.
    ///
    /// # Panics
    ///
    /// If called twice.
    pub fn launch(&mut self, args: &[i64]) -> Result<(), RunError> {
        assert!(!self.launched, "launch called twice");
        self.launched = true;
        let entry = self.program.entry;
        let entry_code = self.program.thread(entry);
        if args.len() != self.program.entry_args as usize {
            return Err(RunError::Launch(format!(
                "entry thread expects {} arguments, got {}",
                self.program.entry_args,
                args.len()
            )));
        }
        let sc = args.len() as u16;
        let slots = entry_code.frame_slots.max(sc);
        let needs_pf = entry_code.prefetch_bytes > 0;
        // The host's FALLOC goes through the DSE like any other, at time 0.
        let req = PendingFalloc {
            requester: u16::MAX, // host marker; response handled inline
            for_inst: dta_sched::InstanceId(u64::MAX),
            thread: entry,
            sc,
        };
        let pe = match self.dses[0].on_falloc(req, 0) {
            FallocDecision::Grant { pe } => pe,
            _ => {
                return Err(RunError::Launch(
                    "no frame available for entry thread".into(),
                ))
            }
        };
        let granted = self.pes[pe as usize]
            .lse
            .alloc_frame(
                u16::MAX,
                dta_sched::InstanceId(u64::MAX),
                entry,
                sc,
                slots,
                needs_pf,
            )
            .ok_or_else(|| {
                RunError::Launch("entry allocation parked (no prefetch buffer)".into())
            })?;
        for (i, &a) in args.iter().enumerate() {
            self.pes[pe as usize]
                .lse
                .store(0, granted.frame, i as u16, a);
        }
        Ok(())
    }

    /// The deterministic per-PE live-instance report shared by every
    /// diagnostic error variant.
    pub(crate) fn live_report(&self) -> (usize, Vec<DeadlockPe>) {
        let live: usize = self.pes.iter().map(|p| p.lse.live_instances()).sum();
        let pes = self
            .pes
            .iter()
            .filter(|p| p.lse.live_instances() > 0)
            .map(|p| DeadlockPe {
                pe: p.id(),
                instances: p.lse.live_instance_states(),
            })
            .collect();
        (live, pes)
    }

    /// Builds the deterministic deadlock report (every PE's live
    /// instances, sorted).
    pub(crate) fn deadlock_error(&self) -> RunError {
        let (live, pes) = self.live_report();
        RunError::Deadlock {
            cycle: self.now,
            live,
            pes,
        }
    }

    /// Classifies a quiescent machine with live instances: hard fault
    /// evidence (permanently stalled DMA commands or watchdog parks)
    /// means an injected unrecoverable fault ([`RunError::Watchdog`]);
    /// otherwise it is a plain [`RunError::Deadlock`] (a synchronisation
    /// bug in the program).
    pub(crate) fn quiescence_error(&self) -> RunError {
        let stalled_dma: u64 = self.pes.iter().map(|p| p.mfc.stats().stalled).sum();
        let parked: u64 = self.pes.iter().map(|p| p.watchdog_parks).sum();
        let crashed: u64 = self.dses.iter().map(|d| d.stats().crashes).sum();
        let crashed_lses: u64 = self.pes.iter().map(|p| p.lse.stats().crashes).sum();
        if stalled_dma + parked + crashed + crashed_lses == 0 {
            return self.deadlock_error();
        }
        let (live, pes) = self.live_report();
        RunError::Watchdog {
            cycle: self.now,
            live,
            stalled_dma,
            parked,
            crashed_dses: crashed,
            crashed_lses,
            pes,
        }
    }

    /// Work the run knows it lost to LSE crashes: tainted instances
    /// killed unrecoverably, plus adoptions that never installed. A
    /// quiescent machine with zero live instances but non-zero lost work
    /// did *not* complete the program — it must report a typed error, not
    /// success with silently missing results.
    pub(crate) fn unrecovered_work(&self) -> u64 {
        self.pes.iter().map(|p| p.lse.unrecovered_work()).sum()
    }

    /// Builds the enriched cycle-limit error (same live-instance
    /// diagnostic as a deadlock).
    pub(crate) fn cycle_limit_error(&self) -> RunError {
        let (live, pes) = self.live_report();
        RunError::CycleLimit {
            cycle: self.config.max_cycles,
            live,
            pes,
        }
    }

    /// Runs to completion; returns the collected statistics.
    ///
    /// Dispatches on [`SystemConfig::parallelism`]: `Off` runs the
    /// sequential engine; `Threads`/`Auto` run the epoch-sharded engine
    /// (which produces bit-identical results). Tracing and the
    /// `sp_pf_overlap` extension force the sequential engine (the SP
    /// pipeline replays instructions at future cycles, which the epoch
    /// ticket protocol does not model).
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        assert!(self.launched, "run() before launch()");
        let threads = match self.config.parallelism {
            Parallelism::Off => None,
            _ if self.config.sp_pf_overlap => None,
            Parallelism::Threads(n) => Some(n.max(1) as usize),
            Parallelism::Auto => Some(std::thread::available_parallelism().map_or(1, |n| n.get())),
        };
        match threads {
            None => self.run_sequential(),
            Some(n) => crate::engine::run_sharded(self, n),
        }
    }

    pub(crate) fn run_sequential(&mut self) -> Result<RunStats, RunError> {
        match self.config.sched {
            SchedMode::Dense => self.run_sequential_dense(),
            SchedMode::FastForward => self.run_sequential_ff(),
        }
    }

    /// Drains and delivers every event due at `self.now`, feeding the
    /// resulting posts back into the queue. With `wakes`, each delivery
    /// addressed to a PE (LSE or pipeline) also reports the PE index so
    /// the fast-forward engine can tick it this cycle.
    fn deliver_due(
        &mut self,
        posts: &mut Vec<OutMsg>,
        report: &mut EngineReport,
        mut wake: Option<&mut dyn FnMut(u16)>,
    ) {
        while self.events.peek().is_some_and(|e| e.time <= self.now) {
            let e = self.events.pop().expect("peeked");
            if e.stamp.seq & DUP_STAMP_BIT != 0 {
                // An injected duplicate: the primary copy already
                // delivered (or will, under the unmarked stamp);
                // discard so handlers stay single-delivery.
                continue;
            }
            match e.to {
                Dest::Lse(_) | Dest::Pipeline(_) => report.pe_deliveries += 1,
                Dest::Dse(_) => report.dse_deliveries += 1,
            }
            if let Some(wake) = wake.as_deref_mut() {
                match e.to {
                    Dest::Lse(pe) | Dest::Pipeline(pe) => wake(pe),
                    Dest::Dse(_) => {}
                }
            }
            let mut env = DeliverEnv {
                pes: &mut self.pes,
                pe_base: 0,
                dses: &mut self.dses,
                dse_base: 0,
                dse_stamps: &mut self.dse_stamps,
                program: &self.program,
                nodes: self.config.nodes,
                pes_per_node: self.config.pes_per_node,
                msg_latency: self.config.msg_latency,
                dse_obs: &mut self.dse_obs,
                posts,
                faults: self.config.faults,
                failover: self.failover.as_deref(),
            };
            deliver(&mut env, self.now, e.to, e.msg);
            for (time, to, msg, stamp) in posts.drain(..) {
                self.post(time, to, msg, stamp);
            }
        }
    }

    /// Stamps the host-profiling tail onto a finished engine report —
    /// total loop wall time (the sequential engines are one "shard") and
    /// the shared memory system's request count — and installs it.
    fn seal_report(&mut self, mut report: EngineReport, wall: std::time::Instant) {
        report.shard_wall_us = vec![wall.elapsed().as_micros() as u64];
        report.mem_requests = self.memsys.stats().total();
        for pe in &self.pes {
            let m = pe.memo_counters();
            report.memo_hits += m.hits;
            report.memo_misses += m.misses;
            report.memo_replayed_cycles += m.replayed_cycles;
            report.memo_aborts += m.aborts;
        }
        self.engine_report = report;
    }

    /// The original dense loop: every PE ticks at every visited cycle.
    fn run_sequential_dense(&mut self) -> Result<RunStats, RunError> {
        let wall = std::time::Instant::now();
        let mut outbox: Vec<OutMsg> = Vec::new();
        let mut posts: Vec<OutMsg> = Vec::new();
        let mut report = EngineReport::default();
        let stream_every = self.config.obs_stream_interval();
        let mut stream_next = stream_every;

        loop {
            if self.now > self.config.max_cycles {
                self.seal_report(report, wall);
                self.finalize_obs(self.now);
                return Err(self.cycle_limit_error());
            }
            report.visited_cycles += 1;

            // Deliver everything due now. Deliveries only post messages
            // for strictly later cycles, so flushing afterwards is safe.
            self.deliver_due(&mut posts, &mut report, None);

            // Tick every PE.
            let mut any_active = false;
            let mut next_wake = u64::MAX;
            {
                let System {
                    pes,
                    memsys,
                    mem,
                    program,
                    drain_until,
                    failover,
                    ..
                } = self;
                let mut ctx = SysCtx {
                    port: MemPort::Direct { sys: memsys, mem },
                    program,
                    out: &mut outbox,
                    drain_until,
                    failover: failover.as_deref(),
                };
                report.pe_ticks += pes.len() as u64;
                // The dense engine's "wake set" is every PE, every
                // visited cycle; sampling it keeps the host-profile
                // occupancy tables comparable with fast-forward's.
                report.wake_heap_occupancy.add(pes.len() as u64);
                for pe in pes.iter_mut() {
                    match pe.tick(self.now, &mut ctx) {
                        Activity::Active => any_active = true,
                        Activity::Blocked(t) => next_wake = next_wake.min(t),
                        Activity::Idle => {}
                    }
                }
            }
            for (time, to, msg, stamp) in outbox.drain(..) {
                self.post(time, to, msg, stamp);
            }
            // Cycle `now` is fully simulated (posts only target later
            // cycles), so it is a safe streaming horizon.
            if stream_every > 0 && self.now >= stream_next {
                self.stream_obs_through(self.now);
                stream_next = self.now + stream_every;
            }

            if any_active {
                self.now += 1;
                continue;
            }
            // Jump to the next interesting time.
            let next_event = self.events.peek().map(|e| e.time).unwrap_or(u64::MAX);
            let target = next_event.min(next_wake);
            if target == u64::MAX {
                // Nothing will ever happen again. A quiet machine with
                // lost work (tainted kills, orphaned adoptions) is a
                // fault outcome, not a completed program.
                let live: usize = self.pes.iter().map(|p| p.lse.live_instances()).sum();
                if live > 0 || self.unrecovered_work() > 0 {
                    self.seal_report(report, wall);
                    self.finalize_obs(self.now);
                    return Err(self.quiescence_error());
                }
                break;
            }
            debug_assert!(target > self.now, "time must advance");
            self.now = target;
        }

        self.seal_report(report, wall);
        let final_cycle = self.now.max(self.drain_until);
        for pe in &mut self.pes {
            pe.finish(final_cycle);
        }
        self.finalize_obs(final_cycle);
        Ok(self.collect(final_cycle))
    }

    /// Event-driven fast-forward: each PE carries a wake time in a binary
    /// heap and only *due* PEs tick at a visited cycle.
    ///
    /// Wake sources, covering every way a PE can need a tick:
    /// * `Activity::Active` → the PE must tick again at `now + 1` (this
    ///   also covers the Active→Idle transition tick that records
    ///   `idle_since`);
    /// * `Activity::Blocked(t)`, `t < u64::MAX` → tick at `t` (pipeline
    ///   `resume_at`, MFC backoff, dispatch penalty);
    /// * a message delivered to the PE's LSE or pipeline → tick at the
    ///   delivery cycle itself (`complete_read` sets `resume_at = now`, so
    ///   deferring that tick would lose a cycle);
    /// * `Activity::Blocked(u64::MAX)` / `Activity::Idle` → no wake: only
    ///   a delivery can make the PE runnable again.
    ///
    /// Ticks this schedule skips are exactly the dense loop's no-ops —
    /// blocked/idle early returns whose only effect, gauge-boundary
    /// flushing, is a pure function of simulated time and unchanged unit
    /// state, so it emits identical samples whenever it runs (DESIGN.md
    /// §12 has the full argument; `fastforward_invariance.rs` pins it).
    /// Within a cycle the heap pops in ascending PE order, preserving the
    /// dense loop's memory-port reservation order.
    fn run_sequential_ff(&mut self) -> Result<RunStats, RunError> {
        let wall = std::time::Instant::now();
        let npes = self.pes.len();
        let mut outbox: Vec<OutMsg> = Vec::new();
        let mut posts: Vec<OutMsg> = Vec::new();
        let mut report = EngineReport::default();
        // `wake[p]` is PE p's earliest scheduled tick (u64::MAX = none);
        // the heap holds (time, pe) entries with lazy invalidation:
        // entries whose time no longer matches `wake[p]` are stale.
        let mut wake: Vec<u64> = vec![0; npes];
        let mut heap: BinaryHeap<Reverse<(u64, u16)>> =
            (0..npes).map(|p| Reverse((0u64, p as u16))).collect();
        let stream_every = self.config.obs_stream_interval();
        let mut stream_next = stream_every;

        let finish = |mut r: EngineReport| {
            r.skipped_ticks = r
                .visited_cycles
                .saturating_mul(npes as u64)
                .saturating_sub(r.pe_ticks);
            r
        };

        loop {
            if self.now > self.config.max_cycles {
                self.seal_report(finish(report), wall);
                self.finalize_obs(self.now);
                return Err(self.cycle_limit_error());
            }
            report.visited_cycles += 1;
            // Host-side heap pressure, sampled once per visited cycle
            // (stale lazy-invalidation entries are real occupancy).
            report.wake_heap_occupancy.add(heap.len() as u64);

            // Deliver everything due now; every delivery addressed to a
            // PE schedules a tick of that PE this cycle.
            let now = self.now;
            self.deliver_due(
                &mut posts,
                &mut report,
                Some(&mut |pe: u16| {
                    let slot = &mut wake[pe as usize];
                    if now < *slot {
                        *slot = now;
                        heap.push(Reverse((now, pe)));
                    }
                }),
            );

            // Tick the due PEs, in ascending PE order within the cycle.
            {
                let System {
                    pes,
                    memsys,
                    mem,
                    program,
                    drain_until,
                    failover,
                    ..
                } = self;
                let mut ctx = SysCtx {
                    port: MemPort::Direct { sys: memsys, mem },
                    program,
                    out: &mut outbox,
                    drain_until,
                    failover: failover.as_deref(),
                };
                while let Some(&Reverse((t, p))) = heap.peek() {
                    if t > now {
                        break;
                    }
                    heap.pop();
                    let pi = p as usize;
                    if wake[pi] != t {
                        continue; // stale entry
                    }
                    wake[pi] = u64::MAX;
                    report.pe_ticks += 1;
                    let next = match pes[pi].tick(now, &mut ctx) {
                        Activity::Active => now + 1,
                        Activity::Blocked(t) => t,
                        Activity::Idle => u64::MAX,
                    };
                    if next < u64::MAX {
                        debug_assert!(next > now, "wake must be in the future");
                        wake[pi] = next;
                        heap.push(Reverse((next, p)));
                    }
                }
            }
            for (time, to, msg, stamp) in outbox.drain(..) {
                self.post(time, to, msg, stamp);
            }
            // Cycle `now` is fully simulated — a safe streaming horizon.
            if stream_every > 0 && self.now >= stream_next {
                self.stream_obs_through(self.now);
                stream_next = self.now + stream_every;
            }

            // Jump to the next due wake or event.
            let next_wake = loop {
                match heap.peek() {
                    Some(&Reverse((t, p))) if wake[p as usize] != t => {
                        heap.pop(); // stale
                    }
                    Some(&Reverse((t, _))) => break t,
                    None => break u64::MAX,
                }
            };
            let next_event = self.events.peek().map(|e| e.time).unwrap_or(u64::MAX);
            let target = next_event.min(next_wake);
            if target == u64::MAX {
                // Nothing will ever happen again. Same lost-work gate as
                // the dense loop: quiet-but-lossy runs are fault outcomes.
                let live: usize = self.pes.iter().map(|p| p.lse.live_instances()).sum();
                if live > 0 || self.unrecovered_work() > 0 {
                    self.seal_report(finish(report), wall);
                    self.finalize_obs(self.now);
                    return Err(self.quiescence_error());
                }
                break;
            }
            debug_assert!(target > self.now, "time must advance");
            self.now = target;
        }

        self.seal_report(finish(report), wall);
        let final_cycle = self.now.max(self.drain_until);
        for pe in &mut self.pes {
            pe.finish(final_cycle);
        }
        self.finalize_obs(final_cycle);
        Ok(self.collect(final_cycle))
    }

    /// Merges every unit's observability log into the wall-order stream
    /// (idempotent; called once at the end of either engine). Builds the
    /// legacy [`Trace`] view when [`SystemConfig::trace`] is set.
    pub(crate) fn finalize_obs(&mut self, final_cycle: u64) {
        if self.obs_finalized {
            return;
        }
        self.obs_finalized = true;
        if !self.config.obs_active() {
            return;
        }
        // Records not yet taken by incremental streaming. The per-log
        // drop counters are cumulative, so the totals are right no
        // matter how much was streamed out mid-run.
        let mut tail: Vec<ObsRecord> = Vec::new();
        let mut dropped = 0u64;
        for pe in &mut self.pes {
            pe.finish_obs(final_cycle);
            dropped += pe.obs.drain_into(&mut tail);
        }
        for log in &mut self.dse_obs {
            dropped += log.drain_into(&mut tail);
        }
        tail.append(&mut self.obs_misc);
        // Epoch records ride along for export but are excluded from the
        // deterministic stream — and their drops from the drop count.
        let _ = self.engine_obs.drain_into(&mut tail);
        if let Some(sink) = self.stream_sink.as_deref_mut() {
            // Everything streamed mid-run was already fed; deliver the
            // remainder in wall order, then the final drop count.
            tail.sort_unstable_by_key(ObsRecord::key);
            for r in &tail {
                sink.record(r);
            }
            sink.dropped(dropped);
        }
        let mut records = std::mem::take(&mut self.streamed);
        records.append(&mut tail);
        let stream = ObsStream::from_records(records, dropped);
        if self.config.trace {
            self.trace = Some(Trace::from_obs(&stream.records, self.config.trace_capacity));
        }
        self.obs = Some(stream);
    }

    /// Drains every record stamped `<= h` out of the per-unit rings into
    /// the streamed accumulator, feeding the attached sink in wall
    /// order. `h` must be a **safe horizon**: every cycle `<= h` is
    /// fully simulated, so no unit can emit a record stamped `<= h`
    /// afterwards. Gauge boundaries `<= h` are force-flushed first —
    /// sound for the same reason lazy flushing is: unit state is
    /// untouched between visits, so the samples are identical whenever
    /// they materialise (DESIGN.md §12).
    pub(crate) fn stream_obs_through(&mut self, h: u64) {
        let mut batch = std::mem::take(&mut self.stream_scratch);
        debug_assert!(batch.is_empty());
        for pe in &mut self.pes {
            pe.finish_obs(h);
            pe.obs.drain_through(h, &mut batch);
        }
        for log in &mut self.dse_obs {
            log.drain_through(h, &mut batch);
        }
        // Fault records are stamped with the faulted message's *delivery*
        // time — which can lie past the post time — so `obs_misc` is not
        // cycle-sorted: extract by predicate. Its residual order is
        // irrelevant (keys are unique; the final merge re-sorts), so
        // `swap_remove` is fine.
        let mut i = 0;
        while i < self.obs_misc.len() {
            if self.obs_misc[i].cycle <= h {
                batch.push(self.obs_misc.swap_remove(i));
            } else {
                i += 1;
            }
        }
        batch.sort_unstable_by_key(ObsRecord::key);
        if let Some(sink) = self.stream_sink.as_deref_mut() {
            for r in &batch {
                sink.record(r);
            }
        }
        self.streamed.append(&mut batch);
        self.stream_scratch = batch;
    }

    /// Attaches a live observability consumer. With
    /// [`ObsConfig::stream_interval`] set, the engine feeds it batches
    /// of records in wall order *during* the run; the remainder (and the
    /// final ring-overflow drop count) arrives at finalisation. Without
    /// a stream interval the whole stream is delivered at run end.
    pub fn attach_stream_sink(&mut self, sink: Box<dyn ObsSink + Send>) {
        self.stream_sink = Some(sink);
    }

    /// Detaches the streaming sink (typically after the run, to inspect
    /// what it consumed).
    pub fn take_stream_sink(&mut self) -> Option<Box<dyn ObsSink + Send>> {
        self.stream_sink.take()
    }

    /// The merged observability stream of the finished run (None before
    /// the run, or when observability was entirely off).
    pub fn obs(&self) -> Option<&ObsStream> {
        self.obs.as_ref()
    }

    /// Aggregated cycle-sampled metrics of the finished run.
    pub fn metrics(&self) -> Option<MetricsReport> {
        let stream = self.obs.as_ref()?;
        let mut sink = MetricsSink::new(self.config.total_pes());
        stream.feed(&mut sink);
        Some(sink.finish())
    }

    /// Renders the finished run as a Chrome/Perfetto `trace.json`
    /// document (one track per PE, MFC and DSE).
    pub fn perfetto_trace(&self) -> Option<String> {
        let stream = self.obs.as_ref()?;
        let layout = TrackLayout {
            total_pes: self.config.total_pes(),
            pes_per_node: self.config.pes_per_node,
            nodes: self.config.nodes,
            thread_names: self
                .program
                .threads
                .iter()
                .map(|t| t.name.clone())
                .collect(),
        };
        let mut writer = PerfettoWriter::new(layout);
        stream.feed(&mut writer);
        Some(writer.finish())
    }

    pub(crate) fn collect(&self, final_cycle: u64) -> RunStats {
        let per_pe: Vec<PeStats> = self.pes.iter().map(|p| p.stats).collect();
        let mut aggregate = PeStats::default();
        for s in &per_pe {
            aggregate.merge(s);
        }
        RunStats {
            cycles: final_cycle,
            instructions: aggregate.issued,
            instances: self.pes.iter().map(|p| p.lse.stats().allocs).sum(),
            bus_utilisation: self.memsys.bus.utilisation(final_cycle),
            mem_utilisation: self.memsys.mem.utilisation(final_cycle),
            mem_payload_bytes: self.memsys.stats().payload_bytes,
            dma_commands: self.pes.iter().map(|p| p.mfc.stats().commands).sum(),
            max_dse_pending: self
                .dses
                .iter()
                .map(|d| d.stats().max_pending)
                .max()
                .unwrap_or(0),
            cache_hits: self
                .pes
                .iter()
                .filter_map(|p| p.cache.as_ref())
                .map(|c| c.stats().hits)
                .sum(),
            cache_misses: self
                .pes
                .iter()
                .filter_map(|p| p.cache.as_ref())
                .map(|c| c.stats().misses)
                .sum(),
            dma_attempts: self.pes.iter().map(|p| p.mfc.stats().attempts).sum(),
            dma_retries: self.pes.iter().map(|p| p.mfc.stats().retries).sum(),
            dma_exhausted: self.pes.iter().map(|p| p.mfc.stats().exhausted).sum(),
            dma_stalled: self.pes.iter().map(|p| p.mfc.stats().stalled).sum(),
            dma_backoff_cycles: self.pes.iter().map(|p| p.mfc.stats().backoff_cycles).sum(),
            msgs_dropped: self.fault_counts.msgs_dropped,
            msgs_duplicated: self.fault_counts.msgs_duplicated,
            msgs_delayed: self.fault_counts.msgs_delayed,
            falloc_denials: self.dses.iter().map(|d| d.stats().denials).sum(),
            degraded_pes: self
                .pes
                .iter()
                .filter(|p| p.degraded)
                .map(|p| p.id())
                .collect(),
            fallback_instances: self.pes.iter().map(|p| p.fallbacks).sum(),
            watchdog_parks: self.pes.iter().map(|p| p.watchdog_parks).sum(),
            dse_crashes: self.dses.iter().map(|d| d.stats().crashes).sum(),
            failovers: self.dses.iter().map(|d| d.stats().failovers).sum(),
            rehomed_fallocs: self.dses.iter().map(|d| d.stats().rehomed).sum(),
            resync_msgs: self.dses.iter().map(|d| d.stats().resyncs).sum(),
            lse_crashes: self.pes.iter().map(|p| p.lse.stats().crashes).sum(),
            evacuated_frames: self.pes.iter().map(|p| p.lse.stats().evacuated).sum(),
            readmitted_instances: self.pes.iter().map(|p| p.lse.stats().readmitted).sum(),
            killed_instances: self.pes.iter().map(|p| p.lse.stats().killed).sum(),
            per_pe,
            aggregate,
        }
    }
}

/// Convenience: build, launch, and run a program in one call.
pub fn simulate(
    config: SystemConfig,
    program: Arc<Program>,
    args: &[i64],
) -> Result<(RunStats, System), RunError> {
    let mut sys = System::new(config, program)?;
    sys.launch(args)?;
    let stats = sys.run()?;
    Ok((stats, sys))
}
