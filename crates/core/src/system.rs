//! The whole-chip simulator.
//!
//! A [`System`] is the paper's CellDTA platform: `nodes × pes_per_node`
//! processing elements (each with pipeline, LSE, local store and MFC), one
//! DSE per node, and a shared interconnect + main memory. The host
//! processor (the Cell PPE) appears only at [`System::launch`], where it
//! allocates the entry thread's frame and stores its arguments — "the PPE
//! is used to initiate the DTA TLP activities" (§4.1).
//!
//! Simulation is cycle-driven with event-based time skipping: scheduler
//! messages and DMA completions sit in a time-ordered queue, and when
//! every pipeline is blocked or idle the clock jumps straight to the next
//! event. Arbitration everywhere is deterministic, so a given
//! (program, config) pair always produces identical results.

use crate::config::SystemConfig;
use crate::pipeline::{Activity, Pe, PipelineParams, SysCtx};
use crate::stats::{PeStats, RunStats};
use crate::trace::{Trace, TraceKind, TraceRecord};
use dta_isa::{validate_program, Program, ValidationError};
use dta_mem::{MainMemory, MemorySystem};
use dta_sched::dse::FallocDecision;
use dta_sched::{Dest, Dse, Message, PendingFalloc};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Why a run failed.
#[derive(Debug)]
pub enum RunError {
    /// The program failed static validation.
    Validation(Vec<ValidationError>),
    /// The program/config combination cannot be launched.
    Launch(String),
    /// The system wedged: no events, pipelines blocked or idle, but
    /// instances still alive (a synchronisation bug in the program).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
        /// Instances still alive.
        live: usize,
    },
    /// `max_cycles` exceeded.
    CycleLimit(u64),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Validation(errs) => {
                writeln!(f, "program failed validation:")?;
                for e in errs {
                    writeln!(f, "  {e}")?;
                }
                Ok(())
            }
            RunError::Launch(msg) => write!(f, "launch failed: {msg}"),
            RunError::Deadlock { cycle, live } => {
                write!(f, "deadlock at cycle {cycle}: {live} instances still alive")
            }
            RunError::CycleLimit(n) => write!(f, "cycle limit of {n} exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

#[derive(PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    to: Dest,
    msg: Message,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (Reverse(self.time), Reverse(self.seq)).cmp(&(Reverse(other.time), Reverse(other.seq)))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulated machine.
pub struct System {
    config: SystemConfig,
    program: Arc<Program>,
    pes: Vec<Pe>,
    dses: Vec<Dse>,
    memsys: MemorySystem,
    mem: MainMemory,
    events: BinaryHeap<Event>,
    seq: u64,
    now: u64,
    drain_until: u64,
    launched: bool,
    trace: Option<Trace>,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("now", &self.now)
            .field("pes", &self.pes.len())
            .field("nodes", &self.dses.len())
            .field("pending_events", &self.events.len())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Builds a system for `program` under `config`.
    ///
    /// Validates the program and sizes the per-PE prefetch-buffer pool
    /// from the program's declared needs.
    pub fn new(config: SystemConfig, program: Arc<Program>) -> Result<Self, RunError> {
        let errors = validate_program(&program);
        if !errors.is_empty() {
            return Err(RunError::Validation(errors));
        }
        let lse_params = config
            .lse_params(program.max_prefetch_bytes())
            .map_err(RunError::Launch)?;
        let pparams = PipelineParams {
            taken_branch_penalty: config.taken_branch_penalty,
            dispatch_penalty: config.dispatch_penalty,
            msg_latency: config.msg_latency,
            ls_latency: config.ls_latency,
            ls_ports: config.ls_ports,
            cache: config.cache,
            sp_pf_overlap: config.sp_pf_overlap,
            trace: config.trace,
        };
        let mut pes = Vec::with_capacity(config.total_pes() as usize);
        for pe in 0..config.total_pes() {
            let node = pe / config.pes_per_node;
            pes.push(Pe::new(
                pe,
                node,
                lse_params,
                config.mfc,
                config.ls_size,
                pparams,
            ));
        }
        let dses = (0..config.nodes)
            .map(|node| {
                let local: Vec<u16> = (0..config.pes_per_node)
                    .map(|i| node * config.pes_per_node + i)
                    .collect();
                Dse::new(
                    node,
                    local,
                    config.frame_capacity,
                    config.nodes,
                    config.dse_params(),
                )
            })
            .collect();
        let mut mem = MainMemory::new(config.mem_size);
        mem.load_globals(&program.globals);
        let trace = if config.trace {
            Some(Trace::new(config.trace_capacity))
        } else {
            None
        };
        Ok(System {
            memsys: config.memory_system(),
            config,
            program,
            pes,
            dses,
            mem,
            events: BinaryHeap::new(),
            seq: 0,
            now: 0,
            drain_until: 0,
            launched: false,
            trace,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Read-only view of main memory (for verifying results after a run).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// The recorded trace, when tracing was enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Renders the recorded trace as a per-instance lifecycle table.
    pub fn render_trace(&self) -> Option<String> {
        let names: Vec<String> = self.program.threads.iter().map(|t| t.name.clone()).collect();
        self.trace.as_ref().map(|t| t.render(&names))
    }

    fn record(&mut self, pe: u16, instance: dta_sched::InstanceId, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            let thread = self.pes[pe as usize].lse.instance(instance).thread;
            trace.push(TraceRecord {
                cycle: self.now,
                pe,
                instance,
                thread,
                kind,
            });
        }
    }

    /// Reads 32-bit word `index` of global `name`.
    pub fn read_global_word(&self, name: &str, index: usize) -> Option<i32> {
        let g = self.program.global(name)?;
        if (index + 1) * 4 > g.size() {
            return None;
        }
        Some(self.mem.read_u32(g.addr + index as u64 * 4) as i32)
    }

    fn post(&mut self, time: u64, to: Dest, msg: Message) {
        self.seq += 1;
        self.events.push(Event {
            time: time.max(self.now + 1),
            seq: self.seq,
            to,
            msg,
        });
    }

    /// The host (PPE) side of program start: allocates the entry frame via
    /// the normal DSE path and stores the arguments.
    ///
    /// # Panics
    ///
    /// If called twice.
    pub fn launch(&mut self, args: &[i64]) -> Result<(), RunError> {
        assert!(!self.launched, "launch called twice");
        self.launched = true;
        let entry = self.program.entry;
        let entry_code = self.program.thread(entry);
        if args.len() != self.program.entry_args as usize {
            return Err(RunError::Launch(format!(
                "entry thread expects {} arguments, got {}",
                self.program.entry_args,
                args.len()
            )));
        }
        let sc = args.len() as u16;
        let slots = entry_code.frame_slots.max(sc);
        let needs_pf = entry_code.prefetch_bytes > 0;
        // The host's FALLOC goes through the DSE like any other, at time 0.
        let req = PendingFalloc {
            requester: u16::MAX, // host marker; response handled inline
            for_inst: dta_sched::InstanceId(u64::MAX),
            thread: entry,
            sc,
        };
        let pe = match self.dses[0].on_falloc(req, 0) {
            FallocDecision::Grant { pe } => pe,
            _ => return Err(RunError::Launch("no frame available for entry thread".into())),
        };
        let granted = self.pes[pe as usize]
            .lse
            .alloc_frame(u16::MAX, dta_sched::InstanceId(u64::MAX), entry, sc, slots, needs_pf)
            .ok_or_else(|| RunError::Launch("entry allocation parked (no prefetch buffer)".into()))?;
        for (i, &a) in args.iter().enumerate() {
            self.pes[pe as usize]
                .lse
                .store(0, granted.frame, i as u16, a);
        }
        Ok(())
    }

    fn deliver(&mut self, to: Dest, msg: Message) {
        let now = self.now;
        match to {
            Dest::Dse(node) => {
                let dse = &mut self.dses[node as usize];
                match msg {
                    Message::FallocRequest {
                        requester,
                        for_inst,
                        thread,
                        sc,
                        hops,
                    } => {
                        let done = dse.reserve_op(now);
                        let req = PendingFalloc {
                            requester,
                            for_inst,
                            thread,
                            sc,
                        };
                        match dse.on_falloc(req, hops) {
                            FallocDecision::Grant { pe } => {
                                self.post(
                                    done + self.config.msg_latency,
                                    Dest::Lse(pe),
                                    Message::AllocFrame {
                                        requester,
                                        for_inst,
                                        thread,
                                        sc,
                                    },
                                );
                            }
                            FallocDecision::Forward => {
                                let next = (node + 1) % self.config.nodes;
                                self.post(
                                    done + self.config.msg_latency,
                                    Dest::Dse(next),
                                    Message::FallocRequest {
                                        requester,
                                        for_inst,
                                        thread,
                                        sc,
                                        hops: hops + 1,
                                    },
                                );
                            }
                            FallocDecision::Queued => {
                                // Tell the requester to deschedule; the
                                // grant will arrive once a frame frees up.
                                self.post(
                                    done + self.config.msg_latency,
                                    Dest::Pipeline(requester),
                                    Message::FallocDeferred { for_inst },
                                );
                            }
                        }
                    }
                    Message::FrameFreed { pe } => {
                        let done = dse.reserve_op(now);
                        for (target, req) in dse.on_frame_freed(pe) {
                            self.post(
                                done + self.config.msg_latency,
                                Dest::Lse(target),
                                Message::AllocFrame {
                                    requester: req.requester,
                                    for_inst: req.for_inst,
                                    thread: req.thread,
                                    sc: req.sc,
                                },
                            );
                        }
                    }
                    other => panic!("DSE {node} received unexpected message {other:?}"),
                }
            }
            Dest::Lse(pe) => {
                let pe_idx = pe as usize;
                match msg {
                    Message::AllocFrame {
                        requester,
                        for_inst,
                        thread,
                        sc,
                    } => {
                        let code = &self.program.threads[thread.index()];
                        let slots = code.frame_slots;
                        let needs_pf = code.prefetch_bytes > 0;
                        let done = self.pes[pe_idx].lse.reserve_op(now);
                        match self.pes[pe_idx].lse.alloc_frame(
                            requester, for_inst, thread, sc, slots, needs_pf,
                        ) {
                            Some(granted) => {
                                self.record(
                                    pe,
                                    granted.instance,
                                    TraceKind::FrameGranted {
                                        frame: granted.frame,
                                    },
                                );
                                self.post(
                                    done + self.config.msg_latency,
                                    Dest::Pipeline(requester),
                                    Message::FallocResponse {
                                        frame: granted.frame,
                                        for_inst: granted.for_inst,
                                    },
                                );
                            }
                            None => {
                                // Parked on prefetch-buffer exhaustion:
                                // tell the requester to deschedule, like a
                                // DSE queue (the grant arrives when a
                                // buffer frees up).
                                self.post(
                                    done + self.config.msg_latency,
                                    Dest::Pipeline(requester),
                                    Message::FallocDeferred { for_inst },
                                );
                            }
                        }
                    }
                    Message::Store { frame, slot, value } => {
                        self.pes[pe_idx].lse.reserve_op(now);
                        let owner = self.pes[pe_idx].lse.frame_owner(frame);
                        let ready = self.pes[pe_idx].lse.store(now, frame, slot, value);
                        if let Some(owner) = owner {
                            self.record(
                                pe,
                                owner,
                                TraceKind::StoreApplied {
                                    slot,
                                    became_ready: ready.is_some(),
                                },
                            );
                        }
                    }
                    Message::Ffree { frame } => {
                        let done = self.pes[pe_idx].lse.reserve_op(now);
                        if let Some(owner) = self.pes[pe_idx].lse.frame_owner(frame) {
                            self.record(pe, owner, TraceKind::FrameFreed);
                        }
                        let granted = self.pes[pe_idx].lse.ffree(frame);
                        for g in granted {
                            self.post(
                                done + self.config.msg_latency,
                                Dest::Pipeline(g.requester),
                                Message::FallocResponse {
                                    frame: g.frame,
                                    for_inst: g.for_inst,
                                },
                            );
                        }
                        let node = pe / self.config.pes_per_node;
                        self.post(
                            done + self.config.msg_latency,
                            Dest::Dse(node),
                            Message::FrameFreed { pe },
                        );
                    }
                    Message::DmaDone { owner, tag } => {
                        if self.trace.is_some() && self.pes[pe_idx].lse.has_instance(owner) {
                            self.record(pe, owner, TraceKind::DmaCompleted { tag });
                        }
                        let p = &mut self.pes[pe_idx];
                        if !p.current_dma_done(owner, tag) {
                            p.lse.dma_done(now, owner, tag);
                        }
                    }
                    other => panic!("LSE {pe} received unexpected message {other:?}"),
                }
            }
            Dest::Pipeline(pe) => match msg {
                Message::FallocResponse { frame, for_inst } => {
                    self.pes[pe as usize].complete_falloc(now, frame, for_inst);
                }
                Message::FallocDeferred { for_inst } => {
                    self.pes[pe as usize].defer_falloc(now, for_inst);
                }
                other => panic!("pipeline {pe} received unexpected message {other:?}"),
            },
        }
    }

    /// Runs to completion; returns the collected statistics.
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        assert!(self.launched, "run() before launch()");
        let mut outbox: Vec<(u64, Dest, Message)> = Vec::new();

        loop {
            if self.now > self.config.max_cycles {
                return Err(RunError::CycleLimit(self.config.max_cycles));
            }

            // Deliver everything due now.
            while self
                .events
                .peek()
                .is_some_and(|e| e.time <= self.now)
            {
                let e = self.events.pop().expect("peeked");
                self.deliver(e.to, e.msg);
            }

            // Tick every PE.
            let mut any_active = false;
            let mut next_wake = u64::MAX;
            {
                let System {
                    pes,
                    memsys,
                    mem,
                    program,
                    drain_until,
                    ..
                } = self;
                let mut ctx = SysCtx {
                    sys: memsys,
                    mem,
                    program,
                    out: &mut outbox,
                    drain_until,
                };
                for pe in pes.iter_mut() {
                    match pe.tick(self.now, &mut ctx) {
                        Activity::Active => any_active = true,
                        Activity::Blocked(t) => next_wake = next_wake.min(t),
                        Activity::Idle => {}
                    }
                }
            }
            for (time, to, msg) in outbox.drain(..) {
                self.post(time, to, msg);
            }
            if self.trace.is_some() {
                let mut logs: Vec<TraceRecord> = Vec::new();
                for pe in &mut self.pes {
                    logs.append(&mut pe.trace_log);
                }
                if let Some(trace) = &mut self.trace {
                    for rec in logs {
                        trace.push(rec);
                    }
                }
            }

            if any_active {
                self.now += 1;
                continue;
            }
            // Jump to the next interesting time.
            let next_event = self.events.peek().map(|e| e.time).unwrap_or(u64::MAX);
            let target = next_event.min(next_wake);
            if target == u64::MAX {
                // Nothing will ever happen again.
                let live: usize = self.pes.iter().map(|p| p.lse.live_instances()).sum();
                if live > 0 {
                    return Err(RunError::Deadlock {
                        cycle: self.now,
                        live,
                    });
                }
                break;
            }
            debug_assert!(target > self.now, "time must advance");
            self.now = target;
        }

        let final_cycle = self.now.max(self.drain_until);
        for pe in &mut self.pes {
            pe.finish(final_cycle);
        }
        Ok(self.collect(final_cycle))
    }

    fn collect(&self, final_cycle: u64) -> RunStats {
        let per_pe: Vec<PeStats> = self.pes.iter().map(|p| p.stats).collect();
        let mut aggregate = PeStats::default();
        for s in &per_pe {
            aggregate.merge(s);
        }
        RunStats {
            cycles: final_cycle,
            instructions: aggregate.issued,
            instances: self.pes.iter().map(|p| p.lse.stats().allocs).sum(),
            bus_utilisation: self.memsys.bus.utilisation(final_cycle),
            mem_utilisation: self.memsys.mem.utilisation(final_cycle),
            mem_payload_bytes: self.memsys.stats().payload_bytes,
            dma_commands: self.pes.iter().map(|p| p.mfc.stats().commands).sum(),
            max_dse_pending: self.dses.iter().map(|d| d.stats().max_pending).max().unwrap_or(0),
            cache_hits: self
                .pes
                .iter()
                .filter_map(|p| p.cache.as_ref())
                .map(|c| c.stats().hits)
                .sum(),
            cache_misses: self
                .pes
                .iter()
                .filter_map(|p| p.cache.as_ref())
                .map(|c| c.stats().misses)
                .sum(),
            per_pe,
            aggregate,
        }
    }
}

/// Convenience: build, launch, and run a program in one call.
pub fn simulate(
    config: SystemConfig,
    program: Arc<Program>,
    args: &[i64],
) -> Result<(RunStats, System), RunError> {
    let mut sys = System::new(config, program)?;
    sys.launch(args)?;
    let stats = sys.run()?;
    Ok((stats, sys))
}
