//! # dta-core — the cycle-level DTA system simulator
//!
//! Ties the substrates together into the paper's CellDTA platform:
//!
//! * [`pipeline::Pe`] — an SPU-like in-order dual-issue pipeline with its
//!   LSE ([`dta_sched::Lse`]), local store, and MFC DMA engine;
//! * [`system::System`] — nodes of PEs, one DSE per node, a shared
//!   interconnect and main memory, and a deterministic event-driven
//!   simulation loop;
//! * [`config::SystemConfig`] — all hardware parameters, defaulting to the
//!   paper's Tables 2-4;
//! * [`stats`] — the counters behind every table and figure of the paper's
//!   evaluation (cycle breakdown, dynamic instruction mix, pipeline
//!   usage).
//!
//! ## Quick example
//!
//! ```
//! use dta_core::{config::SystemConfig, system::simulate};
//! use dta_isa::{ProgramBuilder, ThreadBuilder, reg::r};
//! use std::sync::Arc;
//!
//! // A one-thread program: out[0] = arg + 1.
//! let mut pb = ProgramBuilder::new();
//! let out = pb.global_zeroed("out", 4);
//! let main = pb.declare("main");
//! let mut t = ThreadBuilder::new("main");
//! t.begin_pl();
//! t.load(r(3), 0);
//! t.begin_ex();
//! t.add(r(4), r(3), 1);
//! t.li(r(5), out as i64);
//! t.begin_ps();
//! t.write(r(4), r(5), 0);
//! t.ffree_self();
//! t.stop();
//! pb.define(main, t);
//! pb.set_entry(main, 1);
//!
//! let (stats, sys) = simulate(
//!     SystemConfig::with_pes(1),
//!     Arc::new(pb.build()),
//!     &[41],
//! ).unwrap();
//! assert_eq!(sys.read_global_word("out", 0), Some(42));
//! assert!(stats.cycles > 0);
//! ```

pub mod config;
pub(crate) mod engine;
pub mod fault;
pub mod job;
pub mod memo;
pub mod pipeline;
pub mod stats;
pub mod system;
pub mod trace;

pub use config::{FaultPlan, MemoConfig, ObsConfig, ObsMode, Parallelism, SchedMode, SystemConfig};
pub use fault::FaultCounters;
pub use job::{
    perfetto_trace, run_job, run_job_with_sink, GlobalRead, GlobalSnapshot, JobError, JobKey,
    JobOutput, JobResult, SimJob, JOB_FORMAT_VERSION,
};
pub use memo::MemoCounters;
pub use pipeline::{Activity, Pe, PipelineParams};
pub use stats::{Breakdown, EngineReport, PeStats, RunStats, StallCat};
pub use system::{simulate, RunError, System};
pub use trace::{Trace, TraceKind, TraceRecord};

// The structured observability layer (event bus, metrics, Perfetto
// export). Re-exported so downstream crates need no direct `dta-obs`
// dependency to consume `System::obs`/`metrics`/`perfetto_trace`.
pub use dta_obs::{
    analyze, Analysis, CountingSink, CriticalPath, EdgeKind, FineCat, GaugeKind, Histogram,
    MetricsReport, MetricsSink, NullSink, ObsEvent, ObsRecord, ObsSink, ObsStream, PeAttribution,
    PerfettoWriter, RingSink, ThreadBreakdown, ThreadEvent, TrackLayout, NUM_FINE,
};
