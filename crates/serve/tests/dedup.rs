//! In-flight dedup suite: the same job submitted N times concurrently
//! simulates once, and every subscriber receives the full, identical
//! observability stream.

use dta_core::{ObsMode, ObsRecord, ObsSink, SimJob, SystemConfig};
use dta_serve::{CacheStatus, Service};
use dta_workloads::{vecscale, Variant};
use std::sync::{Arc, Mutex};

/// A subscriber that shares its collected records with the test thread
/// (the boxed sink itself is consumed by the service API).
struct ShareSink(Arc<Mutex<Vec<ObsRecord>>>);

impl ObsSink for ShareSink {
    fn record(&mut self, rec: &ObsRecord) {
        self.0.lock().unwrap().push(*rec);
    }
}

fn obs_job() -> SimJob {
    let mut cfg = SystemConfig::with_pes(4);
    cfg.obs.mode = ObsMode::Events;
    cfg.obs.stream_interval = 64; // leaders stream incrementally
    let wp = vecscale::build(128, 8, Variant::HandPrefetch);
    SimJob::new(Arc::new(wp.program), wp.args, cfg)
}

/// Sorted-by-key copy (subscribers receive records in wall order; the
/// canonical stream is stored key-sorted — same order, but sorting both
/// sides keeps the assertion about *content*, not delivery batching).
fn sorted(records: Vec<ObsRecord>) -> Vec<ObsRecord> {
    let mut records = records;
    records.sort_by_key(|r| r.key());
    records
}

#[test]
fn n_concurrent_submissions_simulate_once_with_identical_streams() {
    const N: usize = 8;
    let service = Service::in_memory(1);
    let job = obs_job();

    let collected: Vec<(CacheStatus, Vec<ObsRecord>)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let service = &service;
                let job = &job;
                s.spawn(move || {
                    let seen = Arc::new(Mutex::new(Vec::new()));
                    let sink = Box::new(ShareSink(Arc::clone(&seen)));
                    let done = service.submit_with_sink(job, Some(sink));
                    assert!(done.sink.is_some(), "sink returned to caller");
                    let records = std::mem::take(&mut *seen.lock().unwrap());
                    (done.status, records)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Executor ran exactly once; every other submission was a hit or
    // coalesced onto the leader's flight.
    let stats = service.stats();
    assert_eq!(stats.submitted, N as u64);
    assert_eq!(stats.executed, 1, "N identical jobs must simulate once");
    assert_eq!(
        stats.hits_memory + stats.coalesced,
        (N - 1) as u64,
        "everyone but the leader is served without simulating"
    );
    assert_eq!(
        collected
            .iter()
            .filter(|(s, _)| *s == CacheStatus::Miss)
            .count(),
        1,
        "exactly one leader"
    );

    // Every subscriber saw the full stream, identical to the canonical
    // cached one.
    let reference = sorted(
        service
            .submit(&job)
            .result
            .outcome
            .as_ref()
            .expect("vecscale succeeds")
            .obs
            .as_ref()
            .expect("events on")
            .records
            .clone(),
    );
    assert!(!reference.is_empty());
    for (i, (status, records)) in collected.into_iter().enumerate() {
        assert_eq!(
            sorted(records),
            reference,
            "subscriber {i} ({status:?}) must see the full identical stream"
        );
    }
}

#[test]
fn duplicate_points_inside_one_grid_simulate_once() {
    let service = Service::in_memory(4);
    let job = obs_job();
    let grid: Vec<SimJob> = (0..6).map(|_| job.clone()).collect();

    let completions = service.run_grid(&grid);
    assert_eq!(completions.len(), 6);
    assert_eq!(service.stats().executed, 1);
    let reference = completions[0].result.canonical_string();
    for c in &completions {
        assert_eq!(c.result.canonical_string(), reference);
    }
}

#[test]
fn distinct_points_in_a_grid_all_simulate() {
    let service = Service::in_memory(4);
    let grid: Vec<SimJob> = (1..=4)
        .map(|pes| {
            let mut cfg = SystemConfig::with_pes(pes);
            cfg.obs.mode = ObsMode::Off;
            let wp = vecscale::build(64, 4, Variant::Baseline);
            SimJob::new(Arc::new(wp.program), wp.args, cfg)
        })
        .collect();
    let completions = service.run_grid(&grid);
    assert_eq!(service.stats().executed, 4);
    assert!(completions.iter().all(|c| c.status == CacheStatus::Miss));
    // PE count is in the key, so all four results are distinct.
    let keys: std::collections::HashSet<_> = completions.iter().map(|c| c.result.key).collect();
    assert_eq!(keys.len(), 4);
}
