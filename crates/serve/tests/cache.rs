//! Property suite for the content-addressed result cache.
//!
//! Pins the three cache-correctness contracts:
//!
//! 1. identical jobs hit the cache with **byte-identical** canonical
//!    `JobResult`s, across `dense|fast-forward` × `Off|Threads(2|4)`;
//! 2. any single behavioural field perturbation (fault seed, ppm, PE
//!    count, sched mode, argument) changes the `JobKey`;
//! 3. cached replay of a faulting job returns the same typed error,
//!    from memory and from disk.

use dta_core::{FaultPlan, JobError, ObsMode, Parallelism, SchedMode, SimJob, SystemConfig};
use dta_serve::{CacheStatus, Service};
use dta_workloads::{vecscale, Variant};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

fn base_config(pes: u16) -> SystemConfig {
    let mut cfg = SystemConfig::with_pes(pes);
    cfg.obs.mode = ObsMode::Events;
    cfg.obs.stream_interval = 128;
    cfg
}

fn job_with(cfg: SystemConfig) -> SimJob {
    let wp = vecscale::build(64, 4, Variant::HandPrefetch);
    SimJob::new(Arc::new(wp.program), wp.args, cfg)
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dta-serve-test-{tag}-{}", std::process::id()))
}

#[test]
fn identical_jobs_hit_cache_byte_identical_across_engine_modes() {
    let modes = [
        (SchedMode::Dense, Parallelism::Off),
        (SchedMode::Dense, Parallelism::Threads(2)),
        (SchedMode::Dense, Parallelism::Threads(4)),
        (SchedMode::FastForward, Parallelism::Off),
        (SchedMode::FastForward, Parallelism::Threads(2)),
        (SchedMode::FastForward, Parallelism::Threads(4)),
    ];
    let mut all_stats = Vec::new();
    let mut all_deterministic_obs = Vec::new();
    for (sched, par) in modes {
        let mut cfg = base_config(4);
        cfg.sched = sched;
        cfg.parallelism = par;
        let job = job_with(cfg);
        let service = Service::in_memory(1);

        let cold = service.submit(&job);
        assert_eq!(cold.status, CacheStatus::Miss);
        let warm = service.submit(&job);
        assert_eq!(
            warm.status,
            CacheStatus::Memory,
            "{sched:?}/{par:?}: second submission must hit"
        );
        assert_eq!(
            warm.result.canonical_string(),
            cold.result.canonical_string(),
            "{sched:?}/{par:?}: cached result must be byte-identical"
        );

        let out = cold.result.outcome.as_ref().expect("vecscale succeeds");
        all_stats.push(out.stats.clone());
        all_deterministic_obs.push(out.obs.as_ref().expect("events on").deterministic());
    }
    // Simulated results are engine-invariant: every mode produced the
    // same stats and the same deterministic event stream (engine-unit
    // epoch records legitimately differ and are excluded).
    for s in &all_stats[1..] {
        assert_eq!(s, &all_stats[0], "RunStats must be engine-invariant");
    }
    for d in &all_deterministic_obs[1..] {
        assert_eq!(
            d, &all_deterministic_obs[0],
            "deterministic obs stream must be engine-invariant"
        );
    }
}

#[test]
fn any_single_field_perturbation_changes_the_key() {
    let mut cfg = base_config(4);
    cfg.faults = Some(FaultPlan::seeded(7));
    let base = job_with(cfg);

    let mut variants: Vec<(&str, SimJob)> = vec![("base", base.clone())];

    let mut j = base.clone();
    j.config.faults.as_mut().unwrap().seed = 8;
    variants.push(("fault seed", j));

    let mut j = base.clone();
    j.config.faults.as_mut().unwrap().seed = u64::MAX; // full-width seed
    variants.push(("full-width fault seed", j));

    let mut j = base.clone();
    j.config.faults.as_mut().unwrap().dma_fail_ppm = 100;
    variants.push(("dma_fail_ppm", j));

    let mut j = base.clone();
    j.config.faults.as_mut().unwrap().msg_drop_ppm = 50;
    variants.push(("msg_drop_ppm", j));

    let mut j = base.clone();
    j.config.pes_per_node = 8;
    variants.push(("PE count", j));

    let mut j = base.clone();
    j.config.sched = SchedMode::Dense;
    variants.push(("sched mode", j));

    let mut j = base.clone();
    j.config.parallelism = Parallelism::Threads(2);
    variants.push(("parallelism", j));

    let mut j = base.clone();
    j.args.push(1); // vecscale takes no host args; adding one still perturbs
    variants.push(("argument", j));

    let mut j = base.clone();
    j.config.max_cycles -= 1;
    variants.push(("max_cycles", j));

    let mut seen = HashSet::new();
    for (what, job) in &variants {
        assert!(
            seen.insert(job.key()),
            "perturbing {what} must change the JobKey"
        );
    }
    // And the key is a pure function of content: recomputing matches.
    assert_eq!(base.key(), variants[0].1.key());
}

#[test]
fn faulting_job_replays_the_same_typed_error() {
    let mut cfg = base_config(2);
    cfg.max_cycles = 500; // far below what the workload needs
    let job = job_with(cfg);
    let service = Service::in_memory(1);

    let cold = service.submit(&job);
    assert_eq!(cold.status, CacheStatus::Miss);
    let err = cold
        .result
        .outcome
        .as_ref()
        .expect_err("500-cycle budget must trip");
    assert!(
        matches!(err, JobError::CycleLimit { cycle: 500, .. }),
        "expected a typed CycleLimit, got: {err}"
    );

    let warm = service.submit(&job);
    assert_eq!(warm.status, CacheStatus::Memory);
    assert_eq!(warm.result.outcome.as_ref().err(), Some(err));
    assert_eq!(
        service.stats().executed,
        1,
        "the error was cached, not re-run"
    );
}

#[test]
fn disk_store_replays_byte_identical_results_across_services() {
    let dir = scratch_dir("disk");
    std::fs::remove_dir_all(&dir).ok();

    let job = job_with(base_config(2));
    let cold_bytes;
    {
        let service = Service::with_disk(1, &dir);
        let cold = service.submit(&job);
        assert_eq!(cold.status, CacheStatus::Miss);
        cold_bytes = cold.result.canonical_string();
    }

    // A fresh service over the same store: first submission is a disk
    // hit, byte-identical to the cold run; the next is a memory hit
    // (disk entries promote).
    let service = Service::with_disk(1, &dir);
    let disk = service.submit(&job);
    assert_eq!(disk.status, CacheStatus::Disk);
    assert_eq!(disk.result.canonical_string(), cold_bytes);
    let mem = service.submit(&job);
    assert_eq!(mem.status, CacheStatus::Memory);
    assert_eq!(service.stats().executed, 0, "nothing re-simulated");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disk_store_caches_faulting_jobs_too() {
    let dir = scratch_dir("disk-err");
    std::fs::remove_dir_all(&dir).ok();

    let mut cfg = base_config(2);
    cfg.max_cycles = 500;
    let job = job_with(cfg);
    let expected = {
        let service = Service::with_disk(1, &dir);
        service.submit(&job).result.outcome.clone().unwrap_err()
    };

    let service = Service::with_disk(1, &dir);
    let replay = service.submit(&job);
    assert_eq!(replay.status, CacheStatus::Disk);
    assert_eq!(replay.result.outcome.as_ref().err(), Some(&expected));

    std::fs::remove_dir_all(&dir).ok();
}
