//! Service-chaos suite: host faults injected through the
//! [`ServiceConfig::runner`] seam — panicking leaders, slow jobs, torn
//! disk writes, overload — must all resolve to *typed* completions
//! within the watchdog bound. No submitter ever hangs, host-side
//! outcomes are never cached, and corrupt cache entries re-simulate
//! byte-identically.

use dta_core::{run_job_with_sink, JobError, ObsMode, SimJob, SystemConfig};
use dta_serve::{CacheStatus, Runner, Service, ServiceConfig};
use dta_workloads::{vecscale, Variant};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-key fault injected around the real simulator.
enum Behavior {
    /// Every execution attempt of this key panics.
    PanicAlways(&'static str),
    /// The first `n` attempts panic; later attempts run for real.
    PanicFirst(AtomicU32),
    /// Sleep before running for real; `started` flips once the
    /// execution is underway (so tests can coalesce onto it reliably).
    Sleep { ms: u64, started: Arc<AtomicBool> },
}

/// Wraps the real simulator with a fault table keyed by job key.
fn chaos_runner(table: HashMap<u128, Behavior>) -> Arc<Runner> {
    Arc::new(move |job: &SimJob, sink| {
        match table.get(&job.key().0) {
            Some(Behavior::PanicAlways(msg)) => panic!("{msg}"),
            Some(Behavior::PanicFirst(left))
                if left
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok() =>
            {
                panic!("injected first-attempt panic");
            }
            Some(Behavior::Sleep { ms, started }) => {
                started.store(true, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(*ms));
            }
            // Exhausted PanicFirst countdowns and untabled keys run
            // for real.
            _ => {}
        }
        run_job_with_sink(job, sink)
    })
}

/// A small, fast, deterministic job; distinct `n` gives a distinct key.
fn job(n: usize) -> SimJob {
    let mut cfg = SystemConfig::with_pes(2);
    cfg.obs.mode = ObsMode::Off;
    let wp = vecscale::build(n, 4, Variant::Baseline);
    SimJob::new(Arc::new(wp.program), wp.args, cfg)
}

/// Fresh scratch directory for disk-store tests.
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dta-serve-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_with(runner: Arc<Runner>, config: ServiceConfig) -> Service {
    Service::new(ServiceConfig {
        runner: Some(runner),
        ..config
    })
}

#[test]
fn panicking_leader_resolves_every_coalesced_waiter() {
    let j = job(96);
    let table = HashMap::from([(j.key().0, Behavior::PanicAlways("chaos: leader down"))]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            max_attempts: 2,
            retry_backoff: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );

    let started = Instant::now();
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let (service, j) = (&service, &j);
                s.spawn(move || service.submit(j))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Every submitter resolved (the scope returning at all proves no
    // hang) to a typed HostPanic carrying the injected message.
    assert!(started.elapsed() < Duration::from_secs(60));
    for done in &outcomes {
        match &done.result.outcome {
            Err(JobError::HostPanic { message, attempts }) => {
                assert_eq!(message, "chaos: leader down");
                assert!(*attempts >= 1);
            }
            other => panic!("expected HostPanic, got {other:?}"),
        }
    }
    let health = service.health();
    assert!(health.host_panics >= 2, "both attempts of a flight panic");
    assert_eq!(
        health.host_panics, health.executions,
        "every execution of this key panicked"
    );

    // The service itself survived: a different (healthy) job runs fine.
    let ok = service.submit(&job(100));
    assert!(ok.result.outcome.is_ok());
    assert_eq!(ok.status, CacheStatus::Miss);
}

#[test]
fn leader_failover_elects_waiter_and_recovers_byte_identically() {
    let j = job(128);
    let reference = run_job_with_sink(&j, None).0.canonical_string();
    let table = HashMap::from([(j.key().0, Behavior::PanicFirst(AtomicU32::new(1)))]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            retry_backoff: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );

    let outcomes: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (service, j) = (&service, &j);
                s.spawn(move || service.submit(j))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Attempt 1 panicked, the elected successor re-ran it, and every
    // submitter — including the fallen leader — got the real result.
    for done in &outcomes {
        assert!(done.result.outcome.is_ok(), "failover must recover");
        assert_eq!(done.result.canonical_string(), reference);
    }
    let health = service.health();
    assert_eq!(health.host_panics, 1);
    assert_eq!(health.retries, 1, "exactly one re-execution");
    assert_eq!(health.executions, 2, "panicking attempt + recovery");

    // The recovered (deterministic) result was cached normally.
    let again = service.submit(&j);
    assert_eq!(again.status, CacheStatus::Memory);
    assert_eq!(again.result.canonical_string(), reference);
}

#[test]
fn deadline_exceeded_is_typed_and_nothing_cached_at_expiry() {
    let j = job(64);
    let dir = scratch("deadline");
    let table = HashMap::from([(
        j.key().0,
        Behavior::Sleep {
            ms: 250,
            started: Arc::new(AtomicBool::new(false)),
        },
    )]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            disk_dir: Some(dir.clone()),
            deadline: Some(Duration::from_millis(25)),
            ..ServiceConfig::default()
        },
    );

    let done = service.submit(&j);
    match &done.result.outcome {
        Err(JobError::Timeout { budget_ms, .. }) => assert_eq!(*budget_ms, 25),
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert_eq!(service.health().timeouts, 1);
    // Nothing was cached at expiry: no disk entry, no memory entry.
    let entry = dir.join(format!("{}.json", j.key().hex()));
    assert!(!entry.exists(), "host-side timeout must not be cached");

    // The abandoned execution finishes deterministically ~225ms later
    // and is banked — future submitters hit the cache.
    let wait_start = Instant::now();
    while service.health().late_results == 0 {
        assert!(
            wait_start.elapsed() < Duration::from_secs(10),
            "late result never banked"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let again = service.submit_with_deadline(&j, None);
    assert!(again.result.outcome.is_ok());
    assert_eq!(again.status, CacheStatus::Memory);
    assert_eq!(
        service.stats().executed,
        1,
        "the banked run is reused, not re-executed"
    );
    assert!(entry.exists(), "late result reaches the disk store too");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wait_watchdog_unsticks_coalesced_waiters() {
    let j = job(80);
    let started = Arc::new(AtomicBool::new(false));
    let table = HashMap::from([(
        j.key().0,
        Behavior::Sleep {
            ms: 400,
            started: Arc::clone(&started),
        },
    )]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            wait_watchdog: Duration::from_millis(50),
            ..ServiceConfig::default()
        },
    );

    std::thread::scope(|s| {
        let leader = s.spawn(|| service.submit(&j));
        // Coalesce only once the leader is genuinely executing.
        while !started.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        let waited = Instant::now();
        let follower = service.submit(&j);
        assert!(
            waited.elapsed() < Duration::from_millis(300),
            "watchdog must release the waiter long before the leader finishes"
        );
        match &follower.result.outcome {
            Err(JobError::Timeout { message, .. }) => {
                assert!(message.contains("watchdog"), "typed watchdog timeout")
            }
            other => panic!("expected watchdog Timeout, got {other:?}"),
        }
        assert_eq!(follower.status, CacheStatus::Coalesced);
        // The slow leader still completes normally.
        let led = leader.join().unwrap();
        assert!(led.result.outcome.is_ok());
    });
    assert_eq!(service.health().watchdog_trips, 1);
}

#[test]
fn saturated_admission_sheds_with_typed_overloaded() {
    let (j1, j2) = (job(72), job(76));
    let started = Arc::new(AtomicBool::new(false));
    let table = HashMap::from([(
        j1.key().0,
        Behavior::Sleep {
            ms: 200,
            started: Arc::clone(&started),
        },
    )]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            max_running: 1,
            max_queued: 0,
            ..ServiceConfig::default()
        },
    );

    std::thread::scope(|s| {
        let slow = s.spawn(|| service.submit(&j1));
        while !started.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The only execution slot is busy and the queue holds zero:
        // a distinct job is shed immediately, not blocked.
        let shed = service.submit(&j2);
        match &shed.result.outcome {
            Err(JobError::Overloaded { limit, .. }) => assert_eq!(*limit, 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(slow.join().unwrap().result.outcome.is_ok());
    });
    assert_eq!(service.health().sheds, 1);

    // Overload is a host-side verdict — never cached. With the slot
    // free again the same job now runs for real.
    let retry = service.submit(&j2);
    assert!(retry.result.outcome.is_ok());
    assert_eq!(retry.status, CacheStatus::Miss);
}

#[test]
fn run_grid_completes_despite_a_panicking_point() {
    let jobs: Vec<SimJob> = (0..4).map(|i| job(40 + 8 * i)).collect();
    let table = HashMap::from([(jobs[2].key().0, Behavior::PanicAlways("chaos: grid point"))]);
    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            threads: 4,
            max_attempts: 1,
            ..ServiceConfig::default()
        },
    );

    let completions = service.run_grid(&jobs);
    assert_eq!(completions.len(), 4);
    for (i, done) in completions.iter().enumerate() {
        if i == 2 {
            match &done.result.outcome {
                Err(JobError::HostPanic { message, attempts }) => {
                    assert_eq!(message, "chaos: grid point");
                    assert_eq!(*attempts, 1);
                }
                other => panic!("expected HostPanic, got {other:?}"),
            }
        } else {
            assert!(done.result.outcome.is_ok(), "healthy points complete");
        }
    }
}

#[test]
fn deterministic_errors_cache_but_host_outcomes_never_do() {
    let dir = scratch("determ");
    // CycleLimit is *deterministic* (part of the simulated contract):
    // it caches like any result.
    let mut limited = job(56);
    limited.config.max_cycles = 1;
    let service = Service::with_disk(1, &dir);
    let first = service.submit(&limited);
    assert!(matches!(
        first.result.outcome,
        Err(JobError::CycleLimit { .. })
    ));
    assert_eq!(first.status, CacheStatus::Miss);
    let second = service.submit(&limited);
    assert_eq!(second.status, CacheStatus::Memory);
    assert!(dir.join(format!("{}.json", limited.key().hex())).exists());

    // HostPanic is host-side: re-submission re-executes every time.
    let flaky = job(60);
    let table = HashMap::from([(flaky.key().0, Behavior::PanicAlways("chaos: flaky"))]);
    let chaotic = service_with(
        chaos_runner(table),
        ServiceConfig {
            disk_dir: Some(dir.clone()),
            max_attempts: 1,
            ..ServiceConfig::default()
        },
    );
    for _ in 0..2 {
        let done = chaotic.submit(&flaky);
        assert!(matches!(
            done.result.outcome,
            Err(JobError::HostPanic { .. })
        ));
    }
    assert_eq!(chaotic.stats().executed, 2, "panics are never cached");
    assert!(!dir.join(format!("{}.json", flaky.key().hex())).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupts one stored entry with `mutate`, then proves quarantine +
/// byte-identical re-simulation + a repaired store.
fn corruption_round_trip(tag: &str, mutate: impl Fn(&mut Vec<u8>)) {
    let dir = scratch(tag);
    let j = job(112);
    let entry = dir.join(format!("{}.json", j.key().hex()));

    let reference = {
        let writer = Service::with_disk(1, &dir);
        let done = writer.submit(&j);
        assert!(entry.exists());
        done.result.canonical_string()
    };

    let mut bytes = std::fs::read(&entry).unwrap();
    mutate(&mut bytes);
    std::fs::write(&entry, &bytes).unwrap();

    // A fresh service quarantines the corrupt entry, re-simulates, and
    // the result is byte-identical to the original.
    let reader = Service::with_disk(1, &dir);
    let done = reader.submit(&j);
    assert_eq!(done.status, CacheStatus::Miss, "corrupt entry never served");
    assert_eq!(done.result.canonical_string(), reference);
    let health = reader.health();
    assert_eq!(health.quarantines, 1);
    assert!(!health.disk_degraded, "corruption is not an I/O failure");
    let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
    assert_eq!(quarantined, 1, "the bad entry is kept for inspection");

    // Re-simulation re-stored a valid entry: the next service disk-hits.
    let repaired = Service::with_disk(1, &dir);
    let again = repaired.submit(&j);
    assert_eq!(again.status, CacheStatus::Disk);
    assert_eq!(again.result.canonical_string(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_disk_entry_quarantines_and_resimulates() {
    corruption_round_trip("torn", |bytes| {
        let keep = bytes.len() / 2;
        bytes.truncate(keep);
    });
}

#[test]
fn bit_flipped_disk_entry_quarantines_and_resimulates() {
    corruption_round_trip("flip", |bytes| {
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
    });
}

/// Seeded end-to-end mix: a grid of healthy, panicking, and slow jobs
/// under a deadline. Everything resolves typed; nothing hangs.
#[test]
fn seeded_chaos_grid_resolves_every_point_typed() {
    const SEED: u64 = 0xC0FFEE;
    let mut rng = SEED;
    let mut step = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (rng >> 33) % 3
    };

    let jobs: Vec<SimJob> = (0..12).map(|i| job(32 + 8 * i)).collect();
    let mut table = HashMap::new();
    let mut kinds = Vec::new(); // 0 = healthy, 1 = panics, 2 = slow
    for j in &jobs {
        let kind = step();
        kinds.push(kind);
        match kind {
            1 => {
                table.insert(j.key().0, Behavior::PanicAlways("chaos: seeded"));
            }
            2 => {
                table.insert(
                    j.key().0,
                    Behavior::Sleep {
                        ms: 400,
                        started: Arc::new(AtomicBool::new(false)),
                    },
                );
            }
            _ => {}
        }
    }
    assert!(
        kinds.contains(&1) && kinds.contains(&2),
        "seed covers all kinds"
    );

    let service = service_with(
        chaos_runner(table),
        ServiceConfig {
            threads: 4,
            deadline: Some(Duration::from_millis(100)),
            max_attempts: 2,
            retry_backoff: Duration::from_millis(1),
            wait_watchdog: Duration::from_secs(30),
            ..ServiceConfig::default()
        },
    );

    let started = Instant::now();
    let completions = service.run_grid(&jobs);
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the grid resolves well inside the watchdog bound"
    );
    assert_eq!(completions.len(), 12);
    for (i, done) in completions.iter().enumerate() {
        match kinds[i] {
            1 => assert!(
                matches!(done.result.outcome, Err(JobError::HostPanic { .. })),
                "point {i} must be a typed HostPanic"
            ),
            2 => assert!(
                matches!(done.result.outcome, Err(JobError::Timeout { .. })),
                "point {i} must be a typed Timeout"
            ),
            _ => assert!(done.result.outcome.is_ok(), "point {i} must succeed"),
        }
    }
    let health = service.health();
    assert_eq!(health.executions, service.stats().executed);
    assert_eq!(
        health.timeouts as usize,
        kinds.iter().filter(|&&k| k == 2).count()
    );
    assert!(health.host_panics >= kinds.iter().filter(|&&k| k == 1).count() as u64);
}
