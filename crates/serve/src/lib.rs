//! # dta-serve — content-addressed simulation service
//!
//! The simulator is deterministic: a [`SimJob`] value maps to exactly
//! one [`JobResult`], bit for bit. This crate exploits that by putting a
//! service boundary in front of `dta_core::run_job`:
//!
//! * **Job queue** — [`Service::submit`] for single jobs,
//!   [`Service::run_grid`] for sweep grids (scheduled onto the
//!   `--sweep-threads` work-stealing pool, [`pool::par_map_with`]);
//! * **Result cache** — in-memory LRU plus an optional on-disk store of
//!   canonical-JSON results keyed by [`JobKey`] ([`cache`]);
//! * **In-flight dedup** — identical jobs submitted concurrently
//!   simulate once; followers block on the leader's flight and receive
//!   the same `Arc`'d result;
//! * **Incremental delivery** — [`Service::submit_with_sink`] attaches
//!   an observability subscriber: a leader streams live through the
//!   `ObsConfig::stream_interval` seam, while followers and cache hits
//!   replay the complete cached stream. Every subscriber sees the same
//!   records (the dedup suite pins this).
//!
//! Wall-clock time is measured *around* the cache (`Completion::wall_ms`)
//! and never stored inside a result, so cached and fresh results stay
//! byte-identical while warm-vs-cold timing remains visible to callers.

use dta_core::{run_job_with_sink, JobResult, ObsSink, SimJob};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

pub mod cache;
pub mod pool;

// Re-exported so thin clients need only a `dta-serve` dependency to
// build jobs and consume results.
pub use dta_core::{JobError, JobKey, JobOutput, SimJob as Job};

use cache::{DiskStore, LruCache};

/// How a submission was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheStatus {
    /// Simulated by this submission (the leader).
    Miss,
    /// Served from the in-memory LRU.
    Memory,
    /// Served from the on-disk store (and promoted to memory).
    Disk,
    /// Coalesced onto an identical in-flight job; no simulation ran for
    /// this submission.
    Coalesced,
}

impl CacheStatus {
    /// Did this submission avoid a simulation of its own?
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheStatus::Miss)
    }

    /// Stable label for reports (`BENCH_*.json`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Memory => "memory",
            CacheStatus::Disk => "disk",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// One satisfied submission.
pub struct Completion {
    /// The job's result (shared with the cache and with coalesced
    /// submitters).
    pub result: Arc<JobResult>,
    /// How it was satisfied.
    pub status: CacheStatus,
    /// Wall-clock milliseconds from submission to delivery — simulation
    /// time for a leader, lookup/replay time for a hit, wait time for a
    /// coalesced follower.
    pub wall_ms: f64,
    /// The subscriber passed to [`Service::submit_with_sink`], returned
    /// after it has received the full stream.
    pub sink: Option<Box<dyn ObsSink + Send>>,
}

/// Monotonic service counters (snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted (every `submit*` call).
    pub submitted: u64,
    /// Jobs actually simulated — the executor run count the dedup suite
    /// asserts on.
    pub executed: u64,
    /// Submissions served from the in-memory LRU.
    pub hits_memory: u64,
    /// Submissions served from the on-disk store.
    pub hits_disk: u64,
    /// Submissions coalesced onto an in-flight identical job.
    pub coalesced: u64,
}

impl ServiceStats {
    /// Fraction of submissions that avoided a simulation.
    pub fn hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.hits_memory + self.hits_disk + self.coalesced) as f64 / self.submitted as f64
    }
}

/// Service construction knobs.
pub struct ServiceConfig {
    /// Batch-executor workers for [`Service::run_grid`] (the
    /// `--sweep-threads` value; 1 = sequential).
    pub threads: usize,
    /// In-memory LRU capacity, in results.
    pub memory_capacity: usize,
    /// Root of the on-disk store (`None` = memory only).
    pub disk_dir: Option<std::path::PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 1,
            memory_capacity: 512,
            disk_dir: None,
        }
    }
}

/// A leader's promise to concurrent submitters of the same key.
#[derive(Default)]
struct Flight {
    done: Mutex<Option<Arc<JobResult>>>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Arc<JobResult> {
        let mut done = self.done.lock().unwrap();
        while done.is_none() {
            done = self.cv.wait(done).unwrap();
        }
        Arc::clone(done.as_ref().unwrap())
    }

    fn fulfil(&self, result: Arc<JobResult>) {
        *self.done.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

/// Cache and in-flight set behind ONE mutex: the hit check, the
/// coalesce check, and the leader election happen atomically, so two
/// concurrent submissions of one key can never both become leaders
/// (which would double-simulate and break the executor run-count
/// guarantee).
struct Registry {
    cache: LruCache,
    inflight: HashMap<u128, Arc<Flight>>,
}

enum Plan {
    Hit(Arc<JobResult>, CacheStatus),
    Wait(Arc<Flight>),
    Lead(Arc<Flight>),
}

/// The simulation service. `Sync`: share one instance (e.g. behind a
/// `OnceLock`) across every sweep in a process to deduplicate work
/// globally.
pub struct Service {
    threads: usize,
    registry: Mutex<Registry>,
    disk: Option<DiskStore>,
    submitted: AtomicU64,
    executed: AtomicU64,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    coalesced: AtomicU64,
}

impl Service {
    /// Builds a service. Disk-store creation failures degrade to a
    /// memory-only service (the cache is an optimisation, never a
    /// correctness dependency); the error is reported on stderr.
    pub fn new(config: ServiceConfig) -> Service {
        let disk = config.disk_dir.as_deref().and_then(|dir| {
            DiskStore::new(dir)
                .map_err(|e| eprintln!("dta-serve: disk cache at {} disabled: {e}", dir.display()))
                .ok()
        });
        Service {
            threads: config.threads.max(1),
            registry: Mutex::new(Registry {
                cache: LruCache::new(config.memory_capacity),
                inflight: HashMap::new(),
            }),
            disk,
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            hits_memory: AtomicU64::new(0),
            hits_disk: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// A memory-only service with default capacity.
    pub fn in_memory(threads: usize) -> Service {
        Service::new(ServiceConfig {
            threads,
            ..ServiceConfig::default()
        })
    }

    /// A service with an on-disk store at `dir`.
    pub fn with_disk(threads: usize, dir: &Path) -> Service {
        Service::new(ServiceConfig {
            threads,
            memory_capacity: 512,
            disk_dir: Some(dir.to_path_buf()),
        })
    }

    /// Batch-executor worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            hits_memory: self.hits_memory.load(Ordering::Relaxed),
            hits_disk: self.hits_disk.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Submits one job.
    pub fn submit(&self, job: &SimJob) -> Completion {
        self.submit_with_sink(job, None)
    }

    /// Submits one job with an observability subscriber. Leaders stream
    /// live through the run; hits and coalesced followers replay the
    /// complete cached stream — every subscriber of one key receives
    /// identical records.
    pub fn submit_with_sink(
        &self,
        job: &SimJob,
        mut sink: Option<Box<dyn ObsSink + Send>>,
    ) -> Completion {
        let start = Instant::now();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let key = job.key();

        let plan = {
            let mut reg = self.registry.lock().unwrap();
            if let Some(hit) = reg.cache.get(key) {
                self.hits_memory.fetch_add(1, Ordering::Relaxed);
                Plan::Hit(hit, CacheStatus::Memory)
            } else if let Some(flight) = reg.inflight.get(&key.0) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Plan::Wait(Arc::clone(flight))
            } else if let Some(loaded) = self.disk.as_ref().and_then(|d| d.load(key)) {
                // Rare (once per key per process) and cheap relative to a
                // simulation, so loading under the registry lock is fine
                // and keeps leader election atomic.
                let loaded = Arc::new(loaded);
                reg.cache.insert(key, Arc::clone(&loaded));
                self.hits_disk.fetch_add(1, Ordering::Relaxed);
                Plan::Hit(loaded, CacheStatus::Disk)
            } else {
                let flight = Arc::new(Flight::default());
                reg.inflight.insert(key.0, Arc::clone(&flight));
                Plan::Lead(flight)
            }
        };

        match plan {
            Plan::Hit(result, status) => {
                replay(&result, &mut sink);
                Completion {
                    result,
                    status,
                    wall_ms: ms_since(start),
                    sink,
                }
            }
            Plan::Wait(flight) => {
                let result = flight.wait();
                replay(&result, &mut sink);
                Completion {
                    result,
                    status: CacheStatus::Coalesced,
                    wall_ms: ms_since(start),
                    sink,
                }
            }
            Plan::Lead(flight) => {
                self.executed.fetch_add(1, Ordering::Relaxed);
                let (result, sink_back) = run_job_with_sink(job, sink);
                let result = Arc::new(result);
                if let Some(disk) = &self.disk {
                    if let Err(e) = disk.store(&result) {
                        eprintln!("dta-serve: failed to persist {}: {e}", result.key.hex());
                    }
                }
                {
                    let mut reg = self.registry.lock().unwrap();
                    reg.cache.insert(key, Arc::clone(&result));
                    reg.inflight.remove(&key.0);
                }
                flight.fulfil(Arc::clone(&result));
                Completion {
                    result,
                    status: CacheStatus::Miss,
                    wall_ms: ms_since(start),
                    sink: sink_back,
                }
            }
        }
    }

    /// Runs a sweep grid on the batch-executor pool, returning
    /// completions in grid order. Duplicate points inside one grid
    /// simulate once (dedup applies within a grid exactly as across
    /// submissions).
    pub fn run_grid(&self, jobs: &[SimJob]) -> Vec<Completion> {
        pool::par_map_with(self.threads, jobs, |job| self.submit(job))
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Feeds a cached result's complete stream into a follower's sink.
fn replay(result: &JobResult, sink: &mut Option<Box<dyn ObsSink + Send>>) {
    if let (Some(sink), Ok(out)) = (sink.as_mut(), &result.outcome) {
        if let Some(stream) = &out.obs {
            stream.feed(sink.as_mut());
        }
    }
}
