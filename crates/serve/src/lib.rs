//! # dta-serve — content-addressed simulation service
//!
//! The simulator is deterministic: a [`SimJob`] value maps to exactly
//! one [`JobResult`], bit for bit. This crate exploits that by putting a
//! service boundary in front of `dta_core::run_job`:
//!
//! * **Job queue** — [`Service::submit`] for single jobs,
//!   [`Service::run_grid`] for sweep grids (scheduled onto the
//!   `--sweep-threads` work-stealing pool, [`pool::par_map_with`]);
//! * **Result cache** — in-memory LRU plus an optional on-disk store of
//!   canonical-JSON results keyed by [`JobKey`] ([`cache`]);
//! * **In-flight dedup** — identical jobs submitted concurrently
//!   simulate once; followers block on the leader's flight and receive
//!   the same `Arc`'d result;
//! * **Incremental delivery** — [`Service::submit_with_sink`] attaches
//!   an observability subscriber: a leader streams live through the
//!   `ObsConfig::stream_interval` seam, while followers and cache hits
//!   replay the complete cached stream. Every subscriber sees the same
//!   records (the dedup suite pins this).
//!
//! ## Supervision (host-fault model)
//!
//! The service stays up when an individual run does not:
//!
//! * **Panic isolation** — leaders execute under `catch_unwind`; a
//!   panicking run becomes a typed [`JobError::HostPanic`] completion
//!   instead of tearing down the submitter, the batch, or a lock.
//! * **Leader failover** — when a leader's attempt panics, the waiting
//!   subscriber with the lowest ticket (arrival order — deterministic)
//!   is elected to re-run the job, with bounded attempts and
//!   exponential backoff between them. When nobody is waiting, the
//!   original submitter retries itself under the same budget.
//! * **Wait watchdog** — flight waiting uses `Condvar::wait_timeout`;
//!   a submitter whose leader neither finishes nor fails within
//!   [`ServiceConfig::wait_watchdog`] resolves to a typed
//!   [`JobError::Timeout`] instead of hanging forever.
//! * **Deadlines** — a per-job wall-clock budget
//!   ([`ServiceConfig::deadline`], overridable per submission) runs the
//!   job on a supervised executor thread; on expiry the submitter gets
//!   a typed [`JobError::Timeout`] while `max_cycles` remains the
//!   *deterministic* backstop. If the abandoned run later completes
//!   deterministically, its result is still banked in the cache.
//! * **Admission control** — at most [`ServiceConfig::max_running`]
//!   executions run concurrently; beyond that leaders wait in a bounded
//!   queue ([`ServiceConfig::max_queued`]) and past *that* the job is
//!   shed with a typed [`JobError::Overloaded`] instead of blocking
//!   unboundedly.
//!
//! Host-side outcomes (panics, timeouts, shed load) are **never
//! cached** — only deterministic results are content-addressable — and
//! corrupt disk entries are quarantined and re-simulated while real
//! I/O failures degrade the service to memory-only operation
//! ([`cache::DiskStore`]). [`Service::health`] exposes the supervision
//! counters.
//!
//! Wall-clock time is measured *around* the cache (`Completion::wall_ms`)
//! and never stored inside a result, so cached and fresh results stay
//! byte-identical while warm-vs-cold timing remains visible to callers.

use dta_core::{run_job_with_sink, JobResult, ObsSink, SimJob, JOB_FORMAT_VERSION};
use std::collections::{BTreeSet, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

pub mod cache;
pub mod pool;

// Re-exported so thin clients need only a `dta-serve` dependency to
// build jobs and consume results.
pub use dta_core::{JobError, JobKey, JobOutput, SimJob as Job};

use cache::{DiskStore, Load, LruCache};

/// How a submission was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheStatus {
    /// Simulated by this submission (the leader).
    Miss,
    /// Served from the in-memory LRU.
    Memory,
    /// Served from the on-disk store (and promoted to memory).
    Disk,
    /// Coalesced onto an identical in-flight job; no simulation ran for
    /// this submission.
    Coalesced,
}

impl CacheStatus {
    /// Did this submission avoid a simulation of its own?
    pub fn is_hit(&self) -> bool {
        !matches!(self, CacheStatus::Miss)
    }

    /// Stable label for reports (`BENCH_*.json`).
    pub fn label(&self) -> &'static str {
        match self {
            CacheStatus::Miss => "miss",
            CacheStatus::Memory => "memory",
            CacheStatus::Disk => "disk",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// One satisfied submission.
pub struct Completion {
    /// The job's result (shared with the cache and with coalesced
    /// submitters). Host-side outcomes (panic / timeout / overload)
    /// arrive here as typed errors but are never cached.
    pub result: Arc<JobResult>,
    /// How it was satisfied.
    pub status: CacheStatus,
    /// Wall-clock milliseconds from submission to delivery — simulation
    /// time for a leader, lookup/replay time for a hit, wait time for a
    /// coalesced follower.
    pub wall_ms: f64,
    /// The subscriber passed to [`Service::submit_with_sink`], returned
    /// after it has received the full stream. `None` when the sink was
    /// consumed by an abandoned execution (deadline expiry, panic).
    pub sink: Option<Box<dyn ObsSink + Send>>,
}

/// Monotonic service counters (snapshot).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs submitted (every `submit*` call).
    pub submitted: u64,
    /// Execution attempts started — the executor run count the dedup
    /// suite asserts on (equals jobs simulated when nothing panics).
    pub executed: u64,
    /// Submissions served from the in-memory LRU.
    pub hits_memory: u64,
    /// Submissions served from the on-disk store.
    pub hits_disk: u64,
    /// Submissions coalesced onto an in-flight identical job.
    pub coalesced: u64,
}

impl ServiceStats {
    /// Fraction of submissions that avoided a simulation.
    pub fn hit_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.hits_memory + self.hits_disk + self.coalesced) as f64 / self.submitted as f64
    }
}

/// Supervision counters (snapshot) — the host-fault ledger surfaced in
/// `BENCH_serve.json`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceHealth {
    /// Execution attempts started (same counter as
    /// [`ServiceStats::executed`]).
    pub executions: u64,
    /// Submissions coalesced onto an in-flight identical job.
    pub coalesced_waits: u64,
    /// Re-executions after a panicking attempt (leader failover).
    pub retries: u64,
    /// Panicking execution attempts caught and isolated.
    pub host_panics: u64,
    /// Jobs that exceeded their wall-clock deadline.
    pub timeouts: u64,
    /// Waiters released by the in-flight wait watchdog.
    pub watchdog_trips: u64,
    /// Jobs shed at admission with [`JobError::Overloaded`].
    pub sheds: u64,
    /// Corrupt disk entries quarantined (then re-simulated).
    pub quarantines: u64,
    /// Real disk I/O failures observed.
    pub disk_errors: u64,
    /// Deterministic results banked by an execution its submitter had
    /// already abandoned (deadline expiry).
    pub late_results: u64,
    /// Whether the disk store has been disabled (memory-only mode)
    /// after an I/O failure.
    pub disk_degraded: bool,
}

impl ServiceHealth {
    /// JSON form for `BENCH_serve.json` (declaration order).
    pub fn to_json(&self) -> dta_json::Json {
        use dta_json::{u64_json, Json};
        Json::obj([
            ("executions", u64_json(self.executions)),
            ("coalesced_waits", u64_json(self.coalesced_waits)),
            ("retries", u64_json(self.retries)),
            ("host_panics", u64_json(self.host_panics)),
            ("timeouts", u64_json(self.timeouts)),
            ("watchdog_trips", u64_json(self.watchdog_trips)),
            ("sheds", u64_json(self.sheds)),
            ("quarantines", u64_json(self.quarantines)),
            ("disk_errors", u64_json(self.disk_errors)),
            ("late_results", u64_json(self.late_results)),
            ("disk_degraded", Json::Bool(self.disk_degraded)),
        ])
    }
}

/// The execution function a service runs jobs through. Defaults to
/// [`dta_core::run_job_with_sink`]; injectable via
/// [`ServiceConfig::runner`] so the chaos suite (and, later, remote
/// executors) can wrap or replace the simulator.
pub type Runner = dyn Fn(&SimJob, Option<Box<dyn ObsSink + Send>>) -> (JobResult, Option<Box<dyn ObsSink + Send>>)
    + Send
    + Sync;

/// Service construction knobs.
pub struct ServiceConfig {
    /// Batch-executor workers for [`Service::run_grid`] (the
    /// `--sweep-threads` value; 1 = sequential).
    pub threads: usize,
    /// In-memory LRU capacity, in results.
    pub memory_capacity: usize,
    /// Root of the on-disk store (`None` = memory only).
    pub disk_dir: Option<std::path::PathBuf>,
    /// Default per-job wall-clock budget (`None` = no deadline). The
    /// deterministic backstop remains the job's own `max_cycles`.
    pub deadline: Option<Duration>,
    /// Upper bound on any single submission's wait — for a flight
    /// leader to finish, or for an admission slot. Generous by default
    /// (5 minutes); it exists so no submitter can hang forever.
    pub wait_watchdog: Duration,
    /// Execution attempts per flight before a panicking job is given up
    /// as [`JobError::HostPanic`] (min 1).
    pub max_attempts: u32,
    /// Backoff before retry attempt *n* is `retry_backoff · 2^(n-2)`.
    pub retry_backoff: Duration,
    /// Concurrent executions admitted (0 = derive `max(2·threads, 8)`).
    pub max_running: usize,
    /// Leaders waiting for an execution slot beyond `max_running`;
    /// past this bound submissions shed with [`JobError::Overloaded`].
    pub max_queued: usize,
    /// Execution function override (`None` = the real simulator).
    pub runner: Option<Arc<Runner>>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 1,
            memory_capacity: 512,
            disk_dir: None,
            deadline: None,
            wait_watchdog: Duration::from_secs(300),
            max_attempts: 3,
            retry_backoff: Duration::from_millis(10),
            max_running: 0,
            max_queued: 256,
            runner: None,
        }
    }
}

/// Locks a mutex, recovering from poisoning. No service lock is ever
/// held across job execution (the only code that can panic), so
/// poisoning is unreachable in practice — but supervision code must not
/// turn a caught panic into a poisoned-lock cascade.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A leader's promise to concurrent submitters of the same key, plus
/// the failover-election state.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Default)]
struct FlightState {
    /// The final answer, once some attempt produced one.
    done: Option<Arc<JobResult>>,
    /// Set when the current leader's attempt panicked and a successor
    /// must take over.
    needs_leader: bool,
    /// Execution attempts started for this flight.
    attempts: u32,
    /// Rendered payload of the most recent panic.
    last_panic: String,
    /// Tickets of currently waiting subscribers, in arrival order. On
    /// failover the *lowest* waiting ticket is elected — a rule that is
    /// deterministic given the arrival order.
    waiters: BTreeSet<u64>,
    next_ticket: u64,
}

impl Flight {
    fn leading() -> Arc<Flight> {
        let flight = Flight {
            state: Mutex::new(FlightState::default()),
            cv: Condvar::new(),
        };
        lock(&flight.state).attempts = 1;
        Arc::new(flight)
    }

    fn fulfil(&self, result: Arc<JobResult>) {
        lock(&self.state).done = Some(result);
        self.cv.notify_all();
    }
}

/// How a stint in [`Inner::wait_on_flight`] ended.
enum Waited {
    /// Some attempt finished; here is the shared result.
    Done(Arc<JobResult>),
    /// The previous leader panicked and *this* waiter has been elected
    /// to run attempt number `.0`.
    Lead(u32),
    /// The wait watchdog expired with the flight still unresolved.
    WatchdogExpired,
}

/// Cache and in-flight set behind ONE mutex: the hit check, the
/// coalesce check, and the leader election happen atomically, so two
/// concurrent submissions of one key can never both become leaders
/// (which would double-simulate and break the executor run-count
/// guarantee).
struct Registry {
    cache: LruCache,
    inflight: HashMap<u128, Arc<Flight>>,
}

enum Plan {
    Hit(Arc<JobResult>, CacheStatus),
    Wait(Arc<Flight>),
    Lead(Arc<Flight>),
}

/// Admission book-keeping: executions running, leaders queued.
#[derive(Default)]
struct Admission {
    running: usize,
    queued: usize,
}

enum Admit {
    Run,
    Shed { queued: u64, limit: u64 },
}

/// How one execution attempt ended.
enum Exec {
    Done(Arc<JobResult>, Option<Box<dyn ObsSink + Send>>),
    TimedOut(Duration),
    Panicked(String),
}

struct Inner {
    threads: usize,
    registry: Mutex<Registry>,
    disk: Option<DiskStore>,
    disk_degraded: AtomicBool,
    runner: Arc<Runner>,
    deadline: Option<Duration>,
    wait_watchdog: Duration,
    max_attempts: u32,
    retry_backoff: Duration,
    max_running: usize,
    max_queued: usize,
    admission: Mutex<Admission>,
    admission_cv: Condvar,
    submitted: AtomicU64,
    executed: AtomicU64,
    hits_memory: AtomicU64,
    hits_disk: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    host_panics: AtomicU64,
    timeouts: AtomicU64,
    watchdog_trips: AtomicU64,
    sheds: AtomicU64,
    quarantines: AtomicU64,
    disk_errors: AtomicU64,
    late_results: AtomicU64,
}

/// The simulation service. `Sync`: share one instance (e.g. behind a
/// `OnceLock`) across every sweep in a process to deduplicate work
/// globally.
pub struct Service {
    inner: Arc<Inner>,
}

/// Builds a host-side completion result (never cached).
fn host_result(key: JobKey, err: JobError) -> Arc<JobResult> {
    Arc::new(JobResult {
        format: JOB_FORMAT_VERSION,
        key,
        outcome: Err(err),
    })
}

impl Service {
    /// Builds a service. Disk-store creation failures degrade to a
    /// memory-only service (the cache is an optimisation, never a
    /// correctness dependency); the error is counted and reported on
    /// stderr.
    pub fn new(config: ServiceConfig) -> Service {
        let mut disk_errors = 0;
        let disk = config.disk_dir.as_deref().and_then(|dir| {
            DiskStore::new(dir)
                .map_err(|e| {
                    disk_errors = 1;
                    eprintln!("dta-serve: disk cache at {} disabled: {e}", dir.display());
                })
                .ok()
        });
        let threads = config.threads.max(1);
        let max_running = if config.max_running == 0 {
            (threads * 2).max(8)
        } else {
            config.max_running
        };
        Service {
            inner: Arc::new(Inner {
                threads,
                registry: Mutex::new(Registry {
                    cache: LruCache::new(config.memory_capacity),
                    inflight: HashMap::new(),
                }),
                disk,
                disk_degraded: AtomicBool::new(false),
                runner: config
                    .runner
                    .unwrap_or_else(|| Arc::new(|job: &SimJob, sink| run_job_with_sink(job, sink))),
                deadline: config.deadline,
                wait_watchdog: config.wait_watchdog,
                max_attempts: config.max_attempts.max(1),
                retry_backoff: config.retry_backoff,
                max_running,
                max_queued: config.max_queued,
                admission: Mutex::new(Admission::default()),
                admission_cv: Condvar::new(),
                submitted: AtomicU64::new(0),
                executed: AtomicU64::new(0),
                hits_memory: AtomicU64::new(0),
                hits_disk: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                host_panics: AtomicU64::new(0),
                timeouts: AtomicU64::new(0),
                watchdog_trips: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                quarantines: AtomicU64::new(0),
                disk_errors: AtomicU64::new(disk_errors),
                late_results: AtomicU64::new(0),
            }),
        }
    }

    /// A memory-only service with default capacity.
    pub fn in_memory(threads: usize) -> Service {
        Service::new(ServiceConfig {
            threads,
            ..ServiceConfig::default()
        })
    }

    /// A service with an on-disk store at `dir`.
    pub fn with_disk(threads: usize, dir: &Path) -> Service {
        Service::new(ServiceConfig {
            threads,
            disk_dir: Some(dir.to_path_buf()),
            ..ServiceConfig::default()
        })
    }

    /// Batch-executor worker count.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let i = &self.inner;
        ServiceStats {
            submitted: i.submitted.load(Ordering::Relaxed),
            executed: i.executed.load(Ordering::Relaxed),
            hits_memory: i.hits_memory.load(Ordering::Relaxed),
            hits_disk: i.hits_disk.load(Ordering::Relaxed),
            coalesced: i.coalesced.load(Ordering::Relaxed),
        }
    }

    /// Supervision-counter snapshot.
    pub fn health(&self) -> ServiceHealth {
        let i = &self.inner;
        ServiceHealth {
            executions: i.executed.load(Ordering::Relaxed),
            coalesced_waits: i.coalesced.load(Ordering::Relaxed),
            retries: i.retries.load(Ordering::Relaxed),
            host_panics: i.host_panics.load(Ordering::Relaxed),
            timeouts: i.timeouts.load(Ordering::Relaxed),
            watchdog_trips: i.watchdog_trips.load(Ordering::Relaxed),
            sheds: i.sheds.load(Ordering::Relaxed),
            quarantines: i.quarantines.load(Ordering::Relaxed),
            disk_errors: i.disk_errors.load(Ordering::Relaxed),
            late_results: i.late_results.load(Ordering::Relaxed),
            disk_degraded: i.disk_degraded.load(Ordering::Relaxed),
        }
    }

    /// Submits one job under the service-default deadline.
    pub fn submit(&self, job: &SimJob) -> Completion {
        self.inner.submit_full(job, None, self.inner.deadline)
    }

    /// Submits one job with an explicit wall-clock budget (`None`
    /// disables the deadline for this submission regardless of the
    /// service default).
    pub fn submit_with_deadline(&self, job: &SimJob, deadline: Option<Duration>) -> Completion {
        self.inner.submit_full(job, None, deadline)
    }

    /// Submits one job with an observability subscriber. Leaders stream
    /// live through the run; hits and coalesced followers replay the
    /// complete cached stream — every subscriber of one key receives
    /// identical records.
    pub fn submit_with_sink(
        &self,
        job: &SimJob,
        sink: Option<Box<dyn ObsSink + Send>>,
    ) -> Completion {
        self.inner.submit_full(job, sink, self.inner.deadline)
    }

    /// Runs a sweep grid on the batch-executor pool, returning
    /// completions in grid order. Duplicate points inside one grid
    /// simulate once (dedup applies within a grid exactly as across
    /// submissions), and a panicking point resolves to a typed
    /// [`JobError::HostPanic`] completion while the rest of the batch
    /// completes.
    pub fn run_grid(&self, jobs: &[SimJob]) -> Vec<Completion> {
        let outcomes = pool::try_par_map_with(self.inner.threads, jobs, |job| self.submit(job));
        jobs.iter()
            .zip(outcomes)
            .map(|(job, outcome)| match outcome {
                Ok(done) => done,
                // `submit` already isolates execution panics; reaching
                // this arm means the service machinery itself panicked.
                // Still: per-item typed failure, not a dead batch.
                Err(message) => Completion {
                    result: host_result(
                        job.key(),
                        JobError::HostPanic {
                            message,
                            attempts: 1,
                        },
                    ),
                    status: CacheStatus::Miss,
                    wall_ms: 0.0,
                    sink: None,
                },
            })
            .collect()
    }
}

impl Inner {
    fn submit_full(
        self: &Arc<Self>,
        job: &SimJob,
        mut sink: Option<Box<dyn ObsSink + Send>>,
        deadline: Option<Duration>,
    ) -> Completion {
        let start = Instant::now();
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let key = job.key();

        let plan = {
            let mut reg = lock(&self.registry);
            if let Some(hit) = reg.cache.get(key) {
                self.hits_memory.fetch_add(1, Ordering::Relaxed);
                Plan::Hit(hit, CacheStatus::Memory)
            } else if let Some(flight) = reg.inflight.get(&key.0) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Plan::Wait(Arc::clone(flight))
            } else if let Some(loaded) = self.disk_load(key) {
                // Rare (once per key per process) and cheap relative to a
                // simulation, so loading under the registry lock is fine
                // and keeps leader election atomic.
                let loaded = Arc::new(loaded);
                reg.cache.insert(key, Arc::clone(&loaded));
                self.hits_disk.fetch_add(1, Ordering::Relaxed);
                Plan::Hit(loaded, CacheStatus::Disk)
            } else {
                let flight = Flight::leading();
                reg.inflight.insert(key.0, Arc::clone(&flight));
                Plan::Lead(flight)
            }
        };

        match plan {
            Plan::Hit(result, status) => {
                replay(&result, &mut sink);
                Completion {
                    result,
                    status,
                    wall_ms: ms_since(start),
                    sink,
                }
            }
            Plan::Wait(flight) => self.follow(job, sink, deadline, key, &flight, start),
            Plan::Lead(flight) => self.lead(job, sink, deadline, key, &flight, 1, start),
        }
    }

    /// Waits on an in-flight leader; on failover election this follower
    /// becomes the next leader.
    fn follow(
        self: &Arc<Self>,
        job: &SimJob,
        mut sink: Option<Box<dyn ObsSink + Send>>,
        deadline: Option<Duration>,
        key: JobKey,
        flight: &Arc<Flight>,
        start: Instant,
    ) -> Completion {
        match self.wait_on_flight(flight, start) {
            Waited::Done(result) => {
                replay(&result, &mut sink);
                Completion {
                    result,
                    status: CacheStatus::Coalesced,
                    wall_ms: ms_since(start),
                    sink,
                }
            }
            Waited::Lead(attempt) => {
                // Exponential backoff before re-running: 1·b, 2·b, 4·b…
                // for attempts 2, 3, 4…
                let backoff = self
                    .retry_backoff
                    .saturating_mul(1u32 << (attempt.saturating_sub(2)).min(16));
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                self.lead(job, sink, deadline, key, flight, attempt, start)
            }
            Waited::WatchdogExpired => {
                self.watchdog_trips.fetch_add(1, Ordering::Relaxed);
                // Clear the zombie flight (if it is still the one we
                // waited on) so the next submitter starts fresh instead
                // of queueing behind a stuck leader.
                {
                    let mut reg = lock(&self.registry);
                    if reg
                        .inflight
                        .get(&key.0)
                        .is_some_and(|f| Arc::ptr_eq(f, flight))
                    {
                        reg.inflight.remove(&key.0);
                    }
                }
                let budget_ms = self.wait_watchdog.as_millis() as u64;
                Completion {
                    result: host_result(
                        key,
                        JobError::Timeout {
                            budget_ms,
                            message: "in-flight wait watchdog expired".into(),
                        },
                    ),
                    status: CacheStatus::Coalesced,
                    wall_ms: ms_since(start),
                    sink,
                }
            }
        }
    }

    /// Executes attempt `attempt` of a flight as its leader.
    #[allow(clippy::too_many_arguments)]
    fn lead(
        self: &Arc<Self>,
        job: &SimJob,
        sink: Option<Box<dyn ObsSink + Send>>,
        deadline: Option<Duration>,
        key: JobKey,
        flight: &Arc<Flight>,
        attempt: u32,
        start: Instant,
    ) -> Completion {
        match self.admit(start) {
            Admit::Run => {}
            Admit::Shed { queued, limit } => {
                self.sheds.fetch_add(1, Ordering::Relaxed);
                let result = host_result(key, JobError::Overloaded { queued, limit });
                self.finish_flight(key, flight, &result);
                return Completion {
                    result,
                    status: CacheStatus::Miss,
                    wall_ms: ms_since(start),
                    sink,
                };
            }
        }

        self.executed.fetch_add(1, Ordering::Relaxed);
        if attempt > 1 {
            self.retries.fetch_add(1, Ordering::Relaxed);
        }

        match self.execute(job, sink, deadline, key) {
            Exec::Done(result, sink_back) => {
                self.finish_flight(key, flight, &result);
                Completion {
                    result,
                    status: CacheStatus::Miss,
                    wall_ms: ms_since(start),
                    sink: sink_back,
                }
            }
            Exec::TimedOut(budget) => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                let result = host_result(
                    key,
                    JobError::Timeout {
                        budget_ms: budget.as_millis() as u64,
                        message: "job exceeded its host deadline".into(),
                    },
                );
                self.finish_flight(key, flight, &result);
                Completion {
                    result,
                    status: CacheStatus::Miss,
                    wall_ms: ms_since(start),
                    sink: None,
                }
            }
            Exec::Panicked(message) => {
                self.host_panics.fetch_add(1, Ordering::Relaxed);
                let exhausted = {
                    let mut st = lock(&flight.state);
                    st.last_panic = message.clone();
                    if st.attempts >= self.max_attempts {
                        true
                    } else {
                        // Hand leadership to the lowest-ticket waiter
                        // (or to ourselves, below, when nobody waits).
                        st.needs_leader = true;
                        false
                    }
                };
                if exhausted {
                    let result = host_result(
                        key,
                        JobError::HostPanic {
                            message,
                            attempts: attempt,
                        },
                    );
                    self.finish_flight(key, flight, &result);
                    return Completion {
                        result,
                        status: CacheStatus::Miss,
                        wall_ms: ms_since(start),
                        sink: None,
                    };
                }
                flight.cv.notify_all();
                // This submitter still needs an answer: join the
                // election pool. With no other waiters it elects itself
                // and retries (after backoff); otherwise an existing
                // waiter — which arrived earlier, hence lower ticket —
                // takes over.
                self.follow(job, None, deadline, key, flight, start)
            }
        }
    }

    /// Runs one execution attempt, inline (no deadline) or on a
    /// supervised executor thread (with deadline). The admission slot
    /// is released when the *execution* ends, even if the submitter has
    /// already abandoned it.
    fn execute(
        self: &Arc<Self>,
        job: &SimJob,
        sink: Option<Box<dyn ObsSink + Send>>,
        deadline: Option<Duration>,
        key: JobKey,
    ) -> Exec {
        let Some(budget) = deadline else {
            let runner = Arc::clone(&self.runner);
            let outcome = catch_unwind(AssertUnwindSafe(|| runner(job, sink)));
            self.release_slot();
            return match outcome {
                Ok((result, sink_back)) => Exec::Done(Arc::new(result), sink_back),
                Err(payload) => Exec::Panicked(pool::panic_message(&*payload)),
            };
        };

        let (tx, rx) = mpsc::channel();
        let inner = Arc::clone(self);
        let job = job.clone();
        let spawned = std::thread::Builder::new()
            .name(format!("dta-serve-run-{}", &key.hex()[..8]))
            .spawn(move || {
                let runner = Arc::clone(&inner.runner);
                let outcome = catch_unwind(AssertUnwindSafe(|| runner(&job, sink)));
                inner.release_slot();
                match outcome {
                    Ok((result, sink_back)) => {
                        let result = Arc::new(result);
                        if tx.send(Exec::Done(Arc::clone(&result), sink_back)).is_err()
                            && !result.is_host_side()
                        {
                            // The submitter gave up at the deadline, but
                            // the run finished deterministically — bank
                            // it so future submitters hit the cache.
                            inner.late_results.fetch_add(1, Ordering::Relaxed);
                            let mut reg = lock(&inner.registry);
                            reg.cache.insert(key, Arc::clone(&result));
                            drop(reg);
                            inner.disk_store(&result);
                        }
                    }
                    Err(payload) => {
                        let _ = tx.send(Exec::Panicked(pool::panic_message(&*payload)));
                    }
                }
            });
        if spawned.is_err() {
            // Could not spawn an executor thread (resource exhaustion):
            // the slot is still ours — release it and report overload
            // upwards as a panic-class host failure.
            self.release_slot();
            return Exec::Panicked("failed to spawn executor thread".into());
        }
        match rx.recv_timeout(budget) {
            Ok(exec) => exec,
            Err(mpsc::RecvTimeoutError::Timeout) => Exec::TimedOut(budget),
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Exec::Panicked("executor thread died without reporting".into())
            }
        }
    }

    /// Publishes a flight's final answer: cache deterministic results,
    /// drop the in-flight entry (if it is still this flight), wake every
    /// waiter.
    fn finish_flight(self: &Arc<Self>, key: JobKey, flight: &Arc<Flight>, result: &Arc<JobResult>) {
        let cacheable = !result.is_host_side();
        {
            let mut reg = lock(&self.registry);
            if cacheable {
                reg.cache.insert(key, Arc::clone(result));
            }
            if reg
                .inflight
                .get(&key.0)
                .is_some_and(|f| Arc::ptr_eq(f, flight))
            {
                reg.inflight.remove(&key.0);
            }
        }
        if cacheable {
            self.disk_store(result);
        }
        flight.fulfil(Arc::clone(result));
    }

    /// Blocks on a flight with the `Condvar::wait_timeout` watchdog,
    /// participating in failover election.
    fn wait_on_flight(&self, flight: &Flight, start: Instant) -> Waited {
        let mut st = lock(&flight.state);
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiters.insert(ticket);
        loop {
            if let Some(result) = &st.done {
                let result = Arc::clone(result);
                st.waiters.remove(&ticket);
                return Waited::Done(result);
            }
            if st.needs_leader && st.waiters.first() == Some(&ticket) {
                st.needs_leader = false;
                st.attempts += 1;
                let attempt = st.attempts;
                st.waiters.remove(&ticket);
                return Waited::Lead(attempt);
            }
            let remaining = self.wait_watchdog.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                st.waiters.remove(&ticket);
                return Waited::WatchdogExpired;
            }
            let (guard, _) = flight
                .cv
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Acquires an execution slot, queueing (bounded) when the service
    /// is saturated. Sheds on a full queue or on watchdog expiry.
    fn admit(&self, start: Instant) -> Admit {
        let mut adm = lock(&self.admission);
        if adm.running < self.max_running {
            adm.running += 1;
            return Admit::Run;
        }
        if adm.queued >= self.max_queued {
            return Admit::Shed {
                queued: adm.queued as u64,
                limit: self.max_queued as u64,
            };
        }
        adm.queued += 1;
        loop {
            let remaining = self.wait_watchdog.saturating_sub(start.elapsed());
            if remaining.is_zero() {
                adm.queued -= 1;
                return Admit::Shed {
                    queued: adm.queued as u64,
                    limit: self.max_queued as u64,
                };
            }
            let (guard, _) = self
                .admission_cv
                .wait_timeout(adm, remaining)
                .unwrap_or_else(|e| e.into_inner());
            adm = guard;
            if adm.running < self.max_running {
                adm.queued -= 1;
                adm.running += 1;
                return Admit::Run;
            }
        }
    }

    /// Returns an execution slot and wakes queued leaders.
    fn release_slot(&self) {
        let mut adm = lock(&self.admission);
        adm.running = adm.running.saturating_sub(1);
        let queued = adm.queued;
        drop(adm);
        if queued > 0 {
            self.admission_cv.notify_all();
        }
    }

    /// Disk lookup with quarantine accounting and I/O-failure
    /// degradation. `None` covers absence, corruption, and a degraded
    /// store alike — the caller just simulates.
    fn disk_load(&self, key: JobKey) -> Option<JobResult> {
        if self.disk_degraded.load(Ordering::Relaxed) {
            return None;
        }
        match self.disk.as_ref()?.load(key) {
            Load::Hit(result) => Some(*result),
            Load::Miss => None,
            Load::Quarantined { reason } => {
                self.quarantines.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "dta-serve: quarantined corrupt cache entry {} ({reason}); re-simulating",
                    key.hex()
                );
                None
            }
            Load::Error(e) => {
                self.degrade_disk("read", &e);
                None
            }
        }
    }

    /// Best-effort persist; failures degrade the service to memory-only.
    fn disk_store(&self, result: &Arc<JobResult>) {
        if self.disk_degraded.load(Ordering::Relaxed) {
            return;
        }
        if let Some(disk) = &self.disk {
            if let Err(e) = disk.store(result) {
                self.degrade_disk("write", &e);
            }
        }
    }

    fn degrade_disk(&self, what: &str, e: &std::io::Error) {
        self.disk_errors.fetch_add(1, Ordering::Relaxed);
        if !self.disk_degraded.swap(true, Ordering::Relaxed) {
            eprintln!(
                "dta-serve: disk store {what} failed ({e}); degrading to memory-only operation"
            );
        }
    }
}

fn ms_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Feeds a cached result's complete stream into a follower's sink.
fn replay(result: &JobResult, sink: &mut Option<Box<dyn ObsSink + Send>>) {
    if let (Some(sink), Ok(out)) = (sink.as_mut(), &result.outcome) {
        if let Some(stream) = &out.obs {
            stream.feed(sink.as_mut());
        }
    }
}
