//! The batch-executor thread pool.
//!
//! Moved here from `dta-bench`'s experiment module (it used to be
//! re-implemented next to every sweep): a minimal scoped-thread,
//! atomic work-stealing map that every grid submitted to the service is
//! scheduled onto. Sweep points are independent jobs, so plain index
//! stealing is enough — no queues, no channels.
//!
//! Panic isolation: each item runs under `catch_unwind`, so one
//! panicking item yields a per-item failure while the worker survives
//! and the rest of the batch completes ([`try_par_map_with`]). The
//! pre-supervision behaviour — one panic aborts the whole batch — is
//! gone; [`par_map_with`] still re-raises after the batch finishes for
//! callers with no failure channel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Renders a `catch_unwind` payload as text (panics carry `&str` or
/// `String` in practice; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `items` on `threads` scoped workers (atomic
/// work-stealing), returning per-item results in input order. An item
/// whose `f` panics yields `Err(panic message)` for that item only —
/// the worker survives and every other item still completes.
/// `threads <= 1` degrades to a plain sequential map (with the same
/// per-item isolation).
pub fn try_par_map_with<I, O, F>(threads: usize, items: &[I], f: F) -> Vec<Result<O, String>>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let guarded =
        |item: &I| catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| panic_message(&*p));
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(guarded).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, Result<O, String>)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, guarded(item)));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            // The worker body cannot panic (items are caught above), so
            // a join failure here is unreachable in practice.
            .flat_map(|w| w.join().expect("pool worker died outside an item"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, o)| o).collect()
}

/// [`try_par_map_with`] for infallible maps: panics (with the first
/// item's panic message) only after the whole batch has completed.
pub fn par_map_with<I, O, F>(threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    try_par_map_with(threads, items, f)
        .into_iter()
        .map(|r| r.unwrap_or_else(|msg| panic!("pool item panicked: {msg}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4, 7] {
            let out = par_map_with(threads, &items, |&i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map_with::<u32, u32, _>(4, &[], |&i| i).is_empty());
        assert_eq!(par_map_with(4, &[9], |&i: &u32| i + 1), vec![10]);
    }

    #[test]
    fn one_panicking_item_does_not_abort_the_batch() {
        let items: Vec<usize> = (0..32).collect();
        for threads in [1, 4] {
            let out = try_par_map_with(threads, &items, |&i| {
                if i == 13 {
                    panic!("injected item panic");
                }
                i * 3
            });
            assert_eq!(out.len(), 32);
            for (i, r) in out.iter().enumerate() {
                if i == 13 {
                    assert_eq!(
                        r.as_ref().err().map(String::as_str),
                        Some("injected item panic")
                    );
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 3)));
                }
            }
        }
    }

    #[test]
    fn panic_messages_render_str_and_string() {
        let out = try_par_map_with(2, &[0u32, 1], |&i| {
            if i == 0 {
                panic!("static str");
            } else {
                panic!("formatted {i}");
            }
        });
        assert_eq!(
            out[0].as_ref().err().map(String::as_str),
            Some("static str")
        );
        assert_eq!(
            out[1].as_ref().err().map(String::as_str),
            Some("formatted 1")
        );
    }
}
