//! The batch-executor thread pool.
//!
//! Moved here from `dta-bench`'s experiment module (it used to be
//! re-implemented next to every sweep): a minimal scoped-thread,
//! atomic work-stealing map that every grid submitted to the service is
//! scheduled onto. Sweep points are independent jobs, so plain index
//! stealing is enough — no queues, no channels.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `f` over `items` on `threads` scoped workers (atomic
/// work-stealing), returning results in input order. A worker panic
/// propagates. `threads <= 1` degrades to a plain sequential map.
pub fn par_map_with<I, O, F>(threads: usize, items: &[I], f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let threads = threads.min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, O)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(i) else { break };
                        out.push((i, f(item)));
                    }
                    out
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("pool worker panicked"))
            .collect()
    });
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, o)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        for threads in [1, 4, 7] {
            let out = par_map_with(threads, &items, |&i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_and_single() {
        assert!(par_map_with::<u32, u32, _>(4, &[], |&i| i).is_empty());
        assert_eq!(par_map_with(4, &[9], |&i: &u32| i + 1), vec![10]);
    }
}
