//! Content-addressed result storage: in-memory LRU + optional on-disk
//! store of canonical-JSON [`JobResult`] documents.
//!
//! Both tiers key on [`JobKey`] and both are *self-validating*: a disk
//! entry decodes only if its embedded format version matches
//! [`dta_core::JOB_FORMAT_VERSION`] and its embedded key matches its
//! file name, so stale or corrupt entries degrade to misses, never to
//! wrong results. Bumping the format version therefore invalidates the
//! whole store without any migration step (DESIGN.md §13).

use dta_core::{JobKey, JobResult};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Fixed-capacity LRU of completed results.
///
/// Eviction scans for the stalest entry (O(capacity)); capacities are
/// small (hundreds) and hits bump a counter only, so this stays simpler
/// and faster in practice than an intrusive list.
pub struct LruCache {
    cap: usize,
    tick: u64,
    map: HashMap<u128, (Arc<JobResult>, u64)>,
}

impl LruCache {
    /// Creates a cache holding at most `cap` results (min 1).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up a result, refreshing its recency.
    pub fn get(&mut self, key: JobKey) -> Option<Arc<JobResult>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key.0).map(|(v, used)| {
            *used = tick;
            Arc::clone(v)
        })
    }

    /// Inserts (or refreshes) a result, evicting the least-recently-used
    /// entry when over capacity.
    pub fn insert(&mut self, key: JobKey, value: Arc<JobResult>) {
        self.tick += 1;
        self.map.insert(key.0, (value, self.tick));
        if self.map.len() > self.cap {
            if let Some(&stalest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                self.map.remove(&stalest);
            }
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// On-disk store: one `<key-hex>.json` canonical document per result.
pub struct DiskStore {
    dir: PathBuf,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
        })
    }

    fn path(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Loads a result. `None` on absence, decode failure, format
    /// mismatch, or an embedded key that disagrees with the file name.
    pub fn load(&self, key: JobKey) -> Option<JobResult> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        let result = JobResult::from_canonical_str(&text)?;
        (result.key == key).then_some(result)
    }

    /// Persists a result (write-to-temp + rename, so readers never see a
    /// torn document).
    pub fn store(&self, result: &JobResult) -> io::Result<()> {
        let path = self.path(result.key);
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, result.canonical_string())?;
        std::fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{JobError, JOB_FORMAT_VERSION};

    fn fake_result(n: u128) -> Arc<JobResult> {
        Arc::new(JobResult {
            format: JOB_FORMAT_VERSION,
            key: JobKey(n),
            outcome: Err(JobError::Launch {
                message: format!("entry {n}"),
            }),
        })
    }

    #[test]
    fn lru_evicts_stalest() {
        let mut c = LruCache::new(2);
        c.insert(JobKey(1), fake_result(1));
        c.insert(JobKey(2), fake_result(2));
        assert!(c.get(JobKey(1)).is_some()); // 1 is now fresher than 2
        c.insert(JobKey(3), fake_result(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(JobKey(2)).is_none(), "stalest entry evicted");
        assert!(c.get(JobKey(1)).is_some());
        assert!(c.get(JobKey(3)).is_some());
    }

    #[test]
    fn disk_store_roundtrips_and_validates() {
        let dir = std::env::temp_dir().join(format!("dta-serve-cache-test-{}", std::process::id()));
        let store = DiskStore::new(&dir).unwrap();
        let r = fake_result(77);
        store.store(&r).unwrap();
        assert_eq!(store.load(JobKey(77)).as_ref(), Some(r.as_ref()));
        assert!(store.load(JobKey(78)).is_none());

        // A document stored under the wrong name must not decode.
        std::fs::rename(
            dir.join(format!("{}.json", JobKey(77).hex())),
            dir.join(format!("{}.json", JobKey(99).hex())),
        )
        .unwrap();
        assert!(store.load(JobKey(99)).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
