//! Content-addressed result storage: in-memory LRU + optional on-disk
//! store of canonical-JSON [`JobResult`] documents.
//!
//! Both tiers key on [`JobKey`] and both are *self-validating*: a disk
//! entry decodes only if its payload checksum (a `fnv1a128` footer
//! written with every entry), its embedded format version
//! ([`dta_core::JOB_FORMAT_VERSION`]), and its embedded key (checked
//! against the file name) all agree. Anything else — a torn write, a
//! flipped bit, a truncation, a stale format — is **quarantined**
//! (moved aside into `quarantine/`, never served, never a panic) and
//! reported as a miss so the job simply re-simulates. Real filesystem
//! failures are surfaced as [`Load::Error`] so the service can degrade
//! to memory-only operation instead of erroring jobs (DESIGN.md §13).

use dta_core::{JobKey, JobResult};
use dta_json::fnv1a128;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-capacity LRU of completed results.
///
/// Eviction scans for the stalest entry (O(capacity)); capacities are
/// small (hundreds) and hits bump a counter only, so this stays simpler
/// and faster in practice than an intrusive list.
pub struct LruCache {
    cap: usize,
    tick: u64,
    map: HashMap<u128, (Arc<JobResult>, u64)>,
}

impl LruCache {
    /// Creates a cache holding at most `cap` results (min 1).
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up a result, refreshing its recency.
    pub fn get(&mut self, key: JobKey) -> Option<Arc<JobResult>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key.0).map(|(v, used)| {
            *used = tick;
            Arc::clone(v)
        })
    }

    /// Inserts (or refreshes) a result, evicting the least-recently-used
    /// entry when over capacity. Host-side outcomes (panics, timeouts,
    /// shed load) are refused: only deterministic results are
    /// content-addressable.
    pub fn insert(&mut self, key: JobKey, value: Arc<JobResult>) {
        debug_assert!(!value.is_host_side(), "host-side outcomes are never cached");
        if value.is_host_side() {
            return;
        }
        self.tick += 1;
        self.map.insert(key.0, (value, self.tick));
        if self.map.len() > self.cap {
            if let Some(&stalest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k)
            {
                self.map.remove(&stalest);
            }
        }
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Footer line prefix: `dta-entry fnv1a128=<32 hex digits>`.
const FOOTER_PREFIX: &str = "dta-entry fnv1a128=";

/// Outcome of a disk lookup.
pub enum Load {
    /// No entry for this key.
    Miss,
    /// A validated entry (boxed: a `JobResult` is two orders of
    /// magnitude bigger than the other variants).
    Hit(Box<JobResult>),
    /// An entry existed but failed validation (torn write, bit flip,
    /// truncation, stale format, key mismatch). It has been moved to
    /// the `quarantine/` subdirectory — never served — and the caller
    /// should re-simulate.
    Quarantined {
        /// What failed, for the health log.
        reason: &'static str,
    },
    /// A real filesystem failure (not absence, not corruption). The
    /// caller should degrade to memory-only operation.
    Error(io::Error),
}

/// On-disk store: one `<key-hex>.json` canonical document per result,
/// each carrying a payload-checksum footer.
///
/// Entry layout (two lines):
///
/// ```text
/// <canonical JobResult JSON>\n
/// dta-entry fnv1a128=<32-hex checksum of the first line's bytes>\n
/// ```
///
/// Writes go to a uniquely named temp file (`.<key>.<pid>.<seq>.tmp`)
/// followed by an atomic rename, so readers — including concurrent
/// writers of the same key — never observe a torn document under the
/// final name. The checksum footer catches the remaining hazards
/// (partial temp flush surviving a crash-rename, storage bit rot).
pub struct DiskStore {
    dir: PathBuf,
    seq: AtomicU64,
}

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn new(dir: &Path) -> io::Result<DiskStore> {
        std::fs::create_dir_all(dir)?;
        Ok(DiskStore {
            dir: dir.to_path_buf(),
            seq: AtomicU64::new(0),
        })
    }

    fn path(&self, key: JobKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// The quarantine subdirectory (corrupt entries are moved here with
    /// a unique suffix; inspect or delete freely).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    /// Loads and validates a result. Corruption quarantines; only real
    /// I/O failures surface as [`Load::Error`].
    pub fn load(&self, key: JobKey) -> Load {
        let bytes = match std::fs::read(self.path(key)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Load::Miss,
            Err(e) => return Load::Error(e),
        };
        match validate_entry(&bytes, key) {
            Ok(result) => Load::Hit(Box::new(result)),
            Err(reason) => match self.quarantine(key) {
                Ok(()) => Load::Quarantined { reason },
                // Can't even move the bad entry aside: treat as a
                // filesystem failure so the store gets disabled rather
                // than re-quarantining forever.
                Err(e) => Load::Error(e),
            },
        }
    }

    /// Persists a result (unique temp file + atomic rename + checksum
    /// footer). Host-side outcomes are refused with `InvalidInput`.
    pub fn store(&self, result: &JobResult) -> io::Result<()> {
        if result.is_host_side() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "host-side outcomes are never stored",
            ));
        }
        let payload = result.canonical_string();
        let text = format!(
            "{payload}\n{FOOTER_PREFIX}{:032x}\n",
            fnv1a128(payload.as_bytes())
        );
        let path = self.path(result.key);
        let tmp = self.dir.join(format!(
            ".{}.{}.{}.tmp",
            result.key.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            std::fs::remove_file(&tmp).ok();
        })
    }

    /// Moves the entry for `key` into `quarantine/` under a unique name.
    fn quarantine(&self, key: JobKey) -> io::Result<()> {
        let qdir = self.quarantine_dir();
        std::fs::create_dir_all(&qdir)?;
        let dest = qdir.join(format!(
            "{}.{}.{}.bad",
            key.hex(),
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::rename(self.path(key), dest)
    }
}

/// Validates raw entry bytes against `key`: UTF-8, checksum footer,
/// canonical decode, format version (inside the decoder), embedded key,
/// and the never-cache-host-outcomes invariant.
fn validate_entry(bytes: &[u8], key: JobKey) -> Result<JobResult, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "not utf-8")?;
    let body = text.strip_suffix('\n').unwrap_or(text);
    let (payload, footer) = body.rsplit_once('\n').ok_or("missing checksum footer")?;
    let sum = footer
        .strip_prefix(FOOTER_PREFIX)
        .ok_or("malformed checksum footer")?;
    if u128::from_str_radix(sum, 16) != Ok(fnv1a128(payload.as_bytes())) {
        return Err("checksum mismatch");
    }
    let result = JobResult::from_canonical_str(payload).ok_or("payload does not decode")?;
    if result.key != key {
        return Err("embedded key disagrees with file name");
    }
    if result.is_host_side() {
        return Err("host-side outcome on disk");
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{JobError, JOB_FORMAT_VERSION};

    fn fake_result(n: u128) -> Arc<JobResult> {
        Arc::new(JobResult {
            format: JOB_FORMAT_VERSION,
            key: JobKey(n),
            outcome: Err(JobError::Launch {
                message: format!("entry {n}"),
            }),
        })
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dta-serve-cache-test-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn hit(load: Load) -> Option<JobResult> {
        match load {
            Load::Hit(r) => Some(*r),
            _ => None,
        }
    }

    #[test]
    fn lru_evicts_stalest() {
        let mut c = LruCache::new(2);
        c.insert(JobKey(1), fake_result(1));
        c.insert(JobKey(2), fake_result(2));
        assert!(c.get(JobKey(1)).is_some()); // 1 is now fresher than 2
        c.insert(JobKey(3), fake_result(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(JobKey(2)).is_none(), "stalest entry evicted");
        assert!(c.get(JobKey(1)).is_some());
        assert!(c.get(JobKey(3)).is_some());
    }

    #[test]
    fn lru_refuses_host_side_outcomes() {
        let mut c = LruCache::new(4);
        let host = Arc::new(JobResult {
            format: JOB_FORMAT_VERSION,
            key: JobKey(5),
            outcome: Err(JobError::Timeout {
                budget_ms: 1,
                message: "t".into(),
            }),
        });
        // Release builds must silently refuse; debug builds assert.
        if !cfg!(debug_assertions) {
            c.insert(JobKey(5), host);
            assert!(c.is_empty());
        }
    }

    #[test]
    fn disk_store_roundtrips_and_validates() {
        let dir = scratch("roundtrip");
        let store = DiskStore::new(&dir).unwrap();
        let r = fake_result(77);
        store.store(&r).unwrap();
        assert_eq!(hit(store.load(JobKey(77))).as_ref(), Some(r.as_ref()));
        assert!(matches!(store.load(JobKey(78)), Load::Miss));

        // A document stored under the wrong name is quarantined, not
        // served.
        std::fs::rename(
            dir.join(format!("{}.json", JobKey(77).hex())),
            dir.join(format!("{}.json", JobKey(99).hex())),
        )
        .unwrap();
        assert!(matches!(
            store.load(JobKey(99)),
            Load::Quarantined {
                reason: "embedded key disagrees with file name"
            }
        ));
        // Quarantine moved it aside: the next load is a clean miss.
        assert!(matches!(store.load(JobKey(99)), Load::Miss));
        assert_eq!(
            std::fs::read_dir(store.quarantine_dir()).unwrap().count(),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_quarantines() {
        let dir = scratch("truncate");
        let store = DiskStore::new(&dir).unwrap();
        let r = fake_result(11);
        store.store(&r).unwrap();
        let path = dir.join(format!("{}.json", JobKey(11).hex()));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(store.load(JobKey(11)), Load::Quarantined { .. }));
        assert!(matches!(store.load(JobKey(11)), Load::Miss));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_quarantines_via_checksum() {
        let dir = scratch("bitflip");
        let store = DiskStore::new(&dir).unwrap();
        let r = fake_result(12);
        store.store(&r).unwrap();
        let path = dir.join(format!("{}.json", JobKey(12).hex()));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x01; // still parseable JSON in many positions —
                            // the checksum must catch it regardless
        std::fs::write(&path, &bytes).unwrap();
        match store.load(JobKey(12)) {
            Load::Quarantined { .. } => {}
            Load::Hit(_) => panic!("flipped entry must not be served"),
            Load::Miss => panic!("flipped entry must quarantine, not vanish"),
            Load::Error(e) => panic!("flipped entry must quarantine, not error: {e}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn footerless_legacy_entry_quarantines() {
        let dir = scratch("legacy");
        let store = DiskStore::new(&dir).unwrap();
        let r = fake_result(13);
        // A pre-checksum entry: bare canonical payload, no footer.
        std::fs::write(
            dir.join(format!("{}.json", JobKey(13).hex())),
            r.canonical_string(),
        )
        .unwrap();
        assert!(matches!(store.load(JobKey(13)), Load::Quarantined { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_refuses_host_side_outcomes() {
        let dir = scratch("host-side");
        let store = DiskStore::new(&dir).unwrap();
        let host = JobResult {
            format: JOB_FORMAT_VERSION,
            key: JobKey(14),
            outcome: Err(JobError::HostPanic {
                message: "boom".into(),
                attempts: 1,
            }),
        };
        assert_eq!(
            store.store(&host).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        assert!(matches!(store.load(JobKey(14)), Load::Miss));
        std::fs::remove_dir_all(&dir).ok();
    }
}
