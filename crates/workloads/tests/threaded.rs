//! Forces the real OS-thread epoch path (spin barrier + shard mutexes)
//! even on single-core hosts, where the engine would otherwise run every
//! shard inline. Lives in its own integration-test binary so the
//! process-wide `DTA_HOST_PARALLELISM` override cannot leak into the
//! other suites. Kept to one small workload: on a 1-core host each epoch
//! barrier is a scheduler round-trip, so this is the slowest path we ship.

use dta_core::{simulate, Parallelism, SystemConfig};
use dta_workloads::{mmul, Variant};
use std::sync::Arc;

#[test]
fn os_thread_path_matches_oracle() {
    std::env::set_var("DTA_HOST_PARALLELISM", "4");
    let run = |par: Parallelism| {
        let wp = mmul::build(16, Variant::HandPrefetch);
        let mut cfg = SystemConfig::paper_default();
        cfg.parallelism = par;
        simulate(cfg, Arc::new(wp.program), &wp.args)
            .unwrap_or_else(|e| panic!("{par:?} failed: {e}"))
    };
    let (oracle, _) = run(Parallelism::Off);
    let (threaded, sys) = run(Parallelism::Threads(2));
    mmul::verify(&sys, 16).expect("threaded result wrong");
    assert_eq!(
        oracle, threaded,
        "OS-thread epoch path diverged from the sequential oracle"
    );
}
