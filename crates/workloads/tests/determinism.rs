//! Engine-equivalence property: the sharded engine must produce
//! bit-identical `RunStats` to the sequential oracle for every thread
//! count, and repeated runs must be identical, on the paper's three
//! benchmarks (bitcnt(10000), mmul(32), zoom(32)).

use dta_core::{simulate, Parallelism, RunStats, System, SystemConfig};
use dta_workloads::{bitcnt, mmul, zoom, Variant, WorkloadProgram};
use std::sync::Arc;

fn run(build: impl Fn() -> WorkloadProgram, par: Parallelism) -> (RunStats, System) {
    let wp = build();
    let mut cfg = SystemConfig::paper_default();
    cfg.parallelism = par;
    simulate(cfg, Arc::new(wp.program), &wp.args)
        .unwrap_or_else(|e| panic!("{:?} failed: {e}", par))
}

fn assert_engine_equivalence(
    name: &str,
    build: impl Fn() -> WorkloadProgram,
    verify: impl Fn(&System) -> Result<(), String>,
) {
    let (oracle, sys) = run(&build, Parallelism::Off);
    verify(&sys).unwrap_or_else(|e| panic!("{name} sequential result wrong: {e}"));

    let (repeat, _) = run(&build, Parallelism::Off);
    assert_eq!(oracle, repeat, "{name}: sequential run not repeatable");

    for threads in [1u16, 2, 4] {
        let (stats, sys) = run(&build, Parallelism::Threads(threads));
        verify(&sys).unwrap_or_else(|e| panic!("{name} Threads({threads}) result wrong: {e}"));
        assert_eq!(
            oracle, stats,
            "{name}: Threads({threads}) diverged from the sequential oracle"
        );
        let (again, _) = run(&build, Parallelism::Threads(threads));
        assert_eq!(stats, again, "{name}: Threads({threads}) not repeatable");
    }
}

#[test]
fn bitcnt_is_engine_invariant() {
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        assert_engine_equivalence(
            "bitcnt(10000)",
            || bitcnt::build(10_000, variant),
            |sys| bitcnt::verify(sys, 10_000),
        );
    }
}

#[test]
fn mmul_is_engine_invariant() {
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        assert_engine_equivalence(
            "mmul(32)",
            || mmul::build(32, variant),
            |sys| mmul::verify(sys, 32),
        );
    }
}

#[test]
fn zoom_is_engine_invariant() {
    for variant in [Variant::Baseline, Variant::HandPrefetch] {
        assert_engine_equivalence(
            "zoom(32)",
            || zoom::build(32, variant),
            |sys| zoom::verify(sys, 32),
        );
    }
}

#[test]
fn auto_parallelism_matches_oracle() {
    let (oracle, _) = run(|| mmul::build(16, Variant::HandPrefetch), Parallelism::Off);
    let (auto, sys) = run(|| mmul::build(16, Variant::HandPrefetch), Parallelism::Auto);
    mmul::verify(&sys, 16).expect("auto-parallel result wrong");
    assert_eq!(oracle, auto, "Auto diverged from the sequential oracle");
}
