//! # dta-workloads — the paper's benchmarks, hand-coded for DTA
//!
//! "All the benchmarks are hand-coded for the original DTA ...
//! Prefetching code blocks are added by hand following the principles
//! described in the previous sections" (paper §4.2). Each workload here
//! builds in three [`Variant`]s: the original-DTA baseline, the paper's
//! hand-written PF blocks, and the `dta-compiler` automatic
//! transformation.
//!
//! Paper benchmarks:
//!
//! * [`bitcnt`] — MiBench bit counting: fork-storm parallelism, frame
//!   traffic ≫ memory traffic, data-dependent table lookups that cannot
//!   be prefetched;
//! * [`mmul`] — matrix multiply: one worker per output row, `2n³` READs,
//!   fully decouplable;
//! * [`zoom`] — 4× image zoom with 2-tap interpolation: one worker per
//!   output row, 2 READs per output pixel, fully decouplable.
//!
//! Extra workloads for examples/ablations: [`vecscale`], [`stencil`],
//! [`colsum`], [`gather`].
//!
//! Every module exposes `build(...) -> WorkloadProgram`, a host-side
//! `expected(...)`, and `verify(&System, ...)` so results are always
//! checked, never eyeballed.

pub mod bitcnt;
pub mod colsum;
pub mod common;
pub mod gather;
pub mod mmul;
pub mod stencil;
pub mod vecscale;
pub mod zoom;

pub use common::{attach_fallbacks, synth_values, Variant, WorkloadProgram};
