//! `zoom(n)` — image zoom (paper §4.2).
//!
//! "Zoom is a program that zooms into one part of the input picture. It
//! is parallelized by sending different parts of the picture to different
//! PEs. ... Parts of the input image are prefetched in the threads that
//! are calculating the zoom."
//!
//! We zoom an n×n source 4× in each dimension to a 4n×4n output with
//! 2-tap horizontal interpolation: every output pixel reads its two
//! source neighbours, so the run issues `2·(4n)²` READs and `(4n)²`
//! WRITEs — the Table 5 shape (32 768 and 16 384 for n = 32).
//!
//! One worker per output row; the entry thread passes each worker the
//! *addresses* of its source row and destination row through the frame
//! (pointer-passing keeps the worker's addresses affine in its inputs, so
//! the auto-prefetch compiler can decouple them). The source image is
//! stored with one padding column (edge-replicated) so the right
//! neighbour load never needs a clamp.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Zoom factor (fixed, as in the paper's figures).
pub const FACTOR: usize = 4;

/// Source image, n rows × (n+1) columns (last column replicates column
/// n−1), 8-bit values.
pub fn input_image(n: usize) -> Vec<i32> {
    let vals = synth_values(0x200A, n * n);
    let mut img = vec![0i32; n * (n + 1)];
    for y in 0..n {
        for x in 0..n {
            img[y * (n + 1) + x] = vals[y * n + x] & 0xFF;
        }
        img[y * (n + 1) + n] = img[y * (n + 1) + n - 1];
    }
    img
}

/// Reference output computed on the host.
pub fn expected(n: usize) -> Vec<i32> {
    let src = input_image(n);
    let on = FACTOR * n;
    let mut out = vec![0i32; on * on];
    for y in 0..on {
        let yi = y / FACTOR;
        for xi in 0..n {
            let a = src[yi * (n + 1) + xi];
            let b = src[yi * (n + 1) + xi + 1];
            for f in 0..FACTOR {
                out[y * on + xi * FACTOR + f] =
                    (a * (FACTOR as i32 - f as i32) + b * f as i32) / FACTOR as i32;
            }
        }
    }
    out
}

/// Builds `zoom(n)`.
///
/// # Panics
///
/// If `n < 2` or `n` is not a power of two.
pub fn build(n: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        n.is_power_of_two() && n >= 2,
        "zoom needs a power-of-two n >= 2"
    );
    let src_stride = ((n + 1) * 4) as i32;
    let on = FACTOR * n;
    let out_stride = (on * 4) as i32;

    let mut pb = ProgramBuilder::new();
    let src = pb.global_words("SRC", &input_image(n));
    let out = pb.global_zeroed("OUT", on * on * 4);
    let main = pb.declare("main");
    let rowt = pb.declare("zoomrow");

    // ---- entry: one worker per output row --------------------------------
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0); // y
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), on as i32, done);
    // src row address: SRC + (y/4)*src_stride
    t.shr(r(4), r(3), 2);
    t.mul(r(4), r(4), src_stride);
    t.li(r(5), src as i64);
    t.add(r(5), r(5), r(4));
    // dst row address: OUT + y*out_stride
    t.mul(r(6), r(3), out_stride);
    t.li(r(7), out as i64);
    t.add(r(7), r(7), r(6));
    t.falloc(r(8), rowt, 2);
    t.store(r(5), r(8), 0);
    t.store(r(7), r(8), 1);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    // ---- row worker -------------------------------------------------------
    let mut w = ThreadBuilder::new("zoomrow");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        w.prefetch_bytes(((n + 1) * 4) as u32);
        w.load(r(3), 0); // src row
        w.dmaget(r(2), 0, r(3), 0, src_stride, 0);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0); // src row base
    w.load(r(4), 1); // dst row base
    w.begin_ex();
    if hand {
        w.mov(r(3), r(2)); // the row now lives in the local store
    }
    w.li(r(5), 0); // xi
    let xtop = w.label_here();
    let xdone = w.new_label();
    w.br(BrCond::Ge, r(5), n as i32, xdone);
    w.shl(r(6), r(5), 2);
    w.add(r(6), r(3), r(6)); // &src_row[xi]
    w.li(r(9), 0); // f
    let ftop = w.label_here();
    let fdone = w.new_label();
    w.br(BrCond::Ge, r(9), FACTOR as i32, fdone);
    if hand {
        w.lsload(r(7), r(6), 0); // a
        w.lsload(r(8), r(6), 4); // b
    } else {
        w.read(r(7), r(6), 0); // a
        w.read(r(8), r(6), 4); // b
    }
    // Independent work first (weights, output address) so the loads'
    // local-store latency is hidden before a/b are consumed.
    w.li(r(10), FACTOR as i64);
    w.sub(r(10), r(10), r(9));
    w.shl(r(12), r(5), 2);
    w.add(r(12), r(12), r(9));
    w.shl(r(12), r(12), 2);
    w.add(r(12), r(4), r(12)); // &out[xi*4 + f]
                               // pixel = (a*(4-f) + b*f) / 4
    w.mul(r(10), r(7), r(10));
    w.mul(r(11), r(8), r(9));
    w.add(r(10), r(10), r(11));
    w.shr(r(10), r(10), 2);
    w.write(r(10), r(12), 0);
    w.add(r(9), r(9), 1);
    w.jmp(ftop);
    w.bind(fdone);
    w.add(r(5), r(5), 1);
    w.jmp(xtop);
    w.bind(xdone);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(rowt, w);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("zoom({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    match variant {
        Variant::AutoPrefetch => wp.auto_prefetch(),
        Variant::HandPrefetch => {
            let base = build(n, Variant::Baseline);
            wp.with_fallbacks(&base.program)
        }
        Variant::Baseline => wp,
    }
}

/// Checks the simulated output against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (idx, &w) in want.iter().enumerate() {
        match sys.read_global_word("OUT", idx) {
            Some(got) if got == w => {}
            got => {
                return Err(format!(
                    "OUT[{}] = {:?}, expected {} (zoom({n}))",
                    idx, got, w
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, StallCat, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_compute_the_same_image() {
        let n = 4;
        for variant in Variant::ALL {
            let wp = build(n, variant);
            assert!(
                dta_isa::validate_program(&wp.program).is_empty(),
                "{variant:?} fails validation"
            );
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, n).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn baseline_counts_match_the_table5_shape() {
        let n = 4;
        let on = (FACTOR * n) as u64;
        let wp = build(n, Variant::Baseline);
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        assert_eq!(stats.aggregate.writes, on * on);
        assert_eq!(stats.aggregate.reads, 2 * on * on);
    }

    #[test]
    fn prefetch_removes_memory_stalls() {
        let n = 8;
        for variant in [Variant::HandPrefetch, Variant::AutoPrefetch] {
            let wp = build(n, variant);
            let (stats, sys) =
                simulate(SystemConfig::with_pes(8), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, n).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            assert_eq!(stats.aggregate.reads, 0, "{variant:?}");
            assert!(
                stats.breakdown().frac(StallCat::MemStall) < 0.05,
                "{variant:?} memstall {:.2}",
                stats.breakdown().frac(StallCat::MemStall)
            );
        }
    }

    #[test]
    fn edge_replication_pads_the_last_column() {
        let img = input_image(4);
        for y in 0..4 {
            assert_eq!(img[y * 5 + 4], img[y * 5 + 3]);
        }
    }
}
