//! `bitcnt(n)` — bit counting (paper §4.2, from MiBench).
//!
//! "bitcount ... counts bits for a certain number of iterations. Its
//! parallelization has been performed by unrolling both the main loop and
//! the loops inside each function. This benchmark is used in order to
//! test the scalability of the architecture. Global data that is used by
//! some of the functions is prefetched in the threads where it was
//! needed."
//!
//! The main loop is unrolled into **waves** of `WAVE` leaves × [`LEAF`]
//! samples. A wave thread forks its leaves plus a wave-join; every sample
//! gets its own `count` thread using one of four bit-counting methods —
//! two table-driven (MiBench's byte/nibble lookup tables in main memory)
//! and two register-only (Kernighan, SWAR); counts flow back up through
//! frames, and the wave-join spawns the next wave (a k-bounded unfolding:
//! a wave's whole subtree needs ~50 frames, so the program never
//! overruns a PE's physical frame pool — unbounded forking would deadlock
//! any frame-based dataflow machine, which is exactly why the paper's
//! §4.3 floats *virtual frame pointers*).
//!
//! The fork storm (~1.5 instances per sample) stresses the LSE/DSE and
//! the frame traffic dominates main-memory traffic — both Fig. 5
//! behaviours of the paper's bitcnt. Prefetching decouples only the
//! affine reads (each leaf's slice of the sample/weight arrays); the
//! table lookups stay, since their addresses are "not known before the
//! execution starts" (§4.3) — so bitcnt keeps residual memory stalls and
//! gains little, as in the paper.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder, ZERO_REG};

/// Samples per leaf thread.
pub const LEAF: usize = 4;
/// Leaves per wave.
pub const WAVE: usize = 8;
/// Samples per wave.
pub const WAVE_SAMPLES: usize = LEAF * WAVE;

/// The sample values whose bits are counted (padded entries are zero and
/// contribute nothing).
pub fn samples(n: usize) -> Vec<i32> {
    synth_values(0xB17C, n)
}

/// Per-sample weights (1..=3).
pub fn weights(n: usize) -> Vec<i32> {
    (0..n).map(|s| (s % 3 + 1) as i32).collect()
}

/// Reference result.
pub fn expected(n: usize) -> i64 {
    samples(n)
        .iter()
        .zip(weights(n))
        .map(|(&x, w)| (x as u32).count_ones() as i64 * w as i64)
        .sum()
}

/// Builds `bitcnt(n)`. `n` is padded up to a whole number of waves with
/// zero samples.
///
/// # Panics
///
/// If `n == 0`.
pub fn build(n: usize, variant: Variant) -> WorkloadProgram {
    assert!(n > 0, "bitcnt needs at least one sample");
    let padded = n.div_ceil(WAVE_SAMPLES) * WAVE_SAMPLES;

    let mut pb = ProgramBuilder::new();
    let mut sam = samples(n);
    sam.resize(padded, 0);
    let mut wts = weights(n);
    wts.resize(padded, 1);
    let t8: Vec<i32> = (0..256).map(|i: i32| i.count_ones() as i32).collect();
    let t16: Vec<i32> = (0..16).map(|i: i32| i.count_ones() as i32).collect();

    let sam_addr = pb.global_words("SAMPLES", &sam);
    let wts_addr = pb.global_words("WEIGHTS", &wts);
    let t8_addr = pb.global_words("T8", &t8);
    let t16_addr = pb.global_words("T16", &t16);
    pb.global_zeroed("TOTAL", 4);
    let total_addr = pb.global_addr("TOTAL").unwrap();

    let main = pb.declare("main");
    let finish = pb.declare("finish");
    let wave = pb.declare("wave");
    let wavejoin = pb.declare("wavejoin");
    let leaf = pb.declare("leaf");
    let leafjoin = pb.declare("leafjoin");
    let count = pb.declare("count");

    // wavejoin frame layout: slots 0..WAVE-1 = leaf results,
    // WAVE = running total, WAVE+1 = lo, WAVE+2 = finish frame.
    let wj_sc = (WAVE + 3) as u16;

    // ---- main -------------------------------------------------------------
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.falloc(r(3), finish, 1);
    t.falloc(r(4), wave, 3);
    t.begin_ps();
    t.store(ZERO_REG, r(4), 0); // lo = 0
    t.store(ZERO_REG, r(4), 1); // total = 0
    t.store(r(3), r(4), 2); // finish frame
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    // ---- finish ------------------------------------------------------------
    let mut t = ThreadBuilder::new("finish");
    t.begin_pl();
    t.load(r(3), 0);
    t.begin_ex();
    t.li(r(4), total_addr as i64);
    t.begin_ps();
    t.write(r(3), r(4), 0);
    t.ffree_self();
    t.stop();
    pb.define(finish, t);

    // ---- wave: fork WAVE leaves + the wave-join -----------------------------
    let mut t = ThreadBuilder::new("wave");
    t.begin_pl();
    t.load(r(3), 0); // lo
    t.load(r(4), 1); // running total
    t.load(r(5), 2); // finish frame
    t.begin_ex();
    t.falloc(r(6), wavejoin, wj_sc);
    t.store(r(4), r(6), WAVE as u16);
    t.store(r(3), r(6), (WAVE + 1) as u16);
    t.store(r(5), r(6), (WAVE + 2) as u16);
    for w in 0..WAVE {
        t.falloc(r(7), leaf, 3);
        t.add(r(8), r(3), (w * LEAF) as i32); // leaf lo
        t.store(r(8), r(7), 0);
        t.store(r(6), r(7), 1); // wave-join frame
        t.li(r(9), w as i64);
        t.store(r(9), r(7), 2); // result slot
    }
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(wave, t);

    // ---- wavejoin: sum the wave, then continue or finish ---------------------
    let mut t = ThreadBuilder::new("wavejoin");
    t.begin_pl();
    for w in 0..WAVE {
        t.load(r(3 + w as u8), w as u16);
    }
    t.load(r(12), WAVE as u16); // running total
    t.load(r(13), (WAVE + 1) as u16); // lo
    t.load(r(14), (WAVE + 2) as u16); // finish frame
    t.begin_ex();
    for w in 1..WAVE {
        t.add(r(3), r(3), r(3 + w as u8));
    }
    t.add(r(12), r(12), r(3)); // new total
    t.add(r(13), r(13), WAVE_SAMPLES as i32); // next lo
    let more = t.new_label();
    let done = t.new_label();
    t.br(BrCond::Lt, r(13), padded as i32, more);
    // All samples processed: deliver the total.
    t.store(r(12), r(14), 0);
    t.jmp(done);
    t.bind(more);
    t.falloc(r(15), wave, 3);
    t.store(r(13), r(15), 0);
    t.store(r(12), r(15), 1);
    t.store(r(14), r(15), 2);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(wavejoin, t);

    // ---- leaf: read LEAF samples+weights, fork count threads ------------------
    let mut t = ThreadBuilder::new("leaf");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        t.prefetch_bytes(2 * (LEAF as u32) * 4);
        t.load(r(3), 0); // lo
        t.shl(r(7), r(3), 2);
        t.li(r(8), sam_addr as i64);
        t.add(r(8), r(8), r(7));
        t.dmaget(r(2), 0, r(8), 0, (LEAF * 4) as i32, 0);
        t.li(r(9), wts_addr as i64);
        t.add(r(9), r(9), r(7));
        t.dmaget(r(2), (LEAF * 4) as i32, r(9), 0, (LEAF * 4) as i32, 1);
        t.dmayield();
    }
    t.begin_pl();
    t.load(r(3), 0); // lo
    t.load(r(4), 1); // wave-join frame
    t.load(r(5), 2); // result slot in the wave-join
    t.begin_ex();
    t.falloc(r(6), leafjoin, (LEAF + 2) as u16);
    t.store(r(4), r(6), LEAF as u16);
    t.store(r(5), r(6), (LEAF + 1) as u16);
    if !hand {
        t.shl(r(13), r(3), 2);
        t.li(r(14), sam_addr as i64);
        t.add(r(14), r(14), r(13));
        t.li(r(15), wts_addr as i64);
        t.add(r(15), r(15), r(13));
    }
    for j in 0..LEAF {
        let off = (j * 4) as i32;
        if hand {
            t.lsload(r(16), r(2), off);
            t.lsload(r(17), r(2), (LEAF * 4) as i32 + off);
        } else {
            t.read(r(16), r(14), off);
            t.read(r(17), r(15), off);
        }
        t.falloc(r(18), count, 4);
        t.store(r(16), r(18), 0); // x
        t.store(r(17), r(18), 1); // w
        t.store(r(6), r(18), 2); // leaf-join frame
        t.li(r(19), j as i64);
        t.store(r(19), r(18), 3); // slot (also selects the method)
    }
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(leaf, t);

    // ---- count: one sample's weighted popcount --------------------------------
    let mut t = ThreadBuilder::new("count");
    t.begin_pl();
    t.load(r(3), 0); // x
    t.load(r(4), 1); // w
    t.load(r(5), 2); // leaf-join frame
    t.load(r(6), 3); // slot / method selector
    t.begin_ex();
    t.li(r(20), 0xFFFF_FFFF);
    t.and(r(3), r(3), r(20)); // 32-bit pattern
    t.li(r(8), 0); // cnt
    t.alu(dta_isa::AluOp::And, r(7), r(6), 3);
    let m1 = t.new_label();
    let m2 = t.new_label();
    let m3 = t.new_label();
    let msum = t.new_label();
    t.br(BrCond::Eq, r(7), 1, m1);
    t.br(BrCond::Eq, r(7), 2, m2);
    t.br(BrCond::Eq, r(7), 3, m3);
    // method 0: byte-table lookups (4 data-dependent READs).
    {
        t.li(r(9), t8_addr as i64);
        for shift in [0, 8, 16, 24] {
            t.shr(r(10), r(3), shift);
            t.and(r(10), r(10), 0xFF);
            t.shl(r(10), r(10), 2);
            t.add(r(10), r(9), r(10));
            t.read(r(11), r(10), 0);
            t.add(r(8), r(8), r(11));
        }
        t.jmp(msum);
    }
    // method 1: nibble-table lookups (8 data-dependent READs).
    t.bind(m1);
    {
        t.li(r(9), t16_addr as i64);
        for shift in [0, 4, 8, 12, 16, 20, 24, 28] {
            t.shr(r(10), r(3), shift);
            t.and(r(10), r(10), 0xF);
            t.shl(r(10), r(10), 2);
            t.add(r(10), r(9), r(10));
            t.read(r(11), r(10), 0);
            t.add(r(8), r(8), r(11));
        }
        t.jmp(msum);
    }
    // method 2: Kernighan's clear-lowest-set-bit loop.
    t.bind(m2);
    {
        let top = t.label_here();
        let done = t.new_label();
        t.br(BrCond::Eq, r(3), 0, done);
        t.sub(r(10), r(3), 1);
        t.and(r(3), r(3), r(10));
        t.add(r(8), r(8), 1);
        t.jmp(top);
        t.bind(done);
        t.jmp(msum);
    }
    // method 3: SWAR parallel popcount.
    t.bind(m3);
    {
        t.shr(r(10), r(3), 1);
        t.and(r(10), r(10), 0x5555_5555);
        t.sub(r(10), r(3), r(10));
        t.and(r(11), r(10), 0x3333_3333);
        t.shr(r(10), r(10), 2);
        t.and(r(10), r(10), 0x3333_3333);
        t.add(r(10), r(10), r(11));
        t.shr(r(11), r(10), 4);
        t.add(r(10), r(10), r(11));
        t.and(r(10), r(10), 0x0F0F_0F0F);
        t.mul(r(10), r(10), 0x0101_0101);
        t.shr(r(10), r(10), 24);
        t.and(r(8), r(10), 0xFF);
    }
    t.bind(msum);
    t.mul(r(8), r(8), r(4)); // weighted
    t.begin_ps();
    // Store into leaf-join slot r6 (0..LEAF-1); slot operands are
    // immediates, so select by branching.
    let send = t.new_label();
    for j in 0..LEAF as i32 {
        let next = t.new_label();
        if j < LEAF as i32 - 1 {
            t.br(BrCond::Ne, r(6), j, next);
        }
        t.store(r(8), r(5), j as u16);
        if j < LEAF as i32 - 1 {
            t.jmp(send);
        }
        t.bind(next);
    }
    t.bind(send);
    t.ffree_self();
    t.stop();
    pb.define(count, t);

    // ---- leafjoin: sum LEAF counts, store to the wave-join ---------------------
    let mut t = ThreadBuilder::new("leafjoin");
    t.begin_pl();
    for j in 0..LEAF {
        t.load(r(3 + j as u8), j as u16);
    }
    t.load(r(10), LEAF as u16); // wave-join frame
    t.load(r(11), (LEAF + 1) as u16); // wave-join slot (0..WAVE-1)
    t.begin_ex();
    t.add(r(12), r(3), r(4));
    t.add(r(12), r(12), r(5));
    t.add(r(12), r(12), r(6));
    t.begin_ps();
    let out = t.new_label();
    for w in 0..WAVE as i32 {
        let next = t.new_label();
        if w < WAVE as i32 - 1 {
            t.br(BrCond::Ne, r(11), w, next);
        }
        t.store(r(12), r(10), w as u16);
        if w < WAVE as i32 - 1 {
            t.jmp(out);
        }
        t.bind(next);
    }
    t.bind(out);
    t.ffree_self();
    t.stop();
    pb.define(leafjoin, t);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("bitcnt({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    match variant {
        Variant::AutoPrefetch => wp.auto_prefetch(),
        Variant::HandPrefetch => {
            let base = build(n, Variant::Baseline);
            wp.with_fallbacks(&base.program)
        }
        Variant::Baseline => wp,
    }
}

/// Checks the simulated total against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n) as i32;
    match sys.read_global_word("TOTAL", 0) {
        Some(got) if got == want => Ok(()),
        got => Err(format!("TOTAL = {got:?}, expected {want} (bitcnt({n}))")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, StallCat, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_count_correctly() {
        let n = 40; // deliberately not a wave multiple: exercises padding
        for variant in Variant::ALL {
            let wp = build(n, variant);
            assert!(
                dta_isa::validate_program(&wp.program).is_empty(),
                "{variant:?} fails validation"
            );
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, n).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn bounded_waves_survive_a_single_pe() {
        // The k-bounded unfolding must not exhaust one PE's frame pool.
        let wp = build(256, Variant::Baseline);
        let (stats, sys) =
            simulate(SystemConfig::with_pes(1), Arc::new(wp.program), &wp.args).unwrap();
        verify(&sys, 256).unwrap();
        assert!(stats.instances > 300);
    }

    #[test]
    fn frame_traffic_dominates_memory_traffic() {
        // The Table 5 bitcnt shape: LOAD/STORE >> READ, WRITE tiny.
        let wp = build(128, Variant::Baseline);
        let (stats, _) =
            simulate(SystemConfig::with_pes(8), Arc::new(wp.program), &wp.args).unwrap();
        let frame = stats.aggregate.loads + stats.aggregate.stores;
        assert!(
            frame > stats.aggregate.reads,
            "frame {} vs reads {}",
            frame,
            stats.aggregate.reads
        );
        assert!(stats.aggregate.writes < 10); // only the final total
        assert!(stats.instances > 128); // fork storm
    }

    #[test]
    fn prefetch_leaves_table_lookups_in_place() {
        let n = 128;
        let base = build(n, Variant::Baseline);
        let auto = build(n, Variant::AutoPrefetch);
        let report = auto.compiler_report.as_ref().unwrap();
        let leaf = report.threads.iter().find(|t| t.name == "leaf").unwrap();
        // The 8 leaf reads decouple into 2 coalesced regions.
        assert_eq!(leaf.decoupled, 8);
        assert_eq!(leaf.regions, 2);
        let count = report.threads.iter().find(|t| t.name == "count").unwrap();
        // Table lookups are data-dependent: nothing decoupled.
        assert_eq!(count.decoupled, 0);
        assert_eq!(count.reads, 12);

        let cfg = SystemConfig::with_pes(8);
        let (sb, _) = simulate(cfg.clone(), Arc::new(base.program), &base.args).unwrap();
        let (sa, sys) = simulate(cfg, Arc::new(auto.program), &auto.args).unwrap();
        verify(&sys, n).unwrap();
        // Sample/weight reads gone, table reads remain.
        assert!(sa.aggregate.reads > 0);
        assert!(sa.aggregate.reads < sb.aggregate.reads);
        // Residual memory stalls remain (the paper's bitcnt keeps 26%).
        assert!(sa.breakdown().frac(StallCat::MemStall) > 0.02);
    }

    #[test]
    fn expected_matches_a_naive_popcount() {
        assert_eq!(
            expected(8),
            samples(8)
                .iter()
                .zip(weights(8))
                .map(|(&x, w)| (x as u32).count_ones() as i64 * w as i64)
                .sum::<i64>()
        );
    }
}
