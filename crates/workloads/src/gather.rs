//! `gather(n)` — data-dependent sparse gather-sum.
//!
//! Not a paper benchmark; it is the stress shape for the event-driven
//! fast-forward scheduler. A handful of worker threads each walk a slice
//! of an index array and sum `D[IDX[i]]`: every element costs a
//! main-memory round-trip whose address is only known after the index
//! arrives, so the baseline variant spends almost all of its cycles
//! blocked in decoupled READs while most PEs sit idle. A dense engine
//! ticks every PE through all of that dead time; fast-forward skips it.
//! The hand variant DMAs each index slice into the local store up front
//! (the data reads stay irreducibly indirect), halving the round-trips —
//! the paper's PF discipline applied to the part of the pattern DMA can
//! reach.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Worker-thread count: deliberately fewer than the paper machine's PEs
/// so the idle-PE skip is visible on the default topology.
pub const WORKERS: usize = 4;

/// Index array: n pseudo-random indices into `D` (n is a power of two,
/// so masking keeps them in range).
pub fn indices(n: usize) -> Vec<i32> {
    synth_values(0x6A7E2, n)
        .into_iter()
        .map(|v| v & (n as i32 - 1))
        .collect()
}

/// Data array (small positive values so per-worker sums fit an i32).
pub fn input(n: usize) -> Vec<i32> {
    synth_values(0xDA7A1, n)
        .into_iter()
        .map(|v| v & 0x7FFF)
        .collect()
}

/// Reference per-worker sums.
pub fn expected(n: usize) -> Vec<i32> {
    let (idx, d) = (indices(n), input(n));
    let chunk = n / WORKERS;
    (0..WORKERS)
        .map(|w| {
            idx[w * chunk..(w + 1) * chunk]
                .iter()
                .map(|&i| d[i as usize])
                .sum()
        })
        .collect()
}

/// Builds `gather(n)`.
///
/// # Panics
///
/// If `n` is not a power of two at least `2 * WORKERS`.
pub fn build(n: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        n.is_power_of_two() && n >= 2 * WORKERS,
        "gather needs a power-of-two n >= {}",
        2 * WORKERS
    );
    let chunk = n / WORKERS;

    let mut pb = ProgramBuilder::new();
    let idx = pb.global_words("IDX", &indices(n));
    let data = pb.global_words("D", &input(n));
    let out = pb.global_zeroed("S", WORKERS * 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), WORKERS as i32, done);
    t.falloc(r(4), worker, 1);
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        // PF block: pull this worker's index slice into the local store.
        // The data reads cannot be prefetched — each address depends on
        // the index value — so they stay decoupled READs in EX.
        w.prefetch_bytes((chunk * 4) as u32);
        w.load(r(3), 0); // worker id
        w.mul(r(4), r(3), (chunk * 4) as i32);
        w.li(r(5), idx as i64);
        w.add(r(5), r(5), r(4)); // &IDX[w * chunk]
        w.dmaget(r(2), 0, r(5), 0, (chunk * 4) as i32, 0);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0); // worker id
    w.begin_ex();
    w.li(r(7), 0); // i
    w.li(r(8), 0); // sum
    if !hand {
        w.mul(r(4), r(3), (chunk * 4) as i32);
        w.li(r(5), idx as i64);
        w.add(r(5), r(5), r(4)); // &IDX[w * chunk]
    }
    w.li(r(6), data as i64);
    let wtop = w.label_here();
    let wdone = w.new_label();
    w.br(BrCond::Ge, r(7), chunk as i32, wdone);
    w.shl(r(9), r(7), 2);
    if hand {
        // Index slice sits packed at the prefetch base r2.
        w.add(r(9), r(2), r(9));
        w.lsload(r(10), r(9), 0); // idx
    } else {
        w.add(r(9), r(5), r(9));
        w.read(r(10), r(9), 0); // idx (remote round-trip #1)
    }
    w.shl(r(10), r(10), 2);
    w.add(r(10), r(6), r(10)); // &D[idx]
    w.read(r(11), r(10), 0); // datum (irreducibly indirect)
    w.add(r(8), r(8), r(11));
    w.add(r(7), r(7), 1);
    w.jmp(wtop);
    w.bind(wdone);
    w.begin_ps();
    w.shl(r(11), r(3), 2);
    w.li(r(12), out as i64);
    w.add(r(12), r(12), r(11));
    w.write(r(8), r(12), 0);
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("gather({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    if variant == Variant::AutoPrefetch {
        wp.auto_prefetch()
    } else {
        wp
    }
}

/// Checks the simulated per-worker sums against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (w, &v) in want.iter().enumerate() {
        match sys.read_global_word("S", w) {
            Some(got) if got == v => {}
            got => return Err(format!("S[{w}] = {got:?}, expected {v}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_gather_correctly() {
        for variant in Variant::ALL {
            let wp = build(64, variant);
            assert!(
                dta_isa::validate_program(&wp.program).is_empty(),
                "{variant:?} invalid"
            );
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, 64).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn baseline_is_read_dominated() {
        let wp = build(64, Variant::Baseline);
        let (stats, sys) = simulate(
            SystemConfig::paper_default(),
            Arc::new(wp.program),
            &wp.args,
        )
        .unwrap();
        verify(&sys, 64).unwrap();
        // Two remote reads per element: the index and the datum.
        assert_eq!(stats.aggregate.reads, 2 * 64);
        // The hand variant halves the remote reads (index slice via DMA).
        let wp = build(64, Variant::HandPrefetch);
        let (pf, sys) = simulate(
            SystemConfig::paper_default(),
            Arc::new(wp.program),
            &wp.args,
        )
        .unwrap();
        verify(&sys, 64).unwrap();
        assert_eq!(pf.aggregate.reads, 64);
        assert!(pf.cycles < stats.cycles, "prefetch must help");
    }
}
