//! `mmul(n)` — matrix multiply (paper §4.2).
//!
//! "Matrix multiply is a program that multiplies two matrices. Threads
//! that run in parallel are calculating parts of the output matrix. The
//! number of threads is always a power of two. ... Prefetching of the
//! parts of the input matrices is performed in the threads that are
//! calculating the output matrix."
//!
//! Structure: the entry thread forks one worker per output row; worker
//! `i` computes row `i` of `C = A × B` with the classic j/k loop nest.
//! Per worker the baseline issues `2n²` READs (A-row elements re-read per
//! column, B in full), so the whole run issues `2n³` READs and `n²`
//! WRITEs — the Table 5 shape (65 536 and 1 024 for n = 32).
//!
//! The hand-prefetch variant DMAs the worker's A row and the whole B
//! matrix into the local store in its PF block, exactly as the paper's
//! authors hand-coded; the auto variant lets `dta-compiler` discover the
//! same two regions.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Element mask keeping products comfortably inside 32 bits.
const ELEM_MASK: i32 = 0xFFF;

/// Deterministic input matrix A (row-major, n×n).
pub fn input_a(n: usize) -> Vec<i32> {
    synth_values(0xA11CE, n * n)
        .into_iter()
        .map(|v| v & ELEM_MASK)
        .collect()
}

/// Deterministic input matrix B (row-major, n×n).
pub fn input_b(n: usize) -> Vec<i32> {
    synth_values(0xB0B, n * n)
        .into_iter()
        .map(|v| v & ELEM_MASK)
        .collect()
}

/// Reference result computed on the host.
pub fn expected(n: usize) -> Vec<i32> {
    let a = input_a(n);
    let b = input_b(n);
    let mut c = vec![0i32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += a[i * n + k] as i64 * b[k * n + j] as i64;
            }
            c[i * n + j] = acc as i32;
        }
    }
    c
}

/// Builds `mmul(n)`.
///
/// # Panics
///
/// If `n` is not a power of two (the paper's constraint) or `n < 2`.
pub fn build(n: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        n.is_power_of_two() && n >= 2,
        "mmul needs a power-of-two n >= 2"
    );
    let nb = (n * 4) as i32; // row bytes

    let mut pb = ProgramBuilder::new();
    let a = pb.global_words("A", &input_a(n));
    let b = pb.global_words("B", &input_b(n));
    let c = pb.global_zeroed("C", n * n * 4);
    let main = pb.declare("main");
    let row = pb.declare("row");

    // ---- entry: fork one worker per row ---------------------------------
    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), n as i32, done);
    t.falloc(r(4), row, 1);
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    // ---- row worker ------------------------------------------------------
    let mut w = ThreadBuilder::new("row");
    let hand = variant == Variant::HandPrefetch;
    // LS layout for the hand variant: [0, nb) = A row; [arow_pad, +n*nb) = B.
    let arow_pad = ((n * 4).div_ceil(16) * 16) as i32;

    if hand {
        w.prefetch_bytes((arow_pad as usize + n * n * 4) as u32);
        // PF: fetch A row i and all of B.
        w.load(r(3), 0); // i
        w.mul(r(4), r(3), nb);
        w.li(r(5), a as i64);
        w.add(r(5), r(5), r(4)); // &A[i][0]
        w.dmaget(r(2), 0, r(5), 0, nb, 0);
        w.li(r(6), b as i64);
        w.dmaget(r(2), arow_pad, r(6), 0, (n * n * 4) as i32, 1);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0); // i
    w.begin_ex();
    w.mul(r(4), r(3), nb); // row byte offset
    if hand {
        // Bases point into the local store.
        w.mov(r(5), r(2)); // A row (LS)
        w.add(r(6), r(2), arow_pad); // B (LS)
    } else {
        w.li(r(5), a as i64);
        w.add(r(5), r(5), r(4)); // &A[i][0] (main memory)
        w.li(r(6), b as i64); // B (main memory)
    }
    w.li(r(7), c as i64);
    w.add(r(7), r(7), r(4)); // &C[i][0]

    w.li(r(8), 0); // j
    let jtop = w.label_here();
    let jdone = w.new_label();
    w.br(BrCond::Ge, r(8), n as i32, jdone);
    w.shl(r(14), r(8), 2); // j*4, loop-invariant in k
    w.li(r(9), 0); // k
    w.li(r(10), 0); // acc
                    // The k-loop is unrolled by two with the loads scheduled ahead of
                    // their uses, as the paper's hand-unrolled SPU kernels would be —
                    // this is what keeps local-store latency hidden ("LS stalls ...
                    // mostly overlapped with the execution", §4.3).
    let ktop = w.label_here();
    let kdone = w.new_label();
    w.br(BrCond::Ge, r(9), n as i32, kdone);
    w.shl(r(11), r(9), 2);
    w.add(r(11), r(5), r(11)); // &A[i][k]
    w.mul(r(13), r(9), nb);
    w.add(r(13), r(13), r(14));
    w.add(r(13), r(6), r(13)); // &B[k][j]
    if hand {
        w.lsload(r(16), r(11), 0);
        w.lsload(r(17), r(11), 4);
        w.lsload(r(18), r(13), 0);
        w.lsload(r(19), r(13), nb);
    } else {
        w.read(r(16), r(11), 0);
        w.read(r(17), r(11), 4);
        w.read(r(18), r(13), 0);
        w.read(r(19), r(13), nb);
    }
    w.add(r(9), r(9), 2); // bookkeeping overlaps the loads in flight
    w.mul(r(20), r(16), r(18));
    w.add(r(10), r(10), r(20));
    w.mul(r(21), r(17), r(19));
    w.add(r(10), r(10), r(21));
    w.jmp(ktop);
    w.bind(kdone);
    // C[i][j] = acc
    w.shl(r(17), r(8), 2);
    w.add(r(17), r(7), r(17));
    w.write(r(10), r(17), 0);
    w.add(r(8), r(8), 1);
    w.jmp(jtop);
    w.bind(jdone);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(row, w);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("mmul({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    match variant {
        Variant::AutoPrefetch => wp.auto_prefetch(),
        Variant::HandPrefetch => {
            let base = build(n, Variant::Baseline);
            wp.with_fallbacks(&base.program)
        }
        Variant::Baseline => wp,
    }
}

/// Checks the simulated result against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (idx, &w) in want.iter().enumerate() {
        match sys.read_global_word("C", idx) {
            Some(got) if got == w => {}
            got => {
                return Err(format!(
                    "C[{}] = {:?}, expected {} (mmul({n}))",
                    idx, got, w
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, StallCat, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_compute_the_same_product() {
        let n = 8;
        for variant in Variant::ALL {
            let wp = build(n, variant);
            assert!(
                dta_isa::validate_program(&wp.program).is_empty(),
                "{variant:?} fails validation"
            );
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, n).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn baseline_read_counts_match_the_table5_shape() {
        let n = 8;
        let wp = build(n, Variant::Baseline);
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        assert_eq!(stats.aggregate.reads, 2 * (n * n * n) as u64);
        assert_eq!(stats.aggregate.writes, (n * n) as u64);
    }

    #[test]
    fn prefetch_variants_eliminate_reads_and_memory_stalls() {
        let n = 8;
        for variant in [Variant::HandPrefetch, Variant::AutoPrefetch] {
            let wp = build(n, variant);
            let (stats, _) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            assert_eq!(stats.aggregate.reads, 0, "{variant:?} left READs behind");
            assert!(
                stats.breakdown().frac(StallCat::MemStall) < 0.05,
                "{variant:?} memstall {:.2}",
                stats.breakdown().frac(StallCat::MemStall)
            );
            assert!(stats.dma_commands >= n as u64); // >=1 per row worker
        }
    }

    #[test]
    fn auto_compiler_decouples_every_read_site() {
        // The unrolled k-loop has four read sites: two A-row walks and
        // two B walks; all four decouple.
        let wp = build(8, Variant::AutoPrefetch);
        let report = wp.compiler_report.expect("auto variant has a report");
        let row = report
            .threads
            .iter()
            .find(|t| t.name == "row")
            .expect("row worker");
        assert_eq!(row.reads, 4);
        assert_eq!(row.decoupled, 4);
        assert_eq!(row.regions, 4);
        assert!(row.skipped_reads.is_empty());
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_rejected() {
        build(12, Variant::Baseline);
    }
}
