//! `colsum(n)` — per-column sums of an n×n matrix.
//!
//! Not a paper benchmark; its access pattern (each worker walks one
//! *column*, stride `4n`) is the canonical strided gather, so it drives
//! the packed strided-DMA path and the split-transaction hardware
//! ablation (paper §3: "in case where thread accesses array with a
//! certain stride between elements it could generate too many
//! transactions [with a split-transaction network] (and DMA performs it
//! in one transaction)").

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_compiler::{PlanOptions, TransformOptions};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Input matrix (row-major, n×n, small values).
pub fn input(n: usize) -> Vec<i32> {
    synth_values(0xC0153, n * n)
        .into_iter()
        .map(|v| v & 0xFFFF)
        .collect()
}

/// Reference column sums.
pub fn expected(n: usize) -> Vec<i32> {
    let m = input(n);
    (0..n).map(|j| (0..n).map(|i| m[i * n + j]).sum()).collect()
}

/// Builds `colsum(n)`. The auto variant uses a buffer cap that forces the
/// packed strided-gather path (one DMA transaction per column).
///
/// # Panics
///
/// If `n` is not a power of two (keeps the stride a power of two).
pub fn build(n: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        n.is_power_of_two() && n >= 2,
        "colsum needs a power-of-two n"
    );
    let stride = (n * 4) as i32;

    let mut pb = ProgramBuilder::new();
    let mat = pb.global_words("M", &input(n));
    let out = pb.global_zeroed("S", n * 4);
    let main = pb.declare("main");
    let col = pb.declare("col");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), n as i32, done);
    t.falloc(r(4), col, 1);
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("col");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        w.prefetch_bytes((n * 4) as u32);
        w.load(r(3), 0); // j
        w.shl(r(4), r(3), 2);
        w.li(r(5), mat as i64);
        w.add(r(5), r(5), r(4)); // &M[0][j]
        w.dmagets(r(2), 0, r(5), 0, 4, n as i32, stride, 0);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0); // column j
    w.begin_ex();
    w.li(r(7), 0); // i
    w.li(r(8), 0); // sum
    if hand {
        // Packed column in the prefetch buffer: element i at r2 + i*4.
        let top = w.label_here();
        let done = w.new_label();
        w.br(BrCond::Ge, r(7), n as i32, done);
        w.shl(r(9), r(7), 2);
        w.add(r(9), r(2), r(9));
        w.lsload(r(10), r(9), 0);
        w.add(r(8), r(8), r(10));
        w.add(r(7), r(7), 1);
        w.jmp(top);
        w.bind(done);
    } else {
        w.shl(r(4), r(3), 2);
        w.li(r(5), mat as i64);
        w.add(r(5), r(5), r(4)); // &M[0][j]
        let top = w.label_here();
        let done = w.new_label();
        w.br(BrCond::Ge, r(7), n as i32, done);
        w.mul(r(9), r(7), stride);
        w.add(r(9), r(5), r(9));
        w.read(r(10), r(9), 0);
        w.add(r(8), r(8), r(10));
        w.add(r(7), r(7), 1);
        w.jmp(top);
        w.bind(done);
    }
    w.begin_ps();
    w.shl(r(11), r(3), 2);
    w.li(r(12), out as i64);
    w.add(r(12), r(12), r(11));
    w.write(r(8), r(12), 0);
    w.ffree_self();
    w.stop();
    pb.define(col, w);

    pb.set_entry(main, 0);
    let mut wp = WorkloadProgram {
        name: format!("colsum({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    if variant == Variant::AutoPrefetch {
        // Cap below the column bounding box so the planner picks the
        // packed strided gather.
        let opts = TransformOptions {
            plan: PlanOptions {
                max_region_bytes: (n * 8) as u32,
                ..PlanOptions::default()
            },
        };
        let (p, report) = dta_compiler::prefetch_program(&wp.program, &opts);
        wp.program = p;
        wp.compiler_report = Some(report);
    }
    wp
}

/// Checks the simulated sums against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (idx, &w) in want.iter().enumerate() {
        match sys.read_global_word("S", idx) {
            Some(got) if got == w => {}
            got => return Err(format!("S[{idx}] = {got:?}, expected {w}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_sum_columns_correctly() {
        for variant in Variant::ALL {
            let wp = build(16, variant);
            assert!(
                dta_isa::validate_program(&wp.program).is_empty(),
                "{variant:?} invalid"
            );
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, 16).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn auto_variant_uses_strided_gather() {
        let wp = build(16, Variant::AutoPrefetch);
        assert!(wp.program.threads.iter().any(|t| t
            .code
            .iter()
            .any(|i| matches!(i, dta_isa::Instr::DmaGetStrided { .. }))));
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        assert_eq!(stats.aggregate.reads, 0);
    }

    #[test]
    fn split_transactions_slow_the_prefetch_variant() {
        let wp = || build(32, Variant::HandPrefetch);
        let fast = SystemConfig::with_pes(4);
        let mut slow = SystemConfig::with_pes(4);
        slow.dma_split_transactions = true;
        let a = simulate(fast, Arc::new(wp().program), &[]).unwrap().0;
        let b = simulate(slow, Arc::new(wp().program), &[]).unwrap().0;
        assert!(
            b.cycles > a.cycles,
            "split {} should exceed single-transaction {}",
            b.cycles,
            a.cycles
        );
    }
}
