//! `vecscale(n, chunks)` — parallel vector scaling.
//!
//! Not a paper benchmark; a simple streaming kernel used by the examples
//! and the hardware-ablation benches: `dst[i] = src[i] * 3`, split into
//! `chunks` worker threads. Its every read is affine, so prefetching
//! decouples 100% of the memory traffic — a clean best-case counterpart
//! to bitcnt's worst case.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Scale factor applied to every element.
pub const SCALE: i32 = 3;

/// Deterministic input vector.
pub fn input(n: usize) -> Vec<i32> {
    synth_values(0x5CA1E, n)
        .into_iter()
        .map(|v| v >> 8)
        .collect()
}

/// Reference output.
pub fn expected(n: usize) -> Vec<i32> {
    input(n)
        .into_iter()
        .map(|v| v.wrapping_mul(SCALE))
        .collect()
}

/// Builds `vecscale(n)` split into `chunks` workers.
///
/// # Panics
///
/// If `chunks` does not divide `n`.
pub fn build(n: usize, chunks: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        chunks > 0 && n.is_multiple_of(chunks),
        "chunks must divide n"
    );
    let chunk = n / chunks;
    let chunk_bytes = (chunk * 4) as i32;

    let mut pb = ProgramBuilder::new();
    let src = pb.global_words("src", &input(n));
    let dst = pb.global_zeroed("dst", n * 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), chunks as i32, done);
    t.falloc(r(4), worker, 1);
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    let mut w = ThreadBuilder::new("worker");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        w.prefetch_bytes(chunk_bytes as u32);
        w.load(r(3), 0);
        w.mul(r(4), r(3), chunk_bytes);
        w.li(r(5), src as i64);
        w.add(r(5), r(5), r(4));
        w.dmaget(r(2), 0, r(5), 0, chunk_bytes, 0);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0); // chunk index
    w.begin_ex();
    w.mul(r(4), r(3), chunk_bytes);
    if hand {
        w.mov(r(5), r(2));
    } else {
        w.li(r(5), src as i64);
        w.add(r(5), r(5), r(4));
    }
    w.li(r(6), dst as i64);
    w.add(r(6), r(6), r(4));
    w.li(r(7), 0);
    let top = w.label_here();
    let done = w.new_label();
    w.br(BrCond::Ge, r(7), chunk as i32, done);
    w.shl(r(8), r(7), 2);
    w.add(r(9), r(5), r(8));
    if hand {
        w.lsload(r(10), r(9), 0);
    } else {
        w.read(r(10), r(9), 0);
    }
    w.mul(r(10), r(10), SCALE);
    w.add(r(11), r(6), r(8));
    w.write(r(10), r(11), 0);
    w.add(r(7), r(7), 1);
    w.jmp(top);
    w.bind(done);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("vecscale({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    match variant {
        Variant::AutoPrefetch => wp.auto_prefetch(),
        _ => wp,
    }
}

/// Checks the simulated output against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (idx, &w) in want.iter().enumerate() {
        match sys.read_global_word("dst", idx) {
            Some(got) if got == w => {}
            got => return Err(format!("dst[{idx}] = {got:?}, expected {w}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_scale_correctly() {
        for variant in Variant::ALL {
            let wp = build(128, 4, variant);
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, 128).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn auto_prefetch_decouples_everything() {
        let wp = build(128, 4, Variant::AutoPrefetch);
        let report = wp.compiler_report.as_ref().unwrap();
        assert!((report.decoupled_fraction() - 1.0).abs() < 1e-9);
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        assert_eq!(stats.aggregate.reads, 0);
    }

    #[test]
    #[should_panic(expected = "divide")]
    fn bad_chunking_rejected() {
        build(100, 3, Variant::Baseline);
    }
}
