//! Shared workload plumbing.

use dta_compiler::{prefetch_program, ProgramReport, TransformOptions};
use dta_isa::{Program, ThreadId};

/// Which code version of a benchmark to build (paper §4.2: benchmarks are
/// "hand-coded for the original DTA", then "prefetching code blocks are
/// added by hand"; our compiler automates the latter).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Original DTA: main-memory READs inside the EX blocks.
    Baseline,
    /// PF blocks written by hand, as in the paper.
    HandPrefetch,
    /// PF blocks inserted by `dta-compiler`.
    AutoPrefetch,
}

impl Variant {
    /// All variants.
    pub const ALL: [Variant; 3] = [
        Variant::Baseline,
        Variant::HandPrefetch,
        Variant::AutoPrefetch,
    ];

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::HandPrefetch => "prefetch-hand",
            Variant::AutoPrefetch => "prefetch-auto",
        }
    }

    /// Does this variant prefetch?
    pub fn prefetches(self) -> bool {
        !matches!(self, Variant::Baseline)
    }
}

/// A benchmark instance ready to simulate.
pub struct WorkloadProgram {
    /// Display name, e.g. `mmul(32)`.
    pub name: String,
    /// The program.
    pub program: Program,
    /// Host arguments for the entry thread.
    pub args: Vec<i64>,
    /// Compiler report when the variant is [`Variant::AutoPrefetch`].
    pub compiler_report: Option<ProgramReport>,
}

impl WorkloadProgram {
    /// Applies the automatic prefetch compiler to a baseline program.
    pub fn auto_prefetch(mut self) -> Self {
        let (p, report) = prefetch_program(&self.program, &TransformOptions::default());
        self.program = p;
        self.compiler_report = Some(report);
        self
    }

    /// Links each prefetching thread to a PF-free twin taken from
    /// `baseline` (see [`attach_fallbacks`]).
    pub fn with_fallbacks(mut self, baseline: &Program) -> Self {
        attach_fallbacks(&mut self.program, baseline);
        self
    }
}

/// Appends PF-free twins from `baseline` for every prefetching thread of
/// `program` and links them via `ThreadCode::fallback`, so a PE whose DMA
/// engine has been declared unusable can fall back to baseline blocking
/// READs and still produce correct results.
///
/// Threads are matched by name, and a twin is only attached when its shape
/// is legal as a fallback (same frame inputs, no PF block, not itself
/// chained), so the result always validates. Returns the number of links
/// made.
pub fn attach_fallbacks(program: &mut Program, baseline: &Program) -> usize {
    let mut linked = 0;
    for i in 0..program.threads.len() {
        let t = &program.threads[i];
        if t.fallback.is_some() || (t.blocks.pf_end == 0 && t.prefetch_bytes == 0) {
            continue;
        }
        let Some(twin) = baseline.threads.iter().find(|b| b.name == t.name) else {
            continue;
        };
        if twin.frame_slots != t.frame_slots
            || twin.blocks.pf_end != 0
            || twin.prefetch_bytes != 0
            || twin.fallback.is_some()
        {
            continue;
        }
        let mut twin = twin.clone();
        twin.name = format!("{}__nopf", twin.name);
        let id = ThreadId(program.threads.len() as u32);
        program.threads.push(twin);
        program.threads[i].fallback = Some(id);
        linked += 1;
    }
    linked
}

/// Deterministic pseudo-random 32-bit values for workload inputs
/// (xorshift; seeds are fixed per workload so runs are reproducible).
pub fn synth_values(seed: u32, n: usize) -> Vec<i32> {
    let mut x = seed | 1;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            x as i32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_values_are_deterministic_and_seed_dependent() {
        let a = synth_values(7, 16);
        let b = synth_values(7, 16);
        let c = synth_values(8, 16);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn variant_labels_unique() {
        let mut labels: Vec<_> = Variant::ALL.iter().map(|v| v.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3);
        assert!(!Variant::Baseline.prefetches());
        assert!(Variant::HandPrefetch.prefetches());
    }
}
