//! `stencil(n)` — 1-D 3-point stencil.
//!
//! Not a paper benchmark; included as a halo-exchange-shaped workload for
//! examples, tests, and the ablation benches:
//! `out[i] = in[i-1] + 2*in[i] + in[i+1]` over an edge-padded vector,
//! chunked across workers. Each worker's three read streams share one
//! bounding box (its chunk plus a one-element halo on each side), so the
//! prefetch compiler emits a single region per worker.

use crate::common::{synth_values, Variant, WorkloadProgram};
use dta_core::GlobalRead;
use dta_isa::{reg::r, BrCond, ProgramBuilder, ThreadBuilder};

/// Padded input: `n + 2` words, `in[0]` and `in[n+1]` are the edge
/// values.
pub fn input(n: usize) -> Vec<i32> {
    let core: Vec<i32> = synth_values(0x57E4C, n)
        .into_iter()
        .map(|v| v & 0xFFFF)
        .collect();
    let mut v = Vec::with_capacity(n + 2);
    v.push(core[0]);
    v.extend_from_slice(&core);
    v.push(core[n - 1]);
    v
}

/// Reference output (n words).
pub fn expected(n: usize) -> Vec<i32> {
    let p = input(n);
    (0..n).map(|i| p[i] + 2 * p[i + 1] + p[i + 2]).collect()
}

/// Builds `stencil(n)` split into `chunks` workers.
///
/// # Panics
///
/// If `chunks` does not divide `n`.
pub fn build(n: usize, chunks: usize, variant: Variant) -> WorkloadProgram {
    assert!(
        chunks > 0 && n.is_multiple_of(chunks),
        "chunks must divide n"
    );
    let chunk = n / chunks;
    let chunk_bytes = (chunk * 4) as i32;

    let mut pb = ProgramBuilder::new();
    let src = pb.global_words("in", &input(n));
    let dst = pb.global_zeroed("out", n * 4);
    let main = pb.declare("main");
    let worker = pb.declare("worker");

    let mut t = ThreadBuilder::new("main");
    t.begin_ex();
    t.li(r(3), 0);
    let top = t.label_here();
    let done = t.new_label();
    t.br(BrCond::Ge, r(3), chunks as i32, done);
    t.falloc(r(4), worker, 1);
    t.store(r(3), r(4), 0);
    t.add(r(3), r(3), 1);
    t.jmp(top);
    t.bind(done);
    t.begin_ps();
    t.ffree_self();
    t.stop();
    pb.define(main, t);

    // Worker c handles out[c*chunk .. (c+1)*chunk); its reads cover
    // in[c*chunk .. c*chunk + chunk + 2) of the padded array.
    let mut w = ThreadBuilder::new("worker");
    let hand = variant == Variant::HandPrefetch;
    if hand {
        w.prefetch_bytes((chunk_bytes + 8) as u32);
        w.load(r(3), 0);
        w.mul(r(4), r(3), chunk_bytes);
        w.li(r(5), src as i64);
        w.add(r(5), r(5), r(4));
        w.dmaget(r(2), 0, r(5), 0, chunk_bytes + 8, 0);
        w.dmayield();
    }
    w.begin_pl();
    w.load(r(3), 0);
    w.begin_ex();
    w.mul(r(4), r(3), chunk_bytes);
    if hand {
        w.mov(r(5), r(2));
    } else {
        w.li(r(5), src as i64);
        w.add(r(5), r(5), r(4));
    }
    w.li(r(6), dst as i64);
    w.add(r(6), r(6), r(4));
    w.li(r(7), 0);
    let top = w.label_here();
    let done = w.new_label();
    w.br(BrCond::Ge, r(7), chunk as i32, done);
    w.shl(r(8), r(7), 2);
    w.add(r(9), r(5), r(8));
    if hand {
        w.lsload(r(10), r(9), 0);
        w.lsload(r(11), r(9), 4);
        w.lsload(r(12), r(9), 8);
    } else {
        w.read(r(10), r(9), 0);
        w.read(r(11), r(9), 4);
        w.read(r(12), r(9), 8);
    }
    w.add(r(11), r(11), r(11));
    w.add(r(10), r(10), r(11));
    w.add(r(10), r(10), r(12));
    w.add(r(13), r(6), r(8));
    w.write(r(10), r(13), 0);
    w.add(r(7), r(7), 1);
    w.jmp(top);
    w.bind(done);
    w.begin_ps();
    w.ffree_self();
    w.stop();
    pb.define(worker, w);

    pb.set_entry(main, 0);
    let wp = WorkloadProgram {
        name: format!("stencil({n})"),
        program: pb.build(),
        args: vec![],
        compiler_report: None,
    };
    match variant {
        Variant::AutoPrefetch => wp.auto_prefetch(),
        _ => wp,
    }
}

/// Checks the simulated output against [`expected`].
pub fn verify(sys: &dyn GlobalRead, n: usize) -> Result<(), String> {
    let want = expected(n);
    for (idx, &w) in want.iter().enumerate() {
        match sys.read_global_word("out", idx) {
            Some(got) if got == w => {}
            got => return Err(format!("out[{idx}] = {got:?}, expected {w}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dta_core::{simulate, SystemConfig};
    use std::sync::Arc;

    #[test]
    fn all_variants_match_reference() {
        for variant in Variant::ALL {
            let wp = build(64, 4, variant);
            let (_, sys) =
                simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
            verify(&sys, 64).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
        }
    }

    #[test]
    fn auto_compiler_merges_the_three_streams() {
        // in[i], in[i+4], in[i+8] bounding boxes overlap; the planner
        // keeps them as separate loop regions but each is one block and
        // all reads decouple.
        let wp = build(64, 4, Variant::AutoPrefetch);
        let report = wp.compiler_report.as_ref().unwrap();
        let worker = report.threads.iter().find(|t| t.name == "worker").unwrap();
        assert_eq!(worker.reads, 3);
        assert_eq!(worker.decoupled, 3);
        let (stats, _) =
            simulate(SystemConfig::with_pes(4), Arc::new(wp.program), &wp.args).unwrap();
        assert_eq!(stats.aggregate.reads, 0);
    }
}
