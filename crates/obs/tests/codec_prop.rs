//! Property tests for the observability codec: randomized streams
//! covering every event tag (0–22) and thread sub-tag (0–10) must
//! round-trip encode → decode → encode with byte-identical canonical
//! text. The generator is a fixed-seed LCG, so failures reproduce.

use dta_obs::codec::{
    event_from_json, event_to_json, histogram_from_json, histogram_to_json, record_to_json,
    stream_from_json, stream_to_json,
};
use dta_obs::{GaugeKind, Histogram, ObsEvent, ObsRecord, ObsStream, ThreadEvent};

struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn gen_thread_event(r: &mut Lcg) -> ThreadEvent {
    match r.pick(11) {
        0 => ThreadEvent::FrameGranted { frame: r.next() },
        1 => ThreadEvent::StoreApplied {
            slot: r.next() as u16,
            became_ready: r.pick(2) == 1,
        },
        2 => ThreadEvent::Dispatched,
        3 => ThreadEvent::PfOffloaded,
        4 => ThreadEvent::DmaIssued {
            tag: r.next() as u8,
        },
        5 => ThreadEvent::DmaCompleted {
            tag: r.next() as u8,
        },
        6 => ThreadEvent::WaitDma,
        7 => ThreadEvent::ParkedWaitFalloc,
        8 => ThreadEvent::Stopped,
        9 => ThreadEvent::FrameFreed,
        _ => ThreadEvent::ReadBlocked,
    }
}

fn gen_gauge_kind(r: &mut Lcg) -> GaugeKind {
    match r.pick(4) {
        0 => GaugeKind::ReadyQueue,
        1 => GaugeKind::FramesInUse,
        2 => GaugeKind::DmaInFlight,
        _ => GaugeKind::PipeState,
    }
}

fn gen_event(r: &mut Lcg) -> ObsEvent {
    let pe = |r: &mut Lcg| r.next() as u16;
    let node = |r: &mut Lcg| r.next() as u16;
    match r.pick(23) {
        0 => ObsEvent::Thread {
            pe: pe(r),
            instance: r.next(),
            thread: r.next() as u32,
            what: gen_thread_event(r),
        },
        1 => ObsEvent::DmaRetry {
            pe: pe(r),
            retries: r.next() as u32,
        },
        2 => ObsEvent::DmaExhausted { pe: pe(r) },
        3 => ObsEvent::PeDegraded { pe: pe(r) },
        4 => ObsEvent::WatchdogPark {
            pe: pe(r),
            instance: r.next(),
        },
        5 => ObsEvent::FallbackSubstituted {
            pe: pe(r),
            thread: r.next() as u32,
        },
        6 => ObsEvent::MsgDropped {
            src: r.next() as u32,
            resend_at: r.next(),
        },
        7 => ObsEvent::MsgDuplicated {
            src: r.next() as u32,
        },
        8 => ObsEvent::MsgDelayed {
            src: r.next() as u32,
        },
        9 => ObsEvent::FallocDenied {
            node: node(r),
            requester: r.next() as u16,
        },
        10 => ObsEvent::FallocRearb {
            node: node(r),
            grants: r.next() as u32,
        },
        11 => ObsEvent::DseCrash { node: node(r) },
        12 => ObsEvent::DseFailover {
            node: node(r),
            successor: r.next() as u16,
        },
        13 => ObsEvent::DseRehomed {
            node: node(r),
            count: r.next(),
        },
        14 => ObsEvent::DseRestart { node: node(r) },
        15 => ObsEvent::DseResync {
            node: node(r),
            pe: pe(r),
            free: r.next() as u32,
        },
        16 => ObsEvent::Gauge {
            pe: pe(r),
            kind: gen_gauge_kind(r),
            value: r.next(),
        },
        17 => ObsEvent::Epoch {
            start: r.next(),
            end: r.next(),
        },
        18 => ObsEvent::LseCrash { pe: pe(r) },
        19 => ObsEvent::LseRestart { pe: pe(r) },
        20 => ObsEvent::LseEvacuated {
            pe: pe(r),
            count: r.next(),
        },
        21 => ObsEvent::LseReadmitted {
            pe: pe(r),
            home: r.next() as u16,
        },
        _ => ObsEvent::LseKilled {
            pe: pe(r),
            count: r.next(),
        },
    }
}

fn gen_stream(r: &mut Lcg, len: usize) -> ObsStream {
    let records = (0..len)
        .map(|_| ObsRecord {
            cycle: r.next(),
            unit: r.next() as u32,
            seq: r.next(),
            ev: gen_event(r),
        })
        .collect();
    // from_records canonicalizes order, so the first encoding below is
    // already the canonical text.
    ObsStream::from_records(records, r.next())
}

#[test]
fn random_events_reencode_byte_identically() {
    let mut r = Lcg(0xC0DEC);
    for i in 0..4000 {
        let ev = gen_event(&mut r);
        let text = event_to_json(&ev).to_string_compact();
        let back = event_from_json(&dta_json::parse(&text).unwrap())
            .unwrap_or_else(|| panic!("event {i} failed to decode: {text}"));
        assert_eq!(back, ev, "event {i} changed across the round-trip");
        let text2 = event_to_json(&back).to_string_compact();
        assert_eq!(text2, text, "event {i} re-encoded differently");
    }
}

#[test]
fn random_streams_reencode_byte_identically() {
    let mut r = Lcg(0x57AB1E);
    for i in 0..40 {
        let stream = gen_stream(&mut r, 250);
        let text = stream_to_json(&stream).to_string_compact();
        let back = stream_from_json(&dta_json::parse(&text).unwrap())
            .unwrap_or_else(|| panic!("stream {i} failed to decode"));
        assert_eq!(back, stream, "stream {i} changed across the round-trip");
        let text2 = stream_to_json(&back).to_string_compact();
        assert_eq!(text2, text, "stream {i} re-encoded differently");
    }
}

#[test]
fn every_record_field_survives_full_u64_range() {
    // High bits exercise the u64_json string fallback above 2^53.
    let mut r = Lcg(0xFFFF);
    for _ in 0..500 {
        let rec = ObsRecord {
            cycle: r.next() | (1 << 62),
            unit: r.next() as u32,
            seq: r.next() | (1 << 63),
            ev: ObsEvent::Thread {
                pe: r.next() as u16,
                instance: r.next() | (0xABu64 << 56),
                thread: r.next() as u32,
                what: ThreadEvent::FrameGranted {
                    frame: r.next() | (1 << 60),
                },
            },
        };
        let text = record_to_json(&rec).to_string_compact();
        let back = dta_obs::codec::record_from_json(&dta_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, rec);
        assert_eq!(record_to_json(&back).to_string_compact(), text);
    }
}

#[test]
fn random_engine_reports_reencode_byte_identically() {
    // The EngineReport codec lives in dta-core, but it rides on this
    // crate's histogram codec and JSON numerics; pin the full report —
    // memo counters included — next to the other codec properties.
    use dta_json::ToJson;
    let mut r = Lcg(0x3E7A11);
    for i in 0..200 {
        let mut heap = Histogram::default();
        for _ in 0..r.pick(32) {
            heap.add(r.next() >> r.pick(60));
        }
        let report = dta_core::EngineReport {
            visited_cycles: r.next(),
            pe_ticks: r.next(),
            skipped_ticks: r.next(),
            epochs: r.next(),
            merged_epochs: r.next(),
            shard_wall_us: (0..r.pick(4)).map(|_| r.next()).collect(),
            merge_wall_us: r.next(),
            wake_heap_occupancy: heap,
            pe_deliveries: r.next(),
            dse_deliveries: r.next(),
            mem_requests: r.next(),
            memo_hits: r.next(),
            memo_misses: r.next(),
            // The core stats codec carries counters as plain JSON
            // numbers, exact up to 2^53 — Lcg::next() (53 bits) spans
            // exactly that domain.
            memo_replayed_cycles: r.next(),
            memo_aborts: r.next(),
        };
        let text = report.to_json().to_string_compact();
        let back = dta_core::EngineReport::from_json(&dta_json::parse(&text).unwrap())
            .unwrap_or_else(|| panic!("report {i} failed to decode: {text}"));
        assert_eq!(back, report, "report {i} changed across the round-trip");
        assert_eq!(
            back.to_json().to_string_compact(),
            text,
            "report {i} re-encoded differently"
        );
    }
}

#[test]
fn random_histograms_reencode_byte_identically() {
    let mut r = Lcg(0x4157);
    for _ in 0..200 {
        let mut h = Histogram::default();
        for _ in 0..r.pick(64) {
            h.add(r.next() >> r.pick(60));
        }
        let text = histogram_to_json(&h).to_string_compact();
        let back = histogram_from_json(&dta_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
        assert_eq!(histogram_to_json(&back).to_string_compact(), text);
    }
}
