//! Cycle-sampled metrics: deterministic histograms and the per-PE
//! occupancy/overlap accounting that quantifies the paper's
//! "non-blocking" claim (pipeline busy while DMA is in flight).

use crate::{GaugeKind, ObsEvent, ObsRecord, ObsSink, ThreadEvent};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A power-of-two-bucketed histogram. Bucket `i` holds values whose
/// bit-length is `i` (bucket 0 holds only zero), so the layout — and
/// therefore every rendered report — is a pure function of the added
/// values.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    /// Bucket counts by value bit-length.
    pub counts: [u64; 65],
    /// Number of values added.
    pub total: u64,
    /// Sum of values.
    pub sum: u64,
    /// Largest value seen.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; 65],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Adds one value.
    pub fn add(&mut self, v: u64) {
        let bucket = (64 - v.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn absorb(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// One-line summary, e.g. `n=12 mean=34.5 max=96`.
    pub fn summary(&self) -> String {
        format!("n={} mean={:.1} max={}", self.total, self.mean(), self.max)
    }

    /// Multi-line bucket rendering (non-empty buckets only).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = if i == 0 {
                (0u64, 0u64)
            } else {
                (1u64 << (i - 1), (1u64 << i) - 1)
            };
            let _ = writeln!(out, "  [{lo:>8}..{hi:>8}]  {c}");
        }
        out
    }
}

/// Final metrics of one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MetricsReport {
    /// Frame-grant → thread-ready latency (instances whose readiness is
    /// completed by a producer STORE; entry threads that are born ready
    /// do not contribute).
    pub grant_to_ready: Histogram,
    /// DMA issue → completion latency.
    pub dma_latency: Histogram,
    /// Wait-for-DMA stall spans (WaitDma → next dispatch).
    pub wait_dma_spans: Histogram,
    /// Total pipeline-busy cycles across PEs (EX slices).
    pub busy_cycles: u64,
    /// Busy cycles during which the same PE had DMA in flight — the
    /// paper's non-blocking overlap (Fig. 4).
    pub overlap_cycles: u64,
    /// Per-PE busy cycles.
    pub per_pe_busy: Vec<u64>,
    /// Per-PE overlap cycles.
    pub per_pe_overlap: Vec<u64>,
    /// Peak sampled ready-queue depth.
    pub max_ready_queue: u64,
    /// Peak sampled frames in use on any PE.
    pub max_frames_in_use: u64,
    /// Peak sampled DMA commands in flight on any MFC.
    pub max_dma_in_flight: u64,
    /// Gauge samples consumed.
    pub samples: u64,
}

impl MetricsReport {
    /// Overlap as a fraction of busy cycles (0 when idle).
    pub fn overlap_fraction(&self) -> f64 {
        if self.busy_cycles == 0 {
            0.0
        } else {
            self.overlap_cycles as f64 / self.busy_cycles as f64
        }
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "busy cycles {} · overlap (busy while DMA in flight) {} ({:.1}%)",
            self.busy_cycles,
            self.overlap_cycles,
            100.0 * self.overlap_fraction()
        );
        let _ = writeln!(out, "grant→ready   {}", self.grant_to_ready.summary());
        let _ = writeln!(out, "dma latency   {}", self.dma_latency.summary());
        let _ = writeln!(out, "wait-dma span {}", self.wait_dma_spans.summary());
        let _ = writeln!(
            out,
            "peaks: ready-queue {} · frames {} · dma in flight {} ({} samples)",
            self.max_ready_queue, self.max_frames_in_use, self.max_dma_in_flight, self.samples
        );
        out
    }
}

/// Sink that folds a wall-ordered stream into a [`MetricsReport`].
#[derive(Debug)]
pub struct MetricsSink {
    report: MetricsReport,
    busy_since: Vec<Option<u64>>,
    in_flight: Vec<u32>,
    last_edge: Vec<u64>,
    dma_open: HashMap<(u16, u8), u64>,
    grant_at: HashMap<u64, u64>,
    wait_since: HashMap<u64, u64>,
    last_cycle: u64,
}

impl MetricsSink {
    /// Creates a sink for a machine with `total_pes` PEs.
    pub fn new(total_pes: u16) -> Self {
        let n = total_pes as usize;
        MetricsSink {
            report: MetricsReport {
                per_pe_busy: vec![0; n],
                per_pe_overlap: vec![0; n],
                ..MetricsReport::default()
            },
            busy_since: vec![None; n],
            in_flight: vec![0; n],
            last_edge: vec![0; n],
            dma_open: HashMap::new(),
            grant_at: HashMap::new(),
            wait_since: HashMap::new(),
            last_cycle: 0,
        }
    }

    /// Accumulates the span since the last state edge of `pe` under the
    /// *current* state, then moves the edge to `t`.
    fn edge(&mut self, pe: u16, t: u64) {
        let p = pe as usize;
        if p >= self.last_edge.len() {
            return;
        }
        let span = t.saturating_sub(self.last_edge[p]);
        if span > 0 && self.busy_since[p].is_some() {
            self.report.busy_cycles += span;
            self.report.per_pe_busy[p] += span;
            if self.in_flight[p] > 0 {
                self.report.overlap_cycles += span;
                self.report.per_pe_overlap[p] += span;
            }
        }
        self.last_edge[p] = t;
    }

    /// Finishes the fold, closing any open busy spans at the last seen
    /// cycle, and returns the report.
    pub fn finish(mut self) -> MetricsReport {
        for pe in 0..self.busy_since.len() {
            self.edge(pe as u16, self.last_cycle);
        }
        self.report
    }
}

impl ObsSink for MetricsSink {
    fn record(&mut self, rec: &ObsRecord) {
        self.last_cycle = self.last_cycle.max(rec.cycle);
        match rec.ev {
            ObsEvent::Thread {
                pe, instance, what, ..
            } => match what {
                ThreadEvent::FrameGranted { .. } => {
                    self.grant_at.insert(instance, rec.cycle);
                }
                ThreadEvent::StoreApplied { became_ready, .. } => {
                    if became_ready {
                        if let Some(g) = self.grant_at.remove(&instance) {
                            self.report.grant_to_ready.add(rec.cycle - g);
                        }
                    }
                }
                ThreadEvent::Dispatched => {
                    if let Some(w) = self.wait_since.remove(&instance) {
                        self.report.wait_dma_spans.add(rec.cycle - w);
                    }
                    self.edge(pe, rec.cycle);
                    if let Some(p) = self.busy_since.get_mut(pe as usize) {
                        *p = Some(rec.cycle);
                    }
                }
                ThreadEvent::WaitDma => {
                    self.wait_since.entry(instance).or_insert(rec.cycle);
                    self.edge(pe, rec.cycle);
                    if let Some(p) = self.busy_since.get_mut(pe as usize) {
                        *p = None;
                    }
                }
                ThreadEvent::ParkedWaitFalloc | ThreadEvent::Stopped => {
                    self.edge(pe, rec.cycle);
                    if let Some(p) = self.busy_since.get_mut(pe as usize) {
                        *p = None;
                    }
                    if matches!(what, ThreadEvent::Stopped) {
                        self.grant_at.remove(&instance);
                        self.wait_since.remove(&instance);
                    }
                }
                ThreadEvent::DmaIssued { tag } => {
                    self.edge(pe, rec.cycle);
                    self.dma_open.insert((pe, tag), rec.cycle);
                    if let Some(f) = self.in_flight.get_mut(pe as usize) {
                        *f += 1;
                    }
                }
                ThreadEvent::DmaCompleted { tag } => {
                    self.edge(pe, rec.cycle);
                    if let Some(issued) = self.dma_open.remove(&(pe, tag)) {
                        self.report.dma_latency.add(rec.cycle - issued);
                    }
                    if let Some(f) = self.in_flight.get_mut(pe as usize) {
                        *f = f.saturating_sub(1);
                    }
                }
                ThreadEvent::PfOffloaded | ThreadEvent::FrameFreed | ThreadEvent::ReadBlocked => {}
            },
            ObsEvent::Gauge { kind, value, .. } => {
                self.report.samples += 1;
                match kind {
                    GaugeKind::ReadyQueue => {
                        self.report.max_ready_queue = self.report.max_ready_queue.max(value);
                    }
                    GaugeKind::FramesInUse => {
                        self.report.max_frames_in_use = self.report.max_frames_in_use.max(value);
                    }
                    GaugeKind::DmaInFlight => {
                        self.report.max_dma_in_flight = self.report.max_dma_in_flight.max(value);
                    }
                    GaugeKind::PipeState => {}
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(cycle: u64, seq: u64, ev: ObsEvent) -> ObsRecord {
        ObsRecord {
            cycle,
            unit: 0,
            seq,
            ev,
        }
    }

    fn thread(cycle: u64, seq: u64, what: ThreadEvent) -> ObsRecord {
        rec(
            cycle,
            seq,
            ObsEvent::Thread {
                pe: 0,
                instance: 1,
                thread: 0,
                what,
            },
        )
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.add(v);
        }
        assert_eq!(h.counts[0], 1); // 0
        assert_eq!(h.counts[1], 1); // 1
        assert_eq!(h.counts[2], 2); // 2, 3
        assert_eq!(h.counts[3], 1); // 4
        assert_eq!(h.counts[10], 1); // 1000
        assert_eq!(h.max, 1000);
        assert_eq!(h.total, 6);
    }

    #[test]
    fn overlap_counts_busy_cycles_with_dma_in_flight() {
        let mut m = MetricsSink::new(1);
        // DMA issued at 10, thread dispatched 12..20, DMA completes 16.
        m.record(&thread(10, 0, ThreadEvent::DmaIssued { tag: 0 }));
        m.record(&thread(12, 1, ThreadEvent::Dispatched));
        m.record(&thread(16, 2, ThreadEvent::DmaCompleted { tag: 0 }));
        m.record(&thread(20, 3, ThreadEvent::Stopped));
        let r = m.finish();
        assert_eq!(r.busy_cycles, 8); // 12..20
        assert_eq!(r.overlap_cycles, 4); // 12..16
        assert_eq!(r.dma_latency.sum, 6); // 10..16
    }

    #[test]
    fn wait_and_grant_latencies() {
        let mut m = MetricsSink::new(1);
        m.record(&thread(5, 0, ThreadEvent::FrameGranted { frame: 0 }));
        m.record(&thread(
            9,
            1,
            ThreadEvent::StoreApplied {
                slot: 0,
                became_ready: true,
            },
        ));
        m.record(&thread(10, 2, ThreadEvent::Dispatched));
        m.record(&thread(14, 3, ThreadEvent::WaitDma));
        m.record(&thread(30, 4, ThreadEvent::Dispatched));
        let r = m.finish();
        assert_eq!(r.grant_to_ready.sum, 4);
        assert_eq!(r.wait_dma_spans.sum, 16);
    }
}
