//! Post-run analysis over the merged observability stream: per-thread /
//! per-instance stall breakdowns (the paper's Fig. 5, derived
//! automatically for any workload), PF coverage, and a cross-unit
//! critical path through the dependency chain instance executions →
//! DMA transfers → FALLOC grants.
//!
//! Everything here is a pure function of the deterministic stream plus
//! the per-PE attribution counters, so the analysis inherits the
//! engine-invariance guarantee: identical across `{dense, fast-forward}
//! × {Off, Threads(n)}`.

use crate::{FineCat, ObsEvent, ObsRecord, ThreadEvent, NUM_FINE};
use dta_json::Json;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-PE exclusive cycle attribution (copied out of the run stats).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PeAttribution {
    /// Global PE index.
    pub pe: u16,
    /// Total simulated cycles on this PE.
    pub cycles: u64,
    /// Exclusive per-category cycle counts (sums to `cycles`).
    pub fine: [u64; NUM_FINE],
}

impl PeAttribution {
    /// Category share of this PE's cycles, in percent.
    pub fn pct(&self, cat: FineCat) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            100.0 * self.fine[cat as usize] as f64 / self.cycles as f64
        }
    }
}

/// Aggregated lifecycle accounting for one static thread.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ThreadBreakdown {
    /// Static thread index.
    pub thread: u32,
    /// Display name (empty when unknown).
    pub name: String,
    /// Instances that ran to `STOP`.
    pub instances: u64,
    /// Cycles spent executing on the EX pipeline (dispatch → block).
    pub exec_cycles: u64,
    /// Cycles descheduled in *Wait for DMA* (Fig. 4).
    pub dma_wait_cycles: u64,
    /// Cycles parked waiting for a FALLOC grant.
    pub falloc_park_cycles: u64,
    /// Frame-grant → ready latency (producer-STORE completion).
    pub grant_to_ready_cycles: u64,
    /// DMA transfers issued on behalf of this thread's instances.
    pub dma_transfers: u64,
    /// Summed DMA issue → completion latency.
    pub dma_transfer_cycles: u64,
    /// Main-memory transfers moved by DMA (decoupled; PF coverage
    /// numerator — a proxy that also counts decoupled PUTs).
    pub reads_decoupled: u64,
    /// Blocking scalar READs issued on the EX pipeline.
    pub reads_blocking: u64,
}

impl ThreadBreakdown {
    /// Fraction of main-memory reads served by decoupled DMA instead of
    /// a blocking scalar READ (1.0 when there is no traffic at all).
    pub fn pf_coverage(&self) -> f64 {
        let total = self.reads_decoupled + self.reads_blocking;
        if total == 0 {
            1.0
        } else {
            self.reads_decoupled as f64 / total as f64
        }
    }
}

/// Kind of one critical-path edge.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EdgeKind {
    /// Executing on the EX pipeline.
    Exec,
    /// Descheduled, waiting on a DMA transfer that had not yet issued
    /// (MFC admission / queue delay).
    DmaWait,
    /// Descheduled, bound by an in-flight DMA transfer (bus + memory
    /// occupancy).
    DmaTransfer,
    /// Parked waiting for a FALLOC grant.
    FallocWait,
    /// Frame granted but waiting on producer STOREs.
    StoreWait,
    /// Granted-and-ready but not yet dispatched (scheduler latency), or
    /// the hand-off between chained instances.
    Sched,
    /// No recorded activity bounds this span (quiesced machine).
    Gap,
}

impl EdgeKind {
    /// All kinds, in display order.
    pub const ALL: [EdgeKind; 7] = [
        EdgeKind::Exec,
        EdgeKind::DmaWait,
        EdgeKind::DmaTransfer,
        EdgeKind::FallocWait,
        EdgeKind::StoreWait,
        EdgeKind::Sched,
        EdgeKind::Gap,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Exec => "exec",
            EdgeKind::DmaWait => "dma-wait",
            EdgeKind::DmaTransfer => "dma-transfer",
            EdgeKind::FallocWait => "falloc-wait",
            EdgeKind::StoreWait => "store-wait",
            EdgeKind::Sched => "sched",
            EdgeKind::Gap => "gap",
        }
    }
}

/// One aggregated critical-path edge class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CritEdge {
    /// Edge kind.
    pub kind: EdgeKind,
    /// Total cycles the walked path spent on edges of this kind.
    pub cycles: u64,
    /// Number of walked segments of this kind.
    pub count: u64,
}

/// The longest-dependency-chain summary produced by the backward walk.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CriticalPath {
    /// Cycle at which the walked chain ends (last `STOP`).
    pub end_cycle: u64,
    /// Cycle at which the walk terminated (no further predecessor).
    pub start_cycle: u64,
    /// Instances visited along the chain.
    pub instances: u64,
    /// Edge classes, ranked by cycles (descending).
    pub edges: Vec<CritEdge>,
}

impl CriticalPath {
    /// The heaviest edge class on the path (`None` on an empty walk).
    pub fn dominant(&self) -> Option<CritEdge> {
        self.edges.first().copied()
    }

    /// Total walked cycles.
    pub fn total_cycles(&self) -> u64 {
        self.edges.iter().map(|e| e.cycles).sum()
    }
}

/// The complete analysis product.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Analysis {
    /// Per-PE exclusive stall attribution.
    pub pes: Vec<PeAttribution>,
    /// Per-static-thread lifecycle breakdown, sorted by thread index.
    pub threads: Vec<ThreadBreakdown>,
    /// Cross-unit critical path.
    pub critical_path: CriticalPath,
}

/// Span-edge events of one instance, in stream order.
struct InstanceLog {
    /// (cycle, event) — only events that bound or classify spans.
    events: Vec<(u64, ThreadEvent)>,
}

/// Runs the analysis. `fine` and `cycles` are indexed by global PE (from
/// the run's `PeStats`); `thread_names` may be shorter than the thread
/// space (missing names render as `t<N>`).
pub fn analyze(
    stream: &[ObsRecord],
    fine: &[[u64; NUM_FINE]],
    cycles: &[u64],
    thread_names: &[String],
) -> Analysis {
    let pes = fine
        .iter()
        .zip(cycles.iter())
        .enumerate()
        .map(|(pe, (f, &c))| PeAttribution {
            pe: pe as u16,
            cycles: c,
            fine: *f,
        })
        .collect();

    // Single forward pass: per-thread accounting + per-instance logs for
    // the backward critical-path walk.
    let mut threads: HashMap<u32, ThreadBreakdown> = HashMap::new();
    let mut logs: HashMap<u64, InstanceLog> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    // Per-instance forward state: granted-at, became-ready flag,
    // last span-opening event (cycle + discriminant).
    let mut granted: HashMap<u64, u64> = HashMap::new();
    let mut open_dma: HashMap<(u64, u8), u64> = HashMap::new();
    #[derive(Clone, Copy)]
    enum St {
        Running(u64),
        WaitDma(u64),
        Parked(u64),
    }
    let mut state: HashMap<u64, St> = HashMap::new();

    for rec in stream {
        let ObsEvent::Thread {
            instance,
            thread,
            what,
            ..
        } = rec.ev
        else {
            continue;
        };
        let c = rec.cycle;
        let tb = threads.entry(thread).or_insert_with(|| ThreadBreakdown {
            thread,
            name: thread_names
                .get(thread as usize)
                .cloned()
                .unwrap_or_else(|| format!("t{thread}")),
            ..ThreadBreakdown::default()
        });
        match what {
            ThreadEvent::FrameGranted { .. } => {
                granted.insert(instance, c);
            }
            ThreadEvent::StoreApplied { became_ready, .. } => {
                if became_ready {
                    if let Some(g) = granted.remove(&instance) {
                        tb.grant_to_ready_cycles += c - g;
                    }
                }
            }
            ThreadEvent::Dispatched => {
                match state.get(&instance) {
                    Some(St::WaitDma(w)) => tb.dma_wait_cycles += c - w,
                    Some(St::Parked(p)) => tb.falloc_park_cycles += c - p,
                    Some(St::Running(r)) => tb.exec_cycles += c - r,
                    None => {}
                }
                state.insert(instance, St::Running(c));
            }
            ThreadEvent::WaitDma => {
                if let Some(St::Running(r)) = state.get(&instance) {
                    tb.exec_cycles += c - r;
                }
                state.insert(instance, St::WaitDma(c));
            }
            ThreadEvent::ParkedWaitFalloc => {
                if let Some(St::Running(r)) = state.get(&instance) {
                    tb.exec_cycles += c - r;
                }
                state.insert(instance, St::Parked(c));
            }
            ThreadEvent::Stopped => {
                if let Some(St::Running(r)) = state.remove(&instance) {
                    tb.exec_cycles += c - r;
                }
                tb.instances += 1;
            }
            ThreadEvent::DmaIssued { tag } => {
                open_dma.insert((instance, tag), c);
                tb.dma_transfers += 1;
                tb.reads_decoupled += 1;
            }
            ThreadEvent::DmaCompleted { tag } => {
                if let Some(i) = open_dma.remove(&(instance, tag)) {
                    tb.dma_transfer_cycles += c - i;
                }
            }
            ThreadEvent::ReadBlocked => tb.reads_blocking += 1,
            ThreadEvent::PfOffloaded | ThreadEvent::FrameFreed => {}
        }
        let log = logs.entry(instance).or_insert_with(|| {
            order.push(instance);
            InstanceLog { events: Vec::new() }
        });
        log.events.push((c, what));
    }

    let mut threads: Vec<ThreadBreakdown> = threads.into_values().collect();
    threads.sort_by_key(|t| t.thread);

    let critical_path = walk_critical_path(&logs, &order);

    Analysis {
        pes,
        threads,
        critical_path,
    }
}

/// Does this event open or close an execution-state span?
fn span_edge(ev: ThreadEvent) -> bool {
    matches!(
        ev,
        ThreadEvent::Dispatched
            | ThreadEvent::WaitDma
            | ThreadEvent::ParkedWaitFalloc
            | ThreadEvent::FrameGranted { .. }
            | ThreadEvent::Stopped
    )
}

/// Backward walk over the per-instance logs.
///
/// Starts from the latest `Stopped` event machine-wide (falling back to
/// the latest event of any kind) and repeatedly asks "what bounded this
/// span?": within an instance, each span between consecutive span-edge
/// events is classified by its opening event (a `WaitDma` span splits at
/// the completing transfer's issue time into queue-delay and
/// transfer-bound parts); when an instance's log is exhausted at its
/// frame grant, the walk jumps to the unit active most recently at that
/// cycle — the chain producer — and continues there. Instances are
/// visited at most once, so the walk terminates. Pure stream function ⇒
/// engine-invariant.
fn walk_critical_path(logs: &HashMap<u64, InstanceLog>, order: &[u64]) -> CriticalPath {
    // Terminal: latest Stopped (ties broken by first-seen order for
    // determinism), else latest event overall.
    let mut terminal: Option<(u64, u64)> = None; // (cycle, instance)
    for &id in order {
        let log = &logs[&id];
        let last_stop = log
            .events
            .iter()
            .rev()
            .find(|(_, e)| matches!(e, ThreadEvent::Stopped));
        if let Some(&(c, _)) = last_stop {
            if terminal.is_none_or(|(tc, _)| c > tc) {
                terminal = Some((c, id));
            }
        }
    }
    if terminal.is_none() {
        for &id in order {
            if let Some(&(c, _)) = logs[&id].events.last() {
                if terminal.is_none_or(|(tc, _)| c > tc) {
                    terminal = Some((c, id));
                }
            }
        }
    }
    let Some((end_cycle, mut cur)) = terminal else {
        return CriticalPath::default();
    };

    let mut acc: HashMap<EdgeKind, (u64, u64)> = HashMap::new();
    let mut charge = |kind: EdgeKind, cycles: u64| {
        let e = acc.entry(kind).or_insert((0, 0));
        e.0 += cycles;
        e.1 += 1;
    };
    let mut visited: Vec<u64> = vec![cur];
    let mut t = end_cycle;
    // Walk position: index *into* the current instance's event list of
    // the span-edge event that closes the current span at time `t`.
    let mut idx = logs[&cur]
        .events
        .iter()
        .rposition(|&(c, e)| c <= t && span_edge(e))
        .unwrap_or(0);

    loop {
        let log = &logs[&cur];
        // Find the span-edge event strictly before `idx` that opens the
        // span ending at `t`.
        let open = log.events[..idx].iter().rposition(|&(_, e)| span_edge(e));
        match open {
            Some(oi) => {
                let (oc, oe) = log.events[oi];
                let span = t.saturating_sub(oc);
                match oe {
                    ThreadEvent::Dispatched | ThreadEvent::Stopped => charge(EdgeKind::Exec, span),
                    ThreadEvent::ParkedWaitFalloc => charge(EdgeKind::FallocWait, span),
                    ThreadEvent::WaitDma => {
                        // Split at the completing transfer's issue time:
                        // the transfer that unblocked the wait completed
                        // inside (oc, t]; its issue bound is the last
                        // DmaIssued at or before the completion.
                        let done = log.events[..idx]
                            .iter()
                            .rev()
                            .find(|&&(c, e)| {
                                c > oc && c <= t && matches!(e, ThreadEvent::DmaCompleted { .. })
                            })
                            .map(|&(c, _)| c);
                        let issue = log.events[..idx]
                            .iter()
                            .rev()
                            .find(|&&(c, e)| c <= t && matches!(e, ThreadEvent::DmaIssued { .. }))
                            .map(|&(c, _)| c);
                        match (done, issue) {
                            (Some(_), Some(ic)) if ic > oc => {
                                charge(EdgeKind::DmaTransfer, t.saturating_sub(ic));
                                charge(EdgeKind::DmaWait, ic - oc);
                            }
                            (Some(_), _) => charge(EdgeKind::DmaTransfer, span),
                            _ => charge(EdgeKind::DmaWait, span),
                        }
                    }
                    ThreadEvent::FrameGranted { .. } => {
                        // Granted → first activity: producer stores if
                        // any landed in the window, else scheduling.
                        let stored = log.events[oi..idx]
                            .iter()
                            .any(|&(_, e)| matches!(e, ThreadEvent::StoreApplied { .. }));
                        charge(
                            if stored {
                                EdgeKind::StoreWait
                            } else {
                                EdgeKind::Sched
                            },
                            span,
                        );
                    }
                    _ => charge(EdgeKind::Gap, span),
                }
                t = oc;
                idx = oi;
            }
            None => {
                // Log exhausted (at or before the frame grant): jump to
                // the chain producer — the unvisited instance with the
                // latest event at or before `t` (first-seen order breaks
                // ties deterministically).
                let mut best: Option<(u64, u64, usize)> = None; // (cycle, id, idx)
                for &id in order {
                    if visited.contains(&id) {
                        continue;
                    }
                    let cand = &logs[&id];
                    if let Some(ci) = cand
                        .events
                        .iter()
                        .rposition(|&(c, e)| c <= t && span_edge(e))
                    {
                        let cc = cand.events[ci].0;
                        if best.is_none_or(|(bc, _, _)| cc > bc) {
                            best = Some((cc, id, ci));
                        }
                    }
                }
                let Some((cc, id, ci)) = best else {
                    break;
                };
                // The hand-off itself (grant arbitration + messaging).
                charge(EdgeKind::Sched, t.saturating_sub(cc));
                visited.push(id);
                cur = id;
                t = cc;
                idx = ci + 1; // span closes at the found edge
                              // Re-anchor: the found edge closes the previous span of
                              // the producer; continue walking below it.
            }
        }
        if t == 0 {
            break;
        }
        if visited.len() > logs.len() {
            break;
        }
    }

    let mut edges: Vec<CritEdge> = EdgeKind::ALL
        .iter()
        .filter_map(|&k| {
            acc.get(&k).map(|&(cycles, count)| CritEdge {
                kind: k,
                cycles,
                count,
            })
        })
        .collect();
    edges.sort_by_key(|e| std::cmp::Reverse(e.cycles));
    CriticalPath {
        end_cycle,
        start_cycle: t,
        instances: visited.len() as u64,
        edges,
    }
}

impl Analysis {
    /// Machine-wide attribution totals (index = `FineCat as usize`).
    pub fn totals(&self) -> [u64; NUM_FINE] {
        let mut out = [0u64; NUM_FINE];
        for p in &self.pes {
            for (o, f) in out.iter_mut().zip(p.fine.iter()) {
                *o += f;
            }
        }
        out
    }

    /// Human-readable rendering (attribution table, thread table,
    /// critical path).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total_cycles: u64 = self.pes.iter().map(|p| p.cycles).sum();
        let totals = self.totals();
        let _ = writeln!(out, "stall attribution ({} PE-cycles)", total_cycles);
        for cat in FineCat::ALL {
            let v = totals[cat as usize];
            if v == 0 {
                continue;
            }
            let pct = if total_cycles == 0 {
                0.0
            } else {
                100.0 * v as f64 / total_cycles as f64
            };
            let _ = writeln!(out, "  {:<11} {:>12}  {:>5.1}%", cat.name(), v, pct);
        }
        let _ = writeln!(out, "threads");
        for t in &self.threads {
            let _ = writeln!(
                out,
                "  {:<16} n={:<5} exec={} dma-wait={} falloc={} grant→ready={} \
                 dma={}×/{}cyc coverage={:.0}%",
                t.name,
                t.instances,
                t.exec_cycles,
                t.dma_wait_cycles,
                t.falloc_park_cycles,
                t.grant_to_ready_cycles,
                t.dma_transfers,
                t.dma_transfer_cycles,
                100.0 * t.pf_coverage(),
            );
        }
        let cp = &self.critical_path;
        let _ = writeln!(
            out,
            "critical path [{}..{}] across {} instances",
            cp.start_cycle, cp.end_cycle, cp.instances
        );
        for e in &cp.edges {
            let _ = writeln!(
                out,
                "  {:<12} {:>12} cycles  ({} segments)",
                e.kind.name(),
                e.cycles,
                e.count
            );
        }
        if let Some(d) = cp.dominant() {
            let _ = writeln!(out, "  dominant edge: {}", d.kind.name());
        }
        out
    }

    /// Stable JSON form.
    pub fn to_json(&self) -> Json {
        let pes = self
            .pes
            .iter()
            .map(|p| {
                Json::obj([
                    ("pe", Json::Num(p.pe as f64)),
                    ("cycles", Json::Num(p.cycles as f64)),
                    (
                        "fine",
                        Json::Obj(
                            FineCat::ALL
                                .iter()
                                .map(|&c| {
                                    (c.name().to_string(), Json::Num(p.fine[c as usize] as f64))
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let threads = self
            .threads
            .iter()
            .map(|t| {
                Json::obj([
                    ("thread", Json::Num(t.thread as f64)),
                    ("name", Json::Str(t.name.clone())),
                    ("instances", Json::Num(t.instances as f64)),
                    ("exec_cycles", Json::Num(t.exec_cycles as f64)),
                    ("dma_wait_cycles", Json::Num(t.dma_wait_cycles as f64)),
                    ("falloc_park_cycles", Json::Num(t.falloc_park_cycles as f64)),
                    (
                        "grant_to_ready_cycles",
                        Json::Num(t.grant_to_ready_cycles as f64),
                    ),
                    ("dma_transfers", Json::Num(t.dma_transfers as f64)),
                    (
                        "dma_transfer_cycles",
                        Json::Num(t.dma_transfer_cycles as f64),
                    ),
                    ("reads_decoupled", Json::Num(t.reads_decoupled as f64)),
                    ("reads_blocking", Json::Num(t.reads_blocking as f64)),
                    ("pf_coverage", Json::Num(t.pf_coverage())),
                ])
            })
            .collect();
        let edges = self
            .critical_path
            .edges
            .iter()
            .map(|e| {
                Json::obj([
                    ("kind", Json::Str(e.kind.name().to_string())),
                    ("cycles", Json::Num(e.cycles as f64)),
                    ("count", Json::Num(e.count as f64)),
                ])
            })
            .collect();
        Json::obj([
            ("pes", Json::Arr(pes)),
            ("threads", Json::Arr(threads)),
            (
                "critical_path",
                Json::obj([
                    (
                        "start_cycle",
                        Json::Num(self.critical_path.start_cycle as f64),
                    ),
                    ("end_cycle", Json::Num(self.critical_path.end_cycle as f64)),
                    ("instances", Json::Num(self.critical_path.instances as f64)),
                    (
                        "dominant",
                        match self.critical_path.dominant() {
                            Some(d) => Json::Str(d.kind.name().to_string()),
                            None => Json::Null,
                        },
                    ),
                    ("edges", Json::Arr(edges)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn thread(cycle: u64, seq: u64, pe: u16, instance: u64, what: ThreadEvent) -> ObsRecord {
        ObsRecord {
            cycle,
            unit: pe as u32,
            seq,
            ev: ObsEvent::Thread {
                pe,
                instance,
                thread: instance as u32,
                what,
            },
        }
    }

    /// One instance: grant 0, dispatch 4, dma issue 6, wait 8,
    /// complete 20, redispatch 20, stop 24.
    fn simple_stream() -> Vec<ObsRecord> {
        vec![
            thread(0, 0, 0, 1, ThreadEvent::FrameGranted { frame: 0 }),
            thread(4, 1, 0, 1, ThreadEvent::Dispatched),
            thread(6, 2, 0, 1, ThreadEvent::DmaIssued { tag: 0 }),
            thread(8, 3, 0, 1, ThreadEvent::WaitDma),
            thread(20, 4, 0, 1, ThreadEvent::DmaCompleted { tag: 0 }),
            thread(20, 5, 0, 1, ThreadEvent::Dispatched),
            thread(24, 6, 0, 1, ThreadEvent::Stopped),
        ]
    }

    #[test]
    fn thread_breakdown_accounts_lifecycle() {
        let a = analyze(&simple_stream(), &[], &[], &[]);
        assert_eq!(a.threads.len(), 1);
        let t = &a.threads[0];
        assert_eq!(t.instances, 1);
        assert_eq!(t.exec_cycles, 8); // 4..8 and 20..24
        assert_eq!(t.dma_wait_cycles, 12); // 8..20
        assert_eq!(t.dma_transfers, 1);
        assert_eq!(t.dma_transfer_cycles, 14); // 6..20
        assert_eq!(t.reads_blocking, 0);
        assert!((t.pf_coverage() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn critical_path_finds_dma_transfer_bound_wait() {
        let a = analyze(&simple_stream(), &[], &[], &[]);
        let cp = &a.critical_path;
        assert_eq!(cp.end_cycle, 24);
        let by_kind: HashMap<EdgeKind, u64> = cp.edges.iter().map(|e| (e.kind, e.cycles)).collect();
        // 8..20 wait is transfer-bound (the DMA issued before the wait
        // began), so it must charge dma-transfer, not dma-wait.
        assert_eq!(by_kind.get(&EdgeKind::DmaTransfer), Some(&12));
        assert_eq!(by_kind.get(&EdgeKind::Exec), Some(&8));
        assert_eq!(cp.dominant().unwrap().kind, EdgeKind::DmaTransfer);
    }

    #[test]
    fn critical_path_chains_through_producer() {
        // Instance 1 runs 0..10 and its exec window covers instance 2's
        // grant at 8; instance 2 stops last.
        let stream = vec![
            thread(0, 0, 0, 1, ThreadEvent::Dispatched),
            thread(8, 1, 1, 2, ThreadEvent::FrameGranted { frame: 0 }),
            thread(10, 2, 0, 1, ThreadEvent::Stopped),
            thread(12, 3, 1, 2, ThreadEvent::Dispatched),
            thread(30, 4, 1, 2, ThreadEvent::Stopped),
        ];
        let a = analyze(&stream, &[], &[], &[]);
        let cp = &a.critical_path;
        assert_eq!(cp.end_cycle, 30);
        assert_eq!(cp.instances, 2);
        // Chain: 12..30 exec (inst 2), 8..12 sched, then into inst 1.
        let by_kind: HashMap<EdgeKind, u64> = cp.edges.iter().map(|e| (e.kind, e.cycles)).collect();
        assert!(by_kind[&EdgeKind::Exec] >= 18);
        assert!(by_kind.contains_key(&EdgeKind::Sched));
    }

    #[test]
    fn read_blocked_counts_against_coverage() {
        let stream = vec![
            thread(0, 0, 0, 1, ThreadEvent::Dispatched),
            thread(2, 1, 0, 1, ThreadEvent::ReadBlocked),
            thread(4, 2, 0, 1, ThreadEvent::DmaIssued { tag: 0 }),
            thread(9, 3, 0, 1, ThreadEvent::Stopped),
        ];
        let a = analyze(&stream, &[], &[], &[]);
        let t = &a.threads[0];
        assert_eq!(t.reads_blocking, 1);
        assert_eq!(t.reads_decoupled, 1);
        assert!((t.pf_coverage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn json_shape_is_stable() {
        let fine = [[10, 0, 0, 0, 0, 0, 0, 0, 0, 14]];
        let a = analyze(&simple_stream(), &fine, &[24], &[]);
        let j = a.to_json();
        assert_eq!(
            j.get("critical_path")
                .and_then(|c| c.get("dominant"))
                .and_then(Json::as_str),
            Some("dma-transfer")
        );
        let pes = j.get("pes").and_then(Json::as_arr).unwrap();
        assert_eq!(
            pes[0]
                .get("fine")
                .and_then(|f| f.get("Compute"))
                .and_then(Json::as_u64),
            Some(10)
        );
        let text = a.render();
        assert!(text.contains("dominant edge: dma-transfer"));
    }
}
